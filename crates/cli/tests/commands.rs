//! In-process integration tests of the `totem` subcommands.

use totem_cli::commands;

fn argv(s: &[&str]) -> Vec<String> {
    s.iter().map(|x| x.to_string()).collect()
}

#[test]
fn throughput_runs_for_every_style() {
    for style in ["single", "active", "passive", "ap:2"] {
        commands::throughput(&argv(&["--style", style, "--size", "700", "--window-ms", "150"]))
            .unwrap_or_else(|e| panic!("{style}: {e}"));
    }
}

#[test]
fn throughput_rejects_nonsense() {
    assert!(commands::throughput(&argv(&["--style", "warp"])).is_err());
    assert!(commands::throughput(&argv(&["--size", "tiny"])).is_err());
    assert!(commands::throughput(&argv(&["positional"])).is_err());
}

#[test]
fn failover_verifies_transparency() {
    commands::failover(&argv(&["--style", "active", "--nodes", "3"])).unwrap();
}

#[test]
fn failover_rejects_single_network() {
    assert!(commands::failover(&argv(&["--style", "single"])).is_err());
}

#[test]
fn soak_verifies_safety_under_loss() {
    commands::soak(&argv(&["--seconds", "2", "--loss", "1.5", "--seed", "7"])).unwrap();
}

#[test]
fn compare_prints_all_styles() {
    commands::compare(&argv(&["--size", "500"])).unwrap();
}

#[test]
fn scale_sweeps_ring_sizes() {
    commands::scale(&argv(&["--style", "passive", "--max-nodes", "4"])).unwrap();
}
