//! Tiny flag parser: `--name value` pairs plus boolean flags.

use std::collections::HashMap;

use totem_cluster::BackendKind;
use totem_rrp::ReplicationStyle;

/// Parsed flags of one subcommand.
#[derive(Debug)]
pub struct Flags {
    values: HashMap<String, String>,
    bools: Vec<String>,
}

impl Flags {
    /// Parses `--name value` pairs; a `--name` followed by another
    /// flag (or nothing) is a boolean flag.
    ///
    /// # Errors
    ///
    /// Rejects positional arguments and non-`--` tokens.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut values = HashMap::new();
        let mut bools = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let arg = &args[i];
            let Some(name) = arg.strip_prefix("--") else {
                return Err(format!("unexpected argument `{arg}` (flags are --name value)"));
            };
            if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                values.insert(name.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                bools.push(name.to_string());
                i += 1;
            }
        }
        Ok(Flags { values, bools })
    }

    /// A value flag parsed into `T`, or `default` when absent.
    ///
    /// # Errors
    ///
    /// Reports unparsable values with the flag name.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.values.get(name) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| format!("invalid value `{raw}` for --{name}")),
        }
    }

    /// Whether a boolean flag was given.
    pub fn has(&self, name: &str) -> bool {
        self.bools.iter().any(|b| b == name)
    }

    /// The replication style from `--replication` (or its legacy alias
    /// `--style`), defaulting to `active`.
    ///
    /// # Errors
    ///
    /// Rejects unknown style names and giving both spellings at once.
    pub fn style(&self) -> Result<ReplicationStyle, String> {
        let raw = match (self.values.get("replication"), self.values.get("style")) {
            (Some(_), Some(_)) => {
                return Err("give either --replication or --style, not both".into())
            }
            (Some(r), None) | (None, Some(r)) => r.as_str(),
            (None, None) => "active",
        };
        parse_style(raw)
    }

    /// The atomic-broadcast backend from `--backend`, defaulting to
    /// Totem.
    ///
    /// # Errors
    ///
    /// Rejects unknown backend names.
    pub fn backend(&self) -> Result<BackendKind, String> {
        match self.values.get("backend").map(String::as_str) {
            None | Some("totem") => Ok(BackendKind::Totem),
            Some("ring-paxos") => Ok(BackendKind::RingPaxos),
            Some(other) => Err(format!("unknown backend `{other}` (use totem or ring-paxos)")),
        }
    }
}

/// Parses `single`, `active`, `passive`, `ap:K` or `k-of-n:K`.
///
/// # Errors
///
/// Returns a description of valid styles for anything else.
pub fn parse_style(raw: &str) -> Result<ReplicationStyle, String> {
    match raw {
        "single" | "none" => Ok(ReplicationStyle::Single),
        "active" => Ok(ReplicationStyle::Active),
        "passive" => Ok(ReplicationStyle::Passive),
        other => {
            if let Some(k) = other.strip_prefix("ap:") {
                let copies: u8 = k.parse().map_err(|_| format!("invalid K in `ap:{k}`"))?;
                Ok(ReplicationStyle::ActivePassive { copies })
            } else if let Some(k) = other.strip_prefix("k-of-n:") {
                let copies: u8 = k.parse().map_err(|_| format!("invalid K in `k-of-n:{k}`"))?;
                Ok(ReplicationStyle::KOfN { copies })
            } else {
                Err(format!(
                    "unknown style `{other}` (use single, active, passive, ap:K, or k-of-n:K)"
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_values_and_bools() {
        let f = Flags::parse(&argv(&["--nodes", "6", "--quick", "--size", "1000"])).unwrap();
        assert_eq!(f.get("nodes", 4usize).unwrap(), 6);
        assert_eq!(f.get("size", 0usize).unwrap(), 1000);
        assert!(f.has("quick"));
        assert!(!f.has("verbose"));
        assert_eq!(f.get("window-ms", 500u64).unwrap(), 500);
    }

    #[test]
    fn rejects_positional_arguments() {
        assert!(Flags::parse(&argv(&["bare"])).is_err());
    }

    #[test]
    fn rejects_bad_values() {
        let f = Flags::parse(&argv(&["--nodes", "many"])).unwrap();
        assert!(f.get("nodes", 4usize).is_err());
    }

    #[test]
    fn styles_parse() {
        assert_eq!(parse_style("single").unwrap(), ReplicationStyle::Single);
        assert_eq!(parse_style("active").unwrap(), ReplicationStyle::Active);
        assert_eq!(parse_style("passive").unwrap(), ReplicationStyle::Passive);
        assert_eq!(parse_style("ap:2").unwrap(), ReplicationStyle::ActivePassive { copies: 2 });
        assert_eq!(parse_style("k-of-n:2").unwrap(), ReplicationStyle::KOfN { copies: 2 });
        assert!(parse_style("turbo").is_err());
        assert!(parse_style("ap:x").is_err());
        assert!(parse_style("k-of-n:x").is_err());
    }

    #[test]
    fn backends_parse() {
        let f = Flags::parse(&argv(&[])).unwrap();
        assert_eq!(f.backend().unwrap(), BackendKind::Totem);
        let f = Flags::parse(&argv(&["--backend", "ring-paxos"])).unwrap();
        assert_eq!(f.backend().unwrap(), BackendKind::RingPaxos);
        let f = Flags::parse(&argv(&["--backend", "totem"])).unwrap();
        assert_eq!(f.backend().unwrap(), BackendKind::Totem);
        let f = Flags::parse(&argv(&["--backend", "multi-paxos"])).unwrap();
        assert!(f.backend().is_err());
    }

    #[test]
    fn replication_flag_is_an_alias_for_style() {
        let f = Flags::parse(&argv(&["--replication", "k-of-n:2"])).unwrap();
        assert_eq!(f.style().unwrap(), ReplicationStyle::KOfN { copies: 2 });
        let f = Flags::parse(&argv(&["--style", "passive"])).unwrap();
        assert_eq!(f.style().unwrap(), ReplicationStyle::Passive);
        let f = Flags::parse(&argv(&["--style", "active", "--replication", "passive"])).unwrap();
        assert!(f.style().is_err(), "both spellings at once must be rejected");
    }
}
