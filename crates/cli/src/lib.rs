//! Library backing the `totem` command-line tool (see
//! [`commands::USAGE`] for the commands). Split from the binary so
//! the subcommands are integration-testable in-process.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;
