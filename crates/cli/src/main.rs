//! `totem` — command-line driver for the Totem redundant ring
//! protocol reproduction.
//!
//! ```text
//! totem throughput [--nodes N] [--replication S] [--size BYTES] [--window-ms MS]
//! totem compare    [--nodes N] [--size BYTES]
//! totem figures    [--quick]
//! totem failover   [--replication S] [--nodes N]
//! totem soak       [--seconds S] [--loss PCT] [--replication S] [--seed X]
//! totem udp        [--nodes N] [--networks M] [--replication S] [--msgs K]
//! ```
//!
//! Replication styles: `single`, `active`, `passive`, `ap:K`
//! (active-passive with K copies), `k-of-n:K` (the unified engine at
//! degree K; `--style` is a legacy alias for `--replication`).
//! Everything except `udp` runs on the deterministic simulator (same
//! arguments → same output, bit for bit); `udp` exercises the same
//! stack over real loopback sockets under the threaded runtime.

use std::process::ExitCode;

use totem_cli::commands;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        eprintln!("{}", commands::USAGE);
        return ExitCode::FAILURE;
    };
    let result = match cmd.as_str() {
        "throughput" => commands::throughput(rest),
        "compare" => commands::compare(rest),
        "figures" => commands::figures(rest),
        "failover" => commands::failover(rest),
        "soak" => commands::soak(rest),
        "scale" => commands::scale(rest),
        "udp" => commands::udp(rest),
        "help" | "--help" | "-h" => {
            println!("{}", commands::USAGE);
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n\n{}", commands::USAGE)),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
