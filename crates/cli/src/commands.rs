//! The `totem` subcommands.

use bytes::Bytes;

use totem_bench::{fig6, fig7, fig8, fig9, measure, run_figure, MeasureConfig};
use totem_cluster::chaos::{par as chaos_par, soak as chaos_soak};
use totem_cluster::{
    collect_deliveries, spawn_node_with, BackendKind, ClusterConfig, PollMode, RuntimeConfig,
    SimCluster, StartMode, TotemNode,
};
use totem_rrp::{ReplicationStyle, RrpConfig};
use totem_sim::{FaultCommand, NetworkConfig, SimConfig, SimDuration, SimTime};
use totem_srp::SrpConfig;
use totem_transport::UdpTopology;
use totem_wire::{NetworkId, NodeId};

use crate::args::Flags;

/// Top-level usage text.
pub const USAGE: &str = "totem — the Totem redundant ring protocol, on a simulated testbed

usage:
  totem throughput [--nodes N] [--replication S] [--backend B] [--size BYTES]
                   [--window-ms MS]
        one saturating-workload measurement (msgs/sec, KB/sec, latency)
  totem compare    [--nodes N] [--size BYTES]
        all four replication styles side by side
  totem figures    [--quick]
        regenerate Figures 6-9 of the paper, with shape checks
  totem failover   [--replication S] [--nodes N]
        kill a network mid-run; show transparency + fault reports
  totem soak       [--seconds S] [--loss PCT] [--replication S] [--backend B]
                   [--seed X] [--corrupt PCT] [--seeds N] [--jobs N]
        randomized lossy run with safety verification; with --corrupt
        (or --seeds > 1) runs the self-stabilization soak engine: a
        drip of chaos + state-corruption faults checked by the
        rolling-window EVS oracle, seeds fanned across --jobs threads
  totem scale      [--replication S] [--backend B] [--size BYTES] [--max-nodes N]
        ring-size sweep: throughput and latency as the ring grows
  totem udp        [--nodes N] [--networks M] [--replication S] [--msgs K]
                   [--size BYTES] [--no-batch] [--busy-poll US]
        real sockets: a loopback UDP cluster under the threaded
        runtime (batched sendmmsg-style driver by default; --no-batch
        uses the single-datagram path, --busy-poll spins US µs before
        blocking); verifies one agreed total order, prints msgs/sec

replication styles (--replication, legacy alias --style):
  single | active | passive | ap:K | k-of-n:K     (default: active)

atomic-broadcast backends (--backend, on throughput / scale / soak):
  totem | ring-paxos      (default: totem; ring-paxos is a fixed-
  coordinator, single-network backend — use --replication single
  for an apples-to-apples comparison)";

/// `totem throughput`.
pub fn throughput(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let nodes: usize = flags.get("nodes", 4)?;
    let size: usize = flags.get("size", 1000)?;
    let window_ms: u64 = flags.get("window-ms", 1000)?;
    let style = flags.style()?;
    let backend = flags.backend()?;

    let cfg = MeasureConfig::new(style, size)
        .with_nodes(nodes)
        .with_backend(backend)
        .with_window(SimDuration::from_millis(window_ms));
    let t = measure(&cfg);
    println!("{backend} / {style}, {nodes} nodes, {size}-byte messages, {window_ms} ms window:");
    println!("  send rate    {:>10.0} msgs/sec", t.msgs_per_sec);
    println!("  bandwidth    {:>10.0} Kbytes/sec", t.kbytes_per_sec);
    println!("  mean latency {:>10.0} µs", t.latency_mean_us);
    for (i, u) in t.utilization.iter().enumerate() {
        println!("  net{i} utilization {:>6.1}%", u * 100.0);
    }
    Ok(())
}

/// `totem compare`.
pub fn compare(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let nodes: usize = flags.get("nodes", 4)?;
    let size: usize = flags.get("size", 1000)?;
    println!("{:<36} {:>12} {:>14} {:>12}", "style", "msgs/sec", "Kbytes/sec", "latency µs");
    for style in [
        ReplicationStyle::Single,
        ReplicationStyle::Active,
        ReplicationStyle::Passive,
        ReplicationStyle::ActivePassive { copies: 2 },
    ] {
        let cfg = MeasureConfig::new(style, size)
            .with_nodes(nodes)
            .with_window(SimDuration::from_millis(600));
        let t = measure(&cfg);
        println!(
            "{:<36} {:>12.0} {:>14.0} {:>12.0}",
            style.to_string(),
            t.msgs_per_sec,
            t.kbytes_per_sec,
            t.latency_mean_us
        );
    }
    Ok(())
}

/// `totem figures`.
pub fn figures(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    if flags.has("quick") {
        std::env::set_var("TOTEM_QUICK", "1");
    }
    let mut all = true;
    for spec in [fig6(), fig7(), fig8(), fig9()] {
        all &= run_figure(&spec);
    }
    if all {
        println!("\nall figures reproduced: every shape check passed");
        Ok(())
    } else {
        Err("one or more shape checks failed".into())
    }
}

/// `totem failover`.
pub fn failover(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let nodes: usize = flags.get("nodes", 4)?;
    let style = flags.style()?;
    if style == ReplicationStyle::Single {
        return Err(
            "fail-over needs a replicated style (active, passive, ap:K, or k-of-n:K)".into()
        );
    }
    let mut cluster = SimCluster::new(ClusterConfig::new(nodes, style));
    let dies = SimTime::from_secs(1);
    cluster.schedule_fault(dies, FaultCommand::NetworkDown { net: NetworkId::new(0), down: true });
    println!("{style}, {nodes} nodes; network 0 dies at t=1.000s\n");

    let mut t = SimTime::ZERO;
    let mut sent = 0u32;
    while t < SimTime::from_secs(3) {
        cluster.run_until(t);
        for node in 0..nodes {
            cluster.submit(node, Bytes::from(format!("tick-{sent}-node-{node}")));
        }
        sent += nodes as u32;
        t += SimDuration::from_millis(50);
    }
    cluster.run_until(SimTime::from_secs(5));

    let reference: Vec<&[u8]> = cluster.delivered(0).iter().map(|d| &d.data[..]).collect();
    for n in 1..nodes {
        let order: Vec<&[u8]> = cluster.delivered(n).iter().map(|d| &d.data[..]).collect();
        if order != reference {
            return Err(format!("node {n} disagrees on the delivery order"));
        }
    }
    println!(
        "delivered {} / {} messages at every node, one agreed order, zero membership changes",
        reference.len(),
        sent
    );
    println!("\nfault reports (the operator's view):");
    for n in 0..nodes {
        for report in cluster.faults(n) {
            println!("  node {n} @ t+{:.3}s: {report}", report.at as f64 / 1e9);
        }
    }
    if reference.len() as u32 == sent {
        Ok(())
    } else {
        Err("messages were lost across the fail-over".into())
    }
}

/// `totem scale`.
pub fn scale(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let style = flags.style()?;
    let backend = flags.backend()?;
    let size: usize = flags.get("size", 1000)?;
    let max_nodes: usize = flags.get("max-nodes", 12)?;
    println!("{backend} / {style}, {size}-byte messages, ring-size sweep:");
    println!("{:>6} | {:>12} | {:>14}", "nodes", "msgs/sec", "mean lat (µs)");
    let mut nodes = 2;
    while nodes <= max_nodes {
        let cfg = MeasureConfig::new(style, size)
            .with_nodes(nodes)
            .with_backend(backend)
            .with_window(SimDuration::from_millis(400));
        let t = measure(&cfg);
        println!("{:>6} | {:>12.0} | {:>14.0}", nodes, t.msgs_per_sec, t.latency_mean_us);
        nodes += if nodes < 4 { 1 } else { 4 };
    }
    Ok(())
}

/// `totem udp` — the real-socket counterpart of `totem throughput`:
/// a loopback UDP cluster under the threaded runtime.
pub fn udp(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let nodes: usize = flags.get("nodes", 3)?;
    let networks: usize = flags.get("networks", 2)?;
    let msgs: u64 = flags.get("msgs", 300)?;
    let size: usize = flags.get("size", 256)?;
    let spin_us: u64 = flags.get("busy-poll", 0)?;
    let style = flags.style()?;
    if nodes < 2 {
        return Err("--nodes must be at least 2".into());
    }
    if networks == 0 {
        return Err("--networks must be at least 1".into());
    }
    let config = RuntimeConfig {
        batch: !flags.has("no-batch"),
        poll: if spin_us > 0 { PollMode::BusyPoll { spin_us } } else { PollMode::Wait },
    };

    let bound = UdpTopology::bind_ephemeral(nodes, networks)
        .map_err(|e| format!("binding loopback sockets: {e}"))?;
    println!(
        "{style}, {nodes} nodes x {networks} networks over loopback UDP \
         (batch={}, poll={:?}); node 0 net 0 at {}",
        config.batch,
        config.poll,
        bound.topology().addr(NodeId::new(0), NetworkId::new(0))
    );

    let members: Vec<NodeId> = (0..nodes as u16).map(NodeId::new).collect();
    let handles: Vec<_> = bound
        .into_transports()
        .map_err(|e| format!("adopting sockets: {e}"))?
        .into_iter()
        .enumerate()
        .map(|(i, transport)| {
            let node = TotemNode::new_operational(
                NodeId::new(i as u16),
                &members,
                SrpConfig::default(),
                RrpConfig::new(style, networks),
                0,
            );
            let mode = if i == 0 { StartMode::Representative } else { StartMode::Member };
            spawn_node_with(node, transport, mode, config)
        })
        .collect();

    // Submit round-robin, then wait for every node to deliver all of
    // them in one agreed order. The wall clock lives inside
    // `collect_deliveries` (totem-cluster is a real-time crate; this
    // one must stay free of wall-clock reads for the sim lints).
    for i in 0..msgs {
        let mut payload = vec![0u8; size.max(16)];
        payload[..8].copy_from_slice(&i.to_be_bytes());
        handles[(i % nodes as u64) as usize].submit(Bytes::from(payload));
    }
    let (orders, elapsed) =
        collect_deliveries(&handles, msgs as usize, std::time::Duration::from_secs(60));
    for h in handles {
        h.shutdown();
    }
    for (i, o) in orders.iter().enumerate() {
        if (o.len() as u64) < msgs {
            return Err(format!("node {i} delivered {} of {msgs} before the deadline", o.len()));
        }
        if o != &orders[0] {
            return Err(format!("node {i} disagrees on the delivery order"));
        }
    }
    println!(
        "delivered {msgs} messages at every node in one agreed order: \
         {:.0} msgs/sec end-to-end ({:.1} ms total)",
        msgs as f64 / elapsed.as_secs_f64(),
        elapsed.as_secs_f64() * 1e3
    );
    Ok(())
}

/// `totem soak`.
///
/// Two regimes share the flag set. The legacy single-seed lossy run
/// (unchanged output) handles `--seconds/--loss/--seed`. Passing
/// `--corrupt PCT` or `--seeds N > 1` switches to the
/// self-stabilization soak engine in `totem_cluster::chaos::soak`:
/// per seed, a deterministic drip of chaos faults and state
/// corruptions under diurnal KV load, checked by the rolling-window
/// EVS oracle and the reconvergence oracle, with seeds fanned across
/// `--jobs` threads (report identical for any job count).
pub fn soak(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let seconds: u64 = flags.get("seconds", 10)?;
    let loss_pct: f64 = flags.get("loss", 1.0)?;
    let seed: u64 = flags.get("seed", 42)?;
    let corrupt: u64 = flags.get("corrupt", 0)?;
    let seeds: u64 = flags.get("seeds", 1)?;
    let style = flags.style()?;
    let backend = flags.backend()?;
    if corrupt > 100 {
        return Err("--corrupt is a percentage (0-100)".into());
    }
    if corrupt > 0 || seeds > 1 {
        if backend != BackendKind::Totem {
            return Err("the corruption soak engine drives the Totem backend only \
                 (state corruption is a Totem hook; ring-paxos has none)"
                .into());
        }
        let jobs: usize = flags.get("jobs", chaos_par::default_jobs())?;
        if jobs == 0 || seeds == 0 {
            return Err("--jobs and --seeds must be at least 1".into());
        }
        return soak_engine(style, seconds.max(30), loss_pct, seed, seeds, corrupt, jobs);
    }
    let nodes = 4usize;
    let networks = if style == ReplicationStyle::Single { 1 } else { 2 };

    let mut cfg = ClusterConfig::new(nodes, style).with_seed(seed).with_backend(backend);
    let mut sim = SimConfig::lan(nodes, networks);
    sim.networks = vec![NetworkConfig::ethernet_100mbit().with_rx_loss(loss_pct / 100.0); networks];
    sim.seed = seed;
    cfg.sim = sim;
    let mut cluster = SimCluster::new(cfg);

    println!(
        "{backend} / {style}, {nodes} nodes, {loss_pct}% per-receiver loss, \
         seed {seed}, {seconds}s simulated"
    );
    let mut t = SimTime::ZERO;
    let mut submitted = 0u64;
    let end = SimTime::from_secs(seconds);
    while t < end {
        cluster.run_until(t);
        let node = (submitted % nodes as u64) as usize;
        if cluster.try_submit(node, Bytes::from(format!("soak-{submitted:08}"))).is_ok() {
            submitted += 1;
        }
        t += SimDuration::from_millis(5);
    }
    // Drain.
    cluster.run_until(end + SimDuration::from_secs(10));

    // Verify safety: identical orders, no duplicates.
    let reference: Vec<&[u8]> = cluster.delivered(0).iter().map(|d| &d.data[..]).collect();
    for n in 1..nodes {
        let order: Vec<&[u8]> = cluster.delivered(n).iter().map(|d| &d.data[..]).collect();
        if order != reference {
            return Err(format!("node {n} disagrees on the delivery order"));
        }
    }
    let mut seen = std::collections::HashSet::new();
    for d in &reference {
        if !seen.insert(*d) {
            return Err("duplicate delivery detected".into());
        }
    }
    let retrans: u64 = (0..nodes).map(|n| cluster.srp_stats(n).retransmissions).sum();
    println!(
        "submitted {submitted}, delivered {} everywhere in one agreed order; {} retransmissions healed the loss",
        reference.len(),
        retrans
    );
    if reference.len() as u64 == submitted {
        println!("safety and liveness verified.");
        Ok(())
    } else {
        Err(format!("{} messages missing", submitted - reference.len() as u64))
    }
}

/// The corruption-enabled soak regime: fans the shared soak engine
/// over `seeds` consecutive seeds starting at `seed_base`.
fn soak_engine(
    style: ReplicationStyle,
    seconds: u64,
    loss_pct: f64,
    seed_base: u64,
    seeds: u64,
    corrupt_pct: u64,
    jobs: usize,
) -> Result<(), String> {
    let opts =
        chaos_soak::SoakOptions { nodes: 4, style, seconds, corrupt_pct, window: 256, loss_pct };
    println!(
        "{style}, 4 nodes, {seeds} seed(s) x {seconds}s simulated, {loss_pct}% loss, \
         corrupt {corrupt_pct}%, {jobs} job(s)"
    );
    println!(
        "{:>6} {:>7} {:>8} {:>10} {:>10}  result",
        "seed", "faults", "corrupt", "submitted", "delivered"
    );
    let reports =
        chaos_par::fan_out(jobs, seeds as usize, |i| chaos_soak::run(seed_base + i as u64, &opts));
    let mut failed = 0u64;
    for (i, report) in reports.iter().enumerate() {
        println!(
            "{:>6} {:>7} {:>8} {:>10} {:>10}  {}",
            seed_base + i as u64,
            report.faults,
            report.corruptions.iter().sum::<u64>(),
            report.submitted,
            report.delivered,
            if report.passed() { "ok" } else { "VIOLATION" }
        );
        for v in report.violations.iter().take(5) {
            println!("    violation: {v}");
        }
        if !report.passed() {
            failed += 1;
        }
    }
    if failed == 0 {
        println!("all seeds reconverged; rolling EVS oracle held for the whole horizon.");
        Ok(())
    } else {
        Err(format!("{failed} soak seed(s) failed"))
    }
}
