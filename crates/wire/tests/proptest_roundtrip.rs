//! Property-based tests: every structurally valid packet round-trips
//! through the codec, and the decoder never panics on arbitrary bytes.

use bytes::Bytes;
use proptest::prelude::*;
use totem_wire::{
    Chunk, ChunkKind, CommitToken, DataPacket, JoinMessage, MembEntry, NodeId, Packet, RingId, Seq,
    Token,
};

fn arb_node() -> impl Strategy<Value = NodeId> {
    (0u16..64).prop_map(NodeId::new)
}

fn arb_ring() -> impl Strategy<Value = RingId> {
    (arb_node(), 0u64..1_000_000).prop_map(|(rep, seq)| RingId::new(rep, seq))
}

fn arb_seq() -> impl Strategy<Value = Seq> {
    (0u64..u64::MAX / 2).prop_map(Seq::new)
}

fn arb_chunk_kind() -> impl Strategy<Value = ChunkKind> {
    prop_oneof![
        Just(ChunkKind::Complete),
        Just(ChunkKind::FragStart),
        Just(ChunkKind::FragCont),
        Just(ChunkKind::FragEnd),
        Just(ChunkKind::Recovery),
    ]
}

fn arb_chunk() -> impl Strategy<Value = Chunk> {
    (arb_chunk_kind(), any::<u32>(), any::<u32>(), proptest::collection::vec(any::<u8>(), 0..1424))
        .prop_map(|(kind, msg_id, orig_len, data)| Chunk {
            kind,
            msg_id,
            orig_len,
            data: Bytes::from(data),
        })
}

fn arb_data_packet() -> impl Strategy<Value = DataPacket> {
    (arb_ring(), arb_seq(), arb_node(), proptest::collection::vec(arb_chunk(), 0..6))
        .prop_map(|(ring, seq, sender, chunks)| DataPacket { ring, seq, sender, chunks })
}

fn arb_token() -> impl Strategy<Value = Token> {
    (
        arb_ring(),
        any::<u32>(),
        arb_seq(),
        arb_seq(),
        proptest::option::of(arb_node()),
        any::<u32>(),
        any::<u32>(),
        proptest::collection::vec(arb_seq(), 0..20),
    )
        .prop_map(|(ring, rotation, seq, aru, aru_id, fcc, backlog, rtr)| Token {
            ring,
            rotation: totem_wire::Rotation::new(rotation as u64),
            seq,
            aru,
            aru_id,
            fcc,
            backlog,
            rtr,
        })
}

fn arb_join() -> impl Strategy<Value = JoinMessage> {
    (
        arb_node(),
        0u64..1_000_000,
        proptest::collection::vec(arb_node(), 0..16),
        proptest::collection::vec(arb_node(), 0..16),
    )
        .prop_map(|(sender, ring_seq, proc_set, fail_set)| JoinMessage {
            sender,
            ring_seq,
            proc_set,
            fail_set,
        })
}

fn arb_memb_entry() -> impl Strategy<Value = MembEntry> {
    (arb_node(), arb_ring(), arb_seq(), arb_seq(), any::<bool>()).prop_map(
        |(node, old_ring, my_aru, high_delivered, received_flag)| MembEntry {
            node,
            old_ring,
            my_aru,
            high_delivered,
            received_flag,
        },
    )
}

fn arb_commit() -> impl Strategy<Value = CommitToken> {
    (arb_ring(), 0u8..2, proptest::collection::vec(arb_memb_entry(), 0..16))
        .prop_map(|(ring, round, entries)| CommitToken { ring, round, entries })
}

fn arb_packet() -> impl Strategy<Value = Packet> {
    prop_oneof![
        arb_data_packet().prop_map(Packet::Data),
        arb_token().prop_map(Packet::Token),
        arb_join().prop_map(Packet::Join),
        arb_commit().prop_map(Packet::Commit),
    ]
}

proptest! {
    #[test]
    fn packet_roundtrip(pkt in arb_packet()) {
        let bytes = pkt.encode();
        let decoded = Packet::decode(&bytes).expect("valid packet must decode");
        prop_assert_eq!(decoded, pkt);
    }

    #[test]
    fn decoder_never_panics_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Packet::decode(&bytes);
    }

    #[test]
    fn decoder_never_panics_on_mutated_valid_packets(
        pkt in arb_packet(),
        idx in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let mut bytes = pkt.encode();
        if !bytes.is_empty() {
            let i = idx.index(bytes.len());
            bytes[i] ^= 1 << bit;
            let _ = Packet::decode(&bytes);
        }
    }

    #[test]
    fn decoder_never_panics_on_truncated_packets(
        pkt in arb_packet(),
        cut in any::<prop::sample::Index>(),
    ) {
        let bytes = pkt.encode();
        let len = cut.index(bytes.len() + 1);
        let _ = Packet::decode(&bytes[..len]);
    }

    #[test]
    fn decoder_never_panics_on_heavily_corrupted_packets(
        pkt in arb_packet(),
        flips in proptest::collection::vec((any::<prop::sample::Index>(), 0u8..8), 1..16),
    ) {
        let mut bytes = pkt.encode();
        if !bytes.is_empty() {
            for (idx, bit) in flips {
                let i = idx.index(bytes.len());
                bytes[i] ^= 1 << bit;
            }
            let _ = Packet::decode(&bytes);
        }
    }

    #[test]
    fn decoder_never_panics_on_trailing_garbage(
        pkt in arb_packet(),
        garbage in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        let mut bytes = pkt.encode();
        bytes.extend_from_slice(&garbage);
        let _ = Packet::decode(&bytes);
    }

    // Whatever the decoder accepts — even from corrupted input — must
    // be a fixed point: re-encoding and re-decoding yields the same
    // packet. Without this, a mutated-but-accepted packet could mean
    // different things to the node that forwards it and the node that
    // receives the forward.
    #[test]
    fn accepted_decodes_are_reencode_stable(
        pkt in arb_packet(),
        idx in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let mut bytes = pkt.encode();
        if !bytes.is_empty() {
            let i = idx.index(bytes.len());
            bytes[i] ^= 1 << bit;
            if let Ok(decoded) = Packet::decode(&bytes) {
                let reencoded = decoded.encode();
                let redecoded = Packet::decode(&reencoded)
                    .expect("re-encoding an accepted packet must decode");
                prop_assert_eq!(redecoded, decoded);
            }
        }
    }

    #[test]
    fn control_packet_encoded_len_is_exact(t in arb_token(), j in arb_join(), c in arb_commit()) {
        prop_assert_eq!(Packet::Token(t.clone()).encode().len(), t.encoded_len() + 1);
        prop_assert_eq!(Packet::Join(j.clone()).encode().len(), j.encoded_len() + 1);
        prop_assert_eq!(Packet::Commit(c.clone()).encode().len(), c.encoded_len() + 1);
    }
}
