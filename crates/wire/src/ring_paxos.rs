//! Wire messages of the Ring Paxos backend.
//!
//! Ring Paxos (Marandi et al.) disseminates values by multicast and
//! collects acceptor votes along a ring. Its traffic rides the same
//! framing as the Totem stack — one [`crate::Packet`] per datagram —
//! behind a backend-tagged envelope: [`crate::Packet::RingPaxos`]
//! wraps one [`RingPaxosMsg`], so both backends share transports,
//! simulator, tracing and bandwidth accounting without the Totem
//! packets changing by a byte.
//!
//! The message set is the minimal pipelined protocol:
//!
//! * [`RingPaxosMsg::Propose`] — a client proposal, unicast to the
//!   coordinator;
//! * [`RingPaxosMsg::Accept`] — the coordinator opens an instance and
//!   multicasts the value (its own vote included);
//! * [`RingPaxosMsg::RingAck`] — an acceptor's vote, forwarded along
//!   the static ring;
//! * [`RingPaxosMsg::Decision`] — the last acceptor closes the
//!   instance and multicasts the decision (value carried, so learners
//!   that missed the `Accept` still learn);
//! * [`RingPaxosMsg::LearnReq`] — a learner asks the coordinator to
//!   re-announce an instance it is missing.

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use crate::codec::{CodecError, Reader, Writer};
use crate::ids::{Ballot, InstanceId, NodeId};

const SUB_PROPOSE: u8 = 0x01;
const SUB_ACCEPT: u8 = 0x02;
const SUB_RING_ACK: u8 = 0x03;
const SUB_DECISION: u8 = 0x04;
const SUB_LEARN_REQ: u8 = 0x05;

/// One value travelling through Ring Paxos, identified by its
/// proposer and the proposer's request counter.
///
/// The triple `(sender, inc, req)` names a client request uniquely
/// across proposer reboots: `inc` is the proposer's incarnation and
/// `req` its per-incarnation submission counter. The coordinator
/// serializes each proposer's requests in `req` order (per-sender
/// FIFO) and learners use the triple for duplicate suppression when
/// retries race with decisions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Proposal {
    /// The proposing node.
    pub sender: NodeId,
    /// The proposer's incarnation (reboot count) when it submitted.
    pub inc: u64,
    /// The proposer's per-incarnation request counter (1, 2, 3, ...).
    pub req: u64,
    /// The application payload.
    pub payload: Bytes,
}

impl Proposal {
    fn encode(&self, w: &mut Writer) {
        w.u16(self.sender.as_u16());
        w.u64(self.inc);
        w.u64(self.req);
        w.bytes(&self.payload);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let sender = NodeId::new(r.u16()?);
        let inc = r.u64()?;
        let req = r.u64()?;
        let payload = r.bytes()?;
        Ok(Proposal { sender, inc, req, payload })
    }

    /// Encoded size: sender + inc + req + length-prefixed payload.
    fn encoded_len(&self) -> usize {
        2 + 8 + 8 + 4 + self.payload.len()
    }
}

/// Any message of the Ring Paxos backend.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RingPaxosMsg {
    /// A client proposal on its way to the coordinator.
    Propose(Proposal),
    /// The coordinator opened instance `iid` for `value` and multicast
    /// it to the ensemble (phase 2a; the coordinator's own vote is
    /// implicit).
    Accept {
        /// The consensus instance.
        iid: InstanceId,
        /// The coordinator's ballot.
        ballot: Ballot,
        /// The value being decided.
        value: Proposal,
    },
    /// An acceptor's vote for instance `iid`, unicast to its ring
    /// successor once the acceptor has both the `Accept` and its
    /// predecessor's ack (phase 2b along the ring).
    RingAck {
        /// The consensus instance.
        iid: InstanceId,
        /// The ballot being voted.
        ballot: Ballot,
        /// The acceptor that forwarded the ack.
        from: NodeId,
    },
    /// The final acceptor observed a full ring of votes and multicast
    /// the decision. Carries the value (or a no-op filler) so learners
    /// that missed the `Accept` still learn the instance.
    Decision {
        /// The decided instance.
        iid: InstanceId,
        /// A no-op decision: fills an instance hole after a
        /// coordinator reboot so learners can advance. Learners skip
        /// delivery.
        nop: bool,
        /// The decided value (ignored when `nop`).
        value: Proposal,
    },
    /// A learner is missing `iid` and asks the coordinator to
    /// re-announce its decision.
    LearnReq {
        /// The asking learner.
        from: NodeId,
        /// The instance the learner needs.
        iid: InstanceId,
    },
}

impl RingPaxosMsg {
    /// The instance this message belongs to, if it names one
    /// (proposals are not yet bound to an instance).
    pub fn iid(&self) -> Option<InstanceId> {
        match self {
            RingPaxosMsg::Propose(_) => None,
            RingPaxosMsg::Accept { iid, .. }
            | RingPaxosMsg::RingAck { iid, .. }
            | RingPaxosMsg::Decision { iid, .. }
            | RingPaxosMsg::LearnReq { iid, .. } => Some(*iid),
        }
    }

    pub(crate) fn encode(&self, w: &mut Writer) {
        match self {
            RingPaxosMsg::Propose(p) => {
                w.u8(SUB_PROPOSE);
                p.encode(w);
            }
            RingPaxosMsg::Accept { iid, ballot, value } => {
                w.u8(SUB_ACCEPT);
                w.u64(iid.as_u64());
                w.u64(ballot.as_u64());
                value.encode(w);
            }
            RingPaxosMsg::RingAck { iid, ballot, from } => {
                w.u8(SUB_RING_ACK);
                w.u64(iid.as_u64());
                w.u64(ballot.as_u64());
                w.u16(from.as_u16());
            }
            RingPaxosMsg::Decision { iid, nop, value } => {
                w.u8(SUB_DECISION);
                w.u64(iid.as_u64());
                w.bool(*nop);
                value.encode(w);
            }
            RingPaxosMsg::LearnReq { from, iid } => {
                w.u8(SUB_LEARN_REQ);
                w.u16(from.as_u16());
                w.u64(iid.as_u64());
            }
        }
    }

    pub(crate) fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.u8()? {
            SUB_PROPOSE => Ok(RingPaxosMsg::Propose(Proposal::decode(r)?)),
            SUB_ACCEPT => {
                let iid = InstanceId::new(r.u64()?);
                let ballot = Ballot::new(r.u64()?);
                let value = Proposal::decode(r)?;
                Ok(RingPaxosMsg::Accept { iid, ballot, value })
            }
            SUB_RING_ACK => {
                let iid = InstanceId::new(r.u64()?);
                let ballot = Ballot::new(r.u64()?);
                let from = NodeId::new(r.u16()?);
                Ok(RingPaxosMsg::RingAck { iid, ballot, from })
            }
            SUB_DECISION => {
                let iid = InstanceId::new(r.u64()?);
                let nop = r.bool()?;
                let value = Proposal::decode(r)?;
                Ok(RingPaxosMsg::Decision { iid, nop, value })
            }
            SUB_LEARN_REQ => {
                let from = NodeId::new(r.u16()?);
                let iid = InstanceId::new(r.u64()?);
                Ok(RingPaxosMsg::LearnReq { from, iid })
            }
            tag => Err(CodecError::UnknownTag { what: "ring-paxos message", tag }),
        }
    }

    /// Encoded size excluding the packet tag byte (the simulator's
    /// bandwidth accounting, like the Totem control packets).
    pub fn encoded_len(&self) -> usize {
        1 + match self {
            RingPaxosMsg::Propose(p) => p.encoded_len(),
            RingPaxosMsg::Accept { value, .. } => 8 + 8 + value.encoded_len(),
            RingPaxosMsg::RingAck { .. } => 8 + 8 + 2,
            RingPaxosMsg::Decision { value, .. } => 8 + 1 + value.encoded_len(),
            RingPaxosMsg::LearnReq { .. } => 2 + 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Packet;

    fn proposal() -> Proposal {
        Proposal { sender: NodeId::new(3), inc: 1, req: 42, payload: Bytes::from_static(b"value") }
    }

    fn samples() -> Vec<RingPaxosMsg> {
        vec![
            RingPaxosMsg::Propose(proposal()),
            RingPaxosMsg::Accept {
                iid: InstanceId::new(7),
                ballot: Ballot::new(2),
                value: proposal(),
            },
            RingPaxosMsg::RingAck {
                iid: InstanceId::new(7),
                ballot: Ballot::new(2),
                from: NodeId::new(1),
            },
            RingPaxosMsg::Decision { iid: InstanceId::new(7), nop: false, value: proposal() },
            RingPaxosMsg::Decision {
                iid: InstanceId::new(8),
                nop: true,
                value: Proposal { sender: NodeId::new(0), inc: 0, req: 0, payload: Bytes::new() },
            },
            RingPaxosMsg::LearnReq { from: NodeId::new(2), iid: InstanceId::new(5) },
        ]
    }

    #[test]
    fn every_message_round_trips_through_a_packet() {
        for msg in samples() {
            let pkt = Packet::RingPaxos(msg);
            let bytes = pkt.encode();
            assert_eq!(Packet::decode(&bytes).unwrap(), pkt);
        }
    }

    #[test]
    fn encoded_len_matches_actual_encoding() {
        for msg in samples() {
            let bytes = Packet::RingPaxos(msg.clone()).encode();
            assert_eq!(bytes.len(), msg.encoded_len() + 1, "for {msg:?}");
        }
    }

    #[test]
    fn iid_accessor_names_the_instance() {
        assert_eq!(samples()[0].iid(), None);
        assert_eq!(samples()[1].iid(), Some(InstanceId::new(7)));
        assert_eq!(samples()[5].iid(), Some(InstanceId::new(5)));
    }

    #[test]
    fn decode_rejects_unknown_subtag() {
        // Packet tag 0x05 (ring-paxos) followed by a bogus subtag.
        assert!(matches!(
            Packet::decode(&[0x05, 0xEE]),
            Err(CodecError::UnknownTag { what: "ring-paxos message", tag: 0xEE })
        ));
    }

    #[test]
    fn ring_paxos_packets_are_not_token_class() {
        for msg in samples() {
            assert!(!Packet::RingPaxos(msg).is_token_class());
        }
    }
}
