//! The regular token of the Totem single-ring protocol.
//!
//! The token is unicast from each node to its successor on the
//! logical ring. Holding it grants the right to broadcast; its fields
//! carry the global sequence number, the all-received-up-to watermark
//! used for agreed/safe delivery, the retransmission request list,
//! and the flow control state (paper §2; Amir et al., TOCS '95).

use serde::{Deserialize, Serialize};

use crate::codec::{CodecError, Reader, Writer};
use crate::ids::{NodeId, RingId, Rotation, Seq};

/// Hard cap on how many retransmission requests ride on one token;
/// anything beyond this waits for the next rotation. Keeps the token
/// within a single Ethernet frame.
pub const MAX_RTR: usize = 100;

/// The regular (operational) token.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Token {
    /// The ring configuration this token circulates on.
    pub ring: RingId,
    /// Rotation counter, incremented by the ring leader every time the
    /// token completes a rotation. The paper (§2, footnote 1) adds it
    /// so an idle ring's retransmitted token is not mistaken for a
    /// fresh one.
    pub rotation: Rotation,
    /// Sequence number of the last packet broadcast on the ring.
    pub seq: Seq,
    /// All-received-up-to: the highest sequence number such that every
    /// node on the ring is known to have received all packets up to it.
    pub aru: Seq,
    /// The node that last lowered `aru` (used to detect when the
    /// lowering node has caught up; `None` when `aru == seq`).
    pub aru_id: Option<NodeId>,
    /// Flow control count: packets broadcast by all nodes during the
    /// last token rotation.
    pub fcc: u32,
    /// Sum of the send-queue backlogs reported by nodes this rotation.
    pub backlog: u32,
    /// Retransmission request list: sequence numbers some node is
    /// missing. A token holder that has a requested packet rebroadcasts
    /// it and removes the request.
    pub rtr: Vec<Seq>,
}

impl Token {
    /// The token a freshly formed ring starts with: sequence zero,
    /// nothing outstanding.
    pub fn initial(ring: RingId) -> Self {
        Token {
            ring,
            rotation: Rotation::ZERO,
            seq: Seq::ZERO,
            aru: Seq::ZERO,
            aru_id: None,
            fcc: 0,
            backlog: 0,
            rtr: Vec::new(),
        }
    }

    /// A key identifying this token instance for duplicate detection:
    /// a retransmitted token has the same `(seq, rotation)` pair, a
    /// fresh one never does (the leader bumps `rotation` each full
    /// rotation even when `seq` is unchanged — paper §2, footnote 1).
    pub fn instance_key(&self) -> (u64, u64) {
        (self.seq.as_u64(), self.rotation.as_u64())
    }

    pub(crate) fn encode(&self, w: &mut Writer) {
        w.u16(self.ring.rep.as_u16());
        w.u64(self.ring.seq);
        w.u64(self.rotation.as_u64());
        w.u64(self.seq.as_u64());
        w.u64(self.aru.as_u64());
        match self.aru_id {
            Some(id) => {
                w.bool(true);
                w.u16(id.as_u16());
            }
            None => w.bool(false),
        }
        w.u32(self.fcc);
        w.u32(self.backlog);
        w.u32(self.rtr.len() as u32);
        for s in &self.rtr {
            w.u64(s.as_u64());
        }
    }

    pub(crate) fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let ring = RingId::new(NodeId::new(r.u16()?), r.u64()?);
        let rotation = Rotation::new(r.u64()?);
        let seq = Seq::new(r.u64()?);
        let aru = Seq::new(r.u64()?);
        let aru_id = if r.bool()? { Some(NodeId::new(r.u16()?)) } else { None };
        let fcc = r.u32()?;
        let backlog = r.u32()?;
        let n = r.seq_len("rtr list")?;
        if n > MAX_RTR {
            return Err(CodecError::BadLength { what: "rtr list", len: n });
        }
        let mut rtr = Vec::with_capacity(n);
        for _ in 0..n {
            rtr.push(Seq::new(r.u64()?));
        }
        Ok(Token { ring, rotation, seq, aru, aru_id, fcc, backlog, rtr })
    }

    /// Encoded size in bytes, used for simulator bandwidth accounting.
    pub fn encoded_len(&self) -> usize {
        // ring(10) + rotation(8) + seq(8) + aru(8) + aru_id(1 or 3)
        // + fcc(4) + backlog(4) + rtr count(4) + 8/entry
        2 + 8
            + 8
            + 8
            + 8
            + if self.aru_id.is_some() { 3 } else { 1 }
            + 4
            + 4
            + 4
            + 8 * self.rtr.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Packet;

    fn sample() -> Token {
        Token {
            ring: RingId::new(NodeId::new(1), 12),
            rotation: Rotation::new(99),
            seq: Seq::new(1000),
            aru: Seq::new(990),
            aru_id: Some(NodeId::new(3)),
            fcc: 40,
            backlog: 7,
            rtr: vec![Seq::new(991), Seq::new(995)],
        }
    }

    #[test]
    fn roundtrip() {
        let pkt = Packet::Token(sample());
        assert_eq!(Packet::decode(&pkt.encode()).unwrap(), pkt);
    }

    #[test]
    fn roundtrip_without_aru_id() {
        let mut t = sample();
        t.aru_id = None;
        t.rtr.clear();
        let pkt = Packet::Token(t);
        assert_eq!(Packet::decode(&pkt.encode()).unwrap(), pkt);
    }

    #[test]
    fn encoded_len_matches_actual_encoding() {
        for t in [sample(), Token::initial(RingId::new(NodeId::new(0), 1))] {
            let bytes = Packet::Token(t.clone()).encode();
            // +1 for the packet tag byte.
            assert_eq!(bytes.len(), t.encoded_len() + 1);
        }
    }

    #[test]
    fn initial_token_is_quiescent() {
        let t = Token::initial(RingId::new(NodeId::new(2), 5));
        assert_eq!(t.seq, Seq::ZERO);
        assert_eq!(t.aru, Seq::ZERO);
        assert!(t.rtr.is_empty());
        assert_eq!(t.instance_key(), (0, 0));
    }

    #[test]
    fn instance_key_distinguishes_rotations_on_idle_ring() {
        let mut a = Token::initial(RingId::new(NodeId::new(0), 1));
        let b = a.clone();
        a.rotation = a.rotation.next(); // leader bumped the rotation counter
        assert_ne!(a.instance_key(), b.instance_key());
        assert_eq!(a.seq, b.seq);
    }

    #[test]
    fn oversized_rtr_list_is_rejected() {
        let mut t = sample();
        t.rtr = (0..200).map(Seq::new).collect();
        let bytes = Packet::Token(t).encode();
        assert!(matches!(Packet::decode(&bytes), Err(CodecError::BadLength { .. })));
    }
}
