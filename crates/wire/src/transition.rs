//! Structured state-machine transition records.
//!
//! The conformance analyzer (`cargo xtask conformance`) checks the
//! protocol implementation against the machine-readable spec in
//! `spec/protocol.toml` twice over:
//!
//! 1. **statically** — every [`Transition`] recorded by the protocol
//!    crates is written as four string literals at the transition
//!    site, so the analyzer can lex the source and diff the table of
//!    implemented transitions against the spec;
//! 2. **dynamically** — the deterministic sim scenarios collect the
//!    records emitted at run time and fail if any spec transition is
//!    never exercised.
//!
//! The type lives in `totem-wire` because it is shared by `totem-srp`
//! (the membership machine), `totem-rrp` (the per-network fault
//! machines) and `totem-sim` (the trace layer), none of which depend
//! on each other.

use core::fmt;

/// One observed edge of a protocol state machine.
///
/// All four fields are `&'static str` literals naming entries of
/// `spec/protocol.toml`; the conformance analyzer matches them
/// textually, so call sites must spell them exactly as the spec does.
///
/// # Example
///
/// ```
/// # use totem_wire::Transition;
/// let t = Transition {
///     machine: "srp-membership",
///     from: "Operational",
///     event: "TokenLoss",
///     to: "Gather",
/// };
/// assert_eq!(t.to_string(), "srp-membership: Operational --TokenLoss--> Gather");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Transition {
    /// Which state machine the edge belongs to (a `[machine.*]`
    /// section name in the spec).
    pub machine: &'static str,
    /// State the machine left.
    pub from: &'static str,
    /// Event that caused the transition.
    pub event: &'static str,
    /// State the machine entered.
    pub to: &'static str,
}

impl fmt::Display for Transition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} --{}--> {}", self.machine, self.from, self.event, self.to)
    }
}

/// Upper bound on buffered transition records in a protocol state
/// machine whose host never drains them.
///
/// The SRP node and RRP layer push into a local `Vec<Transition>`
/// that the cluster host drains after every call; hosts that do not
/// care (hand-driven doctests, benches) would otherwise accumulate
/// records forever, so the recording helpers drop new records beyond
/// this bound instead of growing without limit.
pub const TRANSITION_BUFFER_CAP: usize = 4096;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_spec_like() {
        let t = Transition {
            machine: "rrp-passive-token",
            from: "Idle",
            event: "TokenBehindGap",
            to: "Buffered",
        };
        assert_eq!(t.to_string(), "rrp-passive-token: Idle --TokenBehindGap--> Buffered");
    }

    #[test]
    fn transitions_are_comparable_and_hashable() {
        use std::collections::BTreeSet;
        let a = Transition { machine: "m", from: "A", event: "E", to: "B" };
        let b = Transition { machine: "m", from: "A", event: "E", to: "B" };
        let c = Transition { machine: "m", from: "B", event: "E", to: "A" };
        let set: BTreeSet<_> = [a, b, c].into_iter().collect();
        assert_eq!(set.len(), 2);
    }
}
