//! The Ethernet framing model from the paper (Section 8).
//!
//! > "The maximum frame size is 1518 bytes, of which 94 bytes are used
//! > for the Ethernet header and trailer, IPv4 header, UDP header and
//! > the Totem header. This results in a maximum payload of 1424 bytes
//! > for each Ethernet frame. If several messages can fit into that
//! > space, they are placed into a single packet by the message
//! > packing algorithm. If a message is longer than 1424 bytes, Totem
//! > splits it up into multiple packets."
//!
//! These constants drive two things: the message packer in
//! `totem-srp` (which produces the characteristic throughput peaks at
//! 700 and 1400 bytes) and the simulator's bandwidth accounting in
//! `totem-sim` (which charges [`wire_frame_len`] bytes of medium time
//! per packet).

/// Maximum Ethernet frame size in bytes (paper §8).
pub const ETHERNET_MTU: usize = 1518;

/// Bytes of a maximum frame consumed by the Ethernet header/trailer,
/// IPv4 header, UDP header and the Totem per-packet header (paper §8).
pub const HEADER_OVERHEAD: usize = 94;

/// Maximum Totem payload per Ethernet frame: [`ETHERNET_MTU`] minus
/// [`HEADER_OVERHEAD`].
pub const MAX_PAYLOAD: usize = ETHERNET_MTU - HEADER_OVERHEAD;

/// Per-chunk sub-header inside a packed data packet: chunk kind,
/// flags, length, and the sender-local message id used to reassemble
/// fragments. Chosen so that two 700-byte application messages pack
/// exactly into one 1424-byte frame (2 × (700 + 12) = 1424), which is
/// what gives the paper's Figures 6–9 their peak at 700 bytes.
pub const CHUNK_HEADER_LEN: usize = 12;

/// Number of whole chunks of application-payload size `msg_len` that
/// fit into a single frame (zero means the message must be
/// fragmented).
///
/// # Example
///
/// ```
/// # use totem_wire::frame::chunk_capacity;
/// assert_eq!(chunk_capacity(700), 2);   // the paper's first peak
/// assert_eq!(chunk_capacity(1400), 1);  // the paper's second peak
/// assert_eq!(chunk_capacity(1413), 0);  // must fragment
/// assert_eq!(chunk_capacity(100), 12);
/// ```
pub fn chunk_capacity(msg_len: usize) -> usize {
    MAX_PAYLOAD / (msg_len + CHUNK_HEADER_LEN)
}

/// Bytes a packet with `payload_len` bytes of Totem payload occupies
/// on the wire, including all header overhead. Used by the simulator
/// to charge medium time.
///
/// # Example
///
/// ```
/// # use totem_wire::frame::{wire_frame_len, MAX_PAYLOAD, ETHERNET_MTU};
/// assert_eq!(wire_frame_len(MAX_PAYLOAD), ETHERNET_MTU);
/// assert_eq!(wire_frame_len(0), 94);
/// ```
pub fn wire_frame_len(payload_len: usize) -> usize {
    payload_len + HEADER_OVERHEAD
}

/// Largest application message that still fits unfragmented in one
/// frame alongside its chunk header.
pub const MAX_UNFRAGMENTED_MSG: usize = MAX_PAYLOAD - CHUNK_HEADER_LEN;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_match_the_paper() {
        assert_eq!(ETHERNET_MTU, 1518);
        assert_eq!(HEADER_OVERHEAD, 94);
        assert_eq!(MAX_PAYLOAD, 1424);
    }

    #[test]
    fn seven_hundred_byte_messages_pack_two_per_frame() {
        assert_eq!(chunk_capacity(700), 2);
        // ...and they fill the frame exactly.
        assert_eq!(2 * (700 + CHUNK_HEADER_LEN), MAX_PAYLOAD);
    }

    #[test]
    fn fourteen_hundred_byte_messages_nearly_fill_a_frame() {
        assert_eq!(chunk_capacity(1400), 1);
        assert_eq!(1400 + CHUNK_HEADER_LEN, MAX_PAYLOAD - 12);
    }

    #[test]
    fn capacity_is_monotone_nonincreasing_in_message_size() {
        let mut prev = usize::MAX;
        for len in 1..=2000 {
            let cap = chunk_capacity(len);
            assert!(cap <= prev, "capacity must not grow with message size");
            prev = cap;
        }
    }

    #[test]
    fn max_unfragmented_msg_fits_and_next_does_not() {
        assert_eq!(chunk_capacity(MAX_UNFRAGMENTED_MSG), 1);
        assert_eq!(chunk_capacity(MAX_UNFRAGMENTED_MSG + 1), 0);
    }

    #[test]
    fn wire_frame_len_is_affine_in_payload() {
        assert_eq!(wire_frame_len(100) - wire_frame_len(0), 100);
    }
}
