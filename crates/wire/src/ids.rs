//! Strongly typed identifiers used throughout the Totem stack.
//!
//! Newtypes keep node indices, network indices, ring identities and
//! sequence numbers from being confused with one another (and with
//! plain integers) at compile time.

use core::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a processor (a node on the ring).
///
/// Totem orders nodes by their identifier when electing the ring
/// representative, so `NodeId` is totally ordered.
///
/// # Example
///
/// ```
/// # use totem_wire::NodeId;
/// let a = NodeId::new(0);
/// let b = NodeId::new(3);
/// assert!(a < b);
/// assert_eq!(b.as_u16(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(u16);

impl NodeId {
    /// Creates a node identifier from its raw index.
    pub const fn new(raw: u16) -> Self {
        NodeId(raw)
    }

    /// Returns the raw index.
    pub const fn as_u16(self) -> u16 {
        self.0
    }

    /// Returns the raw index widened to `usize`, convenient for
    /// indexing per-node tables.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u16> for NodeId {
    fn from(raw: u16) -> Self {
        NodeId(raw)
    }
}

/// Identifier of one of the `N` redundant networks.
///
/// The paper names the networks `n'`, `n''`, ...; here they are
/// `NetworkId(0)`, `NetworkId(1)`, ...
///
/// # Example
///
/// ```
/// # use totem_wire::NetworkId;
/// let primary = NetworkId::new(0);
/// assert_eq!(primary.index(), 0);
/// assert_eq!(primary.to_string(), "net0");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NetworkId(u8);

impl NetworkId {
    /// Creates a network identifier from its raw index.
    pub const fn new(raw: u8) -> Self {
        NetworkId(raw)
    }

    /// Returns the raw index.
    pub const fn as_u8(self) -> u8 {
        self.0
    }

    /// Returns the raw index widened to `usize`, convenient for
    /// indexing per-network tables.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NetworkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "net{}", self.0)
    }
}

impl From<u8> for NetworkId {
    fn from(raw: u8) -> Self {
        NetworkId(raw)
    }
}

/// Identity of a ring configuration.
///
/// A ring is identified by its representative (the lowest
/// [`NodeId`] in the membership) and a monotonically increasing ring
/// sequence number chosen by the membership protocol. Every data
/// packet and token carries the `RingId` it belongs to so that stale
/// traffic from a previous configuration can be discarded.
///
/// # Example
///
/// ```
/// # use totem_wire::{NodeId, RingId};
/// let old = RingId::new(NodeId::new(0), 4);
/// let new = old.successor(NodeId::new(1));
/// assert!(new.seq > old.seq);
/// assert_eq!(new.rep, NodeId::new(1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RingId {
    /// The ring representative: the smallest node identifier in the
    /// membership.
    pub rep: NodeId,
    /// The ring sequence number. Totem increments this by a step
    /// large enough that every node's next proposal is fresh; we use
    /// a simple monotone counter managed by the membership protocol.
    pub seq: u64,
}

impl RingId {
    /// Creates a ring identity.
    pub const fn new(rep: NodeId, seq: u64) -> Self {
        RingId { rep, seq }
    }

    /// Returns the identity of a successor ring led by `rep`, with a
    /// strictly larger ring sequence number.
    pub fn successor(self, rep: NodeId) -> Self {
        RingId { rep, seq: self.seq + 1 }
    }
}

impl fmt::Display for RingId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ring({}, {})", self.rep, self.seq)
    }
}

/// A global message (packet) sequence number on a ring.
///
/// The token carries the sequence number of the last packet broadcast
/// on the ring; each node increments it for every packet it sends
/// while holding the token, which imposes the total order.
///
/// `Seq` is 64 bits wide, so wrap-around is not a practical concern;
/// arithmetic still goes through named methods to keep call sites
/// auditable.
///
/// # Example
///
/// ```
/// # use totem_wire::Seq;
/// let s = Seq::ZERO.next();
/// assert_eq!(s, Seq::new(1));
/// assert_eq!(s.gap_from(Seq::ZERO), 1);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Seq(u64);

impl Seq {
    /// The zero sequence number: "no packet broadcast yet".
    pub const ZERO: Seq = Seq(0);

    /// Creates a sequence number from its raw value.
    pub const fn new(raw: u64) -> Self {
        Seq(raw)
    }

    /// Returns the raw value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the next sequence number, saturating at `u64::MAX`
    /// (unreachable in any realistic execution: at one packet per
    /// nanosecond the counter lasts five centuries).
    pub fn next(self) -> Seq {
        Seq(self.0.saturating_add(1))
    }

    /// Returns how many sequence numbers lie strictly after `earlier`
    /// up to and including `self` (zero if `self <= earlier`).
    pub fn gap_from(self, earlier: Seq) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// Iterates over all sequence numbers in `(self, until]`, i.e. the
    /// numbers a node is missing when its high watermark is `self`
    /// and the ring has reached `until`.
    pub fn missing_until(self, until: Seq) -> impl Iterator<Item = Seq> {
        (self.0 + 1..=until.0).map(Seq)
    }
}

impl fmt::Display for Seq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

impl From<u64> for Seq {
    fn from(raw: u64) -> Self {
        Seq(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_orders_by_raw_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert_eq!(NodeId::new(5).index(), 5);
        assert_eq!(NodeId::from(7).as_u16(), 7);
    }

    #[test]
    fn network_id_display_and_index() {
        assert_eq!(NetworkId::new(2).to_string(), "net2");
        assert_eq!(NetworkId::from(3).index(), 3);
    }

    #[test]
    fn ring_successor_increments_seq_and_replaces_rep() {
        let r = RingId::new(NodeId::new(4), 10);
        let s = r.successor(NodeId::new(2));
        assert_eq!(s.seq, 11);
        assert_eq!(s.rep, NodeId::new(2));
        assert!(s > r || s.rep < r.rep); // ordering is lexicographic on (rep, seq)
    }

    #[test]
    fn seq_next_and_gap() {
        let s = Seq::new(10);
        assert_eq!(s.next(), Seq::new(11));
        assert_eq!(Seq::new(15).gap_from(s), 5);
        assert_eq!(s.gap_from(Seq::new(15)), 0);
    }

    #[test]
    fn seq_missing_until_enumerates_open_closed_interval() {
        let missing: Vec<Seq> = Seq::new(3).missing_until(Seq::new(6)).collect();
        assert_eq!(missing, vec![Seq::new(4), Seq::new(5), Seq::new(6)]);
        assert_eq!(Seq::new(6).missing_until(Seq::new(6)).count(), 0);
    }

    #[test]
    fn seq_zero_is_default() {
        assert_eq!(Seq::default(), Seq::ZERO);
    }

    #[test]
    fn ring_id_display_mentions_rep_and_seq() {
        let r = RingId::new(NodeId::new(1), 9);
        assert_eq!(r.to_string(), "ring(n1, 9)");
    }
}
