//! Strongly typed identifiers used throughout the Totem stack.
//!
//! Newtypes keep node indices, network indices, ring identities and
//! sequence numbers from being confused with one another (and with
//! plain integers) at compile time.

use core::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a processor (a node on the ring).
///
/// Totem orders nodes by their identifier when electing the ring
/// representative, so `NodeId` is totally ordered.
///
/// # Example
///
/// ```
/// # use totem_wire::NodeId;
/// let a = NodeId::new(0);
/// let b = NodeId::new(3);
/// assert!(a < b);
/// assert_eq!(b.as_u16(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(u16);

impl NodeId {
    /// Creates a node identifier from its raw index.
    pub const fn new(raw: u16) -> Self {
        NodeId(raw)
    }

    /// Returns the raw index.
    pub const fn as_u16(self) -> u16 {
        self.0
    }

    /// Returns the raw index widened to `usize`, convenient for
    /// indexing per-node tables.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u16> for NodeId {
    fn from(raw: u16) -> Self {
        NodeId(raw)
    }
}

/// Identifier of one of the `N` redundant networks.
///
/// The paper names the networks `n'`, `n''`, ...; here they are
/// `NetworkId(0)`, `NetworkId(1)`, ...
///
/// # Example
///
/// ```
/// # use totem_wire::NetworkId;
/// let primary = NetworkId::new(0);
/// assert_eq!(primary.index(), 0);
/// assert_eq!(primary.to_string(), "net0");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NetworkId(u8);

impl NetworkId {
    /// Creates a network identifier from its raw index.
    pub const fn new(raw: u8) -> Self {
        NetworkId(raw)
    }

    /// Returns the raw index.
    pub const fn as_u8(self) -> u8 {
        self.0
    }

    /// Returns the raw index widened to `usize`, convenient for
    /// indexing per-network tables.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NetworkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "net{}", self.0)
    }
}

impl From<u8> for NetworkId {
    fn from(raw: u8) -> Self {
        NetworkId(raw)
    }
}

/// Identity of a ring configuration.
///
/// A ring is identified by its representative (the lowest
/// [`NodeId`] in the membership) and a monotonically increasing ring
/// sequence number chosen by the membership protocol. Every data
/// packet and token carries the `RingId` it belongs to so that stale
/// traffic from a previous configuration can be discarded.
///
/// # Example
///
/// ```
/// # use totem_wire::{NodeId, RingId};
/// let old = RingId::new(NodeId::new(0), 4);
/// let new = old.successor(NodeId::new(1));
/// assert!(new.seq > old.seq);
/// assert_eq!(new.rep, NodeId::new(1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RingId {
    /// The ring representative: the smallest node identifier in the
    /// membership.
    pub rep: NodeId,
    /// The ring sequence number. Totem increments this by a step
    /// large enough that every node's next proposal is fresh; we use
    /// a simple monotone counter managed by the membership protocol.
    pub seq: u64,
}

impl RingId {
    /// Creates a ring identity.
    pub const fn new(rep: NodeId, seq: u64) -> Self {
        RingId { rep, seq }
    }

    /// Returns the identity of a successor ring led by `rep`, with a
    /// strictly larger ring sequence number.
    pub fn successor(self, rep: NodeId) -> Self {
        RingId { rep, seq: self.seq + 1 }
    }
}

impl fmt::Display for RingId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ring({}, {})", self.rep, self.seq)
    }
}

/// A global message (packet) sequence number on a ring.
///
/// The token carries the sequence number of the last packet broadcast
/// on the ring; each node increments it for every packet it sends
/// while holding the token, which imposes the total order.
///
/// Totem's global sequence numbers wrap: the paper treats them as a
/// circular space, and so does this type. [`Seq::next`] wraps past
/// `u64::MAX` (skipping the reserved [`Seq::ZERO`], which means "no
/// packet broadcast yet"), and order-sensitive protocol code must
/// compare with the RFC 1982-style serial-number methods
/// ([`Seq::follows`], [`Seq::serial_max`], ...). `Seq` deliberately
/// implements **no** `Ord`/`PartialOrd`: serial order is not a total
/// order, so a raw `<` across the wrap boundary is a protocol bug,
/// and removing the derive turns that bug into a compile error. The
/// few container-key sites that need a stable (raw-value, non-serial)
/// total order go through the explicit [`Seq::ord_key`] adapter.
///
/// # Example
///
/// ```
/// # use totem_wire::Seq;
/// let s = Seq::ZERO.next();
/// assert_eq!(s, Seq::new(1));
/// assert_eq!(s.gap_from(Seq::ZERO), 1);
/// // Wrap boundary: MAX + 1 skips the reserved zero...
/// let wrapped = Seq::new(u64::MAX).next();
/// assert_eq!(wrapped, Seq::new(1));
/// // ...and serial comparison still orders it after MAX.
/// assert!(wrapped.follows(Seq::new(u64::MAX)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Seq(u64);

impl Seq {
    /// The zero sequence number: "no packet broadcast yet".
    pub const ZERO: Seq = Seq(0);

    /// Half the sequence space; the serial-number comparison horizon
    /// (RFC 1982). Two live sequence numbers on one ring are always
    /// far less than this far apart.
    const HALF: u64 = 1 << 63;

    /// Creates a sequence number from its raw value.
    pub const fn new(raw: u64) -> Self {
        Seq(raw)
    }

    /// Returns the raw value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Explicit total-order adapter for container keys.
    ///
    /// The returned [`SerialOrdKey`] orders by **raw value**, not
    /// serial order — correct for deduplication sets, map keys and
    /// stable display sorting, and deliberately *not* usable for
    /// "which sequence number is later" protocol decisions (use
    /// [`Seq::follows`] / [`Seq::serial_max`] for those).
    pub const fn ord_key(self) -> SerialOrdKey {
        SerialOrdKey(self.0)
    }

    /// Returns the next sequence number, wrapping past `u64::MAX` and
    /// skipping the reserved [`Seq::ZERO`] sentinel, as the paper's
    /// circular global sequence space requires.
    pub fn next(self) -> Seq {
        match self.0.wrapping_add(1) {
            0 => Seq(1),
            n => Seq(n),
        }
    }

    /// Serial-number (RFC 1982) "strictly after": true when `self` is
    /// within half the sequence space ahead of `other`, including
    /// across the wrap boundary.
    pub fn follows(self, other: Seq) -> bool {
        self.0 != other.0 && self.0.wrapping_sub(other.0) < Self::HALF
    }

    /// Serial-number "at or after": [`Seq::follows`] or equal.
    pub fn at_or_after(self, other: Seq) -> bool {
        self.0 == other.0 || self.follows(other)
    }

    /// Serial-number "strictly before": the dual of [`Seq::follows`].
    pub fn precedes(self, other: Seq) -> bool {
        other.follows(self)
    }

    /// The serially later of `self` and `other`.
    pub fn serial_max(self, other: Seq) -> Seq {
        if self.follows(other) {
            self
        } else {
            other
        }
    }

    /// The serially earlier of `self` and `other`.
    pub fn serial_min(self, other: Seq) -> Seq {
        if self.follows(other) {
            other
        } else {
            self
        }
    }

    /// Returns how many sequence numbers lie strictly after `earlier`
    /// up to and including `self` (zero if `self` is at or serially
    /// before `earlier`), wrapping across the top of the space.
    pub fn gap_from(self, earlier: Seq) -> u64 {
        if self.follows(earlier) {
            // A wrap step skips the reserved zero, so a distance that
            // crosses it counts one fewer actual sequence number.
            let raw = self.0.wrapping_sub(earlier.0);
            if self.0 < earlier.0 {
                raw - 1
            } else {
                raw
            }
        } else {
            0
        }
    }

    /// Iterates over all sequence numbers in `(self, until]`, i.e. the
    /// numbers a node is missing when its high watermark is `self`
    /// and the ring has reached `until`. Steps with [`Seq::next`], so
    /// the range is correct across the wrap boundary.
    pub fn missing_until(self, until: Seq) -> impl Iterator<Item = Seq> {
        let mut cur = self;
        // `ZERO` is the reserved "nothing broadcast yet" sentinel, so
        // nothing can be missing up to it (and it is unreachable by
        // `next`, which would otherwise make the walk unbounded).
        let mut done = until == Seq::ZERO || !until.follows(self);
        core::iter::from_fn(move || {
            if done {
                return None;
            }
            cur = cur.next();
            if cur == until {
                done = true;
            }
            Some(cur)
        })
    }
}

impl fmt::Display for Seq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

impl From<u64> for Seq {
    fn from(raw: u64) -> Self {
        Seq(raw)
    }
}

/// Raw-value total-order key for serially wrapping counters.
///
/// [`Seq`] and [`Rotation`] implement no `Ord` because serial (RFC
/// 1982) order is not a total order. Containers and duplicate-
/// detection tuples still need *some* stable total order; this adapter
/// provides it explicitly, so every site that opts into raw-value
/// order is grep-able and auditable. Obtain one via [`Seq::ord_key`]
/// or [`Rotation::ord_key`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SerialOrdKey(u64);

impl SerialOrdKey {
    /// The raw counter value this key was built from.
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

/// The token's rotation counter (paper §2, footnote 1).
///
/// Incremented by the ring leader every time the token completes a
/// rotation, so an idle ring's retransmitted token (same [`Seq`]) is
/// never mistaken for a fresh one. Like [`Seq`] it lives in a circular
/// space on a long-running ring, so it carries the same RFC 1982
/// serial-number comparison methods and — deliberately — no
/// `Ord`/`PartialOrd`. Unlike [`Seq`] there is no reserved zero:
/// `Rotation::ZERO` is the valid first rotation of a fresh ring, and
/// [`Rotation::next`] wraps straight through it.
///
/// # Example
///
/// ```
/// # use totem_wire::Rotation;
/// let r = Rotation::ZERO.next();
/// assert_eq!(r, Rotation::new(1));
/// // Serial comparison is wrap-safe.
/// assert!(Rotation::new(2).follows(Rotation::new(u64::MAX)));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Rotation(u64);

impl fmt::Debug for Rotation {
    /// Transparent: prints the raw counter, exactly as the `u64` field
    /// it replaced did. Recorded differential fixtures digest `Debug`
    /// output of token-bearing events, so the representation is pinned.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Rotation {
    /// The first rotation of a freshly formed ring.
    pub const ZERO: Rotation = Rotation(0);

    /// Half the rotation space; the serial comparison horizon.
    const HALF: u64 = 1 << 63;

    /// Creates a rotation counter from its raw value.
    pub const fn new(raw: u64) -> Self {
        Rotation(raw)
    }

    /// Returns the raw value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The next rotation, wrapping past `u64::MAX` (no reserved
    /// values: zero is a legal rotation).
    pub const fn next(self) -> Rotation {
        Rotation(self.0.wrapping_add(1))
    }

    /// Serial-number (RFC 1982) "strictly after", wrap-safe.
    pub fn follows(self, other: Rotation) -> bool {
        self.0 != other.0 && self.0.wrapping_sub(other.0) < Self::HALF
    }

    /// Serial-number "at or after": [`Rotation::follows`] or equal.
    pub fn at_or_after(self, other: Rotation) -> bool {
        self.0 == other.0 || self.follows(other)
    }

    /// Explicit total-order adapter for container keys; see
    /// [`Seq::ord_key`] for the contract.
    pub const fn ord_key(self) -> SerialOrdKey {
        SerialOrdKey(self.0)
    }
}

impl fmt::Display for Rotation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rot{}", self.0)
    }
}

impl From<u64> for Rotation {
    fn from(raw: u64) -> Self {
        Rotation(raw)
    }
}

/// A Ring Paxos consensus-instance number.
///
/// The coordinator assigns one instance per proposal and learners
/// deliver strictly in instance order, so this is the Ring Paxos
/// analogue of [`Seq`]: a serially wrapping ordering counter with a
/// reserved [`InstanceId::ZERO`] sentinel meaning "no instance opened
/// yet". Like [`Seq`] it implements **no** `Ord`/`PartialOrd` — a raw
/// `<` across the wrap boundary is a protocol bug — and protocol code
/// compares with the RFC 1982 serial methods. Container keys go
/// through the explicit [`InstanceId::ord_key`] adapter.
///
/// # Example
///
/// ```
/// # use totem_wire::InstanceId;
/// let first = InstanceId::ZERO.next();
/// assert_eq!(first, InstanceId::new(1));
/// // Wrap skips the reserved zero and serial order survives it.
/// let wrapped = InstanceId::new(u64::MAX).next();
/// assert_eq!(wrapped, InstanceId::new(1));
/// assert!(wrapped.follows(InstanceId::new(u64::MAX)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct InstanceId(u64);

impl InstanceId {
    /// The reserved sentinel: "no instance opened yet".
    pub const ZERO: InstanceId = InstanceId(0);

    /// Half the instance space; the serial comparison horizon.
    const HALF: u64 = 1 << 63;

    /// Creates an instance number from its raw value.
    pub const fn new(raw: u64) -> Self {
        InstanceId(raw)
    }

    /// Returns the raw value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The next instance, wrapping past `u64::MAX` and skipping the
    /// reserved [`InstanceId::ZERO`] sentinel.
    pub fn next(self) -> InstanceId {
        match self.0.wrapping_add(1) {
            0 => InstanceId(1),
            n => InstanceId(n),
        }
    }

    /// Serial-number (RFC 1982) "strictly after", wrap-safe.
    pub fn follows(self, other: InstanceId) -> bool {
        self.0 != other.0 && self.0.wrapping_sub(other.0) < Self::HALF
    }

    /// Serial-number "at or after": [`InstanceId::follows`] or equal.
    pub fn at_or_after(self, other: InstanceId) -> bool {
        self.0 == other.0 || self.follows(other)
    }

    /// The serially later of `self` and `other`.
    pub fn serial_max(self, other: InstanceId) -> InstanceId {
        if self.follows(other) {
            self
        } else {
            other
        }
    }

    /// Explicit total-order adapter for container keys; see
    /// [`Seq::ord_key`] for the contract.
    pub const fn ord_key(self) -> SerialOrdKey {
        SerialOrdKey(self.0)
    }
}

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

impl From<u64> for InstanceId {
    fn from(raw: u64) -> Self {
        InstanceId(raw)
    }
}

/// A Ring Paxos ballot (round) number.
///
/// Carried by `Accept` and `RingAck` messages so acceptors can gate
/// stale coordinator traffic; here it tracks the coordinator's
/// incarnation, so it advances once per coordinator reboot. It lives
/// in the same circular space discipline as the other protocol
/// counters: RFC 1982 serial comparison, **no** `Ord`/`PartialOrd`,
/// and no reserved values (ballot zero is the original coordinator's
/// first round, like [`Rotation::ZERO`]).
///
/// # Example
///
/// ```
/// # use totem_wire::Ballot;
/// assert_eq!(Ballot::ZERO.next(), Ballot::new(1));
/// assert!(Ballot::ZERO.follows(Ballot::new(u64::MAX)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Ballot(u64);

impl Ballot {
    /// The original coordinator's first ballot.
    pub const ZERO: Ballot = Ballot(0);

    /// Half the ballot space; the serial comparison horizon.
    const HALF: u64 = 1 << 63;

    /// Creates a ballot from its raw value.
    pub const fn new(raw: u64) -> Self {
        Ballot(raw)
    }

    /// Returns the raw value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The next ballot, wrapping past `u64::MAX` (no reserved values).
    pub const fn next(self) -> Ballot {
        Ballot(self.0.wrapping_add(1))
    }

    /// Serial-number (RFC 1982) "strictly after", wrap-safe.
    pub fn follows(self, other: Ballot) -> bool {
        self.0 != other.0 && self.0.wrapping_sub(other.0) < Self::HALF
    }

    /// Serial-number "at or after": [`Ballot::follows`] or equal.
    pub fn at_or_after(self, other: Ballot) -> bool {
        self.0 == other.0 || self.follows(other)
    }

    /// Explicit total-order adapter for container keys; see
    /// [`Seq::ord_key`] for the contract.
    pub const fn ord_key(self) -> SerialOrdKey {
        SerialOrdKey(self.0)
    }
}

impl fmt::Display for Ballot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

impl From<u64> for Ballot {
    fn from(raw: u64) -> Self {
        Ballot(raw)
    }
}

/// A processor's reboot count (its identity epoch generation).
///
/// Incremented once per cold reboot and never reset, so it is a
/// genuinely **monotone** counter, not a serial one: a processor would
/// need to reboot every nanosecond for half a million years to wrap
/// it. It therefore derives a real `Ord` — raw comparison is correct —
/// and [`Incarnation::next`] saturates rather than wraps, so even the
/// theoretical overflow cannot reorder incarnations.
///
/// # Example
///
/// ```
/// # use totem_wire::Incarnation;
/// let original = Incarnation::ZERO;
/// let rebooted = original.next();
/// assert!(rebooted > original);
/// assert_eq!(rebooted.as_u64(), 1);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Incarnation(u64);

impl Incarnation {
    /// The original incarnation (never rebooted).
    pub const ZERO: Incarnation = Incarnation(0);

    /// Creates an incarnation from its raw reboot count.
    pub const fn new(raw: u64) -> Self {
        Incarnation(raw)
    }

    /// Returns the raw reboot count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The next incarnation. Saturating: monotonicity is the whole
    /// point of this counter, so it must never wrap back to zero.
    pub const fn next(self) -> Incarnation {
        Incarnation(self.0.saturating_add(1))
    }
}

impl fmt::Display for Incarnation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "inc{}", self.0)
    }
}

impl From<u64> for Incarnation {
    fn from(raw: u64) -> Self {
        Incarnation(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_orders_by_raw_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert_eq!(NodeId::new(5).index(), 5);
        assert_eq!(NodeId::from(7).as_u16(), 7);
    }

    #[test]
    fn network_id_display_and_index() {
        assert_eq!(NetworkId::new(2).to_string(), "net2");
        assert_eq!(NetworkId::from(3).index(), 3);
    }

    #[test]
    fn ring_successor_increments_seq_and_replaces_rep() {
        let r = RingId::new(NodeId::new(4), 10);
        let s = r.successor(NodeId::new(2));
        assert_eq!(s.seq, 11);
        assert_eq!(s.rep, NodeId::new(2));
        assert!(s > r || s.rep < r.rep); // ordering is lexicographic on (rep, seq)
    }

    #[test]
    fn seq_next_and_gap() {
        let s = Seq::new(10);
        assert_eq!(s.next(), Seq::new(11));
        assert_eq!(Seq::new(15).gap_from(s), 5);
        assert_eq!(s.gap_from(Seq::new(15)), 0);
    }

    #[test]
    fn seq_missing_until_enumerates_open_closed_interval() {
        let missing: Vec<Seq> = Seq::new(3).missing_until(Seq::new(6)).collect();
        assert_eq!(missing, vec![Seq::new(4), Seq::new(5), Seq::new(6)]);
        assert_eq!(Seq::new(6).missing_until(Seq::new(6)).count(), 0);
    }

    #[test]
    fn seq_zero_is_default() {
        assert_eq!(Seq::default(), Seq::ZERO);
    }

    #[test]
    fn seq_next_wraps_past_max_skipping_zero() {
        assert_eq!(Seq::new(u64::MAX).next(), Seq::new(1));
        assert_eq!(Seq::new(u64::MAX - 1).next(), Seq::new(u64::MAX));
    }

    #[test]
    fn serial_order_across_the_wrap_boundary() {
        let before = Seq::new(u64::MAX - 2);
        let after = Seq::new(3); // five `next` steps later (zero skipped)
        assert!(after.follows(before));
        assert!(!before.follows(after));
        assert!(before.precedes(after));
        assert!(after.at_or_after(before));
        assert!(after.at_or_after(after));
        assert_eq!(before.serial_max(after), after);
        assert_eq!(before.serial_min(after), before);
        // The explicit raw-order adapter disagrees across the wrap —
        // that is exactly why `Seq` itself implements no `Ord` and
        // protocol code must use the serial methods.
        assert!(after.ord_key() < before.ord_key());
    }

    #[test]
    fn rotation_is_serial_and_wraps_through_zero() {
        assert_eq!(Rotation::ZERO.next(), Rotation::new(1));
        // No reserved values: MAX wraps straight to zero.
        assert_eq!(Rotation::new(u64::MAX).next(), Rotation::ZERO);
        assert!(Rotation::ZERO.follows(Rotation::new(u64::MAX)));
        assert!(Rotation::new(5).at_or_after(Rotation::new(5)));
        assert!(!Rotation::new(u64::MAX).follows(Rotation::ZERO));
        assert_eq!(Rotation::new(9).to_string(), "rot9");
        assert_eq!(Rotation::from(4).as_u64(), 4);
    }

    #[test]
    fn instance_id_is_serial_with_a_reserved_zero() {
        assert_eq!(InstanceId::ZERO.next(), InstanceId::new(1));
        assert_eq!(InstanceId::new(u64::MAX).next(), InstanceId::new(1));
        assert!(InstanceId::new(1).follows(InstanceId::new(u64::MAX)));
        assert!(!InstanceId::new(u64::MAX).follows(InstanceId::new(1)));
        assert!(InstanceId::new(4).at_or_after(InstanceId::new(4)));
        assert_eq!(
            InstanceId::new(u64::MAX).serial_max(InstanceId::new(2)),
            InstanceId::new(2),
            "serial max must respect the wrap"
        );
        assert!(InstanceId::new(2).ord_key() < InstanceId::new(u64::MAX).ord_key());
        assert_eq!(InstanceId::from(6).as_u64(), 6);
        assert_eq!(InstanceId::new(9).to_string(), "i9");
        assert_eq!(InstanceId::default(), InstanceId::ZERO);
    }

    #[test]
    fn ballot_is_serial_with_no_reserved_values() {
        assert_eq!(Ballot::ZERO.next(), Ballot::new(1));
        assert_eq!(Ballot::new(u64::MAX).next(), Ballot::ZERO);
        assert!(Ballot::ZERO.follows(Ballot::new(u64::MAX)));
        assert!(Ballot::new(3).at_or_after(Ballot::new(3)));
        assert!(!Ballot::new(3).at_or_after(Ballot::new(4)));
        assert!(Ballot::new(1).ord_key() < Ballot::new(2).ord_key());
        assert_eq!(Ballot::from(5).as_u64(), 5);
        assert_eq!(Ballot::new(7).to_string(), "b7");
    }

    #[test]
    fn incarnation_is_monotone_and_saturates() {
        assert!(Incarnation::ZERO.next() > Incarnation::ZERO);
        assert_eq!(Incarnation::new(u64::MAX).next(), Incarnation::new(u64::MAX));
        assert_eq!(Incarnation::from(3).as_u64(), 3);
        assert_eq!(Incarnation::new(2).to_string(), "inc2");
    }

    #[test]
    fn ord_key_orders_by_raw_value() {
        assert!(Seq::new(1).ord_key() < Seq::new(2).ord_key());
        assert!(Rotation::new(1).ord_key() < Rotation::new(2).ord_key());
        assert_eq!(Seq::new(7).ord_key(), Rotation::new(7).ord_key());
        assert_eq!(Seq::new(7).ord_key().as_u64(), 7);
    }

    #[test]
    fn serial_gap_counts_steps_across_the_wrap() {
        // MAX -> 1 -> 2 -> 3: three next() steps, zero skipped.
        assert_eq!(Seq::new(3).gap_from(Seq::new(u64::MAX)), 3);
        assert_eq!(Seq::new(u64::MAX).gap_from(Seq::new(3)), 0);
        assert_eq!(Seq::new(1).gap_from(Seq::new(u64::MAX)), 1);
    }

    #[test]
    fn missing_until_walks_across_the_wrap() {
        let missing: Vec<Seq> = Seq::new(u64::MAX - 1).missing_until(Seq::new(2)).collect();
        assert_eq!(missing, vec![Seq::new(u64::MAX), Seq::new(1), Seq::new(2)]);
        // Nothing is ever missing "up to ZERO".
        assert_eq!(Seq::new(u64::MAX - 1).missing_until(Seq::ZERO).count(), 0);
    }

    #[test]
    fn ring_id_display_mentions_rep_and_seq() {
        let r = RingId::new(NodeId::new(1), 9);
        assert_eq!(r.to_string(), "ring(n1, 9)");
    }
}
