//! A small binary codec used by all Totem wire types.
//!
//! The encoding is big-endian and length-prefixed. It is intentionally
//! simple: Totem's own papers reason about exact byte layouts (the
//! framing model in [`crate::frame`] depends on them), so the codec is
//! explicit rather than derived.
//!
//! Decoding never panics on malformed input: every read is
//! bounds-checked and returns a [`CodecError`], which makes the
//! decoder safe to expose to untrusted bytes and easy to fuzz.

use core::fmt;

use bytes::Bytes;

/// Error returned when decoding a malformed packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the value being read was complete.
    Truncated {
        /// How many more bytes were needed.
        needed: usize,
        /// How many bytes remained.
        remaining: usize,
    },
    /// A discriminant byte did not name a known variant.
    UnknownTag {
        /// What was being decoded.
        what: &'static str,
        /// The offending tag value.
        tag: u8,
    },
    /// A length prefix exceeded the bytes actually available or a
    /// sanity bound.
    BadLength {
        /// What was being decoded.
        what: &'static str,
        /// The offending length.
        len: usize,
    },
    /// Trailing garbage after a complete packet.
    TrailingBytes {
        /// Number of unconsumed bytes.
        remaining: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { needed, remaining } => {
                write!(f, "truncated packet: needed {needed} more bytes, {remaining} remaining")
            }
            CodecError::UnknownTag { what, tag } => {
                write!(f, "unknown tag {tag:#04x} while decoding {what}")
            }
            CodecError::BadLength { what, len } => {
                write!(f, "implausible length {len} while decoding {what}")
            }
            CodecError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after packet")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Hard upper bound on any length prefix, to stop a corrupt prefix
/// from causing a giant allocation. Larger than any legal Totem frame.
pub(crate) const MAX_DECODE_LEN: usize = 1 << 20;

/// An append-only byte writer with big-endian primitives.
///
/// # Example
///
/// ```
/// # use totem_wire::{Writer, Reader};
/// let mut w = Writer::new();
/// w.u16(0xBEEF);
/// w.u64(7);
/// let buf = w.into_bytes();
/// let mut r = Reader::new(&buf);
/// assert_eq!(r.u16().unwrap(), 0xBEEF);
/// assert_eq!(r.u64().unwrap(), 7);
/// ```
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    /// Creates a writer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        Writer { buf: Vec::with_capacity(cap) }
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a big-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a boolean as a single `0`/`1` byte.
    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Appends raw bytes with no prefix.
    pub fn raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Appends a `u32` length prefix followed by the bytes.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.raw(v);
    }

    /// Current encoded length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Clears the contents while keeping the allocation, so one writer
    /// can encode many frames without reallocating (the encode pool in
    /// [`crate::packet`] relies on this).
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Ensures capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// The bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, returning the encoded buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Copies the written bytes into an immutable, cheaply cloneable
    /// [`Bytes`] without consuming the writer (one shared allocation;
    /// the writer's own buffer is kept for reuse).
    pub fn to_shared(&self) -> Bytes {
        Bytes::copy_from_slice(&self.buf)
    }
}

/// A bounds-checked cursor over a byte slice with big-endian primitives.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Returns an error unless the whole buffer has been consumed.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::TrailingBytes`] if unconsumed bytes remain.
    pub fn finish(&self) -> Result<(), CodecError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes { remaining: self.remaining() })
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let Some(s) = self.pos.checked_add(n).and_then(|end| self.buf.get(self.pos..end)) else {
            return Err(CodecError::Truncated { needed: n, remaining: self.remaining() });
        };
        self.pos += n;
        Ok(s)
    }

    /// Takes the next `N` bytes as a fixed-size array without any
    /// fallible slice-to-array conversion on the hot decode path.
    fn array<const N: usize>(&mut self) -> Result<[u8; N], CodecError> {
        let s = self.take(N)?;
        let mut out = [0u8; N];
        for (dst, src) in out.iter_mut().zip(s) {
            *dst = *src;
        }
        Ok(out)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Truncated`] if the buffer is exhausted.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(u8::from_be_bytes(self.array()?))
    }

    /// Reads a big-endian `u16`.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Truncated`] if fewer than 2 bytes remain.
    pub fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_be_bytes(self.array()?))
    }

    /// Reads a big-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Truncated`] if fewer than 4 bytes remain.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_be_bytes(self.array()?))
    }

    /// Reads a big-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Truncated`] if fewer than 8 bytes remain.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_be_bytes(self.array()?))
    }

    /// Reads a boolean encoded as a `0`/`1` byte.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::UnknownTag`] on any other byte value and
    /// [`CodecError::Truncated`] if the buffer is exhausted.
    pub fn bool(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(CodecError::UnknownTag { what: "bool", tag }),
        }
    }

    /// Reads a `u32` length prefix followed by that many bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::BadLength`] if the prefix exceeds the
    /// sanity bound, or [`CodecError::Truncated`] if the payload is
    /// incomplete.
    pub fn bytes(&mut self) -> Result<Bytes, CodecError> {
        let len = self.u32()? as usize;
        if len > MAX_DECODE_LEN {
            return Err(CodecError::BadLength { what: "byte string", len });
        }
        Ok(Bytes::copy_from_slice(self.take(len)?))
    }

    /// Reads exactly `len` un-prefixed bytes (the caller read the
    /// length from its own header field).
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Truncated`] if fewer than `len` bytes
    /// remain.
    pub fn raw_bytes(&mut self, len: usize) -> Result<Bytes, CodecError> {
        Ok(Bytes::copy_from_slice(self.take(len)?))
    }

    /// Reads a `u32` element count (bounded by `MAX_DECODE_LEN`) for a
    /// following sequence.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::BadLength`] for an implausible count.
    pub fn seq_len(&mut self, what: &'static str) -> Result<usize, CodecError> {
        let len = self.u32()? as usize;
        if len > MAX_DECODE_LEN {
            return Err(CodecError::BadLength { what, len });
        }
        Ok(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives() {
        let mut w = Writer::new();
        w.u8(0xAB);
        w.u16(0xCDEF);
        w.u32(0xDEAD_BEEF);
        w.u64(0x0123_4567_89AB_CDEF);
        w.bool(true);
        w.bool(false);
        w.bytes(b"hello");
        let buf = w.into_bytes();

        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert_eq!(r.u16().unwrap(), 0xCDEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(&r.bytes().unwrap()[..], b"hello");
        r.finish().unwrap();
    }

    #[test]
    fn truncated_read_reports_need() {
        let mut r = Reader::new(&[0x01]);
        let err = r.u32().unwrap_err();
        assert_eq!(err, CodecError::Truncated { needed: 4, remaining: 1 });
    }

    #[test]
    fn bool_rejects_garbage() {
        let mut r = Reader::new(&[7]);
        assert!(matches!(r.bool(), Err(CodecError::UnknownTag { what: "bool", tag: 7 })));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocating() {
        let mut w = Writer::new();
        w.u32(u32::MAX);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        assert!(matches!(r.bytes(), Err(CodecError::BadLength { .. })));
    }

    #[test]
    fn finish_detects_trailing_bytes() {
        let mut r = Reader::new(&[1, 2, 3]);
        r.u8().unwrap();
        assert_eq!(r.finish(), Err(CodecError::TrailingBytes { remaining: 2 }));
    }

    #[test]
    fn truncated_byte_string_payload() {
        let mut w = Writer::new();
        w.u32(10);
        w.raw(b"short");
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        assert!(matches!(r.bytes(), Err(CodecError::Truncated { .. })));
    }

    #[test]
    fn errors_display_is_nonempty_and_lowercase() {
        for err in [
            CodecError::Truncated { needed: 4, remaining: 0 },
            CodecError::UnknownTag { what: "packet", tag: 9 },
            CodecError::BadLength { what: "rtr list", len: 1 << 30 },
            CodecError::TrailingBytes { remaining: 3 },
        ] {
            let msg = err.to_string();
            assert!(!msg.is_empty());
            assert!(!msg.chars().next().unwrap().is_uppercase());
        }
    }
}
