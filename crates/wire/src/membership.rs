//! Membership-protocol messages of the Totem single-ring protocol.
//!
//! When a node's token-loss timer fires it shifts to the *Gather*
//! state and broadcasts [`JoinMessage`]s advertising the set of
//! processors it can hear (`proc_set`) and the set it has given up on
//! (`fail_set`). Once consensus is reached, the representative of the
//! candidate ring circulates a [`CommitToken`]; after two full
//! rotations the members enter *Recovery*, exchange the messages of
//! their old rings, and install the new ring (Amir et al., TOCS '95;
//! summarized in paper §2).

use serde::{Deserialize, Serialize};

use crate::codec::{CodecError, Reader, Writer};
use crate::ids::{NodeId, RingId, Seq};

/// Upper bound on the membership size a decoder will accept.
pub const MAX_MEMBERS: usize = 4096;

/// A broadcast join message sent while in the Gather state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JoinMessage {
    /// The sender of the join message.
    pub sender: NodeId,
    /// The highest ring sequence number the sender has participated
    /// in or heard of; the new ring's sequence number must exceed it.
    pub ring_seq: u64,
    /// Processors the sender proposes as members (it has heard from
    /// them recently).
    pub proc_set: Vec<NodeId>,
    /// Processors the sender has decided have failed.
    pub fail_set: Vec<NodeId>,
}

impl JoinMessage {
    pub(crate) fn encode(&self, w: &mut Writer) {
        w.u16(self.sender.as_u16());
        w.u64(self.ring_seq);
        w.u32(self.proc_set.len() as u32);
        for n in &self.proc_set {
            w.u16(n.as_u16());
        }
        w.u32(self.fail_set.len() as u32);
        for n in &self.fail_set {
            w.u16(n.as_u16());
        }
    }

    pub(crate) fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let sender = NodeId::new(r.u16()?);
        let ring_seq = r.u64()?;
        let np = r.seq_len("proc set")?;
        if np > MAX_MEMBERS {
            return Err(CodecError::BadLength { what: "proc set", len: np });
        }
        let mut proc_set = Vec::with_capacity(np);
        for _ in 0..np {
            proc_set.push(NodeId::new(r.u16()?));
        }
        let nf = r.seq_len("fail set")?;
        if nf > MAX_MEMBERS {
            return Err(CodecError::BadLength { what: "fail set", len: nf });
        }
        let mut fail_set = Vec::with_capacity(nf);
        for _ in 0..nf {
            fail_set.push(NodeId::new(r.u16()?));
        }
        Ok(JoinMessage { sender, ring_seq, proc_set, fail_set })
    }

    /// Encoded size in bytes, used for simulator bandwidth accounting.
    pub fn encoded_len(&self) -> usize {
        2 + 8 + 4 + 2 * self.proc_set.len() + 4 + 2 * self.fail_set.len()
    }
}

/// Per-member state carried on the commit token: what each member
/// knows about its **old** ring, used to plan recovery retransmissions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MembEntry {
    /// The member this entry describes.
    pub node: NodeId,
    /// The ring the member was operating on before the configuration
    /// change.
    pub old_ring: RingId,
    /// The member's all-received-up-to watermark on that old ring.
    pub my_aru: Seq,
    /// The highest sequence number the member has *delivered* on the
    /// old ring.
    pub high_delivered: Seq,
    /// Whether the member has already received every old-ring message
    /// it needs (set during the second rotation).
    pub received_flag: bool,
}

impl MembEntry {
    fn encode(&self, w: &mut Writer) {
        w.u16(self.node.as_u16());
        w.u16(self.old_ring.rep.as_u16());
        w.u64(self.old_ring.seq);
        w.u64(self.my_aru.as_u64());
        w.u64(self.high_delivered.as_u64());
        w.bool(self.received_flag);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(MembEntry {
            node: NodeId::new(r.u16()?),
            old_ring: RingId::new(NodeId::new(r.u16()?), r.u64()?),
            my_aru: Seq::new(r.u64()?),
            high_delivered: Seq::new(r.u64()?),
            received_flag: r.bool()?,
        })
    }

    const ENCODED_LEN: usize = 2 + 2 + 8 + 8 + 8 + 1;
}

/// The commit token circulated (unicast, in ring order of the
/// candidate membership) while forming a new ring.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommitToken {
    /// The identity of the ring being formed.
    pub ring: RingId,
    /// Which rotation the token is on (0 = collecting old-ring state,
    /// 1 = confirming; after the second rotation members enter
    /// Recovery).
    pub round: u8,
    /// One entry per member, in ring order.
    pub entries: Vec<MembEntry>,
}

impl CommitToken {
    /// The membership of the candidate ring, in ring order.
    pub fn members(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.entries.iter().map(|e| e.node)
    }

    pub(crate) fn encode(&self, w: &mut Writer) {
        w.u16(self.ring.rep.as_u16());
        w.u64(self.ring.seq);
        w.u8(self.round);
        w.u32(self.entries.len() as u32);
        for e in &self.entries {
            e.encode(w);
        }
    }

    pub(crate) fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let ring = RingId::new(NodeId::new(r.u16()?), r.u64()?);
        let round = r.u8()?;
        let n = r.seq_len("commit entries")?;
        if n > MAX_MEMBERS {
            return Err(CodecError::BadLength { what: "commit entries", len: n });
        }
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            entries.push(MembEntry::decode(r)?);
        }
        Ok(CommitToken { ring, round, entries })
    }

    /// Encoded size in bytes, used for simulator bandwidth accounting.
    pub fn encoded_len(&self) -> usize {
        2 + 8 + 1 + 4 + MembEntry::ENCODED_LEN * self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Packet;

    fn sample_join() -> JoinMessage {
        JoinMessage {
            sender: NodeId::new(3),
            ring_seq: 8,
            proc_set: vec![NodeId::new(0), NodeId::new(1), NodeId::new(3)],
            fail_set: vec![NodeId::new(2)],
        }
    }

    fn sample_commit() -> CommitToken {
        CommitToken {
            ring: RingId::new(NodeId::new(0), 9),
            round: 1,
            entries: vec![
                MembEntry {
                    node: NodeId::new(0),
                    old_ring: RingId::new(NodeId::new(0), 8),
                    my_aru: Seq::new(55),
                    high_delivered: Seq::new(50),
                    received_flag: false,
                },
                MembEntry {
                    node: NodeId::new(1),
                    old_ring: RingId::new(NodeId::new(0), 8),
                    my_aru: Seq::new(60),
                    high_delivered: Seq::new(50),
                    received_flag: true,
                },
            ],
        }
    }

    #[test]
    fn join_roundtrip() {
        let pkt = Packet::Join(sample_join());
        assert_eq!(Packet::decode(&pkt.encode()).unwrap(), pkt);
    }

    #[test]
    fn commit_roundtrip() {
        let pkt = Packet::Commit(sample_commit());
        assert_eq!(Packet::decode(&pkt.encode()).unwrap(), pkt);
    }

    #[test]
    fn join_encoded_len_matches() {
        let j = sample_join();
        assert_eq!(Packet::Join(j.clone()).encode().len(), j.encoded_len() + 1);
    }

    #[test]
    fn commit_encoded_len_matches() {
        let c = sample_commit();
        assert_eq!(Packet::Commit(c.clone()).encode().len(), c.encoded_len() + 1);
    }

    #[test]
    fn commit_members_in_ring_order() {
        let c = sample_commit();
        let members: Vec<NodeId> = c.members().collect();
        assert_eq!(members, vec![NodeId::new(0), NodeId::new(1)]);
    }

    #[test]
    fn empty_sets_roundtrip() {
        let j =
            JoinMessage { sender: NodeId::new(0), ring_seq: 0, proc_set: vec![], fail_set: vec![] };
        let pkt = Packet::Join(j);
        assert_eq!(Packet::decode(&pkt.encode()).unwrap(), pkt);
    }

    #[test]
    fn oversized_member_count_is_rejected() {
        let mut bytes = Vec::new();
        bytes.push(0x03); // join tag
        bytes.extend_from_slice(&0u16.to_be_bytes());
        bytes.extend_from_slice(&0u64.to_be_bytes());
        bytes.extend_from_slice(&(MAX_MEMBERS as u32 + 1).to_be_bytes());
        assert!(matches!(Packet::decode(&bytes), Err(CodecError::BadLength { .. })));
    }
}
