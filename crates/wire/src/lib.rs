//! Wire formats for the Totem single-ring and redundant-ring protocols.
//!
//! This crate defines everything that crosses a network in the Totem
//! protocol stack:
//!
//! * [`ids`] — strongly typed identifiers ([`NodeId`], [`NetworkId`],
//!   [`RingId`], [`Seq`]) and protocol counters ([`Rotation`],
//!   [`Incarnation`]) with wrap-safe RFC 1982 comparison built in
//!   (the serially wrapping ones deliberately implement no `Ord`;
//!   container keys go through the explicit [`SerialOrdKey`] adapter).
//! * [`packet`] — the top-level [`Packet`] enum and the broadcast
//!   [`DataPacket`] carrying packed/fragmented application messages.
//! * [`token`] — the unicast regular [`Token`] that schedules
//!   transmission, carries the global sequence number, the
//!   all-received-up-to watermark, retransmission requests and flow
//!   control information.
//! * [`membership`] — the [`JoinMessage`] and [`CommitToken`] used by
//!   the Totem SRP membership protocol.
//! * [`shared`] — the [`SharedPacket`] encode-once/share-everywhere
//!   handle the data plane fans out instead of deep-cloning packets.
//! * [`codec`] — a small, dependency-free binary codec
//!   (big-endian, length-prefixed) with a fuzz-friendly decoder.
//! * [`frame`] — the Ethernet framing model from the paper
//!   (1518-byte frames, 94 bytes of header overhead, 1424-byte
//!   payload) used by the message packer and the simulator's
//!   bandwidth accounting.
//!
//! The encoding is deliberately explicit rather than derived: the
//! Totem papers reason about exact header sizes (the throughput peaks
//! at 700 and 1400 bytes in the evaluation exist *because* two
//! 712-byte chunks fill a 1424-byte frame exactly), so the byte layout
//! is part of the system being reproduced.
//!
//! # Example
//!
//! ```
//! # use totem_wire::*;
//! # fn main() -> Result<(), CodecError> {
//! let token = Token {
//!     ring: RingId::new(NodeId::new(0), 7),
//!     rotation: Rotation::new(42),
//!     seq: Seq::new(100),
//!     aru: Seq::new(98),
//!     aru_id: Some(NodeId::new(3)),
//!     fcc: 12,
//!     backlog: 3,
//!     rtr: vec![Seq::new(99)],
//! };
//! let bytes = Packet::Token(token.clone()).encode();
//! assert_eq!(Packet::decode(&bytes)?, Packet::Token(token));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod frame;
pub mod ids;
pub mod membership;
pub mod packet;
pub mod ring_paxos;
pub mod shared;
pub mod token;
pub mod transition;

pub use codec::{CodecError, Reader, Writer};
pub use frame::{
    chunk_capacity, wire_frame_len, CHUNK_HEADER_LEN, ETHERNET_MTU, HEADER_OVERHEAD, MAX_PAYLOAD,
};
pub use ids::{
    Ballot, Incarnation, InstanceId, NetworkId, NodeId, RingId, Rotation, Seq, SerialOrdKey,
};
pub use membership::{CommitToken, JoinMessage, MembEntry};
pub use packet::{Chunk, ChunkKind, DataPacket, Packet};
pub use ring_paxos::{Proposal, RingPaxosMsg};
pub use shared::{NetFrame, SharedPacket};
pub use token::Token;
pub use transition::{Transition, TRANSITION_BUFFER_CAP};
