//! Top-level packet type and the broadcast data packet.
//!
//! Everything Totem puts on a wire is a [`Packet`]:
//!
//! * [`Packet::Data`] — a broadcast frame carrying one or more packed
//!   application-message chunks, stamped with a global sequence
//!   number.
//! * [`Packet::Token`] — the unicast regular token
//!   (see [`crate::token::Token`]).
//! * [`Packet::Join`] — a broadcast membership join message
//!   (see [`crate::membership::JoinMessage`]).
//! * [`Packet::Commit`] — the unicast commit token circulated while
//!   forming a new ring (see [`crate::membership::CommitToken`]).

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use crate::codec::{CodecError, Reader, Writer};
use crate::frame::CHUNK_HEADER_LEN;
use crate::ids::{NodeId, RingId, Seq};
use crate::membership::{CommitToken, JoinMessage};
use crate::ring_paxos::RingPaxosMsg;
use crate::token::Token;

const TAG_DATA: u8 = 0x01;
const TAG_TOKEN: u8 = 0x02;
const TAG_JOIN: u8 = 0x03;
const TAG_COMMIT: u8 = 0x04;
const TAG_RING_PAXOS: u8 = 0x05;

/// What a [`Chunk`] inside a data packet contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChunkKind {
    /// A complete application message.
    Complete,
    /// The first fragment of a message longer than one frame.
    FragStart,
    /// A middle fragment.
    FragCont,
    /// The final fragment; delivery of the reassembled message becomes
    /// possible once all fragments are in order.
    FragEnd,
    /// An encapsulated data packet from an *old* ring, retransmitted
    /// during membership recovery. The chunk data is the encoded
    /// old-ring [`DataPacket`].
    Recovery,
}

impl ChunkKind {
    fn tag(self) -> u8 {
        match self {
            ChunkKind::Complete => 0,
            ChunkKind::FragStart => 1,
            ChunkKind::FragCont => 2,
            ChunkKind::FragEnd => 3,
            ChunkKind::Recovery => 4,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, CodecError> {
        Ok(match tag {
            0 => ChunkKind::Complete,
            1 => ChunkKind::FragStart,
            2 => ChunkKind::FragCont,
            3 => ChunkKind::FragEnd,
            4 => ChunkKind::Recovery,
            _ => return Err(CodecError::UnknownTag { what: "chunk kind", tag }),
        })
    }
}

/// One packed unit inside a [`DataPacket`]: a whole small message, a
/// fragment of a large one, or an encapsulated recovery packet.
///
/// On the wire each chunk costs [`CHUNK_HEADER_LEN`] bytes of
/// sub-header in addition to its payload; [`Chunk::wire_len`] accounts
/// for both.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Chunk {
    /// What the chunk contains.
    pub kind: ChunkKind,
    /// Sender-local message identifier; fragments of the same message
    /// share it and are reassembled in sequence order.
    pub msg_id: u32,
    /// Total length of the original application message (equal to
    /// `data.len()` for [`ChunkKind::Complete`]).
    pub orig_len: u32,
    /// The chunk payload.
    pub data: Bytes,
}

impl Chunk {
    /// Creates a chunk holding a complete application message.
    pub fn complete(msg_id: u32, data: Bytes) -> Self {
        let orig_len = data.len() as u32;
        Chunk { kind: ChunkKind::Complete, msg_id, orig_len, data }
    }

    /// Bytes this chunk occupies inside a frame payload, including its
    /// sub-header.
    pub fn wire_len(&self) -> usize {
        CHUNK_HEADER_LEN + self.data.len()
    }

    fn encode(&self, w: &mut Writer) {
        w.u8(self.kind.tag());
        w.u8(0); // reserved flags byte, keeps the header at 12 bytes
        w.u16(self.data.len() as u16);
        w.u32(self.msg_id);
        w.u32(self.orig_len);
        w.raw(&self.data);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let kind = ChunkKind::from_tag(r.u8()?)?;
        let _reserved = r.u8()?;
        let len = r.u16()? as usize;
        let msg_id = r.u32()?;
        let orig_len = r.u32()?;
        let data = r.raw_bytes(len)?;
        Ok(Chunk { kind, msg_id, orig_len, data })
    }
}

/// A broadcast data frame: the unit of sequencing, retransmission and
/// ordering on the ring.
///
/// Each data packet carries exactly one global sequence number; the
/// message packer places several small application messages (or one
/// fragment of a large one) into a packet, so retransmission and
/// ordering always operate on whole packets, as in the Totem SRP.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataPacket {
    /// The ring configuration this packet belongs to.
    pub ring: RingId,
    /// The packet's global sequence number on that ring.
    pub seq: Seq,
    /// The node that broadcast the packet.
    pub sender: NodeId,
    /// Packed application-message chunks.
    pub chunks: Vec<Chunk>,
}

impl DataPacket {
    /// Payload bytes this packet occupies inside a frame (all chunks
    /// with their sub-headers).
    pub fn payload_len(&self) -> usize {
        self.chunks.iter().map(Chunk::wire_len).sum()
    }

    /// Sum of application-payload bytes carried (excluding all
    /// headers) — what the paper's "bandwidth (Kbytes/sec)" figures
    /// count.
    pub fn app_bytes(&self) -> usize {
        self.chunks.iter().map(|c| c.data.len()).sum()
    }
}

/// Any packet the Totem stack sends or receives.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Packet {
    /// Broadcast data frame.
    Data(DataPacket),
    /// Unicast regular token.
    Token(Token),
    /// Broadcast membership join message.
    Join(JoinMessage),
    /// Unicast commit token.
    Commit(CommitToken),
    /// A Ring Paxos backend message (backend-tagged envelope; see
    /// [`crate::ring_paxos`]). Totem nodes never send or accept these.
    RingPaxos(RingPaxosMsg),
}

impl Packet {
    /// Returns `true` for token-class packets (regular and commit
    /// tokens), which the redundant-ring layer gates, and `false` for
    /// message-class packets, which it passes straight up (paper §5:
    /// "identical copies of messages are destroyed by the Totem SRP").
    pub fn is_token_class(&self) -> bool {
        matches!(self, Packet::Token(_) | Packet::Commit(_))
    }

    /// Encodes the packet to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(self.wire_payload_len() + 16);
        self.encode_into(&mut w);
        w.into_bytes()
    }

    /// Encodes the packet into an existing writer (appended), so a
    /// pooled writer can serve many frames without reallocating.
    pub fn encode_into(&self, w: &mut Writer) {
        match self {
            Packet::Data(d) => {
                w.u8(TAG_DATA);
                w.u16(d.ring.rep.as_u16());
                w.u64(d.ring.seq);
                w.u64(d.seq.as_u64());
                w.u16(d.sender.as_u16());
                w.u16(d.chunks.len() as u16);
                for c in &d.chunks {
                    c.encode(w);
                }
            }
            Packet::Token(t) => {
                w.u8(TAG_TOKEN);
                t.encode(w);
            }
            Packet::Join(j) => {
                w.u8(TAG_JOIN);
                j.encode(w);
            }
            Packet::Commit(c) => {
                w.u8(TAG_COMMIT);
                c.encode(w);
            }
            Packet::RingPaxos(m) => {
                w.u8(TAG_RING_PAXOS);
                m.encode(w);
            }
        }
    }

    /// Encodes the packet into a cheaply cloneable [`Bytes`] using a
    /// thread-local pooled [`Writer`], so the steady-state cost per
    /// frame is one shared allocation plus one copy — no per-call
    /// staging buffer. This is what [`crate::SharedPacket::encoded`]
    /// caches.
    pub fn encode_shared(&self) -> Bytes {
        thread_local! {
            static POOL: core::cell::RefCell<Writer> = core::cell::RefCell::new(Writer::new());
        }
        POOL.with(|cell| match cell.try_borrow_mut() {
            Ok(mut w) => {
                w.clear();
                self.encode_into(&mut w);
                w.to_shared()
            }
            // Unreachable re-entrancy guard (encode never calls back
            // into the pool); fall back to a one-shot writer rather
            // than panicking in a protocol crate.
            Err(_) => {
                let mut w = Writer::with_capacity(self.wire_payload_len() + 16);
                self.encode_into(&mut w);
                w.to_shared()
            }
        })
    }

    /// Decodes a packet, requiring the buffer to contain exactly one
    /// packet.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on truncation, unknown tags,
    /// implausible lengths, or trailing bytes.
    ///
    /// # Example
    ///
    /// ```
    /// # use totem_wire::*;
    /// # fn main() -> Result<(), CodecError> {
    /// let join = JoinMessage {
    ///     sender: NodeId::new(2),
    ///     ring_seq: 5,
    ///     proc_set: vec![NodeId::new(0), NodeId::new(2)],
    ///     fail_set: vec![],
    /// };
    /// let bytes = Packet::Join(join.clone()).encode();
    /// assert_eq!(Packet::decode(&bytes)?, Packet::Join(join));
    /// # Ok(())
    /// # }
    /// ```
    pub fn decode(buf: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(buf);
        let pkt = Self::decode_from(&mut r)?;
        r.finish()?;
        Ok(pkt)
    }

    /// Decodes a packet from a reader, leaving any following bytes
    /// unconsumed (used for recovery chunks that embed packets).
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on truncation, unknown tags or
    /// implausible lengths.
    pub fn decode_from(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.u8()? {
            TAG_DATA => {
                let ring = RingId::new(NodeId::new(r.u16()?), r.u64()?);
                let seq = Seq::new(r.u64()?);
                let sender = NodeId::new(r.u16()?);
                let n = r.u16()? as usize;
                let mut chunks = Vec::with_capacity(n.min(64));
                for _ in 0..n {
                    chunks.push(Chunk::decode(r)?);
                }
                Ok(Packet::Data(DataPacket { ring, seq, sender, chunks }))
            }
            TAG_TOKEN => Ok(Packet::Token(Token::decode(r)?)),
            TAG_JOIN => Ok(Packet::Join(JoinMessage::decode(r)?)),
            TAG_COMMIT => Ok(Packet::Commit(CommitToken::decode(r)?)),
            TAG_RING_PAXOS => Ok(Packet::RingPaxos(RingPaxosMsg::decode(r)?)),
            tag => Err(CodecError::UnknownTag { what: "packet", tag }),
        }
    }

    /// Payload bytes the packet contributes to a frame, used by the
    /// simulator's bandwidth accounting (the fixed per-frame header
    /// overhead is added separately via
    /// [`crate::frame::wire_frame_len`]).
    pub fn wire_payload_len(&self) -> usize {
        match self {
            Packet::Data(d) => d.payload_len(),
            // Control packets are small; model them as their encoded
            // size (they ride in their own frames).
            Packet::Token(t) => t.encoded_len(),
            Packet::Join(j) => j.encoded_len(),
            Packet::Commit(c) => c.encoded_len(),
            Packet::RingPaxos(m) => m.encoded_len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_data_packet() -> DataPacket {
        DataPacket {
            ring: RingId::new(NodeId::new(0), 3),
            seq: Seq::new(17),
            sender: NodeId::new(2),
            chunks: vec![
                Chunk::complete(9, Bytes::from_static(b"hello")),
                Chunk {
                    kind: ChunkKind::FragStart,
                    msg_id: 10,
                    orig_len: 5000,
                    data: Bytes::from(vec![0xAA; 1400]),
                },
            ],
        }
    }

    #[test]
    fn data_packet_roundtrip() {
        let pkt = Packet::Data(sample_data_packet());
        let bytes = pkt.encode();
        assert_eq!(Packet::decode(&bytes).unwrap(), pkt);
    }

    #[test]
    fn token_class_predicate() {
        assert!(!Packet::Data(sample_data_packet()).is_token_class());
        let join =
            JoinMessage { sender: NodeId::new(0), ring_seq: 0, proc_set: vec![], fail_set: vec![] };
        assert!(!Packet::Join(join).is_token_class());
        let token = Token::initial(RingId::new(NodeId::new(0), 1));
        assert!(Packet::Token(token).is_token_class());
    }

    #[test]
    fn payload_len_counts_chunk_headers() {
        let d = sample_data_packet();
        assert_eq!(d.payload_len(), (12 + 5) + (12 + 1400));
        assert_eq!(d.app_bytes(), 5 + 1400);
    }

    #[test]
    fn decode_rejects_unknown_packet_tag() {
        assert!(matches!(
            Packet::decode(&[0xFF]),
            Err(CodecError::UnknownTag { what: "packet", tag: 0xFF })
        ));
    }

    #[test]
    fn decode_rejects_trailing_bytes() {
        let mut bytes = Packet::Data(sample_data_packet()).encode();
        bytes.push(0);
        assert!(matches!(Packet::decode(&bytes), Err(CodecError::TrailingBytes { remaining: 1 })));
    }

    #[test]
    fn decode_rejects_truncation_at_every_prefix() {
        let bytes = Packet::Data(sample_data_packet()).encode();
        for cut in 0..bytes.len() {
            assert!(
                Packet::decode(&bytes[..cut]).is_err(),
                "prefix of length {cut} must not decode"
            );
        }
    }

    #[test]
    fn chunk_wire_len_matches_header_plus_data() {
        let c = Chunk::complete(1, Bytes::from_static(b"abcd"));
        assert_eq!(c.wire_len(), CHUNK_HEADER_LEN + 4);
    }

    #[test]
    fn recovery_chunk_embeds_a_packet() {
        let inner = Packet::Data(sample_data_packet());
        let chunk = Chunk {
            kind: ChunkKind::Recovery,
            msg_id: 0,
            orig_len: 0,
            data: Bytes::from(inner.encode()),
        };
        let outer = Packet::Data(DataPacket {
            ring: RingId::new(NodeId::new(1), 4),
            seq: Seq::new(1),
            sender: NodeId::new(1),
            chunks: vec![chunk],
        });
        let decoded = Packet::decode(&outer.encode()).unwrap();
        if let Packet::Data(d) = decoded {
            assert_eq!(Packet::decode(&d.chunks[0].data).unwrap(), inner);
        } else {
            panic!("expected data packet");
        }
    }
}
