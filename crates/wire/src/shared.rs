//! A cheaply cloneable, encode-once packet handle.
//!
//! The data plane's hot path fans one frame out to many receivers
//! (every receiver on every redundant network) and keeps further
//! copies in the sender's retransmission window. Deep-cloning the
//! [`Packet`] for each of those — and re-encoding it for every
//! transmission — made the simulator allocation-bound at
//! O(nodes × networks) allocations per broadcast.
//!
//! [`SharedPacket`] fixes both costs structurally:
//!
//! * **Share-everywhere** — the packet lives behind an [`Arc`], so
//!   every fan-out copy, window entry and retransmission is a
//!   refcount bump.
//! * **Encode-once** — the wire encoding is computed lazily, at most
//!   once per packet, through a [`OnceLock`]`<Bytes>`, via the pooled
//!   writer in [`Packet::encode_shared`]. Retransmissions,
//!   recovery encapsulation and every redundant network's copy reuse
//!   the same immutable buffer. A packet that arrived off the wire
//!   can seed the cache with the bytes it was decoded from
//!   ([`SharedPacket::from_wire`]), making its re-encoding free.
//!
//! The handle is deliberately immutable: protocol state machines
//! construct a [`Packet`], seal it into a `SharedPacket`, and from
//! then on only read it. Mutation requires [`SharedPacket::into_packet`],
//! which clones only when the handle is actually shared.

use std::sync::{Arc, OnceLock};

use bytes::Bytes;

use crate::ids::NetworkId;
use crate::packet::{DataPacket, Packet};
use crate::token::Token;

/// The shared interior: the decoded packet plus its lazily computed
/// wire encoding.
#[derive(Debug)]
struct PacketCell {
    pkt: Packet,
    encoded: OnceLock<Bytes>,
}

/// A reference-counted [`Packet`] with a cached wire encoding.
///
/// Cloning is a refcount bump; [`SharedPacket::encoded`] encodes at
/// most once. See the module docs for the ownership model.
///
/// # Example
///
/// ```
/// # use totem_wire::*;
/// let token = Packet::Token(Token::initial(RingId::new(NodeId::new(0), 1)));
/// let shared = SharedPacket::new(token.clone());
/// let copy = shared.clone(); // refcount bump, no deep clone
/// assert_eq!(*copy.encoded(), *shared.encoded()); // encoded once, shared
/// assert_eq!(copy.into_packet(), token);
/// ```
#[derive(Clone, Debug)]
pub struct SharedPacket {
    cell: Arc<PacketCell>,
}

impl SharedPacket {
    /// Seals `pkt` into a shared handle (no encoding happens yet).
    pub fn new(pkt: Packet) -> Self {
        SharedPacket { cell: Arc::new(PacketCell { pkt, encoded: OnceLock::new() }) }
    }

    /// Seals a packet that was just decoded from `wire`, seeding the
    /// encoding cache with the bytes it came from so re-encoding it
    /// (retransmission, recovery encapsulation) never runs the
    /// encoder.
    pub fn from_wire(pkt: Packet, wire: Bytes) -> Self {
        let encoded = OnceLock::new();
        // A freshly created lock with no other handles: set cannot
        // race, and an Err would only mean a value is already cached,
        // which is harmless.
        let _ = encoded.set(wire);
        SharedPacket { cell: Arc::new(PacketCell { pkt, encoded }) }
    }

    /// Decodes a raw datagram and seals it with its own bytes seeding
    /// the encoding cache — the one-call receive path for transports
    /// that hand out [`Bytes`] frames (re-encoding a relayed frame is
    /// then free).
    ///
    /// # Errors
    ///
    /// Returns the decoder's [`CodecError`](crate::CodecError) for a
    /// malformed datagram.
    pub fn from_datagram(wire: Bytes) -> Result<Self, crate::CodecError> {
        let pkt = Packet::decode(&wire)?;
        Ok(SharedPacket::from_wire(pkt, wire))
    }

    /// The decoded packet.
    pub fn packet(&self) -> &Packet {
        &self.cell.pkt
    }

    /// The packet's wire encoding, computed at most once per packet
    /// and shared by every clone of this handle.
    pub fn encoded(&self) -> &Bytes {
        self.cell.encoded.get_or_init(|| self.cell.pkt.encode_shared())
    }

    /// Extracts the packet, cloning only if the handle is shared.
    pub fn into_packet(self) -> Packet {
        match Arc::try_unwrap(self.cell) {
            Ok(cell) => cell.pkt,
            Err(arc) => arc.pkt.clone(),
        }
    }

    /// The data packet inside, if this is a data frame.
    pub fn data(&self) -> Option<&DataPacket> {
        match &self.cell.pkt {
            Packet::Data(d) => Some(d),
            Packet::Token(_) | Packet::Join(_) | Packet::Commit(_) | Packet::RingPaxos(_) => None,
        }
    }

    /// Extracts an owned regular token, if this is a token frame
    /// (cloning only if the handle is shared).
    pub fn into_token(self) -> Option<Token> {
        match self.into_packet() {
            Packet::Token(t) => Some(t),
            Packet::Data(_) | Packet::Join(_) | Packet::Commit(_) | Packet::RingPaxos(_) => None,
        }
    }

    /// Like [`SharedPacket::into_token`], but hands the handle back
    /// unchanged when this is not a token frame — for call sites that
    /// gate tokens and forward everything else.
    pub fn try_into_token(self) -> Result<Token, SharedPacket> {
        if matches!(self.cell.pkt, Packet::Token(_)) {
            match self.into_packet() {
                Packet::Token(t) => Ok(t),
                // Unreachable: the class was just checked.
                other @ (Packet::Data(_)
                | Packet::Join(_)
                | Packet::Commit(_)
                | Packet::RingPaxos(_)) => Err(SharedPacket::new(other)),
            }
        } else {
            Err(self)
        }
    }
}

impl std::ops::Deref for SharedPacket {
    type Target = Packet;
    fn deref(&self) -> &Packet {
        &self.cell.pkt
    }
}

impl From<Packet> for SharedPacket {
    fn from(pkt: Packet) -> Self {
        SharedPacket::new(pkt)
    }
}

impl From<DataPacket> for SharedPacket {
    fn from(d: DataPacket) -> Self {
        SharedPacket::new(Packet::Data(d))
    }
}

impl PartialEq for SharedPacket {
    fn eq(&self, other: &SharedPacket) -> bool {
        Arc::ptr_eq(&self.cell, &other.cell) || self.cell.pkt == other.cell.pkt
    }
}
impl Eq for SharedPacket {}

impl PartialEq<Packet> for SharedPacket {
    fn eq(&self, other: &Packet) -> bool {
        self.cell.pkt == *other
    }
}

/// A frame travelling on (or delivered from) one specific network:
/// the unit the redundant-ring layer reasons about.
pub type NetFrame = (NetworkId, SharedPacket);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{NodeId, RingId, Seq};
    use crate::packet::Chunk;

    fn data(seq: u64) -> Packet {
        Packet::Data(DataPacket {
            ring: RingId::new(NodeId::new(0), 1),
            seq: Seq::new(seq),
            sender: NodeId::new(2),
            chunks: vec![Chunk::complete(1, Bytes::from_static(b"payload"))],
        })
    }

    #[test]
    fn encoded_is_cached_and_identical_across_clones() {
        let shared = SharedPacket::new(data(7));
        let copy = shared.clone();
        let a = shared.encoded().clone();
        let b = copy.encoded().clone();
        assert_eq!(a, b);
        // Same underlying buffer: both views start at the same address.
        assert_eq!(a.as_ref().as_ptr(), b.as_ref().as_ptr());
        // And it matches the one-shot encoder.
        assert_eq!(a.as_ref(), shared.packet().encode().as_slice());
    }

    #[test]
    fn from_wire_seeds_the_cache() {
        let pkt = data(9);
        let wire = Bytes::from(pkt.encode());
        let shared = SharedPacket::from_wire(pkt, wire.clone());
        assert_eq!(shared.encoded().as_ref().as_ptr(), wire.as_ref().as_ptr());
    }

    #[test]
    fn into_packet_avoids_clone_when_unique() {
        let shared = SharedPacket::new(data(1));
        assert_eq!(shared.into_packet(), data(1));
        let shared = SharedPacket::new(data(2));
        let _held = shared.clone();
        assert_eq!(shared.into_packet(), data(2)); // clones, still correct
    }

    #[test]
    fn accessors_discriminate_packet_classes() {
        let d = SharedPacket::new(data(3));
        assert!(d.data().is_some());
        assert!(d.clone().into_token().is_none());
        let t = SharedPacket::new(Packet::Token(Token::initial(RingId::new(NodeId::new(0), 1))));
        assert!(t.data().is_none());
        assert!(t.is_token_class()); // Deref to Packet
        assert!(t.into_token().is_some());
    }

    #[test]
    fn equality_compares_contents() {
        assert_eq!(SharedPacket::new(data(4)), SharedPacket::new(data(4)));
        assert_ne!(SharedPacket::new(data(4)), SharedPacket::new(data(5)));
        assert_eq!(SharedPacket::new(data(4)), data(4));
    }
}
