//! The simulation world: actors, networks, CPUs and the event loop.
//!
//! # Timing model
//!
//! A packet sent by an actor at simulated time `t` passes through
//! three serial resources:
//!
//! 1. **Sender CPU** — the send call costs
//!    [`CpuConfig::send_cost`](crate::CpuConfig::send_cost); calls
//!    queue behind whatever the node's CPU is already doing. The
//!    packet reaches the NIC when the call completes.
//! 2. **Medium** — each network transmits one frame at a time at its
//!    configured bandwidth; frames queue FIFO. A frame occupies the
//!    medium for `wire_frame_len(payload) × 8 / bandwidth` and then
//!    propagates with the configured latency. Because frames from all
//!    senders serialize through the single medium, FIFO order per
//!    `(sender, network)` holds exactly as the paper assumes for UDP
//!    on a LAN (§5, footnote 2) — and *only* per network, which is
//!    precisely the reordering the RRP algorithms must tolerate.
//!    The optional [`NetworkConfig::duplicate`] and
//!    [`NetworkConfig::reorder`] knobs deliberately break the
//!    per-receiver no-duplicates and FIFO guarantees, for stress
//!    testing beyond the paper's LAN assumptions.
//!
//! [`NetworkConfig::duplicate`]: crate::NetworkConfig::duplicate
//! [`NetworkConfig::reorder`]: crate::NetworkConfig::reorder
//! 3. **Receiver CPU** — on arrival the packet queues for the
//!    receiver's CPU and costs
//!    [`CpuConfig::recv_cost`](crate::CpuConfig::recv_cost); the actor
//!    sees it when processing completes.
//!
//! Loss draws and fault checks happen on the medium, so a blocked or
//! lost frame still never reorders the survivors.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use totem_wire::{frame::wire_frame_len, NetworkId, NodeId, Packet, SharedPacket, Transition};

use crate::config::SimConfig;
use crate::event::EventQueue;
use crate::fault::{FaultCommand, FaultPlane};
use crate::stats::SimStats;
use crate::time::{SimDuration, SimTime};
use crate::trace::{TraceEvent, TraceKind, TraceLog, TracedPacket, TransitionRecord};

/// Protocol logic hosted by the simulator.
///
/// Implementations are plain state machines: they receive callbacks
/// with the current simulated time and emit effects through the
/// [`Ctx`].
pub trait Actor {
    /// Called once at simulation start (time zero).
    fn on_start(&mut self, now: SimTime, ctx: &mut Ctx<'_>);
    /// Called when a packet addressed to (or broadcast past) this node
    /// has been received *and processed* by the node's CPU.
    fn on_packet(
        &mut self,
        now: SimTime,
        net: NetworkId,
        from: NodeId,
        pkt: SharedPacket,
        ctx: &mut Ctx<'_>,
    );
    /// Called when the alarm set via [`Ctx::set_alarm`] fires.
    fn on_alarm(&mut self, now: SimTime, ctx: &mut Ctx<'_>);
    /// Called when the node is crashed by
    /// [`FaultCommand::CrashNode`]. The actor should drop all volatile
    /// protocol state; it receives no further callbacks until
    /// restarted. No effects can be issued — the processor is dead.
    fn on_crash(&mut self, _now: SimTime) {}
    /// Called when the node is rebooted by
    /// [`FaultCommand::RestartNode`]. The actor starts cold, as after
    /// [`Actor::on_start`], and may issue effects (e.g. send a join
    /// message, arm a timer).
    fn on_restart(&mut self, _now: SimTime, _ctx: &mut Ctx<'_>) {}
    /// Called when the node's in-memory protocol state is corrupted by
    /// [`FaultCommand::CorruptState`]. The actor must mutate the named
    /// state slice as a deterministic function of `(target, salt)` —
    /// typically by seeding a small RNG from `salt` and handing it to
    /// the protocol machines' `corrupt` methods. The node stays alive
    /// and may issue effects (e.g. re-arm its timer for the now-wrong
    /// deadline). The default ignores the fault: actors without
    /// mutable protocol state are simply immune.
    fn on_corrupt(
        &mut self,
        _now: SimTime,
        _target: crate::CorruptionTarget,
        _salt: u64,
        _ctx: &mut Ctx<'_>,
    ) {
    }
}

/// The effect interface handed to actors during callbacks.
///
/// Effects are buffered and applied by the world when the callback
/// returns, in the order they were issued.
#[derive(Debug)]
pub struct Ctx<'a> {
    me: NodeId,
    now: SimTime,
    nodes: usize,
    networks: usize,
    sends: &'a mut Vec<(NetworkId, Option<NodeId>, SharedPacket)>,
    alarm: &'a mut Option<Option<SimTime>>,
    cpu: &'a mut SimDuration,
    transitions: &'a mut Vec<Transition>,
}

impl Ctx<'_> {
    /// This node's identifier.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of nodes in the world.
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// Number of redundant networks.
    pub fn network_count(&self) -> usize {
        self.networks
    }

    /// Broadcasts `pkt` on `net` to every other node.
    pub fn broadcast(&mut self, net: NetworkId, pkt: impl Into<SharedPacket>) {
        assert!(net.index() < self.networks, "network out of range");
        self.sends.push((net, None, pkt.into()));
    }

    /// Unicasts `pkt` on `net` to `dst`.
    ///
    /// A destination outside the simulated universe silently drops the
    /// frame, like a datagram addressed to a host that does not exist.
    /// State-corruption faults can plant phantom processors in a
    /// membership view, and the protocol's answer to a token sent into
    /// the void is token-loss reformation — not a crash.
    pub fn unicast(&mut self, net: NetworkId, dst: NodeId, pkt: impl Into<SharedPacket>) {
        assert!(net.index() < self.networks, "network out of range");
        if dst.index() >= self.nodes {
            return;
        }
        self.sends.push((net, Some(dst), pkt.into()));
    }

    /// Arms (or re-arms) this node's single alarm to fire at `at`.
    /// A later call replaces an earlier one.
    pub fn set_alarm(&mut self, at: SimTime) {
        *self.alarm = Some(Some(at));
    }

    /// Cancels any pending alarm.
    pub fn cancel_alarm(&mut self) {
        *self.alarm = Some(None);
    }

    /// Charges additional processing time to this node's CPU (e.g.
    /// protocol work per delivered message). Subsequent receptions and
    /// sends queue behind it.
    pub fn consume_cpu(&mut self, cost: SimDuration) {
        *self.cpu = *self.cpu + cost;
    }

    /// Reports a protocol state-machine transition. Recorded into the
    /// world's [`TraceLog`] (timestamped and attributed to this node)
    /// when tracing is enabled; discarded otherwise.
    pub fn note_transition(&mut self, transition: Transition) {
        self.transitions.push(transition);
    }
}

#[derive(Debug)]
enum Ev {
    Start(NodeId),
    Alarm {
        node: NodeId,
        gen: u64,
    },
    /// Packet finished the sender's CPU and reached the NIC.
    MediumEnter {
        net: NetworkId,
        from: NodeId,
        dst: Option<NodeId>,
        pkt: SharedPacket,
    },
    /// One frame arrived at a *cohort* of receivers' NICs at the same
    /// instant; each queues for its own CPU. Batching the whole
    /// broadcast fan-out into one heap entry makes a broadcast cost
    /// O(1) queue operations instead of O(receivers), and the cohort
    /// preserves the receiver iteration order the per-receiver events
    /// had (the heap is FIFO among equal timestamps).
    RxArrive {
        cohort: Vec<NodeId>,
        net: NetworkId,
        from: NodeId,
        pkt: SharedPacket,
    },
    /// Receiver CPU finished processing; hand to the actor.
    RxDone {
        node: NodeId,
        net: NetworkId,
        from: NodeId,
        pkt: SharedPacket,
    },
    Fault(FaultCommand),
}

/// The discrete-event simulation world.
///
/// See the [crate docs](crate) for an end-to-end example.
pub struct SimWorld<A> {
    cfg: SimConfig,
    actors: Vec<A>,
    queue: EventQueue<Ev>,
    now: SimTime,
    rng: SmallRng,
    faults: FaultPlane,
    stats: SimStats,
    /// Per-node instant at which the CPU becomes free.
    cpu_free: Vec<SimTime>,
    /// Per-network instant at which the medium becomes free.
    medium_free: Vec<SimTime>,
    /// Per-node alarm state: (armed generation, current generation).
    alarm_gen: Vec<u64>,
    /// Deadline of each node's currently scheduled alarm event, if
    /// any. Re-arming to the *same* instant is a no-op (the scheduled
    /// event already fires then), which keeps the one-alarm-per-node
    /// pattern of re-arming after every callback from pushing a stale
    /// heap entry per dispatch.
    alarm_at: Vec<Option<SimTime>>,
    started: bool,
    // Scratch buffers reused across dispatches.
    scratch_sends: Vec<(NetworkId, Option<NodeId>, SharedPacket)>,
    scratch_alarm: Option<Option<SimTime>>,
    scratch_transitions: Vec<Transition>,
    /// Recycled cohort buffers: consumed `RxArrive` cohorts return
    /// here so steady-state broadcasts allocate nothing for fan-out.
    cohort_pool: Vec<Vec<NodeId>>,
    trace: Option<TraceLog>,
}

impl<A: std::fmt::Debug> std::fmt::Debug for SimWorld<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimWorld")
            .field("now", &self.now)
            .field("nodes", &self.cfg.nodes)
            .field("networks", &self.cfg.network_count())
            .field("pending_events", &self.queue.len())
            .finish()
    }
}

impl<A: Actor> SimWorld<A> {
    /// Creates a world hosting `actors` under `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `actors.len() != cfg.nodes`.
    pub fn new(cfg: SimConfig, actors: Vec<A>) -> Self {
        assert_eq!(actors.len(), cfg.nodes, "one actor per configured node required");
        let nodes = cfg.nodes;
        let networks = cfg.network_count();
        let mut queue = EventQueue::new();
        for i in 0..nodes {
            queue.push(SimTime::ZERO, Ev::Start(NodeId::new(i as u16)));
        }
        SimWorld {
            rng: SmallRng::seed_from_u64(cfg.seed),
            faults: FaultPlane::new(nodes, networks),
            stats: SimStats::new(networks),
            cpu_free: vec![SimTime::ZERO; nodes],
            medium_free: vec![SimTime::ZERO; networks],
            alarm_gen: vec![0; nodes],
            alarm_at: vec![None; nodes],
            actors,
            queue,
            now: SimTime::ZERO,
            started: false,
            scratch_sends: Vec::new(),
            scratch_alarm: None,
            scratch_transitions: Vec::new(),
            cohort_pool: Vec::new(),
            trace: None,
            cfg,
        }
    }

    /// Enables wire-level tracing, retaining up to `capacity` events.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(TraceLog::new(capacity));
    }

    /// The trace log, if tracing was enabled.
    pub fn trace(&self) -> Option<&TraceLog> {
        self.trace.as_ref()
    }

    fn trace_event(
        &mut self,
        kind: TraceKind,
        net: NetworkId,
        from: NodeId,
        to: Option<NodeId>,
        pkt: &Packet,
    ) {
        let Some(log) = self.trace.as_mut() else { return };
        let packet = match pkt {
            Packet::Data(d) => TracedPacket::Data { seq: d.seq.as_u64() },
            Packet::Token(t) => {
                TracedPacket::Token { rotation: t.rotation.as_u64(), seq: t.seq.as_u64() }
            }
            Packet::Join(_) => TracedPacket::Join,
            Packet::Commit(_) => TracedPacket::Commit,
            Packet::RingPaxos(m) => {
                TracedPacket::Backend { iid: m.iid().map_or(0, |i| i.as_u64()) }
            }
        };
        log.push(TraceEvent { at: self.now, kind, net, from, to, packet });
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The configuration the world was built with.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Wire-level statistics accumulated so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Immutable access to an actor.
    pub fn actor(&self, id: NodeId) -> &A {
        &self.actors[id.index()]
    }

    /// Mutable access to an actor (for inspection/configuration only —
    /// effects issued outside a callback are not collected; use
    /// [`SimWorld::with_actor`] to interact).
    pub fn actor_mut(&mut self, id: NodeId) -> &mut A {
        &mut self.actors[id.index()]
    }

    /// Iterates over all actors.
    pub fn actors(&self) -> impl Iterator<Item = &A> {
        self.actors.iter()
    }

    /// Runs `f` against an actor with a live [`Ctx`], applying any
    /// effects it issues. This is how external harness code (e.g. a
    /// workload generator submitting application messages) interacts
    /// with a node mid-simulation.
    pub fn with_actor<R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut A, SimTime, &mut Ctx<'_>) -> R,
    ) -> R {
        let now = self.now;
        let (r, sends, alarm, cpu, transitions) = {
            let mut sends = std::mem::take(&mut self.scratch_sends);
            let mut alarm = self.scratch_alarm.take();
            let mut cpu = SimDuration::ZERO;
            let mut transitions = std::mem::take(&mut self.scratch_transitions);
            let mut ctx = Ctx {
                me: id,
                now,
                nodes: self.cfg.nodes,
                networks: self.cfg.network_count(),
                sends: &mut sends,
                alarm: &mut alarm,
                cpu: &mut cpu,
                transitions: &mut transitions,
            };
            let r = f(&mut self.actors[id.index()], now, &mut ctx);
            (r, sends, alarm, cpu, transitions)
        };
        self.apply_effects(id, now, sends, alarm, cpu, transitions);
        r
    }

    /// Schedules a fault command at a simulated instant.
    pub fn schedule_fault(&mut self, at: SimTime, cmd: FaultCommand) {
        self.queue.push(at.max(self.now), Ev::Fault(cmd));
    }

    /// Applies a fault command immediately.
    pub fn fault_now(&mut self, cmd: FaultCommand) {
        self.apply_fault(cmd);
    }

    /// Applies a fault command, handling the processor crash–recovery
    /// commands' side effects on actor and scheduler state.
    fn apply_fault(&mut self, cmd: FaultCommand) {
        match cmd {
            FaultCommand::CrashNode { node } => {
                if self.faults.is_crashed(node) {
                    return; // already dead
                }
                self.faults.apply(&cmd);
                // Invalidate any armed alarm: a dead node's timers die
                // with it.
                self.alarm_gen[node.index()] += 1;
                self.alarm_at[node.index()] = None;
                // Whatever the CPU was doing is abandoned.
                self.cpu_free[node.index()] = self.now;
                self.actors[node.index()].on_crash(self.now);
            }
            FaultCommand::RestartNode { node } => {
                if !self.faults.is_crashed(node) {
                    return; // already alive
                }
                self.faults.apply(&cmd);
                self.cpu_free[node.index()] = self.now;
                self.dispatch(node, |a, now, ctx| a.on_restart(now, ctx));
            }
            FaultCommand::CorruptState { node, target, salt } => {
                if self.faults.is_crashed(node) {
                    return; // a dead node has no volatile state to corrupt
                }
                self.faults.apply(&cmd); // range check only
                self.dispatch(node, |a, now, ctx| a.on_corrupt(now, target, salt, ctx));
            }
            _ => self.faults.apply(&cmd),
        }
    }

    /// Read access to the current fault state.
    pub fn faults(&self) -> &FaultPlane {
        &self.faults
    }

    /// Processes events until simulated time `until` (inclusive);
    /// afterwards `now() == until`.
    pub fn run_until(&mut self, until: SimTime) {
        while let Some(t) = self.queue.peek_time() {
            if t > until {
                break;
            }
            self.step();
        }
        self.now = self.now.max(until);
    }

    /// Number of events still queued. With
    /// [`SimWorld::peek_event_time`] this gives external drivers (the
    /// bounded model checker's executor) a deterministic virtual-time
    /// stepping interface: advance, observe quiescence, advance again.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Simulated instant of the earliest queued event, if any.
    pub fn peek_event_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Processes the single earliest event. Returns `false` if the
    /// queue was empty.
    pub fn step(&mut self) -> bool {
        let Some((t, ev)) = self.queue.pop() else { return false };
        debug_assert!(t >= self.now, "time must not run backwards");
        self.now = t;
        self.started = true;
        match ev {
            Ev::Start(node) => {
                if !self.faults.is_crashed(node) {
                    self.dispatch(node, |a, now, ctx| a.on_start(now, ctx));
                }
            }
            Ev::Alarm { node, gen } => {
                if self.alarm_gen[node.index()] == gen {
                    // The live alarm is consumed (fired or died with a
                    // crashed node) — the next set_alarm must schedule
                    // a fresh event even for the same instant.
                    self.alarm_at[node.index()] = None;
                    if !self.faults.is_crashed(node) {
                        self.dispatch(node, |a, now, ctx| a.on_alarm(now, ctx));
                    }
                }
            }
            Ev::MediumEnter { net, from, dst, pkt } => self.medium_enter(net, from, dst, pkt),
            Ev::RxArrive { mut cohort, net, from, pkt } => {
                let payload = pkt.wire_payload_len();
                for node in cohort.drain(..) {
                    // A node that crashed after the frame left the
                    // medium never sees it.
                    if self.faults.is_crashed(node) {
                        continue;
                    }
                    // Queue for the receiver's CPU (FIFO in arrival
                    // order).
                    let cost = self.cfg.cpus[node.index()].recv_cost(payload);
                    let start = self.cpu_free[node.index()].max(self.now);
                    let done = start + cost;
                    self.cpu_free[node.index()] = done;
                    self.queue.push(done, Ev::RxDone { node, net, from, pkt: pkt.clone() });
                }
                self.cohort_pool.push(cohort);
            }
            Ev::RxDone { node, net, from, pkt } => {
                // A crash can land between RxArrive and RxDone; the
                // packet dies with the processor.
                if !self.faults.is_crashed(node) {
                    self.dispatch(node, |a, now, ctx| a.on_packet(now, net, from, pkt, ctx));
                }
            }
            Ev::Fault(cmd) => self.apply_fault(cmd),
        }
        true
    }

    fn dispatch(&mut self, node: NodeId, f: impl FnOnce(&mut A, SimTime, &mut Ctx<'_>)) {
        self.with_actor(node, |a, now, ctx| f(a, now, ctx));
    }

    fn apply_effects(
        &mut self,
        node: NodeId,
        now: SimTime,
        mut sends: Vec<(NetworkId, Option<NodeId>, SharedPacket)>,
        alarm: Option<Option<SimTime>>,
        cpu: SimDuration,
        mut transitions: Vec<Transition>,
    ) {
        if let Some(log) = self.trace.as_mut() {
            for transition in transitions.drain(..) {
                log.push_transition(TransitionRecord { at: now, node, transition });
            }
        } else {
            transitions.clear();
        }
        // Return the scratch buffer.
        self.scratch_transitions = transitions;
        for (net, dst, pkt) in sends.drain(..) {
            // The send call consumes sender CPU; the packet reaches the
            // NIC when the call completes.
            let cost = self.cfg.cpus[node.index()].send_cost(pkt.wire_payload_len());
            let start = self.cpu_free[node.index()].max(now);
            let nic_at = start + cost;
            self.cpu_free[node.index()] = nic_at;
            self.queue.push(nic_at, Ev::MediumEnter { net, from: node, dst, pkt });
        }
        // Return the scratch buffer.
        self.scratch_sends = sends;
        if cpu > SimDuration::ZERO {
            // Explicitly charged processing time (per-delivery
            // protocol work) occupies the CPU *after* the sends: a
            // node hands packets and the token to the NIC before it
            // does application-delivery work, so the charge delays
            // its future processing, not the token it just forwarded.
            let busy = self.cpu_free[node.index()].max(now);
            self.cpu_free[node.index()] = busy + cpu;
        }
        match alarm {
            None => {}
            Some(None) => {
                self.alarm_gen[node.index()] += 1; // cancel: invalidate outstanding
                self.alarm_at[node.index()] = None;
            }
            Some(Some(at)) => {
                let fire = at.max(now);
                // Re-arming to the already-scheduled instant is a
                // no-op: the pending event fires then anyway.
                if self.alarm_at[node.index()] != Some(fire) {
                    self.alarm_gen[node.index()] += 1;
                    let gen = self.alarm_gen[node.index()];
                    self.alarm_at[node.index()] = Some(fire);
                    self.queue.push(fire, Ev::Alarm { node, gen });
                }
            }
        }
    }

    fn medium_enter(
        &mut self,
        net: NetworkId,
        from: NodeId,
        dst: Option<NodeId>,
        pkt: SharedPacket,
    ) {
        if !self.faults.can_send(from, net) {
            self.stats.net_mut(net).blocked_sends += 1;
            self.trace_event(TraceKind::BlockedSend, net, from, None, &pkt);
            return;
        }
        let netcfg = self.cfg.networks[net.index()].clone();
        let wire_len = wire_frame_len(pkt.wire_payload_len());
        // Serialize through the shared medium.
        let tx_start = self.medium_free[net.index()].max(self.now);
        let tx_dur = SimDuration::transmission(wire_len, netcfg.bandwidth_bps);
        self.medium_free[net.index()] = tx_start + tx_dur;
        let stats = self.stats.net_mut(net);
        stats.frames_sent += 1;
        stats.wire_bytes += wire_len as u64;
        self.trace_event(TraceKind::Sent, net, from, dst, &pkt);

        if netcfg.frame_loss > 0.0 && self.rng.gen_bool(netcfg.frame_loss) {
            self.stats.net_mut(net).frames_lost += 1;
            self.trace_event(TraceKind::LostFrame, net, from, None, &pkt);
            return;
        }
        let arrive = tx_start + tx_dur + netcfg.latency;
        // Receivers are grouped into at most two cohorts by arrival
        // instant — on-time and reordered-late — each a single heap
        // push, so a broadcast costs O(1) queue operations and O(1)
        // allocations regardless of cluster size. Receivers are
        // appended in iteration order, and the event queue is FIFO
        // among equal timestamps, so per-receiver processing order
        // (and thus every RNG draw and CPU-queue decision downstream)
        // is identical to pushing one event per receiver.
        let mut on_time: Vec<NodeId> = self.cohort_pool.pop().unwrap_or_default();
        let mut late: Vec<NodeId> = self.cohort_pool.pop().unwrap_or_default();
        let rx_loss = netcfg.rx_loss;
        let mut each = |to: NodeId, world: &mut Self| {
            if !world.faults.can_deliver(from, to, net) {
                world.stats.net_mut(net).blocked_deliveries += 1;
                world.trace_event(TraceKind::BlockedDelivery, net, from, Some(to), &pkt);
                return;
            }
            if rx_loss > 0.0 && world.rng.gen_bool(rx_loss) {
                world.stats.net_mut(net).rx_lost += 1;
                world.trace_event(TraceKind::LostRx, net, from, Some(to), &pkt);
                return;
            }
            let mut arrive_at = arrive;
            if netcfg.reorder > 0.0 && world.rng.gen_bool(netcfg.reorder) {
                // A reordered frame arrives late enough to fall behind
                // frames sent after it — a deliberate violation of the
                // per-(sender, network) FIFO property.
                world.stats.net_mut(net).reordered += 1;
                arrive_at = arrive + netcfg.reorder_delay;
            }
            // Group strictly by arrival instant: a "reordered" frame
            // with zero extra delay still lands in the on-time cohort,
            // exactly where its per-receiver event would have sorted.
            let cohort = if arrive_at == arrive { &mut on_time } else { &mut late };
            world.stats.net_mut(net).deliveries += 1;
            world.trace_event(TraceKind::Delivered, net, from, Some(to), &pkt);
            cohort.push(to);
            if netcfg.duplicate > 0.0 && world.rng.gen_bool(netcfg.duplicate) {
                world.stats.net_mut(net).duplicated += 1;
                world.stats.net_mut(net).deliveries += 1;
                world.trace_event(TraceKind::Delivered, net, from, Some(to), &pkt);
                cohort.push(to);
            }
            // Deterministic duplication (FaultCommand::DuplicateNet):
            // no RNG draw, so enabling it never perturbs the loss or
            // reorder streams of a seeded run.
            if world.faults.is_duplicating(net) {
                world.stats.net_mut(net).duplicated += 1;
                world.stats.net_mut(net).deliveries += 1;
                world.trace_event(TraceKind::Delivered, net, from, Some(to), &pkt);
                cohort.push(to);
            }
        };
        match dst {
            Some(d) => each(d, self),
            None => {
                for n in 0..self.cfg.nodes as u16 {
                    let to = NodeId::new(n);
                    if to != from {
                        each(to, self);
                    }
                }
            }
        }
        if on_time.is_empty() {
            self.cohort_pool.push(on_time);
        } else {
            self.queue.push(arrive, Ev::RxArrive { cohort: on_time, net, from, pkt: pkt.clone() });
        }
        if late.is_empty() {
            self.cohort_pool.push(late);
        } else {
            let at = arrive + netcfg.reorder_delay;
            self.queue.push(at, Ev::RxArrive { cohort: late, net, from, pkt });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CpuConfig, NetworkConfig};
    use totem_wire::{RingId, Seq, Token};

    /// Records every packet it sees; broadcasts `to_send` packets on
    /// start.
    struct Recorder {
        to_send: Vec<(NetworkId, Packet)>,
        seen: Vec<(SimTime, NetworkId, NodeId, SharedPacket)>,
        alarms: Vec<SimTime>,
        alarm_at: Option<SimTime>,
        crashes: Vec<SimTime>,
        restarts: Vec<SimTime>,
    }

    impl Recorder {
        fn new() -> Self {
            Recorder {
                to_send: vec![],
                seen: vec![],
                alarms: vec![],
                alarm_at: None,
                crashes: vec![],
                restarts: vec![],
            }
        }
    }

    impl Actor for Recorder {
        fn on_start(&mut self, _now: SimTime, ctx: &mut Ctx<'_>) {
            for (net, pkt) in self.to_send.drain(..) {
                ctx.broadcast(net, pkt);
            }
            if let Some(at) = self.alarm_at {
                ctx.set_alarm(at);
            }
        }
        fn on_packet(
            &mut self,
            now: SimTime,
            net: NetworkId,
            from: NodeId,
            pkt: SharedPacket,
            _ctx: &mut Ctx<'_>,
        ) {
            self.seen.push((now, net, from, pkt));
        }
        fn on_alarm(&mut self, now: SimTime, _ctx: &mut Ctx<'_>) {
            self.alarms.push(now);
        }
        fn on_crash(&mut self, now: SimTime) {
            self.crashes.push(now);
        }
        fn on_restart(&mut self, now: SimTime, _ctx: &mut Ctx<'_>) {
            self.restarts.push(now);
        }
    }

    fn token_pkt(seq: u64) -> Packet {
        let mut t = Token::initial(RingId::new(NodeId::new(0), 1));
        t.seq = Seq::new(seq);
        Packet::Token(t)
    }

    fn world_with(n: usize, nets: usize, f: impl Fn(usize, &mut Recorder)) -> SimWorld<Recorder> {
        let cfg = SimConfig::lan(n, nets).with_cpu(CpuConfig::instant());
        let actors = (0..n)
            .map(|i| {
                let mut r = Recorder::new();
                f(i, &mut r);
                r
            })
            .collect();
        SimWorld::new(cfg, actors)
    }

    #[test]
    fn broadcast_reaches_everyone_but_the_sender() {
        let mut w = world_with(4, 1, |i, r| {
            if i == 0 {
                r.to_send.push((NetworkId::new(0), token_pkt(1)));
            }
        });
        w.run_until(SimTime::from_millis(10));
        assert!(w.actor(NodeId::new(0)).seen.is_empty());
        for i in 1..4 {
            assert_eq!(w.actor(NodeId::new(i)).seen.len(), 1);
        }
    }

    #[test]
    fn fifo_holds_per_sender_per_network() {
        let mut w = world_with(2, 1, |i, r| {
            if i == 0 {
                for s in 1..=50 {
                    r.to_send.push((NetworkId::new(0), token_pkt(s)));
                }
            }
        });
        w.run_until(SimTime::from_secs(1));
        let seqs: Vec<u64> = w
            .actor(NodeId::new(1))
            .seen
            .iter()
            .map(|(_, _, _, p)| match p.packet() {
                Packet::Token(t) => t.seq.as_u64(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(seqs, (1..=50).collect::<Vec<_>>());
    }

    #[test]
    fn latency_and_bandwidth_shape_arrival_time() {
        // One packet, instant CPU: arrival = transmission + latency.
        let net = NetworkConfig::ethernet_100mbit().with_latency(SimDuration::from_micros(50));
        let cfg = SimConfig::lan(2, 1).with_networks(net, 1).with_cpu(CpuConfig::instant());
        let mut a0 = Recorder::new();
        a0.to_send.push((NetworkId::new(0), token_pkt(1)));
        let mut w = SimWorld::new(cfg, vec![a0, Recorder::new()]);
        w.run_until(SimTime::from_millis(10));
        let (at, _, _, _) = w.actor(NodeId::new(1)).seen[0];
        let pkt = token_pkt(1);
        let expect = SimDuration::transmission(wire_frame_len(pkt.wire_payload_len()), 100_000_000)
            + SimDuration::from_micros(50);
        assert_eq!(at.as_nanos(), expect.as_nanos());
    }

    #[test]
    fn send_fault_blocks_at_the_medium() {
        let mut w = world_with(2, 2, |i, r| {
            if i == 0 {
                r.to_send.push((NetworkId::new(0), token_pkt(1)));
                r.to_send.push((NetworkId::new(1), token_pkt(2)));
            }
        });
        w.fault_now(FaultCommand::SendFault {
            node: NodeId::new(0),
            net: NetworkId::new(0),
            failed: true,
        });
        w.run_until(SimTime::from_millis(10));
        let seen = &w.actor(NodeId::new(1)).seen;
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0].1, NetworkId::new(1));
        assert_eq!(w.stats().net(NetworkId::new(0)).blocked_sends, 1);
    }

    #[test]
    fn scheduled_fault_takes_effect_at_its_time() {
        // Node 0 broadcasts at t=0 (delivered) and we kill the network
        // at t=1ms; a with_actor send at t=2ms is blocked.
        let mut w = world_with(2, 1, |i, r| {
            if i == 0 {
                r.to_send.push((NetworkId::new(0), token_pkt(1)));
            }
        });
        w.schedule_fault(
            SimTime::from_millis(1),
            FaultCommand::NetworkDown { net: NetworkId::new(0), down: true },
        );
        w.run_until(SimTime::from_millis(2));
        w.with_actor(NodeId::new(0), |_a, _now, ctx| {
            ctx.broadcast(NetworkId::new(0), token_pkt(2));
        });
        w.run_until(SimTime::from_millis(10));
        assert_eq!(w.actor(NodeId::new(1)).seen.len(), 1);
        assert_eq!(w.stats().net(NetworkId::new(0)).blocked_sends, 1);
    }

    #[test]
    fn alarm_fires_once_and_rearm_replaces() {
        let mut w = world_with(1, 1, |_, r| {
            r.alarm_at = Some(SimTime::from_millis(5));
        });
        w.run_until(SimTime::from_millis(20));
        assert_eq!(w.actor(NodeId::new(0)).alarms, vec![SimTime::from_millis(5)]);

        // Re-arm externally, then cancel before it fires.
        w.with_actor(NodeId::new(0), |_a, _now, ctx| ctx.set_alarm(SimTime::from_millis(30)));
        w.with_actor(NodeId::new(0), |_a, _now, ctx| ctx.cancel_alarm());
        w.run_until(SimTime::from_millis(50));
        assert_eq!(w.actor(NodeId::new(0)).alarms.len(), 1);
    }

    #[test]
    fn rx_loss_is_deterministic_per_seed() {
        let run = |seed| {
            let net = NetworkConfig::ethernet_100mbit().with_rx_loss(0.5);
            let cfg = SimConfig::lan(2, 1)
                .with_networks(net, 1)
                .with_cpu(CpuConfig::instant())
                .with_seed(seed);
            let mut a0 = Recorder::new();
            for s in 0..100 {
                a0.to_send.push((NetworkId::new(0), token_pkt(s)));
            }
            let mut w = SimWorld::new(cfg, vec![a0, Recorder::new()]);
            w.run_until(SimTime::from_secs(1));
            (w.actor(NodeId::new(1)).seen.len(), w.stats().net(NetworkId::new(0)).rx_lost)
        };
        let (seen_a, lost_a) = run(42);
        let (seen_b, lost_b) = run(42);
        assert_eq!((seen_a, lost_a), (seen_b, lost_b));
        assert_eq!(seen_a as u64 + lost_a, 100);
        assert!(lost_a > 10, "with p=0.5 over 100 frames, losses are near-certain");
        let (seen_c, _) = run(43);
        // Different seed almost surely differs; tolerate equality but
        // verify the mechanism ran.
        let _ = seen_c;
    }

    #[test]
    fn cpu_cost_serializes_receives() {
        // Two frames arrive back-to-back; with a 100µs recv cost the
        // second on_packet happens ≥100µs after the first.
        let cpu = CpuConfig {
            send_packet: SimDuration::ZERO,
            send_per_byte_ns: 0,
            recv_packet: SimDuration::from_micros(100),
            recv_per_byte_ns: 0,
            deliver_msg: SimDuration::ZERO,
            deliver_per_byte_ns: 0,
        };
        let cfg = SimConfig::lan(2, 1).with_cpu(cpu);
        let mut a0 = Recorder::new();
        a0.to_send.push((NetworkId::new(0), token_pkt(1)));
        a0.to_send.push((NetworkId::new(0), token_pkt(2)));
        let mut w = SimWorld::new(cfg, vec![a0, Recorder::new()]);
        w.run_until(SimTime::from_millis(10));
        let seen = &w.actor(NodeId::new(1)).seen;
        assert_eq!(seen.len(), 2);
        let gap = seen[1].0 - seen[0].0;
        assert!(gap >= SimDuration::from_micros(100), "gap was {gap}");
    }

    #[test]
    fn run_until_advances_clock_even_when_idle() {
        let mut w = world_with(1, 1, |_, _| {});
        w.run_until(SimTime::from_secs(3));
        assert_eq!(w.now(), SimTime::from_secs(3));
        assert!(!w.step());
    }

    #[test]
    #[should_panic(expected = "one actor per configured node")]
    fn actor_count_is_validated() {
        let cfg = SimConfig::lan(3, 1);
        let _ = SimWorld::new(cfg, vec![Recorder::new()]);
    }

    #[test]
    fn crashed_node_is_deaf_and_mute_until_restart() {
        let mut w = world_with(2, 1, |_, _| {});
        w.run_until(SimTime::from_millis(1));
        w.fault_now(FaultCommand::CrashNode { node: NodeId::new(1) });
        w.with_actor(NodeId::new(0), |_a, _now, ctx| {
            ctx.broadcast(NetworkId::new(0), token_pkt(1));
        });
        w.run_until(SimTime::from_millis(5));
        assert!(w.actor(NodeId::new(1)).seen.is_empty());
        assert_eq!(w.actor(NodeId::new(1)).crashes, vec![SimTime::from_millis(1)]);
        // The crashed node's own sends are suppressed at the medium.
        w.with_actor(NodeId::new(1), |_a, _now, ctx| {
            ctx.broadcast(NetworkId::new(0), token_pkt(2));
        });
        w.run_until(SimTime::from_millis(10));
        assert!(w.actor(NodeId::new(0)).seen.is_empty());
        assert_eq!(w.stats().net(NetworkId::new(0)).blocked_sends, 1);
        // Restart: traffic flows again and the hook fires.
        w.fault_now(FaultCommand::RestartNode { node: NodeId::new(1) });
        assert_eq!(w.actor(NodeId::new(1)).restarts.len(), 1);
        w.with_actor(NodeId::new(0), |_a, _now, ctx| {
            ctx.broadcast(NetworkId::new(0), token_pkt(3));
        });
        w.run_until(SimTime::from_millis(20));
        assert_eq!(w.actor(NodeId::new(1)).seen.len(), 1);
    }

    #[test]
    fn crash_cancels_pending_alarm_and_is_idempotent() {
        let mut w = world_with(1, 1, |_, r| {
            r.alarm_at = Some(SimTime::from_millis(5));
        });
        w.run_until(SimTime::from_millis(1));
        w.fault_now(FaultCommand::CrashNode { node: NodeId::new(0) });
        w.fault_now(FaultCommand::CrashNode { node: NodeId::new(0) }); // no-op
        w.run_until(SimTime::from_millis(20));
        assert!(w.actor(NodeId::new(0)).alarms.is_empty());
        assert_eq!(w.actor(NodeId::new(0)).crashes.len(), 1);
        // Restarting twice fires the hook once.
        w.fault_now(FaultCommand::RestartNode { node: NodeId::new(0) });
        w.fault_now(FaultCommand::RestartNode { node: NodeId::new(0) }); // no-op
        assert_eq!(w.actor(NodeId::new(0)).restarts.len(), 1);
    }

    #[test]
    fn scheduled_crash_takes_effect_at_its_time() {
        let mut w = world_with(2, 1, |_, _| {});
        w.schedule_fault(SimTime::from_millis(2), FaultCommand::CrashNode { node: NodeId::new(1) });
        w.run_until(SimTime::from_millis(1));
        w.with_actor(NodeId::new(0), |_a, _now, ctx| {
            ctx.broadcast(NetworkId::new(0), token_pkt(1));
        });
        w.run_until(SimTime::from_millis(5));
        // Sent before the crash instant: delivered.
        assert_eq!(w.actor(NodeId::new(1)).seen.len(), 1);
        w.with_actor(NodeId::new(0), |_a, _now, ctx| {
            ctx.broadcast(NetworkId::new(0), token_pkt(2));
        });
        w.run_until(SimTime::from_millis(10));
        // Sent after: dropped at delivery.
        assert_eq!(w.actor(NodeId::new(1)).seen.len(), 1);
        assert_eq!(w.actor(NodeId::new(1)).crashes, vec![SimTime::from_millis(2)]);
    }

    #[test]
    fn duplicate_knob_injects_extra_copies() {
        let net = NetworkConfig::ethernet_100mbit().with_duplicate(1.0);
        let cfg = SimConfig::lan(2, 1).with_networks(net, 1).with_cpu(CpuConfig::instant());
        let mut a0 = Recorder::new();
        for s in 0..5 {
            a0.to_send.push((NetworkId::new(0), token_pkt(s)));
        }
        let mut w = SimWorld::new(cfg, vec![a0, Recorder::new()]);
        w.run_until(SimTime::from_millis(10));
        assert_eq!(w.actor(NodeId::new(1)).seen.len(), 10);
        assert_eq!(w.stats().net(NetworkId::new(0)).duplicated, 5);
        assert_eq!(w.stats().net(NetworkId::new(0)).deliveries, 10);
    }

    #[test]
    fn reorder_knob_can_break_per_sender_fifo() {
        // Only the first frame is reordered (probability 1.0 for a
        // single draw is guaranteed); give it a delay far larger than
        // the back-to-back transmission gap so it lands behind later
        // frames.
        let net = NetworkConfig::ethernet_100mbit().with_reorder(0.5, SimDuration::from_millis(2));
        let cfg =
            SimConfig::lan(2, 1).with_networks(net, 1).with_cpu(CpuConfig::instant()).with_seed(1);
        let mut a0 = Recorder::new();
        for s in 0..20 {
            a0.to_send.push((NetworkId::new(0), token_pkt(s)));
        }
        let mut w = SimWorld::new(cfg, vec![a0, Recorder::new()]);
        w.run_until(SimTime::from_secs(1));
        assert_eq!(w.actor(NodeId::new(1)).seen.len(), 20);
        let reordered = w.stats().net(NetworkId::new(0)).reordered;
        assert!(reordered > 0, "with p=0.5 over 20 frames, a reorder is near-certain");
        let seqs: Vec<u64> = w
            .actor(NodeId::new(1))
            .seen
            .iter()
            .map(|(_, _, _, p)| match p.packet() {
                Packet::Token(t) => t.seq.as_u64(),
                _ => unreachable!(),
            })
            .collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_ne!(seqs, sorted, "delayed frames must fall behind later traffic");
    }

    #[test]
    fn unicast_reaches_only_destination() {
        let cfg = SimConfig::lan(3, 1).with_cpu(CpuConfig::instant());
        let mut w = SimWorld::new(cfg, vec![Recorder::new(), Recorder::new(), Recorder::new()]);
        w.with_actor(NodeId::new(0), |_a, _now, ctx| {
            ctx.unicast(NetworkId::new(0), NodeId::new(2), token_pkt(9));
        });
        w.run_until(SimTime::from_millis(5));
        assert!(w.actor(NodeId::new(1)).seen.is_empty());
        assert_eq!(w.actor(NodeId::new(2)).seen.len(), 1);
    }

    #[test]
    fn unicast_to_phantom_destination_is_a_silent_drop() {
        // Membership corruption can plant a processor id outside the
        // simulated universe; sending it the token must behave like a
        // datagram to a dead host (dropped), not crash the world.
        let cfg = SimConfig::lan(2, 1).with_cpu(CpuConfig::instant());
        let mut w = SimWorld::new(cfg, vec![Recorder::new(), Recorder::new()]);
        w.with_actor(NodeId::new(0), |_a, _now, ctx| {
            ctx.unicast(NetworkId::new(0), NodeId::new(0x4007), token_pkt(9));
        });
        w.run_until(SimTime::from_millis(5));
        assert!(w.actor(NodeId::new(1)).seen.is_empty());
    }
}
