//! Optional packet-level tracing of a simulation run.
//!
//! When enabled on a [`crate::SimWorld`], every wire-level event —
//! frames entering a medium, deliveries, losses, blocks — is appended
//! to a bounded in-memory log with its timestamp. Useful for
//! debugging protocol schedules ("where was the token at t=1.2 ms?")
//! and for tests that assert on wire-level behaviour rather than
//! protocol outcomes.

use serde::{Deserialize, Serialize};

use totem_wire::{NetworkId, NodeId, Transition};

use crate::time::SimTime;

/// What happened to a packet on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceKind {
    /// The frame entered the medium (transmission started).
    Sent,
    /// The frame arrived at a receiver's NIC.
    Delivered,
    /// The frame was dropped by the medium (frame loss).
    LostFrame,
    /// One receiver's copy was dropped (receive loss).
    LostRx,
    /// The send was suppressed by a send fault or a dead network.
    BlockedSend,
    /// A receiver's copy was suppressed by a receive fault or a
    /// partition.
    BlockedDelivery,
}

impl core::fmt::Display for TraceKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            TraceKind::Sent => "sent",
            TraceKind::Delivered => "delivered",
            TraceKind::LostFrame => "lost (frame)",
            TraceKind::LostRx => "lost (rx)",
            TraceKind::BlockedSend => "blocked (send)",
            TraceKind::BlockedDelivery => "blocked (delivery)",
        };
        f.write_str(s)
    }
}

/// A short classification of the traced packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TracedPacket {
    /// Broadcast data frame, with its ring sequence number.
    Data {
        /// The packet's sequence number.
        seq: u64,
    },
    /// Regular token, with `(rotation, seq)`.
    Token {
        /// Rotation counter.
        rotation: u64,
        /// Sequence number carried.
        seq: u64,
    },
    /// Membership join message.
    Join,
    /// Commit token.
    Commit,
    /// A non-Totem backend's protocol message (e.g. Ring Paxos), with
    /// the consensus instance it names (0 when it names none).
    Backend {
        /// The consensus instance, as a raw counter.
        iid: u64,
    },
}

/// One wire-level event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// When it happened.
    pub at: SimTime,
    /// What happened.
    pub kind: TraceKind,
    /// The network involved.
    pub net: NetworkId,
    /// The transmitting node.
    pub from: NodeId,
    /// The receiving node (`None` for medium-level events).
    pub to: Option<NodeId>,
    /// What kind of packet.
    pub packet: TracedPacket,
}

/// One protocol state-machine transition, attributed to the node and
/// simulated instant at which it fired. Actors report transitions via
/// [`crate::Ctx::note_transition`]; the conformance gate
/// (`cargo xtask conformance`) consumes the log to check that every
/// documented transition is exercised.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransitionRecord {
    /// When the machine moved.
    pub at: SimTime,
    /// The node whose machine moved.
    pub node: NodeId,
    /// The transition itself (machine, from, event, to).
    pub transition: Transition,
}

/// A bounded in-memory trace log (oldest events are dropped once the
/// capacity is reached). Wire-level events and state-machine
/// transitions are retained in separate ring buffers of the same
/// capacity, so heavy wire traffic cannot evict the (much rarer)
/// transition records.
#[derive(Debug, Default)]
pub struct TraceLog {
    events: std::collections::VecDeque<TraceEvent>,
    transitions: std::collections::VecDeque<TransitionRecord>,
    capacity: usize,
    dropped: u64,
    transitions_dropped: u64,
}

impl TraceLog {
    /// A log retaining up to `capacity` events.
    pub fn new(capacity: usize) -> Self {
        TraceLog {
            events: std::collections::VecDeque::new(),
            transitions: std::collections::VecDeque::new(),
            capacity: capacity.max(1),
            dropped: 0,
            transitions_dropped: 0,
        }
    }

    pub(crate) fn push(&mut self, ev: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }

    pub(crate) fn push_transition(&mut self, rec: TransitionRecord) {
        if self.transitions.len() == self.capacity {
            self.transitions.pop_front();
            self.transitions_dropped += 1;
        }
        self.transitions.push_back(rec);
    }

    /// All retained events in time order.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been traced.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// How many events were evicted because the capacity was reached.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events of one kind, in time order.
    pub fn of_kind(&self, kind: TraceKind) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// Token events only, in time order — the token's itinerary.
    pub fn token_itinerary(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(|e| matches!(e.packet, TracedPacket::Token { .. }))
    }

    /// All retained state-machine transitions in time order.
    pub fn transitions(&self) -> impl Iterator<Item = &TransitionRecord> {
        self.transitions.iter()
    }

    /// Number of retained transition records.
    pub fn transition_count(&self) -> usize {
        self.transitions.len()
    }

    /// How many transition records were evicted at capacity.
    pub fn transitions_dropped(&self) -> u64 {
        self.transitions_dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at_ns: u64, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            at: SimTime::from_nanos(at_ns),
            kind,
            net: NetworkId::new(0),
            from: NodeId::new(0),
            to: None,
            packet: TracedPacket::Token { rotation: 1, seq: at_ns },
        }
    }

    #[test]
    fn bounded_log_evicts_oldest() {
        let mut log = TraceLog::new(3);
        for i in 0..5 {
            log.push(ev(i, TraceKind::Sent));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 2);
        let first = log.events().next().unwrap();
        assert_eq!(first.at, SimTime::from_nanos(2));
    }

    #[test]
    fn transition_buffer_is_bounded_separately() {
        let mut log = TraceLog::new(2);
        for i in 0..4u64 {
            log.push(ev(i, TraceKind::Sent));
            log.push_transition(TransitionRecord {
                at: SimTime::from_nanos(i),
                node: NodeId::new(0),
                transition: Transition { machine: "m", from: "A", event: "E", to: "B" },
            });
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.transition_count(), 2);
        assert_eq!(log.transitions_dropped(), 2);
        let last = log.transitions().last().unwrap();
        assert_eq!(last.at, SimTime::from_nanos(3));
        assert_eq!(last.transition.to_string(), "m: A --E--> B");
    }

    #[test]
    fn kind_filter_selects() {
        let mut log = TraceLog::new(10);
        log.push(ev(1, TraceKind::Sent));
        log.push(ev(2, TraceKind::Delivered));
        log.push(ev(3, TraceKind::Sent));
        assert_eq!(log.of_kind(TraceKind::Sent).count(), 2);
        assert_eq!(log.of_kind(TraceKind::LostRx).count(), 0);
        assert_eq!(log.token_itinerary().count(), 3);
    }
}
