//! Simulated time: nanosecond-resolution instants and durations.
//!
//! The simulator never consults the wall clock; all timing flows from
//! [`SimTime`] values produced by the event queue, which is what makes
//! executions deterministic and replayable.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A span of simulated time, in nanoseconds.
///
/// # Example
///
/// ```
/// # use totem_sim::SimDuration;
/// let d = SimDuration::from_millis(10);
/// assert_eq!(d.as_nanos(), 10_000_000);
/// assert_eq!(d * 3, SimDuration::from_millis(30));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// The duration in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration in (truncated) microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// The duration in (truncated) milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// The duration in seconds as a float, for rate computations.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Transmission time of `bytes` at `bits_per_sec` on a serial
    /// medium.
    ///
    /// # Example
    ///
    /// ```
    /// # use totem_sim::SimDuration;
    /// // 1518 bytes at 100 Mbit/s ≈ 121.4 µs
    /// let d = SimDuration::transmission(1518, 100_000_000);
    /// assert_eq!(d.as_micros(), 121);
    /// ```
    pub fn transmission(bytes: usize, bits_per_sec: u64) -> Self {
        debug_assert!(bits_per_sec > 0, "bandwidth must be positive");
        SimDuration((bytes as u128 * 8 * 1_000_000_000 / bits_per_sec as u128) as u64)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}µs", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl core::ops::Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

/// An instant in simulated time, measured from the start of the run.
///
/// # Example
///
/// ```
/// # use totem_sim::{SimDuration, SimTime};
/// let t = SimTime::ZERO + SimDuration::from_millis(5);
/// assert_eq!(t.elapsed_since(SimTime::ZERO), SimDuration::from_millis(5));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant `ns` nanoseconds after the start.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant `ms` milliseconds after the start.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates an instant `s` seconds after the start.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Nanoseconds since the start of the run.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time elapsed since `earlier` (zero if `earlier` is later).
    pub fn elapsed_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.as_nanos())
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.as_nanos();
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1000));
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1000));
    }

    #[test]
    fn transmission_time_100mbit() {
        // 100 Mbit/s moves 12.5 bytes per microsecond.
        let d = SimDuration::transmission(1250, 100_000_000);
        assert_eq!(d.as_micros(), 100);
    }

    #[test]
    fn transmission_time_rounds_down_but_never_zero_for_big_frames() {
        let d = SimDuration::transmission(1518, 1_000_000_000); // gigabit
        assert!(d.as_nanos() > 0);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::from_millis(2) + SimDuration::from_micros(500);
        assert_eq!(t.as_nanos(), 2_500_000);
        assert_eq!(t - SimTime::from_millis(1), SimDuration::from_micros(1500));
        assert_eq!(SimTime::from_millis(1) - t, SimDuration::ZERO); // saturates
    }

    #[test]
    fn display_pretty_prints_scales() {
        assert_eq!(SimDuration::from_nanos(5).to_string(), "5ns");
        assert_eq!(SimDuration::from_micros(5).to_string(), "5.000µs");
        assert_eq!(SimDuration::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimDuration::from_secs(5).to_string(), "5.000s");
    }

    #[test]
    fn max_of_instants() {
        let a = SimTime::from_millis(1);
        let b = SimTime::from_millis(2);
        assert_eq!(a.max(b), b);
        assert_eq!(b.max(a), b);
    }

    #[test]
    fn rate_helper_as_secs_f64() {
        assert!((SimDuration::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-12);
    }
}
