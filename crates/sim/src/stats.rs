//! Simulation statistics: what moved on each network.
//!
//! The simulator counts frames and bytes per network and per outcome
//! (delivered, lost, blocked by a fault). Application-level counters
//! (messages delivered, payload bytes, latencies) live with the
//! protocol harness in `totem-cluster`; these are the wire-level
//! facts.

use serde::{Deserialize, Serialize};

use totem_wire::NetworkId;

/// Wire-level counters for one network.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetStats {
    /// Frames that entered the medium.
    pub frames_sent: u64,
    /// Total wire bytes (payload + header overhead) that entered the
    /// medium.
    pub wire_bytes: u64,
    /// Per-receiver deliveries (one broadcast to k receivers counts k).
    pub deliveries: u64,
    /// Frames lost on the medium (affecting all receivers).
    pub frames_lost: u64,
    /// Per-receiver losses.
    pub rx_lost: u64,
    /// Send attempts suppressed by a send fault or a dead network.
    pub blocked_sends: u64,
    /// Per-receiver deliveries suppressed by receive faults or
    /// partitions.
    pub blocked_deliveries: u64,
    /// Extra per-receiver copies injected by the duplication knob.
    pub duplicated: u64,
    /// Per-receiver frames delayed past later traffic by the reorder
    /// knob.
    pub reordered: u64,
}

impl NetStats {
    /// Mean utilization of the medium over `elapsed` seconds at
    /// `bandwidth_bps`, in `[0, 1]`.
    pub fn utilization(&self, elapsed_secs: f64, bandwidth_bps: u64) -> f64 {
        if elapsed_secs <= 0.0 {
            return 0.0;
        }
        (self.wire_bytes as f64 * 8.0) / (elapsed_secs * bandwidth_bps as f64)
    }
}

/// Counters for all networks in a run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimStats {
    nets: Vec<NetStats>,
}

impl SimStats {
    /// Creates zeroed stats for `networks` networks.
    pub fn new(networks: usize) -> Self {
        SimStats { nets: vec![NetStats::default(); networks] }
    }

    /// Counters for one network.
    pub fn net(&self, net: NetworkId) -> &NetStats {
        &self.nets[net.index()]
    }

    /// Mutable counters for one network (used by the world).
    pub(crate) fn net_mut(&mut self, net: NetworkId) -> &mut NetStats {
        &mut self.nets[net.index()]
    }

    /// Iterates over `(network, stats)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NetworkId, &NetStats)> {
        self.nets.iter().enumerate().map(|(i, s)| (NetworkId::new(i as u8), s))
    }

    /// Total frames sent across all networks.
    pub fn total_frames(&self) -> u64 {
        self.nets.iter().map(|n| n.frames_sent).sum()
    }

    /// Total wire bytes across all networks.
    pub fn total_wire_bytes(&self) -> u64 {
        self.nets.iter().map(|n| n.wire_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_on_construction() {
        let s = SimStats::new(2);
        assert_eq!(s.total_frames(), 0);
        assert_eq!(s.net(NetworkId::new(1)), &NetStats::default());
    }

    #[test]
    fn utilization_math() {
        let n = NetStats { wire_bytes: 12_500_000, ..Default::default() };
        // 12.5 MB in one second on 100 Mbit/s = 100% utilization.
        assert!((n.utilization(1.0, 100_000_000) - 1.0).abs() < 1e-9);
        assert_eq!(n.utilization(0.0, 100_000_000), 0.0);
    }

    #[test]
    fn totals_sum_networks() {
        let mut s = SimStats::new(2);
        s.net_mut(NetworkId::new(0)).frames_sent = 3;
        s.net_mut(NetworkId::new(1)).frames_sent = 4;
        s.net_mut(NetworkId::new(1)).wire_bytes = 100;
        assert_eq!(s.total_frames(), 7);
        assert_eq!(s.total_wire_bytes(), 100);
        assert_eq!(s.iter().count(), 2);
    }
}
