//! Fault injection: the paper's network fault model (§3), as
//! schedulable simulator state.
//!
//! The paper enumerates exactly three kinds of tolerated network
//! fault:
//!
//! 1. a node is unable to **send** via a particular network;
//! 2. a node is unable to **receive** via a particular network;
//! 3. a network is unable to deliver data from some subset of nodes to
//!    some other subset (up to and including everyone — a total
//!    network failure).
//!
//! [`FaultPlane`] represents all three; [`FaultCommand`] lets test and
//! bench code schedule them at simulated instants via
//! [`crate::SimWorld::schedule_fault`].

use serde::{Deserialize, Serialize};

use totem_wire::{NetworkId, NodeId};

/// A change to the fault state, schedulable at a simulated time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultCommand {
    /// Make `node` unable (or able again) to send on `net`.
    SendFault {
        /// Affected node.
        node: NodeId,
        /// Affected network.
        net: NetworkId,
        /// `true` to inject the fault, `false` to repair it.
        failed: bool,
    },
    /// Make `node` unable (or able again) to receive on `net`.
    RecvFault {
        /// Affected node.
        node: NodeId,
        /// Affected network.
        net: NetworkId,
        /// `true` to inject the fault, `false` to repair it.
        failed: bool,
    },
    /// Kill (or revive) an entire network: nothing is delivered on it.
    NetworkDown {
        /// Affected network.
        net: NetworkId,
        /// `true` to kill, `false` to revive.
        down: bool,
    },
    /// Partition a network into groups: frames are delivered only
    /// between nodes in the same group. `groups[i]` is node `i`'s
    /// group label. An empty vector clears the partition.
    Partition {
        /// Affected network.
        net: NetworkId,
        /// Group label per node (empty = healed).
        groups: Vec<u8>,
    },
    /// Crash a processor: it stops sending, receiving and processing
    /// alarms, and all of its volatile protocol state is lost. A
    /// crashed node stays dead until a matching [`RestartNode`]
    /// command revives it.
    ///
    /// [`RestartNode`]: FaultCommand::RestartNode
    CrashNode {
        /// Node to crash. Crashing an already-crashed node is a no-op.
        node: NodeId,
    },
    /// Restart a previously crashed processor. The node reboots cold:
    /// it remembers nothing of its pre-crash rings and must rejoin
    /// through the membership protocol.
    RestartNode {
        /// Node to restart. Restarting a live node is a no-op.
        node: NodeId,
    },
    /// Make a network deliver every frame twice (or stop doing so).
    ///
    /// This is the *deterministic* counterpart of the probabilistic
    /// [`NetworkConfig::duplicate`](crate::NetworkConfig::duplicate)
    /// knob: it draws no randomness, so the bounded model checker can
    /// enumerate duplication windows as schedulable fault state.
    DuplicateNet {
        /// Affected network.
        net: NetworkId,
        /// `true` to start duplicating, `false` to stop.
        on: bool,
    },
    /// Corrupt one slice of a live node's in-memory protocol state
    /// (a soft error: bit flips, a buggy operator tool, a partial
    /// restore from stale storage). The node itself does not crash —
    /// it keeps running on silently wrong state, and the protocol must
    /// *self-stabilize*: detect the inconsistency and reconverge
    /// through the membership reformation path.
    ///
    /// Delivered to the hosted actor via [`crate::Actor::on_corrupt`].
    /// Corrupting a crashed node is a no-op (its volatile state is
    /// already gone). The mutation itself must be a deterministic
    /// function of `(target, salt)` so replays are bit-identical.
    CorruptState {
        /// Node whose state is corrupted.
        node: NodeId,
        /// Which slice of protocol state to corrupt.
        target: CorruptionTarget,
        /// Deterministic entropy for the mutation: the actor seeds its
        /// corruption RNG from this value, so a replayed schedule
        /// (TOML round-trip included) reproduces the same wrong bits.
        salt: u64,
    },
}

/// Which slice of protocol state a [`FaultCommand::CorruptState`]
/// mutates. Mirrors the state the self-stabilization literature calls
/// out as reachable-by-transient-fault: counters, views, and monitors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CorruptionTarget {
    /// SRP sequence counters: the receive window's contiguity
    /// watermark / high-water mark and the operational token context.
    SeqCounters,
    /// SRP membership proc/fail sets (the Gather consensus inputs).
    Membership,
    /// SRP rotation counter and ring identity epoch bookkeeping.
    Rotation,
    /// RRP monitor problem counters (Figure 2) or divergence monitors
    /// (Figure 5), whichever strategy is live.
    MonitorCounters,
    /// RRP K-of-N token-gate state: the seen-set, last-accepted key,
    /// buffered token and gate timer.
    TokenGate,
}

impl CorruptionTarget {
    /// Every target, in a fixed order (used by fuzzers to cycle
    /// through variants deterministically).
    pub const ALL: [CorruptionTarget; 5] = [
        CorruptionTarget::SeqCounters,
        CorruptionTarget::Membership,
        CorruptionTarget::Rotation,
        CorruptionTarget::MonitorCounters,
        CorruptionTarget::TokenGate,
    ];

    /// Stable kebab-case name (TOML serialization, report tables).
    pub fn name(self) -> &'static str {
        match self {
            CorruptionTarget::SeqCounters => "seq-counters",
            CorruptionTarget::Membership => "membership",
            CorruptionTarget::Rotation => "rotation",
            CorruptionTarget::MonitorCounters => "monitor-counters",
            CorruptionTarget::TokenGate => "token-gate",
        }
    }

    /// Parses the stable name back (inverse of
    /// [`CorruptionTarget::name`]).
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|t| t.name() == s)
    }
}

impl std::fmt::Display for CorruptionTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Current fault state of all networks.
///
/// # Example
///
/// ```
/// # use totem_sim::{FaultCommand, FaultPlane};
/// # use totem_wire::{NetworkId, NodeId};
/// let mut plane = FaultPlane::new(4, 2);
/// plane.apply(&FaultCommand::SendFault {
///     node: NodeId::new(1),
///     net: NetworkId::new(0),
///     failed: true,
/// });
/// assert!(!plane.can_send(NodeId::new(1), NetworkId::new(0)));
/// assert!(plane.can_send(NodeId::new(1), NetworkId::new(1)));
/// ```
#[derive(Debug, Clone)]
pub struct FaultPlane {
    nodes: usize,
    networks: usize,
    /// `send_fault[net][node]`
    send_fault: Vec<Vec<bool>>,
    /// `recv_fault[net][node]`
    recv_fault: Vec<Vec<bool>>,
    down: Vec<bool>,
    /// Per network: `None` = no partition, `Some(groups)` with one
    /// label per node.
    partition: Vec<Option<Vec<u8>>>,
    /// `crashed[node]`: processor crash–recovery state.
    crashed: Vec<bool>,
    /// Per network: deliver every frame twice while set.
    duplicating: Vec<bool>,
}

impl FaultPlane {
    /// A fault-free plane for `nodes` nodes and `networks` networks.
    pub fn new(nodes: usize, networks: usize) -> Self {
        FaultPlane {
            nodes,
            networks,
            send_fault: vec![vec![false; nodes]; networks],
            recv_fault: vec![vec![false; nodes]; networks],
            down: vec![false; networks],
            partition: vec![None; networks],
            crashed: vec![false; nodes],
            duplicating: vec![false; networks],
        }
    }

    /// Applies a fault command.
    ///
    /// # Panics
    ///
    /// Panics if the command names a node or network outside the
    /// configured topology, or a partition vector of the wrong length.
    pub fn apply(&mut self, cmd: &FaultCommand) {
        match cmd {
            FaultCommand::SendFault { node, net, failed } => {
                self.check(*node, *net);
                self.send_fault[net.index()][node.index()] = *failed;
            }
            FaultCommand::RecvFault { node, net, failed } => {
                self.check(*node, *net);
                self.recv_fault[net.index()][node.index()] = *failed;
            }
            FaultCommand::NetworkDown { net, down } => {
                assert!(net.index() < self.networks, "network out of range");
                self.down[net.index()] = *down;
            }
            FaultCommand::Partition { net, groups } => {
                assert!(net.index() < self.networks, "network out of range");
                if groups.is_empty() {
                    self.partition[net.index()] = None;
                } else {
                    assert_eq!(groups.len(), self.nodes, "one group label per node required");
                    self.partition[net.index()] = Some(groups.clone());
                }
            }
            FaultCommand::CrashNode { node } => {
                assert!(node.index() < self.nodes, "node out of range");
                self.crashed[node.index()] = true;
            }
            FaultCommand::RestartNode { node } => {
                assert!(node.index() < self.nodes, "node out of range");
                self.crashed[node.index()] = false;
            }
            FaultCommand::DuplicateNet { net, on } => {
                assert!(net.index() < self.networks, "network out of range");
                self.duplicating[net.index()] = *on;
            }
            FaultCommand::CorruptState { node, .. } => {
                // State corruption lives inside the actor, not on the
                // medium; the plane only validates the target node.
                assert!(node.index() < self.nodes, "node out of range");
            }
        }
    }

    fn check(&self, node: NodeId, net: NetworkId) {
        assert!(node.index() < self.nodes, "node out of range");
        assert!(net.index() < self.networks, "network out of range");
    }

    /// Whether a frame sent by `from` on `net` enters the medium at all.
    pub fn can_send(&self, from: NodeId, net: NetworkId) -> bool {
        !self.crashed[from.index()]
            && !self.down[net.index()]
            && !self.send_fault[net.index()][from.index()]
    }

    /// Whether a frame from `from` on `net` reaches `to` (given it
    /// entered the medium).
    ///
    /// Frames already in flight when the *sender* crashes still arrive
    /// (the wire does not know the sender died); a crashed *receiver*
    /// hears nothing.
    pub fn can_deliver(&self, from: NodeId, to: NodeId, net: NetworkId) -> bool {
        if self.crashed[to.index()]
            || self.down[net.index()]
            || self.recv_fault[net.index()][to.index()]
        {
            return false;
        }
        match &self.partition[net.index()] {
            None => true,
            Some(groups) => groups[from.index()] == groups[to.index()],
        }
    }

    /// Whether the network is currently marked completely down.
    pub fn is_down(&self, net: NetworkId) -> bool {
        self.down[net.index()]
    }

    /// Whether the processor is currently crashed.
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.crashed[node.index()]
    }

    /// Whether the network currently duplicates every delivery.
    pub fn is_duplicating(&self, net: NetworkId) -> bool {
        self.duplicating[net.index()]
    }

    /// Feeds the complete fault state into `h`, field order fixed.
    ///
    /// The bounded model checker includes this in its canonical state
    /// hash: two executions whose protocol state agrees but whose
    /// ambient faults differ (say, a receive fault still armed) must
    /// not be merged, because their futures diverge.
    pub fn fingerprint<H: core::hash::Hasher>(&self, h: &mut H) {
        use core::hash::Hash as _;
        self.send_fault.hash(h);
        self.recv_fault.hash(h);
        self.down.hash(h);
        self.partition.hash(h);
        self.crashed.hash(h);
        self.duplicating.hash(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: u16, m: u8) -> (NodeId, NetworkId) {
        (NodeId::new(n), NetworkId::new(m))
    }

    #[test]
    fn fresh_plane_is_fault_free() {
        let p = FaultPlane::new(4, 2);
        let (n0, net0) = ids(0, 0);
        let (n3, net1) = ids(3, 1);
        assert!(p.can_send(n0, net0));
        assert!(p.can_deliver(n0, n3, net1));
        assert!(!p.is_down(net0));
    }

    #[test]
    fn send_fault_blocks_only_that_sender_and_network() {
        let mut p = FaultPlane::new(4, 2);
        p.apply(&FaultCommand::SendFault {
            node: NodeId::new(1),
            net: NetworkId::new(0),
            failed: true,
        });
        assert!(!p.can_send(NodeId::new(1), NetworkId::new(0)));
        assert!(p.can_send(NodeId::new(1), NetworkId::new(1)));
        assert!(p.can_send(NodeId::new(0), NetworkId::new(0)));
        // Repair.
        p.apply(&FaultCommand::SendFault {
            node: NodeId::new(1),
            net: NetworkId::new(0),
            failed: false,
        });
        assert!(p.can_send(NodeId::new(1), NetworkId::new(0)));
    }

    #[test]
    fn recv_fault_blocks_only_that_receiver() {
        let mut p = FaultPlane::new(3, 1);
        p.apply(&FaultCommand::RecvFault {
            node: NodeId::new(2),
            net: NetworkId::new(0),
            failed: true,
        });
        assert!(!p.can_deliver(NodeId::new(0), NodeId::new(2), NetworkId::new(0)));
        assert!(p.can_deliver(NodeId::new(0), NodeId::new(1), NetworkId::new(0)));
    }

    #[test]
    fn network_down_blocks_everything_on_it() {
        let mut p = FaultPlane::new(2, 2);
        p.apply(&FaultCommand::NetworkDown { net: NetworkId::new(1), down: true });
        assert!(!p.can_send(NodeId::new(0), NetworkId::new(1)));
        assert!(!p.can_deliver(NodeId::new(0), NodeId::new(1), NetworkId::new(1)));
        assert!(p.can_send(NodeId::new(0), NetworkId::new(0)));
        assert!(p.is_down(NetworkId::new(1)));
    }

    #[test]
    fn partition_splits_delivery_by_group() {
        let mut p = FaultPlane::new(4, 1);
        p.apply(&FaultCommand::Partition { net: NetworkId::new(0), groups: vec![0, 0, 1, 1] });
        assert!(p.can_deliver(NodeId::new(0), NodeId::new(1), NetworkId::new(0)));
        assert!(!p.can_deliver(NodeId::new(0), NodeId::new(2), NetworkId::new(0)));
        assert!(p.can_deliver(NodeId::new(2), NodeId::new(3), NetworkId::new(0)));
        // Heal.
        p.apply(&FaultCommand::Partition { net: NetworkId::new(0), groups: vec![] });
        assert!(p.can_deliver(NodeId::new(0), NodeId::new(2), NetworkId::new(0)));
    }

    #[test]
    fn crash_blocks_send_and_delivery_until_restart() {
        let mut p = FaultPlane::new(3, 2);
        p.apply(&FaultCommand::CrashNode { node: NodeId::new(1) });
        assert!(p.is_crashed(NodeId::new(1)));
        assert!(!p.can_send(NodeId::new(1), NetworkId::new(0)));
        assert!(!p.can_send(NodeId::new(1), NetworkId::new(1)));
        // Frames *to* the crashed node are dropped; frames *from* a
        // live sender to other live nodes are unaffected.
        assert!(!p.can_deliver(NodeId::new(0), NodeId::new(1), NetworkId::new(0)));
        assert!(p.can_deliver(NodeId::new(0), NodeId::new(2), NetworkId::new(0)));
        // In-flight frames from the crashed sender still arrive.
        assert!(p.can_deliver(NodeId::new(1), NodeId::new(2), NetworkId::new(0)));
        p.apply(&FaultCommand::RestartNode { node: NodeId::new(1) });
        assert!(!p.is_crashed(NodeId::new(1)));
        assert!(p.can_send(NodeId::new(1), NetworkId::new(0)));
        assert!(p.can_deliver(NodeId::new(0), NodeId::new(1), NetworkId::new(0)));
    }

    #[test]
    fn duplicate_net_toggles_and_fingerprints() {
        let mut p = FaultPlane::new(2, 2);
        assert!(!p.is_duplicating(NetworkId::new(1)));
        let fp = |p: &FaultPlane| {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            p.fingerprint(&mut h);
            core::hash::Hasher::finish(&h)
        };
        let clean = fp(&p);
        p.apply(&FaultCommand::DuplicateNet { net: NetworkId::new(1), on: true });
        assert!(p.is_duplicating(NetworkId::new(1)));
        assert!(!p.is_duplicating(NetworkId::new(0)));
        assert_ne!(fp(&p), clean, "fingerprint must see the duplication state");
        p.apply(&FaultCommand::DuplicateNet { net: NetworkId::new(1), on: false });
        assert!(!p.is_duplicating(NetworkId::new(1)));
        assert_eq!(fp(&p), clean, "healed plane fingerprints like a fresh one");
    }

    #[test]
    #[should_panic(expected = "node out of range")]
    fn crash_out_of_range_node_is_rejected() {
        let mut p = FaultPlane::new(2, 1);
        p.apply(&FaultCommand::CrashNode { node: NodeId::new(7) });
    }

    #[test]
    #[should_panic(expected = "one group label per node")]
    fn partition_vector_length_is_validated() {
        let mut p = FaultPlane::new(4, 1);
        p.apply(&FaultCommand::Partition { net: NetworkId::new(0), groups: vec![0, 1] });
    }

    #[test]
    #[should_panic(expected = "network out of range")]
    fn out_of_range_network_is_rejected() {
        let mut p = FaultPlane::new(2, 1);
        p.apply(&FaultCommand::NetworkDown { net: NetworkId::new(5), down: true });
    }
}
