//! Deterministic discrete-event simulator for the Totem redundant ring
//! protocol reproduction.
//!
//! The paper evaluated Totem RRP on clusters of workstations with two
//! 100 Mbit/s Ethernets. This crate is the substitute substrate: it
//! models
//!
//! * **N shared-medium networks** — each network serializes frames at a
//!   configurable bandwidth (one transmitter at a time, which is also
//!   what the Totem token schedule guarantees on real Ethernet),
//!   delivers broadcasts to every node, preserves FIFO order per
//!   (sender, network) exactly as the paper assumes for UDP on a LAN,
//!   and can drop frames probabilistically;
//! * **per-node CPU costs** — every send and receive of a packet costs
//!   processor time, so protocol-stack overhead (the thing that makes
//!   passive replication CPU-bound in the paper's §8) is first-class;
//! * **fault injection** — send faults, receive faults, partitions and
//!   total network failures, matching the fault model of paper §3, all
//!   schedulable at simulated times;
//! * **determinism** — a fixed seed reproduces an execution exactly,
//!   which the test suite leans on heavily.
//!
//! Protocol logic plugs in via the [`Actor`] trait; the composed Totem
//! node in `totem-cluster` is the main implementor.
//!
//! # Example
//!
//! ```
//! use totem_sim::{Actor, Ctx, SimConfig, SimTime, SimWorld};
//! use totem_wire::{NetworkId, NodeId, Packet, SharedPacket, Token, RingId};
//!
//! /// A toy actor: node 0 unicasts the initial token to node 1.
//! struct Toy { got: bool }
//! impl Actor for Toy {
//!     fn on_start(&mut self, _now: SimTime, ctx: &mut Ctx<'_>) {
//!         if ctx.me() == NodeId::new(0) {
//!             let t = Token::initial(RingId::new(NodeId::new(0), 1));
//!             ctx.unicast(NetworkId::new(0), NodeId::new(1), Packet::Token(t));
//!         }
//!     }
//!     fn on_packet(&mut self, _now: SimTime, _net: NetworkId, _from: NodeId,
//!                  _pkt: SharedPacket, _ctx: &mut Ctx<'_>) {
//!         self.got = true;
//!     }
//!     fn on_alarm(&mut self, _now: SimTime, _ctx: &mut Ctx<'_>) {}
//! }
//!
//! let cfg = SimConfig::lan(2, 1); // 2 nodes, 1 network
//! let mut world = SimWorld::new(cfg, vec![Toy { got: false }, Toy { got: false }]);
//! world.run_until(SimTime::from_millis(10));
//! assert!(world.actor(NodeId::new(1)).got);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod event;
pub mod fault;
pub mod stats;
pub mod time;
pub mod trace;
pub mod world;

pub use config::{CpuConfig, NetworkConfig, SimConfig};
pub use fault::{CorruptionTarget, FaultCommand, FaultPlane};
pub use stats::{NetStats, SimStats};
pub use time::{SimDuration, SimTime};
pub use trace::{TraceEvent, TraceKind, TraceLog, TracedPacket, TransitionRecord};
pub use world::{Actor, Ctx, SimWorld};
