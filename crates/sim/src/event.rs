//! The simulator's event queue.
//!
//! A binary min-heap keyed on `(time, insertion sequence)`. The
//! insertion-sequence tiebreak makes event ordering — and therefore
//! the whole simulation — fully deterministic even when many events
//! share a timestamp.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An entry in the queue: a payload scheduled at an instant.
#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the earliest first.
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic time-ordered event queue.
///
/// # Example
///
/// ```
/// # use totem_sim::event::EventQueue;
/// # use totem_sim::SimTime;
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_millis(2), "late");
/// q.push(SimTime::from_millis(1), "early");
/// q.push(SimTime::from_millis(1), "early-second");
/// assert_eq!(q.pop().unwrap(), (SimTime::from_millis(1), "early"));
/// assert_eq!(q.pop().unwrap(), (SimTime::from_millis(1), "early-second"));
/// assert_eq!(q.pop().unwrap(), (SimTime::from_millis(2), "late"));
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }

    /// Schedules `payload` at instant `at`.
    pub fn push(&mut self, at: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Removes and returns the earliest event, if any. Events with
    /// equal timestamps come out in insertion order.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.at, e.payload))
    }

    /// The timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), 3);
        q.push(SimTime::from_nanos(10), 1);
        q.push(SimTime::from_nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_nanos(7), ());
        q.push(SimTime::from_nanos(3), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(3)));
    }

    #[test]
    fn len_and_is_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::ZERO, ());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
