//! Simulation configuration: network models, CPU models, seeds.

use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// Model of one shared-medium network (an Ethernet segment with its
/// switch/hub).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Raw medium bandwidth in bits per second. The paper's testbeds
    /// used 100 Mbit/s Ethernet.
    pub bandwidth_bps: u64,
    /// One-way propagation + switching latency applied to every frame.
    pub latency: SimDuration,
    /// Probability that a frame is lost on the medium (affects all
    /// receivers of a broadcast at once — e.g. a hub glitch).
    pub frame_loss: f64,
    /// Probability that an individual receiver misses an otherwise
    /// delivered frame (e.g. NIC buffer overrun). Applied per
    /// receiver, independently.
    pub rx_loss: f64,
    /// Probability that an individual receiver sees an extra copy of a
    /// delivered frame (e.g. a switch flooding a frame twice). Applied
    /// per receiver, independently.
    pub duplicate: f64,
    /// Probability that an individual receiver sees a frame late, after
    /// frames sent behind it — breaking the medium's per-sender FIFO
    /// property. Applied per receiver, independently; a reordered copy
    /// arrives `reorder_delay` later than scheduled.
    pub reorder: f64,
    /// Extra arrival delay applied to reordered frames.
    pub reorder_delay: SimDuration,
}

impl NetworkConfig {
    /// The paper's network: 100 Mbit/s Ethernet, 30 µs one-way
    /// latency, lossless.
    pub fn ethernet_100mbit() -> Self {
        NetworkConfig {
            bandwidth_bps: 100_000_000,
            latency: SimDuration::from_micros(30),
            frame_loss: 0.0,
            rx_loss: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            reorder_delay: SimDuration::from_micros(500),
        }
    }

    /// Same network with a given independent per-receiver loss
    /// probability.
    pub fn with_rx_loss(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "loss probability must be in [0,1]");
        self.rx_loss = p;
        self
    }

    /// Same network with a given whole-frame loss probability.
    pub fn with_frame_loss(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "loss probability must be in [0,1]");
        self.frame_loss = p;
        self
    }

    /// Same network with a given per-receiver frame duplication
    /// probability.
    pub fn with_duplicate(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "duplicate probability must be in [0,1]");
        self.duplicate = p;
        self
    }

    /// Same network with a given per-receiver frame reorder probability
    /// and the extra delay a reordered frame suffers.
    pub fn with_reorder(mut self, p: f64, delay: SimDuration) -> Self {
        assert!((0.0..=1.0).contains(&p), "reorder probability must be in [0,1]");
        self.reorder = p;
        self.reorder_delay = delay;
        self
    }

    /// Same network with a different bandwidth.
    pub fn with_bandwidth(mut self, bps: u64) -> Self {
        assert!(bps > 0, "bandwidth must be positive");
        self.bandwidth_bps = bps;
        self
    }

    /// Same network with a different one-way latency.
    pub fn with_latency(mut self, latency: SimDuration) -> Self {
        self.latency = latency;
        self
    }
}

impl Default for NetworkConfig {
    fn default() -> Self {
        Self::ethernet_100mbit()
    }
}

/// Model of a node's protocol-stack processing costs.
///
/// Every packet handed to the stack for transmission costs
/// `send_packet` (+ `send_per_byte` × payload) of CPU; every packet
/// received costs `recv_packet` (+ `recv_per_byte` × payload). The
/// node's CPU is a serial resource: costs queue behind one another.
/// This is the model that reproduces the paper's finding that doubling
/// the number of calls to the network protocol stack (active
/// replication) costs throughput, and that passive replication becomes
/// CPU-bound (§8).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuConfig {
    /// Fixed CPU cost of one send call into the stack.
    pub send_packet: SimDuration,
    /// Additional CPU cost per payload byte sent.
    pub send_per_byte_ns: u64,
    /// Fixed CPU cost of receiving one packet (the stack call; paid
    /// for every copy, including duplicates that the protocol will
    /// discard).
    pub recv_packet: SimDuration,
    /// Additional CPU cost per payload byte received.
    pub recv_per_byte_ns: u64,
    /// Fixed CPU cost of fully processing one *distinct* delivered
    /// application message (ordering, duplicate bookkeeping, liveness
    /// update, copy to the application) — the paper's §8 explanation
    /// of why passive replication becomes CPU-bound. Charged by the
    /// protocol host per delivery, not per reception.
    pub deliver_msg: SimDuration,
    /// Additional delivery-processing cost per application byte.
    pub deliver_per_byte_ns: u64,
}

impl CpuConfig {
    /// Calibrated to the paper's first testbed (Pentium II 450 MHz):
    /// an unreplicated 4-node ring peaks near the paper's ≈9,000–
    /// 10,000 1-Kbyte msgs/sec on one 100 Mbit/s Ethernet
    /// (network-bound), ≈40,000 msgs/sec at 100 bytes (CPU-bound),
    /// active replication loses roughly a thousand msgs/sec to the
    /// doubled stack calls, and passive replication saturates the CPU
    /// well short of doubling the unreplicated throughput.
    pub fn pentium_ii_450() -> Self {
        CpuConfig {
            send_packet: SimDuration::from_micros(20),
            send_per_byte_ns: 4,
            recv_packet: SimDuration::from_micros(14),
            recv_per_byte_ns: 4,
            deliver_msg: SimDuration::from_micros(14),
            deliver_per_byte_ns: 30,
        }
    }

    /// Calibrated to the paper's second testbed (Pentium III
    /// 900 MHz / 1 GHz): roughly twice the processing speed.
    pub fn pentium_iii_900() -> Self {
        CpuConfig {
            send_packet: SimDuration::from_micros(11),
            send_per_byte_ns: 2,
            recv_packet: SimDuration::from_micros(8),
            recv_per_byte_ns: 2,
            deliver_msg: SimDuration::from_micros(8),
            deliver_per_byte_ns: 18,
        }
    }

    /// An effectively infinite CPU, for tests that want pure network
    /// behaviour.
    pub fn instant() -> Self {
        CpuConfig {
            send_packet: SimDuration::ZERO,
            send_per_byte_ns: 0,
            recv_packet: SimDuration::ZERO,
            recv_per_byte_ns: 0,
            deliver_msg: SimDuration::ZERO,
            deliver_per_byte_ns: 0,
        }
    }

    /// CPU time consumed by sending a packet with `payload` bytes.
    pub fn send_cost(&self, payload: usize) -> SimDuration {
        self.send_packet + SimDuration::from_nanos(self.send_per_byte_ns * payload as u64)
    }

    /// CPU time consumed by receiving a packet with `payload` bytes.
    pub fn recv_cost(&self, payload: usize) -> SimDuration {
        self.recv_packet + SimDuration::from_nanos(self.recv_per_byte_ns * payload as u64)
    }

    /// CPU time consumed by fully processing one delivered message of
    /// `len` application bytes.
    ///
    /// # Example
    ///
    /// ```
    /// # use totem_sim::CpuConfig;
    /// let cpu = CpuConfig::pentium_ii_450();
    /// assert!(cpu.deliver_cost(1400) > cpu.deliver_cost(100));
    /// assert_eq!(CpuConfig::instant().deliver_cost(1400).as_nanos(), 0);
    /// ```
    pub fn deliver_cost(&self, len: usize) -> SimDuration {
        self.deliver_msg + SimDuration::from_nanos(self.deliver_per_byte_ns * len as u64)
    }
}

impl Default for CpuConfig {
    fn default() -> Self {
        Self::pentium_ii_450()
    }
}

/// Full simulation configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// One model per redundant network.
    pub networks: Vec<NetworkConfig>,
    /// One CPU model per node.
    pub cpus: Vec<CpuConfig>,
    /// Seed for the simulation's random number generator (loss draws).
    pub seed: u64,
}

impl SimConfig {
    /// A homogeneous LAN: `nodes` identical nodes on `networks`
    /// identical 100 Mbit/s Ethernets, default CPU model, seed 0.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` or `networks` is zero.
    pub fn lan(nodes: usize, networks: usize) -> Self {
        assert!(nodes > 0, "need at least one node");
        assert!(networks > 0, "need at least one network");
        SimConfig {
            nodes,
            networks: vec![NetworkConfig::default(); networks],
            cpus: vec![CpuConfig::default(); nodes],
            seed: 0,
        }
    }

    /// Replaces every node's CPU model.
    pub fn with_cpu(mut self, cpu: CpuConfig) -> Self {
        self.cpus = vec![cpu; self.nodes];
        self
    }

    /// Replaces every network's model.
    pub fn with_networks(mut self, net: NetworkConfig, count: usize) -> Self {
        assert!(count > 0, "need at least one network");
        self.networks = vec![net; count];
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of redundant networks.
    pub fn network_count(&self) -> usize {
        self.networks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lan_builds_homogeneous_config() {
        let cfg = SimConfig::lan(4, 2);
        assert_eq!(cfg.nodes, 4);
        assert_eq!(cfg.network_count(), 2);
        assert_eq!(cfg.cpus.len(), 4);
        assert_eq!(cfg.networks[0], cfg.networks[1]);
    }

    #[test]
    #[should_panic(expected = "need at least one node")]
    fn lan_rejects_zero_nodes() {
        let _ = SimConfig::lan(0, 1);
    }

    #[test]
    #[should_panic(expected = "need at least one network")]
    fn lan_rejects_zero_networks() {
        let _ = SimConfig::lan(1, 0);
    }

    #[test]
    fn cpu_costs_scale_with_payload() {
        let cpu = CpuConfig::pentium_ii_450();
        assert!(cpu.send_cost(1000) > cpu.send_cost(0));
        assert_eq!(
            cpu.send_cost(1000).as_nanos() - cpu.send_cost(0).as_nanos(),
            1000 * cpu.send_per_byte_ns
        );
        assert_eq!(CpuConfig::instant().recv_cost(10_000), SimDuration::ZERO);
    }

    #[test]
    fn faster_testbed_is_cheaper_per_packet() {
        let p2 = CpuConfig::pentium_ii_450();
        let p3 = CpuConfig::pentium_iii_900();
        assert!(p3.send_cost(1000) < p2.send_cost(1000));
        assert!(p3.recv_cost(1000) < p2.recv_cost(1000));
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn loss_probability_is_validated() {
        let _ = NetworkConfig::default().with_rx_loss(1.5);
    }

    #[test]
    #[should_panic(expected = "duplicate probability")]
    fn duplicate_probability_is_validated() {
        let _ = NetworkConfig::default().with_duplicate(-0.1);
    }

    #[test]
    #[should_panic(expected = "reorder probability")]
    fn reorder_probability_is_validated() {
        let _ = NetworkConfig::default().with_reorder(2.0, SimDuration::from_micros(1));
    }

    #[test]
    fn duplicate_and_reorder_default_off() {
        let net = NetworkConfig::default();
        assert_eq!(net.duplicate, 0.0);
        assert_eq!(net.reorder, 0.0);
        let noisy = net.with_duplicate(0.05).with_reorder(0.02, SimDuration::from_micros(250));
        assert!((noisy.duplicate - 0.05).abs() < 1e-12);
        assert!((noisy.reorder - 0.02).abs() < 1e-12);
        assert_eq!(noisy.reorder_delay, SimDuration::from_micros(250));
    }

    #[test]
    fn builder_methods_compose() {
        let net = NetworkConfig::ethernet_100mbit()
            .with_bandwidth(10_000_000)
            .with_latency(SimDuration::from_micros(100))
            .with_frame_loss(0.01);
        assert_eq!(net.bandwidth_bps, 10_000_000);
        assert_eq!(net.latency, SimDuration::from_micros(100));
        assert!((net.frame_loss - 0.01).abs() < 1e-12);
        let cfg = SimConfig::lan(2, 1)
            .with_networks(net.clone(), 3)
            .with_seed(7)
            .with_cpu(CpuConfig::instant());
        assert_eq!(cfg.network_count(), 3);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.networks[2], net);
    }
}
