//! A panic-free per-network table.
//!
//! Every replication style in this crate keeps per-network state —
//! problem counters (Figure 2), reception monitors (Figure 5), fault
//! flags, reinstatement grace deadlines — indexed by [`NetworkId`].
//! Raw `Vec` indexing turns a confused network id into a crash of the
//! whole protocol stack, which is exactly the fault amplification the
//! redundant-ring design exists to prevent. [`PerNet`] offers only
//! total operations: out-of-range reads yield `None`/default and
//! out-of-range writes are ignored (and reported via `bool`), so a
//! bad id degrades into a no-op instead of a panic.

use serde::{Deserialize, Serialize};
use totem_wire::NetworkId;

/// Fixed-size table of one `T` per redundant network.
///
/// The length is set at construction (the configured number of
/// networks, 1–255) and never changes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PerNet<T> {
    slots: Vec<T>,
}

impl<T> PerNet<T> {
    /// Wraps an existing per-network vector.
    pub fn from_vec(slots: Vec<T>) -> Self {
        PerNet { slots }
    }

    /// Number of networks covered.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when configured with zero networks (never the case for a
    /// validated [`crate::RrpConfig`]).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The entry for `net`, if in range.
    pub fn get(&self, net: NetworkId) -> Option<&T> {
        self.slots.get(net.index())
    }

    /// Mutable entry for `net`, if in range.
    pub fn get_mut(&mut self, net: NetworkId) -> Option<&mut T> {
        self.slots.get_mut(net.index())
    }

    /// Overwrites the entry for `net`. Returns `false` (and does
    /// nothing) when `net` is out of range.
    pub fn set(&mut self, net: NetworkId, value: T) -> bool {
        match self.slots.get_mut(net.index()) {
            Some(slot) => {
                *slot = value;
                true
            }
            None => false,
        }
    }

    /// All network ids covered by this table, in order.
    pub fn ids(&self) -> impl Iterator<Item = NetworkId> {
        (0..self.slots.len()).map(|i| NetworkId::new(i as u8))
    }

    /// `(id, &value)` pairs in network order.
    pub fn iter(&self) -> impl Iterator<Item = (NetworkId, &T)> {
        self.slots.iter().enumerate().map(|(i, v)| (NetworkId::new(i as u8), v))
    }

    /// `(id, &mut value)` pairs in network order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (NetworkId, &mut T)> {
        self.slots.iter_mut().enumerate().map(|(i, v)| (NetworkId::new(i as u8), v))
    }

    /// Values in network order.
    pub fn values(&self) -> impl Iterator<Item = &T> {
        self.slots.iter()
    }

    /// Mutable values in network order.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut T> {
        self.slots.iter_mut()
    }

    /// The table as a slice (diagnostics, stats snapshots).
    pub fn as_slice(&self) -> &[T] {
        &self.slots
    }
}

impl<T: Clone> PerNet<T> {
    /// A table of `networks` copies of `value`.
    pub fn filled(networks: usize, value: T) -> Self {
        PerNet { slots: vec![value; networks] }
    }

    /// Copies the table out (public API snapshots).
    pub fn to_vec(&self) -> Vec<T> {
        self.slots.clone()
    }

    /// Resets every entry to `value`.
    pub fn fill(&mut self, value: T) {
        for slot in &mut self.slots {
            *slot = value.clone();
        }
    }
}

impl<T: Copy + Default> PerNet<T> {
    /// The value for `net`, or `T::default()` when out of range — the
    /// workhorse read for `bool`/counter tables, where the default
    /// (`false`, `0`) is exactly the safe degraded answer.
    pub fn at(&self, net: NetworkId) -> T {
        self.get(net).copied().unwrap_or_default()
    }
}

// Test-only indexing sugar: production code must go through the total
// accessors above, but assertions read more naturally as `table[i]`.
#[cfg(test)]
impl<T> std::ops::Index<usize> for PerNet<T> {
    type Output = T;
    fn index(&self, i: usize) -> &T {
        &self.slots[i]
    }
}

#[cfg(test)]
impl<T> std::ops::IndexMut<usize> for PerNet<T> {
    fn index_mut(&mut self, i: usize) -> &mut T {
        &mut self.slots[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_of_range_reads_degrade_to_default() {
        let t: PerNet<u32> = PerNet::filled(2, 7);
        assert_eq!(t.at(NetworkId::new(1)), 7);
        assert_eq!(t.at(NetworkId::new(9)), 0);
        assert!(t.get(NetworkId::new(9)).is_none());
    }

    #[test]
    fn out_of_range_writes_are_ignored() {
        let mut t: PerNet<bool> = PerNet::filled(2, false);
        assert!(t.set(NetworkId::new(1), true));
        assert!(!t.set(NetworkId::new(5), true));
        assert_eq!(t.to_vec(), vec![false, true]);
    }

    #[test]
    fn iteration_pairs_ids_with_values() {
        let mut t: PerNet<u32> = PerNet::filled(3, 0);
        for (id, v) in t.iter_mut() {
            *v = u32::from(id.as_u8()) * 10;
        }
        let pairs: Vec<(u8, u32)> = t.iter().map(|(id, &v)| (id.as_u8(), v)).collect();
        assert_eq!(pairs, vec![(0, 0), (1, 10), (2, 20)]);
        assert_eq!(t.ids().count(), 3);
    }

    #[test]
    fn fill_resets_all() {
        let mut t: PerNet<u64> = PerNet::from_vec(vec![3, 4, 5]);
        t.fill(0);
        assert_eq!(t.as_slice(), &[0, 0, 0]);
    }
}
