//! The unified K-of-N replication engine (paper §5–§7).
//!
//! The paper presents active-passive replication (§7) as a K-of-N
//! scheme whose endpoints are exactly the active (K=N, §5) and passive
//! (K=1, §6) algorithms. This module implements all three as **one**
//! parameterized state machine built from three composable stages:
//!
//! * a **send window** ([`advance_window`]) — K consecutive non-faulty
//!   networks chosen round-robin, with separate rotation pointers for
//!   data, tokens and retransmissions. At K=N it degenerates to
//!   "all non-faulty networks in index order" (§5 sends via n' first,
//!   n'' second, ...); at K=1 to the strict per-packet alternation of
//!   Figure 4 `sendMsg`/`sendToken`;
//! * a **stage-one health monitor** behind the [`MonitorStrategy`]
//!   trait — the problem-counter style of Figure 2 (Requirements
//!   A5/A6) when K=N, the reception-count-divergence style of Figure 5
//!   (Requirements P4/P5) when K<N;
//! * a **stage-two token gate** — wait for K copies of the current
//!   token instance or a timeout. At K=N the count test is replaced by
//!   the exact Figure-2 predicate (a copy on *every* non-faulty
//!   network, Requirements A2/A3); at K=1 the gate degenerates to
//!   passive's buffer-behind-gap hold-and-release (Requirements
//!   P1/P3), because a single copy always "completes" and the only
//!   reason to hold the token is a message gap.
//!
//! The replication degree K is **runtime-reconfigurable** via
//! [`Engine::set_k`]: the faulty set, rotation pointers and any
//! pending token survive the switch (a token held by the gate moves
//! into the passive buffer and vice versa), while the monitor strategy
//! is swapped fresh when the K=N boundary is crossed — the two
//! strategies' histories are not comparable.

use std::collections::HashMap;

use totem_wire::{NetworkId, NodeId, Packet, SerialOrdKey, Token};

use crate::config::RrpConfig;
use crate::fault::{FaultReason, FaultReport, MonitorKind};
use crate::layer::RrpEvent;
use crate::monitor::MonitorModule;
use crate::pernet::PerNet;

/// Ordering key for token instances: `(ring seq, rotation, seq)`.
/// Copies of the same token instance share the key; a genuinely newer
/// token always compares greater (the ring leader bumps `rotation`
/// every full rotation, even on an idle ring). The serial counters go
/// through their explicit [`SerialOrdKey`] adapters: the key orders by
/// raw value, which is correct here because the gate only compares
/// tokens from the same short-lived circulation neighbourhood.
pub(crate) fn token_key(t: &Token) -> (u64, SerialOrdKey, SerialOrdKey) {
    (t.ring.seq, t.rotation.ord_key(), t.seq.ord_key())
}

/// The shared send-window advance: fills `out` with the K networks for
/// the next send and updates the rotation pointer `rr`.
///
/// The three regimes are **deliberately branch-exact** with the
/// paper's per-style pseudocode — their pointer semantics differ
/// observably and cannot be merged:
///
/// * `K >= N` (§5): all non-faulty networks in index order; the
///   pointer never moves. Falls back to *all* networks when everything
///   is marked faulty (sending nothing would kill a ring that might
///   still limp along).
/// * `K == 1` (§6 Figure 4): the pointer advances until it *lands on*
///   a non-faulty network, so with N=3 and net1 faulty the sequence is
///   2, 0, 2, 0 (the skipped slot keeps rotating). All-faulty
///   fallback: advance once more and use that network regardless.
/// * `1 < K < N` (§7): the window start advances by exactly one per
///   send, then scans forward collecting K non-faulty networks.
///   All-faulty fallback: the plain (unfiltered) window.
pub(crate) fn advance_window(
    rr: &mut usize,
    k: usize,
    faulty: &PerNet<bool>,
    out: &mut Vec<NetworkId>,
) {
    let n = faulty.len().max(1);
    out.clear();
    if k >= n {
        out.extend(faulty.iter().filter(|(_, &f)| !f).map(|(net, _)| net));
        if out.is_empty() {
            out.extend(faulty.ids());
        }
    } else if k == 1 {
        for _ in 0..n {
            *rr = (*rr + 1) % n;
            let net = NetworkId::new(*rr as u8);
            if !faulty.at(net) {
                out.push(net);
                return;
            }
        }
        *rr = (*rr + 1) % n;
        out.push(NetworkId::new(*rr as u8));
    } else {
        *rr = (*rr + 1) % n;
        let mut idx = *rr;
        for _ in 0..n {
            let net = NetworkId::new(idx as u8);
            if !faulty.at(net) {
                out.push(net);
                if out.len() == k {
                    break;
                }
            }
            idx = (idx + 1) % n;
        }
        if out.is_empty() {
            out.extend((0..k).map(|i| NetworkId::new(((*rr + i) % n) as u8)));
        }
    }
}

/// A network suspected faulty by a stage-one monitor, with how far its
/// reception count lagged the leader.
type Suspect = (NetworkId, u64);

/// Stage one of the receive pipeline: the per-network health monitor.
///
/// Two concrete strategies exist — [`ProblemCounter`] (Figure 2,
/// K=N) and [`Divergence`] (Figure 5, K<N). The engine consults the
/// strategy at every reception, token timeout and timer tick; the
/// strategy never mutates the faulty set itself (declaration, with its
/// shared grace-period gating, is the engine's job).
pub(crate) trait MonitorStrategy: std::fmt::Debug + Send {
    /// A message-class packet from `sender` arrived via `net`.
    /// Returns suspect networks (divergence style only).
    fn record_message(
        &mut self,
        net: NetworkId,
        sender: NodeId,
        faulty: &PerNet<bool>,
        cfg: &RrpConfig,
    ) -> Vec<Suspect>;

    /// A token-class packet arrived via `net`. Returns suspect
    /// networks (divergence style only; the problem-counter style
    /// penalizes absence at the timeout instead).
    fn record_token(&mut self, net: NetworkId, faulty: &PerNet<bool>) -> Vec<Suspect>;

    /// The token timer expired with `seen` the per-network reception
    /// flags of the current instance. Returns the fault reports to
    /// raise (problem-counter style only; the engine marks the
    /// reported networks faulty afterwards, so later networks in the
    /// same expiry are judged against the pre-expiry faulty set, as in
    /// Figure 2).
    fn on_token_timeout(
        &mut self,
        now: u64,
        seen: &PerNet<bool>,
        faulty: &PerNet<bool>,
        grace_until: &PerNet<u64>,
        cfg: &RrpConfig,
    ) -> Vec<FaultReport>;

    /// Background deadline: the problem counters' periodic decay (A6),
    /// or the earliest pending grace re-leveling (divergence style).
    fn next_deadline(&self, grace_until: &PerNet<u64>) -> Option<u64>;

    /// Fires background work due at `now`: counter decay, or grace
    /// expiry (zero the entry and re-level the reception counts so the
    /// monitors judge the network afresh).
    fn on_timer(&mut self, now: u64, grace_until: &mut PerNet<u64>, cfg: &RrpConfig);

    /// A network was administratively reinstated: clear its history so
    /// probation starts from a clean slate.
    fn on_reinstate(&mut self, net: NetworkId);

    /// Diagnostic snapshot of the Figure-2 problem counters (zeros
    /// under the divergence strategy).
    fn problem_counters(&self, networks: usize) -> Vec<u32>;

    /// Diagnostic snapshot of the Figure-5 reception counts (empty
    /// under the problem-counter strategy).
    fn monitor_report(&self) -> Vec<(MonitorKind, Vec<u64>)>;

    /// Deterministically corrupts the strategy's health bookkeeping
    /// (fault injection for self-stabilization testing): problem
    /// counters jump near the declaration threshold, or one monitor
    /// module's reception count diverges. Normal traffic decays both
    /// back to truth.
    fn corrupt(&mut self, rng: &mut rand::rngs::SmallRng);
}

/// Figure-2 stage-one monitor (K=N): one problem counter per network,
/// incremented when the network misses a token deadline (A5), decayed
/// periodically so sporadic loss does not accumulate into a false
/// alarm (A6).
#[derive(Debug)]
struct ProblemCounter {
    problem: PerNet<u32>,
    /// Next periodic decay of the problem counters (A6).
    decay_at: u64,
}

impl ProblemCounter {
    fn new(networks: usize, decay_at: u64) -> Self {
        ProblemCounter { problem: PerNet::filled(networks, 0), decay_at }
    }
}

impl MonitorStrategy for ProblemCounter {
    fn record_message(
        &mut self,
        _net: NetworkId,
        _sender: NodeId,
        _faulty: &PerNet<bool>,
        _cfg: &RrpConfig,
    ) -> Vec<Suspect> {
        Vec::new()
    }

    fn record_token(&mut self, _net: NetworkId, _faulty: &PerNet<bool>) -> Vec<Suspect> {
        Vec::new()
    }

    fn on_token_timeout(
        &mut self,
        now: u64,
        seen: &PerNet<bool>,
        faulty: &PerNet<bool>,
        grace_until: &PerNet<u64>,
        cfg: &RrpConfig,
    ) -> Vec<FaultReport> {
        let mut reports = Vec::new();
        for (net, problem) in self.problem.iter_mut() {
            if seen.at(net) || faulty.at(net) || now < grace_until.at(net) {
                continue;
            }
            *problem = problem.saturating_add(1);
            if *problem >= cfg.problem_threshold {
                reports.push(FaultReport {
                    net,
                    at: now,
                    reason: FaultReason::TokenTimeouts { count: *problem },
                });
            }
        }
        reports
    }

    fn next_deadline(&self, _grace_until: &PerNet<u64>) -> Option<u64> {
        // The decay tick is unconditional; a pending grace expiry needs
        // no wakeup of its own because declaration sites test it lazily.
        Some(self.decay_at)
    }

    fn on_timer(&mut self, now: u64, _grace_until: &mut PerNet<u64>, cfg: &RrpConfig) {
        if self.decay_at <= now {
            for p in self.problem.values_mut() {
                *p = p.saturating_sub(1);
            }
            self.decay_at = now + cfg.problem_decay_interval;
        }
    }

    fn on_reinstate(&mut self, net: NetworkId) {
        self.problem.set(net, 0);
    }

    fn problem_counters(&self, _networks: usize) -> Vec<u32> {
        self.problem.to_vec()
    }

    fn monitor_report(&self) -> Vec<(MonitorKind, Vec<u64>)> {
        Vec::new()
    }

    fn corrupt(&mut self, rng: &mut rand::rngs::SmallRng) {
        use rand::Rng as _;
        let nets = self.problem.len().max(1) as u64;
        let net = NetworkId::new(rng.gen_range(0..nets) as u8);
        // Anywhere from "clean" to "past the declaration threshold";
        // the decay tick walks a spurious count back down, and a real
        // declaration is healed by administrative reinstatement.
        let forged = rng.gen_range(0..32) as u32;
        self.problem.set(net, forged);
    }
}

/// Figure-5 stage-one monitor (K<N): M+1 reception-count modules — one
/// per sender's message traffic plus one for token traffic — each
/// comparing per-network counts (P4) with message-driven compensation
/// (P5).
#[derive(Debug)]
struct Divergence {
    token_monitor: MonitorModule,
    msg_monitors: HashMap<NodeId, MonitorModule>,
}

impl Divergence {
    fn new(cfg: &RrpConfig) -> Self {
        Divergence {
            token_monitor: MonitorModule::new(
                cfg.networks,
                cfg.monitor_threshold,
                cfg.compensation_every,
            ),
            msg_monitors: HashMap::new(),
        }
    }

    /// Re-levels every module's count for `net` to the current leader.
    fn level(&mut self, net: NetworkId) {
        self.token_monitor.reinstate(net);
        for m in self.msg_monitors.values_mut() {
            m.reinstate(net);
        }
    }
}

impl MonitorStrategy for Divergence {
    fn record_message(
        &mut self,
        net: NetworkId,
        sender: NodeId,
        faulty: &PerNet<bool>,
        cfg: &RrpConfig,
    ) -> Vec<Suspect> {
        let monitor = self.msg_monitors.entry(sender).or_insert_with(|| {
            MonitorModule::new(cfg.networks, cfg.monitor_threshold, cfg.compensation_every)
        });
        monitor.record(net, faulty)
    }

    fn record_token(&mut self, net: NetworkId, faulty: &PerNet<bool>) -> Vec<Suspect> {
        self.token_monitor.record(net, faulty)
    }

    fn on_token_timeout(
        &mut self,
        _now: u64,
        _seen: &PerNet<bool>,
        _faulty: &PerNet<bool>,
        _grace_until: &PerNet<u64>,
        _cfg: &RrpConfig,
    ) -> Vec<FaultReport> {
        Vec::new()
    }

    fn next_deadline(&self, grace_until: &PerNet<u64>) -> Option<u64> {
        grace_until.values().copied().filter(|&g| g != 0).min()
    }

    fn on_timer(&mut self, now: u64, grace_until: &mut PerNet<u64>, _cfg: &RrpConfig) {
        // Grace expiry: level the counts once everyone has had time to
        // resume sending, so the monitors judge the network afresh.
        let expired: Vec<NetworkId> =
            grace_until.iter().filter(|(_, &g)| g != 0 && now >= g).map(|(net, _)| net).collect();
        for net in expired {
            grace_until.set(net, 0);
            self.level(net);
        }
    }

    fn on_reinstate(&mut self, net: NetworkId) {
        self.level(net);
    }

    fn problem_counters(&self, networks: usize) -> Vec<u32> {
        vec![0; networks]
    }

    fn monitor_report(&self) -> Vec<(MonitorKind, Vec<u64>)> {
        let mut out = vec![(MonitorKind::Token, self.token_monitor.counts().to_vec())];
        for (sender, m) in &self.msg_monitors {
            out.push((MonitorKind::Messages { sender: *sender }, m.counts().to_vec()));
        }
        out
    }

    fn corrupt(&mut self, rng: &mut rand::rngs::SmallRng) {
        use rand::Rng as _;
        // Corrupt the token module or one message module, picked
        // deterministically (BTree-free map: order by sender id for
        // reproducibility).
        let mut senders: Vec<NodeId> = self.msg_monitors.keys().copied().collect();
        senders.sort_unstable();
        let pick = rng.gen_range(0..(1 + senders.len() as u64));
        if pick == 0 {
            self.token_monitor.corrupt(rng);
        } else if let Some(m) =
            senders.get(pick as usize - 1).and_then(|s| self.msg_monitors.get_mut(s))
        {
            m.corrupt(rng);
        }
    }
}

/// Picks the stage-one strategy for a replication degree: Figure 2's
/// problem counters at K=N, Figure 5's divergence monitors below.
fn strategy_for(k: usize, decay_at: u64, cfg: &RrpConfig) -> Box<dyn MonitorStrategy> {
    if k >= cfg.networks {
        Box::new(ProblemCounter::new(cfg.networks, decay_at))
    } else {
        Box::new(Divergence::new(cfg))
    }
}

/// The unified K-of-N replication engine: send window + stage-one
/// monitor + stage-two token gate.
#[derive(Debug)]
pub(crate) struct Engine {
    /// Replication degree K (`1..=N`), runtime-reconfigurable.
    k: usize,
    pub faulty: PerNet<bool>,
    /// `sendMessageVia` of Figure 4 — advanced only by this node's own
    /// data packets, so each sender's stream rotates networks strictly
    /// (the property the Figure-5 monitors rely on).
    msg_rr: usize,
    /// `sendTokenVia` of Figure 4 — regular tokens only.
    tok_rr: usize,
    /// Rotation for retransmissions this node serves on behalf of
    /// other senders. Kept separate from `msg_rr`: a retransmitted
    /// packet carries the original sender's id, and letting it perturb
    /// this node's own data rotation phase-locks the rotation under
    /// saturation, skewing every receiver's per-sender monitor.
    retrans_rr: usize,
    /// Stage two (K>=2): which networks have delivered the current
    /// token instance (`recvLastToken[i]` of Figure 2).
    seen: PerNet<bool>,
    /// The newest gated token (None once delivered upward).
    last_token: Option<Token>,
    last_key: Option<(u64, SerialOrdKey, SerialOrdKey)>,
    /// Stage two (K=1): `lastToken` buffered behind missing messages.
    buffered: Option<Token>,
    buffered_net: NetworkId,
    /// The token timer (never restarted while running).
    timer: Option<u64>,
    monitor: Box<dyn MonitorStrategy>,
    /// Per-network instant until which fault declaration is suspended
    /// after a reinstatement (0 = no grace active).
    grace_until: PerNet<u64>,
    /// Consecutive token-class receptions dropped as stale by the
    /// stage-two gate. A `last_key` corrupted into the far future
    /// would otherwise drop every token of every future ring — an
    /// undetectable livelock of endless reformations — so after
    /// [`STALE_DROP_RESET`] consecutive stale drops the gate resets
    /// and judges the next token afresh (self-stabilization; a
    /// spuriously resurrected old token is still discarded by the
    /// SRP's own freshness check above).
    stale_drops: u32,
}

/// Consecutive stale token drops after which the stage-two gate
/// resets its freshness key (see [`Engine::stale_drops`]). High
/// enough that healthy duplicate-heavy traffic — where current-
/// instance copies keep interleaving and zeroing the run — never
/// reaches it.
const STALE_DROP_RESET: u32 = 16;

impl Engine {
    pub fn new(cfg: &RrpConfig, k: usize) -> Self {
        Engine {
            k,
            faulty: PerNet::filled(cfg.networks, false),
            msg_rr: 0,
            tok_rr: 0,
            retrans_rr: 0,
            seen: PerNet::filled(cfg.networks, false),
            last_token: None,
            last_key: None,
            buffered: None,
            buffered_net: NetworkId::new(0),
            timer: None,
            monitor: strategy_for(k, cfg.problem_decay_interval, cfg),
            grace_until: PerNet::filled(cfg.networks, 0),
            stale_drops: 0,
        }
    }

    /// The replication degree currently in force.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Changes the replication degree in place. The faulty set,
    /// rotation pointers and a running token timer survive; a token
    /// pending in the stage-two gate moves into the passive buffer (or
    /// back) so reconfiguration never drops a token. The stage-one
    /// strategy is swapped fresh when the K=N boundary is crossed —
    /// problem-counter history and reception-count history are not
    /// comparable.
    pub fn set_k(&mut self, now: u64, k: usize, cfg: &RrpConfig) {
        if k == self.k {
            return;
        }
        let was_pc = self.k >= cfg.networks;
        let now_pc = k >= cfg.networks;
        if was_pc != now_pc {
            self.monitor = strategy_for(k, now + cfg.problem_decay_interval, cfg);
        }
        if self.k >= 2 && k == 1 {
            // Gate → buffer: a token still waiting for copies becomes
            // the buffered token (the running timer keeps bounding its
            // wait, Requirement P3).
            if let Some(t) = self.last_token.take() {
                self.buffered_net = self
                    .seen
                    .iter()
                    .find(|(_, &s)| s)
                    .map(|(net, _)| net)
                    .unwrap_or(NetworkId::new(0));
                self.buffered = Some(t);
            } else {
                self.timer = None;
            }
        } else if self.k == 1 && k >= 2 {
            // Buffer → gate: the buffered token becomes the pending
            // instance with one copy accounted for.
            if let Some(t) = self.buffered.take() {
                self.last_key = Some(token_key(&t));
                self.last_token = Some(t);
                self.seen.fill(false);
                self.seen.set(self.buffered_net, true);
            } else {
                self.timer = None;
            }
        }
        self.k = k;
    }

    // -- send window ---------------------------------------------------

    /// Networks for the next message.
    pub fn routes_message_into(&mut self, out: &mut Vec<NetworkId>) {
        advance_window(&mut self.msg_rr, self.k, &self.faulty, out);
    }

    /// Networks for the next regular token.
    pub fn routes_token_into(&mut self, out: &mut Vec<NetworkId>) {
        advance_window(&mut self.tok_rr, self.k, &self.faulty, out);
    }

    /// Networks for a retransmission served on another sender's behalf.
    pub fn routes_retransmission_into(&mut self, out: &mut Vec<NetworkId>) {
        advance_window(&mut self.retrans_rr, self.k, &self.faulty, out);
    }

    // -- receive pipeline ----------------------------------------------

    /// Stage one for message-class packets (Figure 4 `messageMonitor`;
    /// a no-op under the problem-counter strategy, which judges the
    /// token path only).
    pub fn on_message(
        &mut self,
        now: u64,
        net: NetworkId,
        sender: NodeId,
        cfg: &RrpConfig,
    ) -> Vec<RrpEvent> {
        let suspects = self.monitor.record_message(net, sender, &self.faulty, cfg);
        self.flag(now, suspects, MonitorKind::Messages { sender })
    }

    /// Stage one (token monitor) then stage two (token gate).
    ///
    /// `any_missing` is consulted only at K=1, where the gate is the
    /// buffer-behind-gap hold of Figure 4 `recvToken`: deliver if
    /// nothing is missing, otherwise buffer and start the token timer.
    /// At K>=2 it is the copy-counting gate of Figure 2 / §7.
    pub fn on_token(
        &mut self,
        now: u64,
        net: NetworkId,
        t: Token,
        any_missing: bool,
        cfg: &RrpConfig,
    ) -> Vec<RrpEvent> {
        let suspects = self.monitor.record_token(net, &self.faulty);
        let mut events = self.flag(now, suspects, MonitorKind::Token);
        if self.k == 1 {
            if !any_missing {
                events.push(RrpEvent::Deliver(Packet::Token(t).into(), net));
                return events;
            }
            // Buffer the newest token; the timer is never restarted
            // while it is active (Figure 4).
            match &self.buffered {
                Some(old) if token_key(old) >= token_key(&t) => {}
                _ => {
                    self.buffered = Some(t);
                    self.buffered_net = net;
                }
            }
            if self.timer.is_none() {
                self.timer = Some(now + cfg.passive_token_timeout);
            }
            return events;
        }
        let key = token_key(&t);
        if let Some(last) = self.last_key {
            if key < last {
                // Stale copy of an older token. Count the run of
                // consecutive stale drops: a corrupted `last_key` in
                // the far future makes EVERY token stale, and without
                // the reset below the gate would silently starve the
                // SRP through endless ring reformations.
                self.stale_drops += 1;
                if self.stale_drops < STALE_DROP_RESET {
                    return events;
                }
                self.stale_drops = 0;
                self.last_key = None;
                self.last_token = None;
            } else {
                self.stale_drops = 0;
            }
        }
        match self.last_key {
            Some(last) if key == last => {
                if self.last_token.is_none() {
                    // Already passed up (K copies or timer); later
                    // copies are ignored (Figure 2 / Requirement A4).
                    self.seen.set(net, true);
                    return events;
                }
                self.seen.set(net, true);
            }
            _ => {
                // A new token instance: reset the per-network flags and
                // start the token timer. The timer is never restarted
                // while running — a new token can only arrive after the
                // previous one completed a rotation, at which point it
                // was already delivered or timed out.
                self.last_key = Some(key);
                self.last_token = Some(t);
                self.seen.fill(false);
                self.seen.set(net, true);
                self.timer = Some(now + cfg.active_token_timeout);
            }
        }
        // K=N uses the exact Figure-2 predicate — a copy on every
        // non-faulty network — rather than a count: with F networks
        // faulty only N−F copies can ever arrive, and the count form
        // would deadlock every token into the timeout path.
        let complete = if self.k >= cfg.networks {
            self.seen.values().zip(self.faulty.values()).all(|(&got, &faulty)| got || faulty)
        } else {
            self.seen.values().filter(|&&s| s).count() >= self.k
        };
        if complete {
            self.timer = None;
            if let Some(tok) = self.last_token.take() {
                events.push(RrpEvent::Deliver(Packet::Token(tok).into(), net));
            }
        }
        events
    }

    /// Token-monitor update without gating — used for commit tokens,
    /// which travel the token path but pass up unconditionally.
    pub fn on_token_monitor_only(
        &mut self,
        now: u64,
        net: NetworkId,
        _cfg: &RrpConfig,
    ) -> Vec<RrpEvent> {
        let suspects = self.monitor.record_token(net, &self.faulty);
        self.flag(now, suspects, MonitorKind::Token)
    }

    /// Whether a token is currently buffered behind missing messages
    /// (K=1 and the token timer is running). The layer samples this
    /// around each call to track the Idle/Buffered machine for
    /// conformance.
    pub fn buffering(&self) -> bool {
        self.k == 1 && self.timer.is_some()
    }

    /// Figure 4 `recvMsg` tail (K=1 only): if the token timer is
    /// running and the just-processed message closed the last gap,
    /// release the buffered token immediately.
    pub fn poll_release(&mut self, any_missing: bool) -> Vec<RrpEvent> {
        if self.k == 1 && self.timer.is_some() && !any_missing {
            self.timer = None;
            if let Some(t) = self.buffered.take() {
                return vec![RrpEvent::Deliver(Packet::Token(t).into(), self.buffered_net)];
            }
        }
        Vec::new()
    }

    /// Timer expiry — `tokenTimerExpired` of Figures 2 and 4 — plus the
    /// strategy's background work (counter decay / grace re-leveling).
    pub fn on_timer(&mut self, now: u64, cfg: &RrpConfig) -> Vec<RrpEvent> {
        let mut events = Vec::new();
        if self.timer.is_some_and(|d| d <= now) {
            self.timer = None;
            if self.k == 1 {
                if let Some(t) = self.buffered.take() {
                    events.push(RrpEvent::Deliver(Packet::Token(t).into(), self.buffered_net));
                }
            } else {
                let reports = self.monitor.on_token_timeout(
                    now,
                    &self.seen,
                    &self.faulty,
                    &self.grace_until,
                    cfg,
                );
                for r in &reports {
                    events.push(RrpEvent::Fault(*r));
                }
                for r in reports {
                    self.faulty.set(r.net, true);
                }
                if let Some(tok) = self.last_token.take() {
                    events.push(RrpEvent::Deliver(
                        Packet::Token(tok).into(),
                        // Attribute delivery to the first network that
                        // did deliver a copy, if any.
                        self.seen
                            .iter()
                            .find(|(_, &s)| s)
                            .map(|(net, _)| net)
                            .unwrap_or(NetworkId::new(0)),
                    ));
                }
            }
        }
        self.monitor.on_timer(now, &mut self.grace_until, cfg);
        events
    }

    pub fn next_deadline(&self) -> Option<u64> {
        [self.timer, self.monitor.next_deadline(&self.grace_until)].into_iter().flatten().min()
    }

    /// Puts a faulty network back in service with cleared monitor
    /// history and a declaration grace period. Returns whether it was
    /// faulty.
    pub fn reinstate(&mut self, now: u64, net: NetworkId, grace: u64) -> bool {
        let was = self.faulty.at(net);
        self.faulty.set(net, false);
        self.monitor.on_reinstate(net);
        self.grace_until.set(net, now + grace);
        was
    }

    /// Current problem counter of a network (tests/diagnostics).
    pub fn problem_counters(&self, networks: usize) -> Vec<u32> {
        self.monitor.problem_counters(networks)
    }

    /// Diagnostic snapshot of the Figure-5 monitor modules' reception
    /// counts (empty under the problem-counter strategy).
    pub fn monitor_report(&self) -> Vec<(MonitorKind, Vec<u64>)> {
        self.monitor.monitor_report()
    }

    /// Deterministically corrupts the stage-one monitor's health
    /// bookkeeping (self-stabilization fault injection; see
    /// `totem_sim::CorruptionTarget::MonitorCounters`).
    pub fn corrupt_monitors(&mut self, rng: &mut rand::rngs::SmallRng) {
        self.monitor.corrupt(rng);
    }

    /// Deterministically corrupts the stage-two token gate
    /// (self-stabilization fault injection; see
    /// `totem_sim::CorruptionTarget::TokenGate`): the freshness key
    /// jumps into the far future (healed by the consecutive-stale-drop
    /// reset), the per-network reception flags are scrambled, one
    /// network's faulty flag flips, or a pending token's timer is
    /// silently disarmed (healed by ring reformation re-arming it).
    pub fn corrupt_token_gate(&mut self, rng: &mut rand::rngs::SmallRng) {
        use rand::Rng as _;
        use totem_wire::{Rotation, Seq};
        match rng.gen_range(0..4) {
            0 => {
                let base = self.last_key.map(|(ring, _, _)| ring).unwrap_or(0);
                let jump = rng.gen_range(1..1_000_000);
                self.last_key = Some((
                    base.saturating_add(jump),
                    Rotation::new(jump).ord_key(),
                    Seq::new(jump).ord_key(),
                ));
            }
            1 => {
                let nets: Vec<NetworkId> = self.seen.ids().collect();
                for net in nets {
                    self.seen.set(net, rng.gen_bool(0.5));
                }
            }
            2 => {
                let nets = self.faulty.len().max(1) as u64;
                let net = NetworkId::new(rng.gen_range(0..nets) as u8);
                let flipped = !self.faulty.at(net);
                self.faulty.set(net, flipped);
            }
            _ => {
                self.timer = None;
            }
        }
    }

    /// Shared fault declaration: marks suspect networks faulty and
    /// raises reports, skipping networks inside a reinstatement grace
    /// window (observe, don't declare).
    fn flag(&mut self, now: u64, suspects: Vec<Suspect>, monitor: MonitorKind) -> Vec<RrpEvent> {
        let mut events = Vec::new();
        for (net, behind) in suspects {
            if now < self.grace_until.at(net) {
                continue;
            }
            if !self.faulty.at(net) {
                self.faulty.set(net, true);
                events.push(RrpEvent::Fault(FaultReport {
                    net,
                    at: now,
                    reason: FaultReason::ReceptionLag { behind, monitor },
                }));
            }
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ReplicationStyle;
    use totem_wire::{RingId, Seq};

    fn active_cfg(n: usize) -> RrpConfig {
        RrpConfig::new(ReplicationStyle::Active, n)
    }

    fn passive_cfg(n: usize) -> RrpConfig {
        let mut c = RrpConfig::new(ReplicationStyle::Passive, n);
        c.monitor_threshold = 5;
        c
    }

    fn ap_cfg(n: usize, k: u8) -> RrpConfig {
        RrpConfig::new(ReplicationStyle::ActivePassive { copies: k }, n)
    }

    fn token(ring_seq: u64, rotation: u64, seq: u64) -> Token {
        let mut t = Token::initial(RingId::new(NodeId::new(0), ring_seq));
        t.rotation = totem_wire::Rotation::new(rotation);
        t.seq = Seq::new(seq);
        t
    }

    fn is_token_delivery(ev: &RrpEvent) -> bool {
        matches!(ev, RrpEvent::Deliver(p, _) if p.is_token_class())
    }

    fn routes_message(e: &mut Engine) -> Vec<NetworkId> {
        let mut out = Vec::new();
        e.routes_message_into(&mut out);
        out
    }

    fn routes_token(e: &mut Engine) -> Vec<NetworkId> {
        let mut out = Vec::new();
        e.routes_token_into(&mut out);
        out
    }

    // -- K=N: the active algorithm (§5, Figure 2) ----------------------

    #[test]
    fn token_waits_for_all_healthy_networks() {
        let cfg = active_cfg(3);
        let mut s = Engine::new(&cfg, 3);
        let t = token(1, 0, 5);
        assert!(s.on_token(0, NetworkId::new(0), t.clone(), false, &cfg).is_empty());
        assert!(s.on_token(10, NetworkId::new(2), t.clone(), false, &cfg).is_empty());
        let ev = s.on_token(20, NetworkId::new(1), t, false, &cfg);
        assert_eq!(ev.len(), 1);
        assert!(is_token_delivery(&ev[0]));
    }

    #[test]
    fn duplicate_copy_on_same_network_does_not_complete() {
        let cfg = active_cfg(2);
        let mut s = Engine::new(&cfg, 2);
        let t = token(1, 0, 5);
        assert!(s.on_token(0, NetworkId::new(0), t.clone(), false, &cfg).is_empty());
        assert!(s.on_token(1, NetworkId::new(0), t, false, &cfg).is_empty());
    }

    #[test]
    fn timer_expiry_delivers_and_penalizes_missing_networks() {
        let cfg = active_cfg(2);
        let mut s = Engine::new(&cfg, 2);
        let t = token(1, 0, 5);
        s.on_token(0, NetworkId::new(0), t, false, &cfg);
        let deadline = s.next_deadline().unwrap();
        assert_eq!(deadline, cfg.active_token_timeout);
        let ev = s.on_timer(deadline, &cfg);
        assert_eq!(ev.len(), 1);
        assert!(is_token_delivery(&ev[0]));
        assert_eq!(s.problem_counters(2), vec![0, 1]);
    }

    #[test]
    fn late_copy_after_timer_delivery_is_ignored() {
        let cfg = active_cfg(2);
        let mut s = Engine::new(&cfg, 2);
        let t = token(1, 0, 5);
        s.on_token(0, NetworkId::new(0), t.clone(), false, &cfg);
        s.on_timer(s.next_deadline().unwrap(), &cfg);
        // The straggler arrives afterwards: no second delivery (A1 for
        // tokens is handled here, not in the SRP).
        assert!(s.on_token(999_999_999, NetworkId::new(1), t, false, &cfg).is_empty());
    }

    #[test]
    fn repeated_timeouts_mark_network_faulty_and_report_once() {
        let cfg = active_cfg(2);
        let mut s = Engine::new(&cfg, 2);
        let mut faults = 0;
        let mut rounds = 0;
        for i in 0..cfg.problem_threshold + 3 {
            let t = token(1, i as u64, i as u64);
            s.on_token(u64::from(i) * 10_000_000, NetworkId::new(0), t, false, &cfg);
            let Some(deadline) = s.timer else {
                // Once net1 is faulty the lone healthy copy completes
                // the token instantly — no timer is armed any more.
                assert!(s.faulty[1]);
                continue;
            };
            rounds += 1;
            for ev in s.on_timer(deadline, &cfg) {
                if let RrpEvent::Fault(r) = ev {
                    faults += 1;
                    assert_eq!(r.net, NetworkId::new(1));
                    assert!(
                        matches!(r.reason, FaultReason::TokenTimeouts { count } if count == cfg.problem_threshold)
                    );
                }
            }
        }
        assert_eq!(faults, 1, "a network is reported faulty exactly once");
        assert_eq!(rounds, cfg.problem_threshold, "fault lands exactly at the threshold");
        assert!(s.faulty[1]);
    }

    #[test]
    fn after_fault_tokens_deliver_without_the_dead_network() {
        let cfg = active_cfg(2);
        let mut s = Engine::new(&cfg, 2);
        s.faulty[1] = true;
        let t = token(1, 0, 5);
        let ev = s.on_token(0, NetworkId::new(0), t, false, &cfg);
        assert_eq!(ev.len(), 1, "single healthy copy suffices once net1 is faulty");
    }

    #[test]
    fn decay_prevents_sporadic_loss_accumulation() {
        let cfg = active_cfg(2);
        let mut s = Engine::new(&cfg, 2);
        // One isolated timeout...
        let t = token(1, 0, 1);
        s.on_token(0, NetworkId::new(0), t, false, &cfg);
        s.on_timer(s.timer.unwrap(), &cfg);
        assert_eq!(s.problem_counters(2), vec![0, 1]);
        // ...decays away after an idle decay interval.
        let decay_at = s.next_deadline().unwrap();
        s.on_timer(decay_at, &cfg);
        assert_eq!(s.problem_counters(2), vec![0, 0]);
        assert!(!s.faulty[1]);
    }

    #[test]
    fn stale_older_token_copies_are_dropped() {
        let cfg = active_cfg(2);
        let mut s = Engine::new(&cfg, 2);
        let newer = token(1, 5, 50);
        let older = token(1, 4, 50);
        s.on_token(0, NetworkId::new(0), newer, false, &cfg);
        assert!(s.on_token(1, NetworkId::new(1), older, false, &cfg).is_empty());
        // The newer instance still completes when its second copy lands.
        let newer = token(1, 5, 50);
        let ev = s.on_token(2, NetworkId::new(1), newer, false, &cfg);
        assert_eq!(ev.len(), 1);
    }

    #[test]
    fn all_faulty_routes_fall_back_to_all_networks() {
        let cfg = active_cfg(2);
        let mut s = Engine::new(&cfg, 2);
        assert_eq!(routes_message(&mut s).len(), 2);
        s.faulty[0] = true;
        assert_eq!(routes_message(&mut s), vec![NetworkId::new(1)]);
        s.faulty[1] = true;
        assert_eq!(routes_message(&mut s).len(), 2, "never stop sending entirely");
    }

    #[test]
    fn rotation_counter_distinguishes_idle_ring_tokens() {
        // Two rotations with identical seq (idle ring): the second is
        // a NEW instance, not a duplicate (paper §2 footnote 1).
        let cfg = active_cfg(2);
        let mut s = Engine::new(&cfg, 2);
        let r1 = token(1, 1, 7);
        s.on_token(0, NetworkId::new(0), r1.clone(), false, &cfg);
        s.on_token(1, NetworkId::new(1), r1, false, &cfg);
        let r2 = token(1, 2, 7);
        assert!(s.on_token(2, NetworkId::new(0), r2.clone(), false, &cfg).is_empty());
        let ev = s.on_token(3, NetworkId::new(1), r2, false, &cfg);
        assert_eq!(ev.len(), 1, "second rotation delivers again");
    }

    // -- K=1: the passive algorithm (§6, Figures 4 and 5) --------------

    #[test]
    fn round_robin_alternates_networks() {
        let cfg = passive_cfg(2);
        let mut s = Engine::new(&cfg, 1);
        let seq: Vec<u8> = (0..6).map(|_| routes_message(&mut s)[0].as_u8()).collect();
        assert_eq!(seq, vec![1, 0, 1, 0, 1, 0]);
        // Tokens rotate independently.
        let seq: Vec<u8> = (0..4).map(|_| routes_token(&mut s)[0].as_u8()).collect();
        assert_eq!(seq, vec![1, 0, 1, 0]);
    }

    #[test]
    fn round_robin_skips_faulty_networks() {
        let cfg = passive_cfg(3);
        let mut s = Engine::new(&cfg, 1);
        s.faulty[1] = true;
        let seq: Vec<u8> = (0..4).map(|_| routes_message(&mut s)[0].as_u8()).collect();
        assert_eq!(seq, vec![2, 0, 2, 0]);
    }

    #[test]
    fn all_faulty_keeps_sending() {
        let cfg = passive_cfg(2);
        let mut s = Engine::new(&cfg, 1);
        s.faulty = PerNet::from_vec(vec![true, true]);
        // Still yields a network rather than silence.
        assert_eq!(routes_message(&mut s).len(), 1);
        assert_eq!(routes_token(&mut s).len(), 1);
    }

    #[test]
    fn token_with_nothing_missing_passes_straight_through() {
        let cfg = passive_cfg(2);
        let mut s = Engine::new(&cfg, 1);
        let ev = s.on_token(0, NetworkId::new(0), token(1, 0, 5), false, &cfg);
        assert!(matches!(ev.as_slice(), [RrpEvent::Deliver(p, _)] if p.is_token_class()));
        assert!(s.timer.is_none());
    }

    #[test]
    fn token_behind_missing_messages_is_buffered_until_release() {
        // Requirement P1: a delayed message (Figure 3 scenarios) must
        // not let the token reach the SRP early.
        let cfg = passive_cfg(2);
        let mut s = Engine::new(&cfg, 1);
        let ev = s.on_token(0, NetworkId::new(1), token(1, 0, 5), true, &cfg);
        assert!(ev.iter().all(|e| !matches!(e, RrpEvent::Deliver(p, _) if p.is_token_class())));
        assert!(s.timer.is_some());
        // Still missing: no release.
        assert!(s.poll_release(true).is_empty());
        // The gap closes: release immediately, well before the timer.
        let ev = s.poll_release(false);
        assert!(matches!(ev.as_slice(), [RrpEvent::Deliver(p, _)] if p.is_token_class()));
        assert!(s.timer.is_none());
    }

    #[test]
    fn token_timer_expiry_releases_buffered_token() {
        // Requirement P3: progress even if the missing message never
        // arrives.
        let cfg = passive_cfg(2);
        let mut s = Engine::new(&cfg, 1);
        s.on_token(0, NetworkId::new(0), token(1, 0, 5), true, &cfg);
        let deadline = s.next_deadline().unwrap();
        assert_eq!(deadline, cfg.passive_token_timeout);
        let ev = s.on_timer(deadline, &cfg);
        assert!(matches!(ev.as_slice(), [RrpEvent::Deliver(p, _)] if p.is_token_class()));
    }

    #[test]
    fn timer_is_not_restarted_while_active() {
        let cfg = passive_cfg(2);
        let mut s = Engine::new(&cfg, 1);
        s.on_token(0, NetworkId::new(0), token(1, 0, 5), true, &cfg);
        let first = s.timer.unwrap();
        // A newer token arrives while one is already buffered (can
        // happen across a reconfiguration): buffer is replaced, timer
        // is left alone.
        s.on_token(5_000_000, NetworkId::new(1), token(1, 1, 9), true, &cfg);
        assert_eq!(s.timer.unwrap(), first);
        let ev = s.on_timer(first, &cfg);
        match ev.as_slice() {
            [RrpEvent::Deliver(p, _)] => match p.packet() {
                Packet::Token(t) => assert_eq!(t.seq.as_u64(), 9),
                other => panic!("unexpected packet: {other:?}"),
            },
            other => panic!("unexpected events: {other:?}"),
        }
    }

    #[test]
    fn lagging_network_is_flagged_by_message_monitor() {
        let cfg = passive_cfg(2);
        let mut s = Engine::new(&cfg, 1);
        let sender = NodeId::new(3);
        let mut reports = Vec::new();
        for _ in 0..cfg.monitor_threshold + 1 {
            reports.extend(s.on_message(7, NetworkId::new(0), sender, &cfg));
        }
        assert_eq!(reports.len(), 1);
        match &reports[0] {
            RrpEvent::Fault(r) => {
                assert_eq!(r.net, NetworkId::new(1));
                assert!(matches!(
                    r.reason,
                    FaultReason::ReceptionLag { monitor: MonitorKind::Messages { sender: sd }, .. } if sd == sender
                ));
            }
            other => panic!("expected fault, got {other:?}"),
        }
        assert!(s.faulty[1]);
    }

    #[test]
    fn token_monitor_covers_quiet_periods() {
        // "Token monitoring is a useful alternative during periods in
        // which no messages are sent" (paper §6).
        let cfg = passive_cfg(2);
        let mut s = Engine::new(&cfg, 1);
        let mut flagged = false;
        for i in 0..cfg.monitor_threshold + 1 {
            let ev = s.on_token(i, NetworkId::new(1), token(1, 0, i), false, &cfg);
            flagged |=
                ev.iter().any(|e| matches!(e, RrpEvent::Fault(r) if r.net == NetworkId::new(0)));
        }
        assert!(flagged);
    }

    #[test]
    fn monitors_are_per_sender() {
        let cfg = passive_cfg(2);
        let mut s = Engine::new(&cfg, 1);
        // Each sender's own traffic alternates networks (as passive
        // round-robin sending guarantees): no monitor may trip even
        // though the interleaving differs per sender.
        for i in 0..100u64 {
            let sender = NodeId::new((i % 2) as u16);
            let net = NetworkId::new(((i / 2) % 2) as u8);
            assert!(
                s.on_message(i, net, sender, &cfg).iter().all(|e| !matches!(e, RrpEvent::Fault(_))),
                "alternating traffic must not trip the monitor"
            );
        }
        assert!(!s.faulty[0] && !s.faulty[1]);
    }

    #[test]
    fn message_driven_compensation_forgives_sporadic_loss() {
        let mut cfg = passive_cfg(2);
        cfg.monitor_threshold = 20;
        cfg.compensation_every = 10;
        let mut s = Engine::new(&cfg, 1);
        // A sender whose traffic alternates but loses ~4% on net1:
        // forgiveness (10% of receptions) outpaces the divergence.
        for i in 0..5000u64 {
            let ev = s.on_message(i, NetworkId::new(0), NodeId::new(0), &cfg);
            assert!(ev.iter().all(|e| !matches!(e, RrpEvent::Fault(_))), "tripped at {i}");
            if i % 25 != 0 {
                let ev = s.on_message(i, NetworkId::new(1), NodeId::new(0), &cfg);
                assert!(ev.iter().all(|e| !matches!(e, RrpEvent::Fault(_))), "tripped at {i}");
            }
        }
        assert!(!s.faulty[1], "sporadic loss must be forgiven (P5)");
    }

    // -- 1 < K < N: the active-passive algorithm (§7) ------------------

    #[test]
    fn window_slides_by_one_and_has_k_networks() {
        let cfg = ap_cfg(4, 2);
        let mut s = Engine::new(&cfg, 2);
        let w1: Vec<u8> = routes_message(&mut s).iter().map(|n| n.as_u8()).collect();
        let w2: Vec<u8> = routes_message(&mut s).iter().map(|n| n.as_u8()).collect();
        let w3: Vec<u8> = routes_message(&mut s).iter().map(|n| n.as_u8()).collect();
        assert_eq!(w1, vec![1, 2]);
        assert_eq!(w2, vec![2, 3]);
        assert_eq!(w3, vec![3, 0]);
    }

    #[test]
    fn window_skips_faulty_networks() {
        let cfg = ap_cfg(4, 2);
        let mut s = Engine::new(&cfg, 2);
        s.faulty[2] = true;
        let w: Vec<u8> = routes_message(&mut s).iter().map(|n| n.as_u8()).collect();
        assert_eq!(w, vec![1, 3]);
    }

    #[test]
    fn token_delivers_after_k_copies() {
        let cfg = ap_cfg(3, 2);
        let mut s = Engine::new(&cfg, 2);
        let t = token(1, 0, 4);
        assert!(s
            .on_token(0, NetworkId::new(0), t.clone(), false, &cfg)
            .iter()
            .all(|e| !matches!(e, RrpEvent::Deliver(..))));
        let ev = s.on_token(1, NetworkId::new(2), t.clone(), false, &cfg);
        assert!(ev.iter().any(|e| matches!(e, RrpEvent::Deliver(p, _) if p.is_token_class())));
        // The third copy is ignored.
        assert!(s
            .on_token(2, NetworkId::new(1), t, false, &cfg)
            .iter()
            .all(|e| !matches!(e, RrpEvent::Deliver(..))));
    }

    #[test]
    fn timeout_passes_token_with_fewer_than_k_copies() {
        let cfg = ap_cfg(3, 2);
        let mut s = Engine::new(&cfg, 2);
        s.on_token(0, NetworkId::new(1), token(1, 0, 4), false, &cfg);
        let d = s.next_deadline().unwrap();
        let ev = s.on_timer(d, &cfg);
        assert!(ev.iter().any(|e| matches!(e, RrpEvent::Deliver(p, _) if p.is_token_class())));
    }

    #[test]
    fn monitors_flag_lagging_network() {
        let cfg = ap_cfg(3, 2);
        let mut s = Engine::new(&cfg, 2);
        let mut faults = Vec::new();
        // Enough receptions that the leading network's count exceeds
        // net2's by strictly more than the threshold despite the
        // message-driven compensation crediting the laggard.
        for i in 0..cfg.monitor_threshold * 2 + 20 {
            faults.extend(
                s.on_message(i, NetworkId::new(i as u8 % 2), NodeId::new(7), &cfg)
                    .into_iter()
                    .filter(|e| matches!(e, RrpEvent::Fault(_))),
            );
        }
        // Networks 0 and 1 alternate; network 2 never receives → flagged.
        assert_eq!(faults.len(), 1);
        assert!(s.faulty[2]);
    }

    #[test]
    fn newer_token_resets_the_copy_count() {
        let cfg = ap_cfg(3, 2);
        let mut s = Engine::new(&cfg, 2);
        s.on_token(0, NetworkId::new(0), token(1, 0, 4), false, &cfg);
        // A newer instance arrives before the second copy of the old.
        assert!(s
            .on_token(1, NetworkId::new(1), token(1, 1, 4), false, &cfg)
            .iter()
            .all(|e| !matches!(e, RrpEvent::Deliver(..))));
        // A stale copy of the old instance no longer counts.
        assert!(s
            .on_token(2, NetworkId::new(2), token(1, 0, 4), false, &cfg)
            .iter()
            .all(|e| !matches!(e, RrpEvent::Deliver(..))));
        // The second copy of the new one delivers.
        let ev = s.on_token(3, NetworkId::new(0), token(1, 1, 4), false, &cfg);
        assert!(ev.iter().any(|e| matches!(e, RrpEvent::Deliver(..))));
    }

    // -- runtime reconfiguration ---------------------------------------

    #[test]
    fn set_k_preserves_faulty_set_and_rotation() {
        let cfg = ap_cfg(3, 2);
        let mut s = Engine::new(&cfg, 2);
        s.faulty[1] = true;
        routes_message(&mut s);
        s.set_k(0, 1, &cfg);
        // K=1 rotation resumes from the same pointer and still skips
        // the faulty network.
        let seq: Vec<u8> = (0..4).map(|_| routes_message(&mut s)[0].as_u8()).collect();
        assert!(seq.iter().all(|&n| n != 1));
        assert!(s.faulty[1]);
    }

    #[test]
    fn lowering_k_moves_pending_token_into_the_buffer() {
        let cfg = ap_cfg(3, 2);
        let mut s = Engine::new(&cfg, 2);
        // One copy arrived; the gate is waiting for a second.
        s.on_token(0, NetworkId::new(1), token(1, 0, 4), false, &cfg);
        assert!(s.timer.is_some());
        s.set_k(10, 1, &cfg);
        assert!(s.buffering(), "pending token became the passive buffer");
        // The gap closes: the token is released with its arrival net.
        let ev = s.poll_release(false);
        match ev.as_slice() {
            [RrpEvent::Deliver(p, net)] => {
                assert!(p.is_token_class());
                assert_eq!(*net, NetworkId::new(1));
            }
            other => panic!("unexpected events: {other:?}"),
        }
    }

    #[test]
    fn raising_k_moves_buffered_token_into_the_gate() {
        let cfg = passive_cfg(3);
        let mut s = Engine::new(&cfg, 1);
        s.on_token(0, NetworkId::new(2), token(1, 0, 4), true, &cfg);
        assert!(s.buffering());
        s.set_k(10, 2, &cfg);
        assert!(!s.buffering());
        // The buffered copy counts as one of the K: a second copy on
        // another network completes the gate.
        let ev = s.on_token(20, NetworkId::new(0), token(1, 0, 4), false, &cfg);
        assert!(ev.iter().any(|e| matches!(e, RrpEvent::Deliver(p, _) if p.is_token_class())));
    }

    #[test]
    fn set_k_across_the_kn_boundary_swaps_the_monitor_strategy() {
        let cfg = ap_cfg(3, 2);
        let mut s = Engine::new(&cfg, 2);
        assert!(s.monitor_report().iter().any(|(k, _)| matches!(k, MonitorKind::Token)));
        s.set_k(0, 3, &cfg);
        assert!(s.monitor_report().is_empty(), "K=N runs the problem-counter strategy");
        assert_eq!(s.problem_counters(3), vec![0, 0, 0]);
        s.set_k(0, 2, &cfg);
        assert!(s.monitor_report().iter().any(|(k, _)| matches!(k, MonitorKind::Token)));
    }

    #[test]
    fn k_equals_n_gate_ignores_faulty_networks_after_set_k() {
        let cfg = ap_cfg(3, 2);
        let mut s = Engine::new(&cfg, 2);
        s.faulty[2] = true;
        s.set_k(0, 3, &cfg);
        // The Figure-2 predicate: copies on both non-faulty networks
        // complete the token even though K=3 copies can never arrive.
        let t = token(1, 0, 4);
        assert!(s.on_token(0, NetworkId::new(0), t.clone(), false, &cfg).is_empty());
        let ev = s.on_token(1, NetworkId::new(1), t, false, &cfg);
        assert_eq!(ev.len(), 1);
    }
}
