//! The unified redundant-ring layer: routing and event translation
//! over the K-of-N replication engine.
//!
//! [`RrpLayer`] sits between the SRP and the networks:
//!
//! ```text
//!   SRP  ──(send msg/token)──▶  routes_for_message / routes_for_token
//!   nets ──(recv packet)────▶  on_packet ──▶ Deliver(..) up to the SRP
//!                                        └─▶ Fault(..) to the operator
//! ```
//!
//! All replicated styles are one `engine::Engine` at a
//! different replication degree K (active = N, passive = 1,
//! active-passive/K-of-N = K); this façade only keeps the wire
//! counters, translates engine events into conformance transitions,
//! and applies the operator-facing policies (automatic reinstatement
//! probation, [`RrpLayer::set_k`] reconfiguration, automatic K
//! degradation).
//!
//! The host composes it with an SRP node; after the SRP processes a
//! delivered message, the host must call [`RrpLayer::poll_release`]
//! with the fresh `any_messages_missing()` so passive-mode replication
//! (K=1) can release a token that was buffered behind the gap (paper
//! Figure 4, `recvMsg`).

use serde::{Deserialize, Serialize};

use totem_wire::{NetworkId, NodeId, Packet, SharedPacket, Transition, TRANSITION_BUFFER_CAP};

use crate::config::{ReplicationStyle, RrpConfig, RrpConfigError};
use crate::engine::Engine;
use crate::fault::FaultReason;
use crate::fault::FaultReport;
use crate::pernet::PerNet;

/// What the layer tells its host.
#[derive(Debug, Clone, PartialEq)]
pub enum RrpEvent {
    /// Hand this packet to the SRP. The network it (first) arrived on
    /// is attached for statistics. Message-class packets keep the
    /// shared handle they arrived with, so the frame (and its cached
    /// wire bytes) survives intact into the SRP's receive window.
    Deliver(SharedPacket, NetworkId),
    /// A network has been declared faulty; the application/operator
    /// should be told (paper §3).
    Fault(FaultReport),
    /// A previously faulty network was put back in service (by the
    /// administrator via [`RrpLayer::reinstate`] or by automatic
    /// probation — see [`crate::RrpConfig::auto_reinstate_interval`]).
    Reinstated {
        /// The repaired network.
        net: NetworkId,
        /// Protocol time of the reinstatement, in nanoseconds.
        at: u64,
    },
}

/// Wire-level counters kept by the layer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RrpStats {
    /// Packets received per network.
    pub received: Vec<u64>,
    /// Message-class sends issued (each counted once per copy).
    pub message_copies_sent: u64,
    /// Token-class sends issued (each counted once per copy).
    pub token_copies_sent: u64,
    /// Tokens released by a token-timer expiry rather than completion.
    pub tokens_timer_released: u64,
    /// Tokens buffered behind missing messages (passive mode, K=1).
    pub tokens_buffered: u64,
}

/// The redundant ring protocol layer. See the
/// [crate documentation](crate) for an example.
#[derive(Debug)]
pub struct RrpLayer {
    cfg: RrpConfig,
    inner: Inner,
    stats: RrpStats,
    /// When each currently-faulty network was flagged (drives the
    /// optional automatic reinstatement probation).
    flagged_at: PerNet<Option<u64>>,
    /// The operator-configured replication degree: the ceiling the
    /// automatic degradation policy restores K towards. Tracks the
    /// style's initial K until [`RrpLayer::set_k`] moves it.
    baseline_k: usize,
    /// Per-mode state-machine transitions since the last
    /// [`RrpLayer::take_transitions`], for the conformance gate.
    transitions: Vec<Transition>,
}

#[derive(Debug)]
enum Inner {
    /// The unreplicated baseline: a transparent passthrough with no
    /// monitors, gate or timers. Kept apart from the engine because a
    /// single network delivers duplicate tokens straight up, which no
    /// gated degree K does.
    Single,
    Engine(Box<Engine>),
}

impl RrpLayer {
    /// Builds a layer for the given configuration.
    ///
    /// # Errors
    ///
    /// Returns the first [`RrpConfig::validate`] violation; an invalid
    /// configuration never yields a half-built layer.
    pub fn new(cfg: RrpConfig) -> Result<Self, RrpConfigError> {
        cfg.validate()?;
        let k = cfg.style.initial_k(cfg.networks);
        let inner = match cfg.style {
            ReplicationStyle::Single => Inner::Single,
            ReplicationStyle::Active
            | ReplicationStyle::Passive
            | ReplicationStyle::ActivePassive { .. }
            | ReplicationStyle::KOfN { .. } => Inner::Engine(Box::new(Engine::new(&cfg, k))),
        };
        let stats = RrpStats { received: vec![0; cfg.networks], ..RrpStats::default() };
        let flagged_at = PerNet::filled(cfg.networks, None);
        Ok(RrpLayer { cfg, inner, stats, flagged_at, baseline_k: k, transitions: Vec::new() })
    }

    /// Drains the state-machine transitions recorded since the last
    /// call (network fault/reinstate machines, the passive token
    /// buffer machine, and the replication-degree machine), for the
    /// conformance trace.
    pub fn take_transitions(&mut self) -> Vec<Transition> {
        std::mem::take(&mut self.transitions)
    }

    /// Records one state-machine transition. Call sites pass four
    /// string literals so `cargo xtask conformance` can extract the
    /// transition table statically; the buffer is capped so an
    /// un-drained layer cannot grow without bound.
    fn note_transition(
        &mut self,
        machine: &'static str,
        from: &'static str,
        event: &'static str,
        to: &'static str,
    ) {
        if self.transitions.len() < TRANSITION_BUFFER_CAP {
            self.transitions.push(Transition { machine, from, event, to });
        }
    }

    /// The engine's current replication degree, or `None` for the
    /// unreplicated baseline.
    pub fn replication_k(&self) -> Option<usize> {
        match &self.inner {
            Inner::Single => None,
            Inner::Engine(e) => Some(e.k()),
        }
    }

    /// Operator command: changes the replication degree K on the fly.
    ///
    /// The engine keeps its faulty set, rotation pointers and any
    /// pending token across the switch (see
    /// `engine::Engine::set_k`); the new K also becomes the
    /// baseline the automatic degradation policy restores towards.
    /// Returns `false` (and changes nothing) if K is out of `1..=N`
    /// or the layer runs the unreplicated baseline.
    pub fn set_k(&mut self, now: u64, k: usize) -> bool {
        if k < 1 || k > self.cfg.networks {
            return false;
        }
        match &mut self.inner {
            Inner::Single => false,
            Inner::Engine(e) => {
                if e.k() != k {
                    e.set_k(now, k, &self.cfg);
                    self.note_transition("rrp-replication", "Steady", "OperatorSetK", "Steady");
                }
                self.baseline_k = k;
                true
            }
        }
    }

    /// Administrative repair: puts a faulty network back in service.
    /// The paper leaves repair to "an administrator reacting to the
    /// alarm" (§1/§3); this is that hook. Monitor state for the
    /// network is reset so it starts probation with a clean slate.
    /// Returns `true` if the network was indeed marked faulty.
    ///
    /// # Example
    ///
    /// ```
    /// # use totem_rrp::{ReplicationStyle, RrpConfig, RrpLayer};
    /// # use totem_wire::NetworkId;
    /// let mut rrp = RrpLayer::new(RrpConfig::new(ReplicationStyle::Active, 2)).unwrap();
    /// // Nothing faulty yet: reinstating is a no-op.
    /// assert!(!rrp.reinstate(0, NetworkId::new(1)));
    /// ```
    pub fn reinstate(&mut self, now: u64, net: NetworkId) -> bool {
        assert!(net.index() < self.cfg.networks, "network out of range");
        let grace = self.cfg.reinstate_grace;
        let was = match &mut self.inner {
            Inner::Single => false,
            Inner::Engine(e) => e.reinstate(now, net, grace),
        };
        self.flagged_at.set(net, None);
        if was {
            // One literal call site per machine (the static extractor
            // in `cargo xtask conformance` requires literal strings).
            match self.net_machine() {
                "rrp-passive-net" => {
                    self.note_transition("rrp-passive-net", "Faulty", "Reinstate", "Operative");
                }
                "rrp-active-net" => {
                    self.note_transition("rrp-active-net", "Faulty", "Reinstate", "Operative");
                }
                _ => {
                    self.note_transition(
                        "rrp-active-passive-net",
                        "Faulty",
                        "Reinstate",
                        "Operative",
                    );
                }
            }
            if self.cfg.auto_degrade {
                if let Inner::Engine(e) = &mut self.inner {
                    if e.k() < self.baseline_k {
                        e.set_k(now, e.k() + 1, &self.cfg);
                        self.note_transition("rrp-replication", "Steady", "AutoRestore", "Steady");
                    }
                }
            }
        }
        was
    }

    /// The network fault/reinstate machine for the current mode. The
    /// machines are per *algorithm* — what the engine's K degenerates
    /// to — so the legacy styles keep their historical machine names.
    fn net_machine(&self) -> &'static str {
        match self.replication_k() {
            Some(1) => "rrp-passive-net",
            Some(k) if k >= self.cfg.networks => "rrp-active-net",
            _ => "rrp-active-passive-net",
        }
    }

    fn note_new_faults(&mut self, events: &[RrpEvent]) {
        for ev in events {
            if let RrpEvent::Fault(r) = ev {
                self.flagged_at.set(r.net, Some(r.at));
                match r.reason {
                    // Token timeouts are raised only by the K=N
                    // problem-counter strategy (Figure 2).
                    FaultReason::TokenTimeouts { .. } => {
                        self.note_transition(
                            "rrp-active-net",
                            "Operative",
                            "TokenTimeouts",
                            "Faulty",
                        );
                    }
                    FaultReason::ReceptionLag { .. } if self.replication_k() == Some(1) => {
                        self.note_transition(
                            "rrp-passive-net",
                            "Operative",
                            "ReceptionLag",
                            "Faulty",
                        );
                    }
                    FaultReason::ReceptionLag { .. } => {
                        self.note_transition(
                            "rrp-active-passive-net",
                            "Operative",
                            "ReceptionLag",
                            "Faulty",
                        );
                    }
                }
                if self.cfg.auto_degrade {
                    if let Inner::Engine(e) = &mut self.inner {
                        if e.k() > 1 {
                            e.set_k(r.at, e.k() - 1, &self.cfg);
                            self.note_transition(
                                "rrp-replication",
                                "Steady",
                                "AutoDegrade",
                                "Steady",
                            );
                        }
                    }
                }
            }
        }
    }

    fn auto_reinstatements(&mut self, now: u64) -> Vec<RrpEvent> {
        if self.cfg.auto_reinstate_interval == 0 {
            return Vec::new();
        }
        let due: Vec<NetworkId> = self
            .flagged_at
            .iter()
            .filter_map(|(net, f)| {
                f.and_then(|at| (now >= at + self.cfg.auto_reinstate_interval).then_some(net))
            })
            .collect();
        due.into_iter()
            .filter(|&net| self.reinstate(now, net))
            .map(|net| RrpEvent::Reinstated { net, at: now })
            .collect()
    }

    /// The configuration in force.
    pub fn config(&self) -> &RrpConfig {
        &self.cfg
    }

    /// Number of redundant networks.
    pub fn networks(&self) -> usize {
        self.cfg.networks
    }

    /// Which networks are currently marked faulty. A faulty network is
    /// never used for sending but is still accepted for reception
    /// (paper §3).
    pub fn faulty(&self) -> Vec<bool> {
        match &self.inner {
            Inner::Single => vec![false],
            Inner::Engine(e) => e.faulty.to_vec(),
        }
    }

    /// Counters.
    pub fn stats(&self) -> &RrpStats {
        &self.stats
    }

    /// Networks on which to send the next **message-class** packet
    /// (data packets and join messages).
    ///
    /// # Example
    ///
    /// Passive replication alternates networks per packet:
    ///
    /// ```
    /// # use totem_rrp::{ReplicationStyle, RrpConfig, RrpLayer};
    /// let mut rrp = RrpLayer::new(RrpConfig::new(ReplicationStyle::Passive, 2)).unwrap();
    /// let first = rrp.routes_for_message();
    /// let second = rrp.routes_for_message();
    /// assert_eq!(first.len(), 1);
    /// assert_ne!(first, second);
    /// ```
    pub fn routes_for_message(&mut self) -> Vec<NetworkId> {
        let mut routes = Vec::new();
        self.routes_for_message_into(&mut routes);
        routes
    }

    /// Allocation-free form of [`RrpLayer::routes_for_message`]:
    /// clears `out` and fills it in place, so a caller on the send hot
    /// path can recycle one route buffer across packets.
    pub fn routes_for_message_into(&mut self, out: &mut Vec<NetworkId>) {
        match &mut self.inner {
            Inner::Single => {
                out.clear();
                out.push(NetworkId::new(0));
            }
            Inner::Engine(e) => e.routes_message_into(out),
        }
        self.stats.message_copies_sent += out.len() as u64;
    }

    /// Networks on which to send the next **token-class** packet
    /// (regular tokens).
    pub fn routes_for_token(&mut self) -> Vec<NetworkId> {
        let mut routes = Vec::new();
        self.routes_for_token_into(&mut routes);
        routes
    }

    /// Allocation-free form of [`RrpLayer::routes_for_token`].
    pub fn routes_for_token_into(&mut self, out: &mut Vec<NetworkId>) {
        match &mut self.inner {
            Inner::Single => {
                out.clear();
                out.push(NetworkId::new(0));
            }
            Inner::Engine(e) => e.routes_token_into(out),
        }
        self.stats.token_copies_sent += out.len() as u64;
    }

    /// Networks for a **retransmission** this node serves on another
    /// sender's behalf. Uses a rotation independent of the node's own
    /// data rotation so per-sender reception monitors stay unskewed.
    pub fn routes_for_retransmission(&mut self) -> Vec<NetworkId> {
        let mut routes = Vec::new();
        self.routes_for_retransmission_into(&mut routes);
        routes
    }

    /// Allocation-free form of
    /// [`RrpLayer::routes_for_retransmission`].
    pub fn routes_for_retransmission_into(&mut self, out: &mut Vec<NetworkId>) {
        match &mut self.inner {
            Inner::Single => {
                out.clear();
                out.push(NetworkId::new(0));
            }
            Inner::Engine(e) => e.routes_retransmission_into(out),
        }
        self.stats.message_copies_sent += out.len() as u64;
    }

    /// Networks for **membership traffic** (join messages and commit
    /// tokens): always every non-faulty network, under every style.
    /// Membership traffic is rare and small, and the membership
    /// protocol has no retransmission machinery for the commit token —
    /// under passive replication a single-copy commit token would be
    /// lost with ~50% probability per hop while a network is dead but
    /// not yet flagged, livelocking reformation. Replicating it keeps
    /// reconfiguration robust at negligible cost (the SRP's join and
    /// commit handlers are idempotent against duplicates).
    pub fn routes_for_membership(&mut self) -> Vec<NetworkId> {
        let mut routes = Vec::new();
        self.routes_for_membership_into(&mut routes);
        routes
    }

    /// Allocation-free form of [`RrpLayer::routes_for_membership`].
    pub fn routes_for_membership_into(&mut self, out: &mut Vec<NetworkId>) {
        out.clear();
        let nets = (0..self.cfg.networks as u8).map(NetworkId::new);
        out.extend(nets.clone().filter(|&n| !self.net_faulty(n)));
        if out.is_empty() {
            out.extend(nets);
        }
        self.stats.message_copies_sent += out.len() as u64;
    }

    /// Whether `net` is currently flagged faulty (no allocation, any
    /// style).
    fn net_faulty(&self, net: NetworkId) -> bool {
        match &self.inner {
            Inner::Single => false,
            Inner::Engine(e) => e.faulty.at(net),
        }
    }

    /// Feeds a packet received on `net`. `any_missing` is the SRP's
    /// `any_messages_missing()` evaluated *before* this packet is
    /// processed (only consulted for tokens at K=1).
    ///
    /// Regular tokens are gated per the replication degree. Messages,
    /// join messages and commit tokens pass straight up: duplicate
    /// data packets are destroyed by the SRP's sequence-number filter
    /// (Requirement A1) and the membership handlers are idempotent
    /// against duplicate joins/commits.
    pub fn on_packet(
        &mut self,
        now: u64,
        net: NetworkId,
        pkt: SharedPacket,
        any_missing: bool,
    ) -> Vec<RrpEvent> {
        let mut events = Vec::new();
        self.on_packet_into(now, net, pkt, any_missing, &mut events);
        events
    }

    /// Like [`RrpLayer::on_packet`], but appends the resulting events
    /// to a caller-supplied buffer. The message fast path (one
    /// `Deliver` per reception) then allocates nothing when the caller
    /// recycles the buffer across receptions.
    pub fn on_packet_into(
        &mut self,
        now: u64,
        net: NetworkId,
        pkt: SharedPacket,
        any_missing: bool,
        out: &mut Vec<RrpEvent>,
    ) {
        if let Some(count) = self.stats.received.get_mut(net.index()) {
            *count += 1;
        }
        let start = out.len();
        let mut token_newly_buffered = false;
        // Regular tokens are extracted by value (the gate holds and
        // compares them); every other class keeps its shared handle so
        // the delivered frame is the one that arrived.
        match &mut self.inner {
            Inner::Single => out.push(RrpEvent::Deliver(pkt, net)),
            Inner::Engine(e) => match pkt.try_into_token() {
                Ok(t) => {
                    if e.k() == 1 {
                        let was_buffering = e.buffering();
                        let ev = e.on_token(now, net, t, any_missing, &self.cfg);
                        if any_missing && !ev.iter().any(|ev| matches!(ev, RrpEvent::Deliver(..))) {
                            self.stats.tokens_buffered += 1;
                        }
                        token_newly_buffered = !was_buffering && e.buffering();
                        out.extend(ev);
                    } else {
                        out.append(&mut e.on_token(now, net, t, any_missing, &self.cfg));
                    }
                }
                Err(pkt) => {
                    // Commit tokens have no data sender; they count on
                    // the token monitor below instead.
                    if let Some(sender) = sender_of(&pkt) {
                        out.extend(e.on_message(now, net, sender, &self.cfg));
                    }
                    if e.k() == 1 && matches!(pkt.packet(), Packet::Commit(_)) {
                        // Commit tokens travel the token path; count
                        // them on the token monitor so quiet-period
                        // coverage extends to reconfiguration (paper
                        // §6).
                        out.extend(e.on_token_monitor_only(now, net, &self.cfg));
                    }
                    out.push(RrpEvent::Deliver(pkt, net));
                }
            },
        }
        if token_newly_buffered {
            self.note_transition("rrp-passive-token", "Idle", "TokenBehindGap", "Buffered");
        }
        if let Some(new) = out.get(start..) {
            self.note_new_faults(new);
        }
    }

    /// Must be called after the SRP has processed a delivered message,
    /// with the fresh `any_messages_missing()`: passive-mode
    /// replication (K=1) releases a buffered token the moment the gap
    /// closes (paper Figure 4, `recvMsg`).
    pub fn poll_release(&mut self, _now: u64, any_missing: bool) -> Vec<RrpEvent> {
        let (ev, gap_closed) = match &mut self.inner {
            Inner::Engine(e) if e.k() == 1 => {
                let was_buffering = e.buffering();
                let ev = e.poll_release(any_missing);
                (ev, was_buffering && !e.buffering())
            }
            Inner::Single | Inner::Engine(_) => (Vec::new(), false),
        };
        if gap_closed {
            self.note_transition("rrp-passive-token", "Buffered", "GapClosed", "Idle");
        }
        ev
    }

    /// Fires any timers with deadline `<= now`.
    pub fn on_timer(&mut self, now: u64) -> Vec<RrpEvent> {
        let mut buffer_timed_out = false;
        let mut ev = match &mut self.inner {
            Inner::Single => Vec::new(),
            Inner::Engine(e) => {
                let was_buffering = e.buffering();
                let ev = e.on_timer(now, &self.cfg);
                buffer_timed_out = was_buffering && !e.buffering();
                ev
            }
        };
        if buffer_timed_out {
            self.note_transition("rrp-passive-token", "Buffered", "TimerExpiry", "Idle");
        }
        self.stats.tokens_timer_released += ev
            .iter()
            .filter(|e| matches!(e, RrpEvent::Deliver(p, _) if p.is_token_class()))
            .count() as u64;
        self.note_new_faults(&ev);
        ev.extend(self.auto_reinstatements(now));
        ev
    }

    /// The per-network problem counters of the K=N problem-counter
    /// monitor (Figure 2), for diagnostics; zeros in every other mode.
    pub fn problem_counters(&self) -> Vec<u32> {
        match &self.inner {
            Inner::Single => vec![0; self.cfg.networks],
            Inner::Engine(e) => e.problem_counters(self.cfg.networks),
        }
    }

    /// Feeds the protocol-visible portion of this layer's state into a
    /// caller-supplied hasher: the faulty set, the current replication
    /// degree, and the per-network problem counters. Part of the
    /// canonical state hash of the bounded model checker
    /// (`totem_cluster::mc`).
    pub fn fingerprint<H: core::hash::Hasher>(&self, h: &mut H) {
        use core::hash::Hash as _;
        self.faulty().hash(h);
        self.replication_k().hash(h);
        self.problem_counters().hash(h);
    }

    /// Diagnostic snapshot of the reception-count monitors (passive
    /// mode, K=1, only; empty otherwise).
    pub fn monitor_report(&self) -> Vec<(crate::fault::MonitorKind, Vec<u64>)> {
        match &self.inner {
            Inner::Engine(e) if e.k() == 1 => e.monitor_report(),
            Inner::Single | Inner::Engine(_) => Vec::new(),
        }
    }

    /// Deterministically corrupts the stage-one health monitor's
    /// bookkeeping (self-stabilization fault injection; see
    /// `totem_sim::CorruptionTarget::MonitorCounters`). No-op under
    /// the unreplicated single-network style, which has no monitors.
    pub fn corrupt_monitors(&mut self, rng: &mut rand::rngs::SmallRng) {
        if let Inner::Engine(e) = &mut self.inner {
            e.corrupt_monitors(rng);
        }
    }

    /// Deterministically corrupts the stage-two token gate
    /// (self-stabilization fault injection; see
    /// `totem_sim::CorruptionTarget::TokenGate`). No-op under the
    /// unreplicated single-network style, which has no gate.
    pub fn corrupt_token_gate(&mut self, rng: &mut rand::rngs::SmallRng) {
        if let Inner::Engine(e) = &mut self.inner {
            e.corrupt_token_gate(rng);
        }
    }

    /// The earliest instant [`RrpLayer::on_timer`] must run, if any.
    pub fn next_deadline(&self) -> Option<u64> {
        let inner = match &self.inner {
            Inner::Single => None,
            Inner::Engine(e) => e.next_deadline(),
        };
        let auto = (self.cfg.auto_reinstate_interval > 0)
            .then(|| {
                self.flagged_at
                    .values()
                    .flatten()
                    .map(|at| at + self.cfg.auto_reinstate_interval)
                    .min()
            })
            .flatten();
        [inner, auto].into_iter().flatten().min()
    }
}

/// The sender of a message-class packet, for the per-sender monitors.
fn sender_of(pkt: &Packet) -> Option<NodeId> {
    match pkt {
        Packet::Data(d) => Some(d.sender),
        Packet::Join(j) => Some(j.sender),
        Packet::Token(_) | Packet::Commit(_) | Packet::RingPaxos(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use totem_wire::{Chunk, DataPacket, RingId, Seq, Token};

    fn data(seq: u64, sender: u16) -> Packet {
        Packet::Data(DataPacket {
            ring: RingId::new(NodeId::new(0), 1),
            seq: Seq::new(seq),
            sender: NodeId::new(sender),
            chunks: vec![Chunk::complete(0, Bytes::from_static(b"x"))],
        })
    }

    fn token(seq: u64) -> Packet {
        let mut t = Token::initial(RingId::new(NodeId::new(0), 1));
        t.seq = Seq::new(seq);
        Packet::Token(t)
    }

    #[test]
    fn single_is_transparent_passthrough() {
        let mut l = RrpLayer::new(RrpConfig::new(ReplicationStyle::Single, 1)).unwrap();
        assert_eq!(l.routes_for_message(), vec![NetworkId::new(0)]);
        assert_eq!(l.routes_for_token(), vec![NetworkId::new(0)]);
        let ev = l.on_packet(0, NetworkId::new(0), token(1).into(), true);
        assert!(matches!(ev.as_slice(), [RrpEvent::Deliver(p, _)] if p.is_token_class()));
        assert!(l.next_deadline().is_none());
        assert_eq!(l.replication_k(), None);
        assert!(!l.set_k(0, 1), "the baseline has no degree to change");
    }

    #[test]
    fn active_sends_messages_and_tokens_everywhere() {
        let mut l = RrpLayer::new(RrpConfig::new(ReplicationStyle::Active, 3)).unwrap();
        assert_eq!(l.routes_for_message().len(), 3);
        assert_eq!(l.routes_for_token().len(), 3);
        assert_eq!(l.stats().message_copies_sent, 3);
        assert_eq!(l.stats().token_copies_sent, 3);
        assert_eq!(l.replication_k(), Some(3));
    }

    #[test]
    fn active_messages_pass_straight_up() {
        let mut l = RrpLayer::new(RrpConfig::new(ReplicationStyle::Active, 2)).unwrap();
        let ev = l.on_packet(0, NetworkId::new(1), data(1, 0).into(), false);
        assert!(matches!(ev.as_slice(), [RrpEvent::Deliver(p, _)] if p.data().is_some()));
        // The duplicate copy on the other network also goes up — the
        // SRP's sequence filter destroys it (Requirement A1).
        let ev = l.on_packet(1, NetworkId::new(0), data(1, 0).into(), false);
        assert!(matches!(ev.as_slice(), [RrpEvent::Deliver(p, _)] if p.data().is_some()));
    }

    #[test]
    fn passive_alternates_and_buffers_tokens_behind_gaps() {
        let mut l = RrpLayer::new(RrpConfig::new(ReplicationStyle::Passive, 2)).unwrap();
        let m1 = l.routes_for_message();
        let m2 = l.routes_for_message();
        assert_eq!(m1.len(), 1);
        assert_ne!(m1, m2);

        let ev = l.on_packet(0, NetworkId::new(0), token(3).into(), true);
        assert!(ev.iter().all(|e| !matches!(e, RrpEvent::Deliver(p, _) if p.is_token_class())));
        assert_eq!(l.stats().tokens_buffered, 1);
        let ev = l.poll_release(1, false);
        assert!(matches!(ev.as_slice(), [RrpEvent::Deliver(p, _)] if p.is_token_class()));
    }

    #[test]
    fn commit_tokens_pass_up_unconditionally() {
        use totem_wire::CommitToken;
        for style in [ReplicationStyle::Active, ReplicationStyle::Passive] {
            let mut l = RrpLayer::new(RrpConfig::new(style, 2)).unwrap();
            let ct = Packet::Commit(CommitToken {
                ring: RingId::new(NodeId::new(0), 2),
                round: 0,
                entries: vec![],
            });
            let ev = l.on_packet(0, NetworkId::new(0), ct.into(), true);
            assert!(
                ev.iter().any(|e| matches!(e, RrpEvent::Deliver(p, _) if matches!(p.packet(), Packet::Commit(_)))),
                "commit token must pass up under {style}"
            );
        }
    }

    #[test]
    fn timer_release_is_counted() {
        let mut l = RrpLayer::new(RrpConfig::new(ReplicationStyle::Passive, 2)).unwrap();
        l.on_packet(0, NetworkId::new(0), token(3).into(), true);
        let d = l.next_deadline().unwrap();
        let ev = l.on_timer(d);
        assert!(matches!(ev.as_slice(), [RrpEvent::Deliver(p, _)] if p.is_token_class()));
        assert_eq!(l.stats().tokens_timer_released, 1);
    }

    #[test]
    fn received_counters_track_networks() {
        let mut l = RrpLayer::new(RrpConfig::new(ReplicationStyle::Active, 2)).unwrap();
        l.on_packet(0, NetworkId::new(0), data(1, 0).into(), false);
        l.on_packet(0, NetworkId::new(1), data(1, 0).into(), false);
        l.on_packet(0, NetworkId::new(1), data(2, 0).into(), false);
        assert_eq!(l.stats().received, vec![1, 2]);
    }

    #[test]
    fn problem_counters_report_active_state() {
        let mut l = RrpLayer::new(RrpConfig::new(ReplicationStyle::Active, 2)).unwrap();
        assert_eq!(l.problem_counters(), vec![0, 0]);
        // One token seen on net0 only; timer expiry penalizes net1.
        l.on_packet(0, NetworkId::new(0), token(1).into(), false);
        let d = l.next_deadline().unwrap();
        l.on_timer(d);
        assert_eq!(l.problem_counters(), vec![0, 1]);
        // Non-active styles always report zeros.
        let p = RrpLayer::new(RrpConfig::new(ReplicationStyle::Passive, 2)).unwrap();
        assert_eq!(p.problem_counters(), vec![0, 0]);
    }

    #[test]
    fn invalid_config_is_rejected_at_construction() {
        use crate::config::RrpConfigError;
        assert_eq!(
            RrpLayer::new(RrpConfig::new(ReplicationStyle::Active, 1)).map(|_| ()),
            Err(RrpConfigError::NeedsTwoNetworks { style: ReplicationStyle::Active, got: 1 })
        );
    }

    #[test]
    fn fault_and_reinstate_transitions_are_recorded() {
        let mut l = RrpLayer::new(RrpConfig::new(ReplicationStyle::Active, 2)).unwrap();
        let cfg = l.config().clone();
        for i in 0..cfg.problem_threshold as u64 {
            let mut t = Token::initial(RingId::new(NodeId::new(0), 1));
            t.rotation = totem_wire::Rotation::new(i);
            t.seq = Seq::new(i + 1);
            l.on_packet(i * 10_000_000, NetworkId::new(0), Packet::Token(t).into(), false);
            if let Some(d) = l.next_deadline() {
                l.on_timer(d);
            }
        }
        let trs = l.take_transitions();
        assert!(
            trs.iter().any(|t| t.machine == "rrp-active-net"
                && t.from == "Operative"
                && t.event == "TokenTimeouts"
                && t.to == "Faulty"),
            "fault transition missing from {trs:?}"
        );
        assert!(l.reinstate(1_000_000_000, NetworkId::new(1)));
        let trs = l.take_transitions();
        assert_eq!(trs.len(), 1);
        assert_eq!(trs[0].event, "Reinstate");
        assert!(l.take_transitions().is_empty(), "take_transitions drains");
    }

    #[test]
    fn passive_token_machine_transitions_are_recorded() {
        let mut l = RrpLayer::new(RrpConfig::new(ReplicationStyle::Passive, 2)).unwrap();
        l.on_packet(0, NetworkId::new(0), token(3).into(), true);
        l.poll_release(1, false);
        l.on_packet(2, NetworkId::new(1), token(4).into(), true);
        let d = l.next_deadline().unwrap();
        l.on_timer(d);
        let path: Vec<&str> = l
            .take_transitions()
            .iter()
            .filter(|t| t.machine == "rrp-passive-token")
            .map(|t| t.event)
            .collect();
        assert_eq!(path, vec!["TokenBehindGap", "GapClosed", "TokenBehindGap", "TimerExpiry"]);
    }

    #[test]
    fn set_k_reconfigures_and_notes_the_transition() {
        let mut l = RrpLayer::new(RrpConfig::new(ReplicationStyle::KOfN { copies: 2 }, 3)).unwrap();
        assert_eq!(l.replication_k(), Some(2));
        assert!(!l.set_k(0, 0), "K=0 is rejected");
        assert!(!l.set_k(0, 4), "K>N is rejected");
        assert!(l.set_k(0, 3));
        assert_eq!(l.replication_k(), Some(3));
        assert_eq!(l.routes_for_message().len(), 3, "K=N sends everywhere");
        assert!(l.set_k(0, 1));
        assert_eq!(l.routes_for_message().len(), 1, "K=1 sends one copy");
        let ops: Vec<&str> = l
            .take_transitions()
            .iter()
            .filter(|t| t.machine == "rrp-replication")
            .map(|t| t.event)
            .collect();
        assert_eq!(ops, vec!["OperatorSetK", "OperatorSetK"]);
        // A no-op set keeps the trace quiet.
        assert!(l.set_k(0, 1));
        assert!(l.take_transitions().is_empty());
    }

    #[test]
    fn auto_degrade_steps_k_down_on_fault_and_back_up_on_reinstate() {
        let cfg = RrpConfig::new(ReplicationStyle::KOfN { copies: 3 }, 3).with_auto_degrade();
        let mut l = RrpLayer::new(cfg).unwrap();
        let cfg = l.config().clone();
        // Drive net1 to a token-timeout fault at K=N.
        for i in 0..cfg.problem_threshold as u64 {
            let mut t = Token::initial(RingId::new(NodeId::new(0), 1));
            t.rotation = totem_wire::Rotation::new(i);
            t.seq = Seq::new(i + 1);
            let now = i * 10_000_000;
            l.on_packet(now, NetworkId::new(0), Packet::Token(t.clone()).into(), false);
            l.on_packet(now, NetworkId::new(2), Packet::Token(t).into(), false);
            if let Some(d) = l.next_deadline() {
                l.on_timer(d);
            }
        }
        assert_eq!(l.faulty(), vec![false, true, false]);
        assert_eq!(l.replication_k(), Some(2), "K stepped down with the fault");
        assert!(l
            .take_transitions()
            .iter()
            .any(|t| t.machine == "rrp-replication" && t.event == "AutoDegrade"));
        // Repair restores the degree towards the baseline.
        assert!(l.reinstate(1_000_000_000, NetworkId::new(1)));
        assert_eq!(l.replication_k(), Some(3));
        assert!(l
            .take_transitions()
            .iter()
            .any(|t| t.machine == "rrp-replication" && t.event == "AutoRestore"));
    }

    #[test]
    fn auto_restore_never_exceeds_an_operator_lowered_baseline() {
        let cfg = RrpConfig::new(ReplicationStyle::KOfN { copies: 2 }, 3).with_auto_degrade();
        let mut l = RrpLayer::new(cfg).unwrap();
        // The operator pins K=1; a later reinstatement must not raise
        // it (nothing was degraded below the baseline).
        assert!(l.set_k(0, 1));
        // Enough one-sided receptions that the divergence outruns the
        // message-driven compensation and nets 1/2 get flagged.
        let threshold = l.config().monitor_threshold;
        for i in 0..threshold * 2 {
            l.on_packet(i, NetworkId::new(0), data(i + 1, 3).into(), false);
        }
        assert!(l.faulty().iter().filter(|&&f| f).count() >= 1);
        let flagged = l.faulty().iter().position(|&f| f).unwrap();
        assert!(l.reinstate(1_000_000_000, NetworkId::new(flagged as u8)));
        assert_eq!(l.replication_k(), Some(1), "baseline is the operator's K");
    }
}
