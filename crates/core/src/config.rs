//! Configuration of the redundant ring layer.

use serde::{Deserialize, Serialize};

/// Which network replication style to run (paper §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReplicationStyle {
    /// No replication: everything on network 0. The paper's baseline.
    Single,
    /// Every message and token on all N networks (§5).
    Active,
    /// Each message and token on exactly one network, round-robin (§6).
    Passive,
    /// Each message and token on `copies` consecutive networks of the
    /// round-robin window (§7). Requires `1 < copies < N`, hence at
    /// least three networks.
    ActivePassive {
        /// K: how many copies of each packet are sent.
        copies: u8,
    },
    /// The unified K-of-N engine over the full `1 <= K <= N` range:
    /// K=N runs the active algorithm, K=1 the passive one, anything in
    /// between active-passive — and K may be changed at runtime
    /// ([`crate::RrpLayer::set_k`]) or stepped automatically with
    /// [`RrpConfig::auto_degrade`]. The three named styles above are
    /// fixed-K aliases kept for the paper's figure configurations.
    KOfN {
        /// K: how many copies of each packet are sent initially.
        copies: u8,
    },
}

impl ReplicationStyle {
    /// Short human-readable name (matches the paper's figure legends).
    pub fn name(self) -> &'static str {
        match self {
            ReplicationStyle::Single => "no replication",
            ReplicationStyle::Active => "active replication",
            ReplicationStyle::Passive => "passive replication",
            ReplicationStyle::ActivePassive { .. } => "active-passive replication",
            ReplicationStyle::KOfN { .. } => "k-of-n replication",
        }
    }

    /// The initial replication degree K this style asks of the engine,
    /// given N networks: N for active, 1 for passive, K as configured
    /// otherwise.
    pub fn initial_k(self, networks: usize) -> usize {
        match self {
            ReplicationStyle::Single => 1,
            ReplicationStyle::Active => networks,
            ReplicationStyle::Passive => 1,
            ReplicationStyle::ActivePassive { copies } | ReplicationStyle::KOfN { copies } => {
                copies as usize
            }
        }
    }
}

impl core::fmt::Display for ReplicationStyle {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ReplicationStyle::ActivePassive { copies } => {
                write!(f, "active-passive replication (K={copies})")
            }
            ReplicationStyle::KOfN { copies } => write!(f, "k-of-n replication (K={copies})"),
            other => f.write_str(other.name()),
        }
    }
}

/// Why an [`RrpConfig`] failed [`RrpConfig::validate`].
///
/// Construction sites ([`crate::RrpLayer::new`]) surface this instead
/// of panicking, so a host that assembles configurations at runtime
/// (an operator console, a config file) can report the violation and
/// keep running.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RrpConfigError {
    /// `networks` was zero.
    NoNetworks,
    /// `Single` style over anything but exactly one network.
    SingleNeedsOneNetwork {
        /// The offending network count.
        got: usize,
    },
    /// `Active` or `Passive` style over fewer than two networks.
    NeedsTwoNetworks {
        /// The style that was asked for.
        style: ReplicationStyle,
        /// The offending network count.
        got: usize,
    },
    /// `ActivePassive` outside the paper's `1 < K < N` bound (§7).
    ActivePassiveBounds {
        /// The requested K.
        copies: u8,
        /// The number of networks N.
        networks: usize,
    },
    /// `KOfN` outside `1 <= K <= N` (or fewer than two networks —
    /// a single network leaves nothing to replicate or reconfigure
    /// over; use `Single`).
    KOfNBounds {
        /// The requested K.
        copies: u8,
        /// The number of networks N.
        networks: usize,
    },
    /// A token timeout (`active_token_timeout` or
    /// `passive_token_timeout`) was zero.
    ZeroTokenTimeout,
    /// `problem_threshold` was zero (Requirement A5 needs a positive
    /// trip point).
    ZeroProblemThreshold,
    /// `monitor_threshold` was zero (Requirement P4 needs a positive
    /// lag bound).
    ZeroMonitorThreshold,
    /// `compensation_every` was zero (Requirement P5's forgiveness
    /// rate is a division by this).
    ZeroCompensation,
}

impl core::fmt::Display for RrpConfigError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RrpConfigError::NoNetworks => f.write_str("at least one network is required"),
            RrpConfigError::SingleNeedsOneNetwork { got } => {
                write!(f, "single (unreplicated) style uses exactly 1 network, got {got}")
            }
            RrpConfigError::NeedsTwoNetworks { style, got } => {
                write!(f, "{style} needs at least 2 networks, got {got}")
            }
            RrpConfigError::ActivePassiveBounds { copies, networks } => {
                write!(f, "active-passive requires 1 < K < N (got K={copies}, N={networks})")
            }
            RrpConfigError::KOfNBounds { copies, networks } => {
                write!(
                    f,
                    "k-of-n requires 1 <= K <= N and at least 2 networks (got K={copies}, N={networks})"
                )
            }
            RrpConfigError::ZeroTokenTimeout => f.write_str("token timeouts must be positive"),
            RrpConfigError::ZeroProblemThreshold => {
                f.write_str("problem_threshold must be positive")
            }
            RrpConfigError::ZeroMonitorThreshold => {
                f.write_str("monitor_threshold must be positive")
            }
            RrpConfigError::ZeroCompensation => f.write_str("compensation_every must be positive"),
        }
    }
}

impl std::error::Error for RrpConfigError {}

/// Tunable parameters of the redundant ring layer. Times are in
/// nanoseconds of protocol time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RrpConfig {
    /// Replication style.
    pub style: ReplicationStyle,
    /// Number of redundant networks N.
    pub networks: usize,
    /// Active replication: how long to wait for the remaining copies
    /// of a token after the first copy arrives before passing it up
    /// anyway (Requirement A4).
    pub active_token_timeout: u64,
    /// Passive replication: how long a token buffered behind missing
    /// messages may wait before being passed up anyway (Requirement
    /// P3). The paper used 10 ms.
    pub passive_token_timeout: u64,
    /// Active replication: how many token-timer expiries a network may
    /// accumulate before being declared faulty (Requirement A5).
    pub problem_threshold: u32,
    /// Active replication: how often each network's problem counter is
    /// decremented, so sporadic losses do not accumulate into a false
    /// alarm (Requirement A6).
    pub problem_decay_interval: u64,
    /// Passive replication: a network whose reception count lags the
    /// best network by more than this is declared faulty (Requirement
    /// P4).
    pub monitor_threshold: u64,
    /// Passive replication: lagging reception counts are credited one
    /// reception every this many receptions (the paper's
    /// message-driven compensation), so sporadic losses are forgiven
    /// at any traffic rate without ever masking a dead network
    /// (Requirement P5).
    pub compensation_every: u64,
    /// Automatic reinstatement probation: if non-zero, a network that
    /// has been marked faulty is put back in service after this long,
    /// on probation — if it is still broken the monitors will flag it
    /// again within one detection interval. Zero (the default, and the
    /// paper's model) leaves reinstatement to the administrator via
    /// [`crate::RrpLayer::reinstate`].
    pub auto_reinstate_interval: u64,
    /// Grace period after a reinstatement during which the monitors
    /// observe the network but do not re-declare it faulty, and at
    /// whose end the reception counts are re-leveled. Needed because
    /// reinstatement is a per-node decision: until *every* node has
    /// resumed sending on the network, receivers legitimately see
    /// traffic starving it and would re-flag instantly.
    pub reinstate_grace: u64,
    /// Automatic degradation policy: when enabled, the layer steps the
    /// replication degree K down by one each time a network is declared
    /// faulty (no point paying for copies on a dead network) and back
    /// up by one on each reinstatement, never exceeding the configured
    /// baseline. Off by default — the legacy styles keep their fixed K.
    #[serde(default)]
    pub auto_degrade: bool,
}

impl RrpConfig {
    /// Defaults for `style` over `networks` networks, mirroring the
    /// paper's deployment (10 ms passive token timer).
    pub fn new(style: ReplicationStyle, networks: usize) -> Self {
        RrpConfig {
            style,
            networks,
            active_token_timeout: 2_000_000,   // 2 ms
            passive_token_timeout: 10_000_000, // 10 ms (paper §6)
            problem_threshold: 10,
            problem_decay_interval: 1_000_000_000, // 1 s
            monitor_threshold: 50,
            compensation_every: 25,       // forgive 4% divergence
            auto_reinstate_interval: 0,   // manual repair (paper §3)
            reinstate_grace: 250_000_000, // 250 ms
            auto_degrade: false,
        }
    }

    /// Enables automatic reinstatement probation with the given
    /// period.
    pub fn with_auto_reinstate(mut self, interval: u64) -> Self {
        self.auto_reinstate_interval = interval;
        self
    }

    /// Enables the automatic K degradation policy (step K down on a
    /// declared fault, back up on reinstatement).
    pub fn with_auto_degrade(mut self) -> Self {
        self.auto_degrade = true;
        self
    }

    /// Validates style/network-count consistency.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as a typed
    /// [`RrpConfigError`]: `Single` wants exactly 1 network,
    /// `Active`/`Passive` at least 2, and `ActivePassive` requires
    /// `1 < K < N` (paper §7).
    pub fn validate(&self) -> Result<(), RrpConfigError> {
        if self.networks == 0 {
            return Err(RrpConfigError::NoNetworks);
        }
        match self.style {
            ReplicationStyle::Single => {
                if self.networks != 1 {
                    return Err(RrpConfigError::SingleNeedsOneNetwork { got: self.networks });
                }
            }
            ReplicationStyle::Active | ReplicationStyle::Passive => {
                if self.networks < 2 {
                    return Err(RrpConfigError::NeedsTwoNetworks {
                        style: self.style,
                        got: self.networks,
                    });
                }
            }
            ReplicationStyle::ActivePassive { copies } => {
                let k = copies as usize;
                if !(1 < k && k < self.networks) {
                    return Err(RrpConfigError::ActivePassiveBounds {
                        copies,
                        networks: self.networks,
                    });
                }
            }
            ReplicationStyle::KOfN { copies } => {
                let k = copies as usize;
                if self.networks < 2 || k < 1 || k > self.networks {
                    return Err(RrpConfigError::KOfNBounds { copies, networks: self.networks });
                }
            }
        }
        if self.active_token_timeout == 0 || self.passive_token_timeout == 0 {
            return Err(RrpConfigError::ZeroTokenTimeout);
        }
        if self.problem_threshold == 0 {
            return Err(RrpConfigError::ZeroProblemThreshold);
        }
        if self.monitor_threshold == 0 {
            return Err(RrpConfigError::ZeroMonitorThreshold);
        }
        if self.compensation_every == 0 {
            return Err(RrpConfigError::ZeroCompensation);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_configs_pass() {
        RrpConfig::new(ReplicationStyle::Single, 1).validate().unwrap();
        RrpConfig::new(ReplicationStyle::Active, 2).validate().unwrap();
        RrpConfig::new(ReplicationStyle::Passive, 3).validate().unwrap();
        RrpConfig::new(ReplicationStyle::ActivePassive { copies: 2 }, 3).validate().unwrap();
    }

    #[test]
    fn single_rejects_multiple_networks() {
        assert_eq!(
            RrpConfig::new(ReplicationStyle::Single, 2).validate(),
            Err(RrpConfigError::SingleNeedsOneNetwork { got: 2 })
        );
    }

    #[test]
    fn replicated_styles_need_two_networks() {
        assert_eq!(
            RrpConfig::new(ReplicationStyle::Active, 1).validate(),
            Err(RrpConfigError::NeedsTwoNetworks { style: ReplicationStyle::Active, got: 1 })
        );
        assert_eq!(
            RrpConfig::new(ReplicationStyle::Passive, 1).validate(),
            Err(RrpConfigError::NeedsTwoNetworks { style: ReplicationStyle::Passive, got: 1 })
        );
    }

    #[test]
    fn active_passive_bounds_match_the_paper() {
        // 1 < K < N: K=1 and K=N are rejected (they degenerate to
        // passive and active).
        assert!(RrpConfig::new(ReplicationStyle::ActivePassive { copies: 1 }, 3)
            .validate()
            .is_err());
        assert!(RrpConfig::new(ReplicationStyle::ActivePassive { copies: 3 }, 3)
            .validate()
            .is_err());
        assert!(RrpConfig::new(ReplicationStyle::ActivePassive { copies: 2 }, 4)
            .validate()
            .is_ok());
        assert!(RrpConfig::new(ReplicationStyle::ActivePassive { copies: 3 }, 4)
            .validate()
            .is_ok());
    }

    #[test]
    fn k_of_n_spans_the_full_range() {
        // K-of-N accepts the endpoints the fixed styles reject...
        for k in 1..=3u8 {
            RrpConfig::new(ReplicationStyle::KOfN { copies: k }, 3).validate().unwrap();
        }
        // ...but not out-of-range K or a single network.
        assert_eq!(
            RrpConfig::new(ReplicationStyle::KOfN { copies: 0 }, 3).validate(),
            Err(RrpConfigError::KOfNBounds { copies: 0, networks: 3 })
        );
        assert_eq!(
            RrpConfig::new(ReplicationStyle::KOfN { copies: 4 }, 3).validate(),
            Err(RrpConfigError::KOfNBounds { copies: 4, networks: 3 })
        );
        assert_eq!(
            RrpConfig::new(ReplicationStyle::KOfN { copies: 1 }, 1).validate(),
            Err(RrpConfigError::KOfNBounds { copies: 1, networks: 1 })
        );
    }

    #[test]
    fn initial_k_matches_the_style_semantics() {
        assert_eq!(ReplicationStyle::Active.initial_k(3), 3);
        assert_eq!(ReplicationStyle::Passive.initial_k(3), 1);
        assert_eq!(ReplicationStyle::ActivePassive { copies: 2 }.initial_k(4), 2);
        assert_eq!(ReplicationStyle::KOfN { copies: 3 }.initial_k(4), 3);
    }

    #[test]
    fn zero_network_count_rejected() {
        let mut cfg = RrpConfig::new(ReplicationStyle::Single, 1);
        cfg.networks = 0;
        assert_eq!(cfg.validate(), Err(RrpConfigError::NoNetworks));
    }

    #[test]
    fn zero_thresholds_rejected() {
        let mut cfg = RrpConfig::new(ReplicationStyle::Active, 2);
        cfg.problem_threshold = 0;
        assert_eq!(cfg.validate(), Err(RrpConfigError::ZeroProblemThreshold));
        let mut cfg = RrpConfig::new(ReplicationStyle::Passive, 2);
        cfg.monitor_threshold = 0;
        assert_eq!(cfg.validate(), Err(RrpConfigError::ZeroMonitorThreshold));
        let mut cfg = RrpConfig::new(ReplicationStyle::Passive, 2);
        cfg.compensation_every = 0;
        assert_eq!(cfg.validate(), Err(RrpConfigError::ZeroCompensation));
        let mut cfg = RrpConfig::new(ReplicationStyle::Active, 2);
        cfg.active_token_timeout = 0;
        assert_eq!(cfg.validate(), Err(RrpConfigError::ZeroTokenTimeout));
    }

    #[test]
    fn config_errors_render_for_operators() {
        assert_eq!(
            RrpConfig::new(ReplicationStyle::ActivePassive { copies: 3 }, 3)
                .validate()
                .unwrap_err()
                .to_string(),
            "active-passive requires 1 < K < N (got K=3, N=3)"
        );
        assert_eq!(
            RrpConfig::new(ReplicationStyle::Active, 1).validate().unwrap_err().to_string(),
            "active replication needs at least 2 networks, got 1"
        );
    }

    #[test]
    fn style_names_match_figure_legends() {
        assert_eq!(ReplicationStyle::Single.name(), "no replication");
        assert_eq!(ReplicationStyle::Active.name(), "active replication");
        assert_eq!(ReplicationStyle::Passive.name(), "passive replication");
        assert_eq!(
            ReplicationStyle::ActivePassive { copies: 2 }.to_string(),
            "active-passive replication (K=2)"
        );
        assert_eq!(ReplicationStyle::KOfN { copies: 2 }.to_string(), "k-of-n replication (K=2)");
    }
}
