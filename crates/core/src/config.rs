//! Configuration of the redundant ring layer.

use serde::{Deserialize, Serialize};

/// Which network replication style to run (paper §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReplicationStyle {
    /// No replication: everything on network 0. The paper's baseline.
    Single,
    /// Every message and token on all N networks (§5).
    Active,
    /// Each message and token on exactly one network, round-robin (§6).
    Passive,
    /// Each message and token on `copies` consecutive networks of the
    /// round-robin window (§7). Requires `1 < copies < N`, hence at
    /// least three networks.
    ActivePassive {
        /// K: how many copies of each packet are sent.
        copies: u8,
    },
}

impl ReplicationStyle {
    /// Short human-readable name (matches the paper's figure legends).
    pub fn name(self) -> &'static str {
        match self {
            ReplicationStyle::Single => "no replication",
            ReplicationStyle::Active => "active replication",
            ReplicationStyle::Passive => "passive replication",
            ReplicationStyle::ActivePassive { .. } => "active-passive replication",
        }
    }
}

impl core::fmt::Display for ReplicationStyle {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ReplicationStyle::ActivePassive { copies } => {
                write!(f, "active-passive replication (K={copies})")
            }
            other => f.write_str(other.name()),
        }
    }
}

/// Tunable parameters of the redundant ring layer. Times are in
/// nanoseconds of protocol time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RrpConfig {
    /// Replication style.
    pub style: ReplicationStyle,
    /// Number of redundant networks N.
    pub networks: usize,
    /// Active replication: how long to wait for the remaining copies
    /// of a token after the first copy arrives before passing it up
    /// anyway (Requirement A4).
    pub active_token_timeout: u64,
    /// Passive replication: how long a token buffered behind missing
    /// messages may wait before being passed up anyway (Requirement
    /// P3). The paper used 10 ms.
    pub passive_token_timeout: u64,
    /// Active replication: how many token-timer expiries a network may
    /// accumulate before being declared faulty (Requirement A5).
    pub problem_threshold: u32,
    /// Active replication: how often each network's problem counter is
    /// decremented, so sporadic losses do not accumulate into a false
    /// alarm (Requirement A6).
    pub problem_decay_interval: u64,
    /// Passive replication: a network whose reception count lags the
    /// best network by more than this is declared faulty (Requirement
    /// P4).
    pub monitor_threshold: u64,
    /// Passive replication: lagging reception counts are credited one
    /// reception every this many receptions (the paper's
    /// message-driven compensation), so sporadic losses are forgiven
    /// at any traffic rate without ever masking a dead network
    /// (Requirement P5).
    pub compensation_every: u64,
    /// Automatic reinstatement probation: if non-zero, a network that
    /// has been marked faulty is put back in service after this long,
    /// on probation — if it is still broken the monitors will flag it
    /// again within one detection interval. Zero (the default, and the
    /// paper's model) leaves reinstatement to the administrator via
    /// [`crate::RrpLayer::reinstate`].
    pub auto_reinstate_interval: u64,
    /// Grace period after a reinstatement during which the monitors
    /// observe the network but do not re-declare it faulty, and at
    /// whose end the reception counts are re-leveled. Needed because
    /// reinstatement is a per-node decision: until *every* node has
    /// resumed sending on the network, receivers legitimately see
    /// traffic starving it and would re-flag instantly.
    pub reinstate_grace: u64,
}

impl RrpConfig {
    /// Defaults for `style` over `networks` networks, mirroring the
    /// paper's deployment (10 ms passive token timer).
    pub fn new(style: ReplicationStyle, networks: usize) -> Self {
        RrpConfig {
            style,
            networks,
            active_token_timeout: 2_000_000,   // 2 ms
            passive_token_timeout: 10_000_000, // 10 ms (paper §6)
            problem_threshold: 10,
            problem_decay_interval: 1_000_000_000, // 1 s
            monitor_threshold: 50,
            compensation_every: 25,       // forgive 4% divergence
            auto_reinstate_interval: 0,   // manual repair (paper §3)
            reinstate_grace: 250_000_000, // 250 ms
        }
    }

    /// Enables automatic reinstatement probation with the given
    /// period.
    pub fn with_auto_reinstate(mut self, interval: u64) -> Self {
        self.auto_reinstate_interval = interval;
        self
    }

    /// Validates style/network-count consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint:
    /// `Single` wants exactly 1 network, `Active`/`Passive` at least
    /// 2, and `ActivePassive` requires `1 < K < N` (paper §7).
    pub fn validate(&self) -> Result<(), String> {
        if self.networks == 0 {
            return Err("at least one network is required".into());
        }
        match self.style {
            ReplicationStyle::Single => {
                if self.networks != 1 {
                    return Err(format!(
                        "single (unreplicated) style uses exactly 1 network, got {}",
                        self.networks
                    ));
                }
            }
            ReplicationStyle::Active | ReplicationStyle::Passive => {
                if self.networks < 2 {
                    return Err(format!("{} needs at least 2 networks", self.style));
                }
            }
            ReplicationStyle::ActivePassive { copies } => {
                let k = copies as usize;
                if !(1 < k && k < self.networks) {
                    return Err(format!(
                        "active-passive requires 1 < K < N (got K={k}, N={})",
                        self.networks
                    ));
                }
            }
        }
        if self.active_token_timeout == 0 || self.passive_token_timeout == 0 {
            return Err("token timeouts must be positive".into());
        }
        if self.problem_threshold == 0 {
            return Err("problem_threshold must be positive".into());
        }
        if self.monitor_threshold == 0 {
            return Err("monitor_threshold must be positive".into());
        }
        if self.compensation_every == 0 {
            return Err("compensation_every must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_configs_pass() {
        RrpConfig::new(ReplicationStyle::Single, 1).validate().unwrap();
        RrpConfig::new(ReplicationStyle::Active, 2).validate().unwrap();
        RrpConfig::new(ReplicationStyle::Passive, 3).validate().unwrap();
        RrpConfig::new(ReplicationStyle::ActivePassive { copies: 2 }, 3).validate().unwrap();
    }

    #[test]
    fn single_rejects_multiple_networks() {
        assert!(RrpConfig::new(ReplicationStyle::Single, 2).validate().is_err());
    }

    #[test]
    fn replicated_styles_need_two_networks() {
        assert!(RrpConfig::new(ReplicationStyle::Active, 1).validate().is_err());
        assert!(RrpConfig::new(ReplicationStyle::Passive, 1).validate().is_err());
    }

    #[test]
    fn active_passive_bounds_match_the_paper() {
        // 1 < K < N: K=1 and K=N are rejected (they degenerate to
        // passive and active).
        assert!(RrpConfig::new(ReplicationStyle::ActivePassive { copies: 1 }, 3)
            .validate()
            .is_err());
        assert!(RrpConfig::new(ReplicationStyle::ActivePassive { copies: 3 }, 3)
            .validate()
            .is_err());
        assert!(RrpConfig::new(ReplicationStyle::ActivePassive { copies: 2 }, 4)
            .validate()
            .is_ok());
        assert!(RrpConfig::new(ReplicationStyle::ActivePassive { copies: 3 }, 4)
            .validate()
            .is_ok());
    }

    #[test]
    fn zero_network_count_rejected() {
        let mut cfg = RrpConfig::new(ReplicationStyle::Single, 1);
        cfg.networks = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn zero_thresholds_rejected() {
        let mut cfg = RrpConfig::new(ReplicationStyle::Active, 2);
        cfg.problem_threshold = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = RrpConfig::new(ReplicationStyle::Passive, 2);
        cfg.monitor_threshold = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = RrpConfig::new(ReplicationStyle::Active, 2);
        cfg.active_token_timeout = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn style_names_match_figure_legends() {
        assert_eq!(ReplicationStyle::Single.name(), "no replication");
        assert_eq!(ReplicationStyle::Active.name(), "active replication");
        assert_eq!(ReplicationStyle::Passive.name(), "passive replication");
        assert_eq!(
            ReplicationStyle::ActivePassive { copies: 2 }.to_string(),
            "active-passive replication (K=2)"
        );
    }
}
