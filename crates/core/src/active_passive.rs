//! Active-passive replication (paper §7).
//!
//! Requires at least three networks. Each message and token is sent
//! over **K** consecutive networks of a sliding round-robin window
//! (`1 < K < N`): if the last send started at network `m`, the next
//! uses networks `m+1 … m+K (mod N)`. The receive side is a two-stage
//! pipeline: stage one is the passive-style Figure-5 monitor (message
//! and token reception counts per network); stage two is the
//! active-style token gate, passing a token up once **K** copies have
//! arrived or a timeout occurs. Loss of a message on up to K−1
//! networks is masked without a retransmission delay.

use std::collections::HashMap;

use totem_wire::{NetworkId, NodeId, Packet, Token};

use crate::active::token_key;
use crate::config::RrpConfig;
use crate::fault::{FaultReason, FaultReport, MonitorKind};
use crate::layer::RrpEvent;
use crate::monitor::MonitorModule;
use crate::pernet::PerNet;

/// State of the active-passive algorithm.
#[derive(Debug)]
pub(crate) struct ActivePassiveState {
    k: usize,
    pub faulty: PerNet<bool>,
    msg_rr: usize,
    tok_rr: usize,
    /// Separate window pointer for retransmissions served on other
    /// senders' behalf (see the passive module for why).
    retrans_rr: usize,
    /// Stage two: which networks have delivered the current token
    /// instance.
    seen: PerNet<bool>,
    last_token: Option<Token>,
    last_key: Option<(u64, u64, u64)>,
    timer: Option<u64>,
    /// Stage one: Figure-5 monitors.
    token_monitor: MonitorModule,
    msg_monitors: HashMap<NodeId, MonitorModule>,
    /// Per-network reinstatement grace (see the passive module).
    grace_until: PerNet<u64>,
}

impl ActivePassiveState {
    pub fn new(cfg: &RrpConfig, k: usize) -> Self {
        ActivePassiveState {
            k,
            faulty: PerNet::filled(cfg.networks, false),
            msg_rr: 0,
            tok_rr: 0,
            retrans_rr: 0,
            seen: PerNet::filled(cfg.networks, false),
            last_token: None,
            last_key: None,
            timer: None,
            token_monitor: MonitorModule::new(
                cfg.networks,
                cfg.monitor_threshold,
                cfg.compensation_every,
            ),
            msg_monitors: HashMap::new(),
            grace_until: PerNet::filled(cfg.networks, 0),
        }
    }

    fn level_monitors(&mut self, net: NetworkId) {
        self.token_monitor.reinstate(net);
        for m in self.msg_monitors.values_mut() {
            m.reinstate(net);
        }
    }

    /// K consecutive non-faulty networks starting after the pointer;
    /// the window start advances by one per send.
    fn window(rr: &mut usize, k: usize, faulty: &PerNet<bool>, out: &mut Vec<NetworkId>) {
        let n = faulty.len().max(1);
        *rr = (*rr + 1) % n;
        out.clear();
        let mut idx = *rr;
        for _ in 0..n {
            let net = NetworkId::new(idx as u8);
            if !faulty.at(net) {
                out.push(net);
                if out.len() == k {
                    break;
                }
            }
            idx = (idx + 1) % n;
        }
        if out.is_empty() {
            // Everything marked faulty: fall back to the plain window.
            out.extend((0..k).map(|i| NetworkId::new(((*rr + i) % n) as u8)));
        }
    }

    /// Networks for the next message.
    #[cfg(test)]
    pub fn routes_message(&mut self) -> Vec<NetworkId> {
        let mut out = Vec::new();
        self.routes_message_into(&mut out);
        out
    }

    /// Allocation-free route computation for the next message: clears
    /// `out` and fills it in place.
    pub fn routes_message_into(&mut self, out: &mut Vec<NetworkId>) {
        Self::window(&mut self.msg_rr, self.k, &self.faulty, out);
    }

    /// Allocation-free route computation for the next token.
    pub fn routes_token_into(&mut self, out: &mut Vec<NetworkId>) {
        Self::window(&mut self.tok_rr, self.k, &self.faulty, out);
    }

    /// Allocation-free route computation for a retransmission served
    /// on another sender's behalf.
    pub fn routes_retransmission_into(&mut self, out: &mut Vec<NetworkId>) {
        Self::window(&mut self.retrans_rr, self.k, &self.faulty, out);
    }

    /// Stage one for message-class packets.
    pub fn on_message(
        &mut self,
        now: u64,
        net: NetworkId,
        sender: NodeId,
        cfg: &RrpConfig,
    ) -> Vec<RrpEvent> {
        let monitor = self.msg_monitors.entry(sender).or_insert_with(|| {
            MonitorModule::new(cfg.networks, cfg.monitor_threshold, cfg.compensation_every)
        });
        let suspects = monitor.record(net, &self.faulty);
        self.flag(now, suspects, MonitorKind::Messages { sender })
    }

    /// Stage one (token monitor) then stage two (K-copy gate).
    pub fn on_token(
        &mut self,
        now: u64,
        net: NetworkId,
        t: Token,
        cfg: &RrpConfig,
    ) -> Vec<RrpEvent> {
        let suspects = self.token_monitor.record(net, &self.faulty);
        let mut events = self.flag(now, suspects, MonitorKind::Token);
        let key = token_key(&t);
        match self.last_key {
            Some(last) if key < last => return events,
            Some(last) if key == last => {
                if self.last_token.is_none() {
                    self.seen.set(net, true);
                    return events; // already delivered; ignore stragglers
                }
                self.seen.set(net, true);
            }
            _ => {
                self.last_key = Some(key);
                self.last_token = Some(t);
                self.seen.fill(false);
                self.seen.set(net, true);
                self.timer = Some(now + cfg.active_token_timeout);
            }
        }
        let copies = self.seen.values().filter(|&&s| s).count();
        if copies >= self.k {
            self.timer = None;
            if let Some(tok) = self.last_token.take() {
                events.push(RrpEvent::Deliver(Packet::Token(tok).into(), net));
            }
        }
        events
    }

    /// Timeout path of stage two plus grace-expiry bookkeeping.
    /// (Compensation is message-driven, inside the monitor modules.)
    pub fn on_timer(&mut self, now: u64, _cfg: &RrpConfig) -> Vec<RrpEvent> {
        let mut events = Vec::new();
        if self.timer.is_some_and(|d| d <= now) {
            self.timer = None;
            if let Some(tok) = self.last_token.take() {
                let net =
                    self.seen.iter().find(|(_, &s)| s).map(|(n, _)| n).unwrap_or(NetworkId::new(0));
                events.push(RrpEvent::Deliver(Packet::Token(tok).into(), net));
            }
        }
        let expired: Vec<NetworkId> = self
            .grace_until
            .iter()
            .filter(|(_, &g)| g != 0 && now >= g)
            .map(|(net, _)| net)
            .collect();
        for net in expired {
            self.grace_until.set(net, 0);
            self.level_monitors(net);
        }
        events
    }

    pub fn next_deadline(&self) -> Option<u64> {
        let grace = self.grace_until.values().copied().filter(|&g| g != 0).min();
        [self.timer, grace].into_iter().flatten().min()
    }

    fn flag(
        &mut self,
        now: u64,
        suspects: Vec<(NetworkId, u64)>,
        monitor: MonitorKind,
    ) -> Vec<RrpEvent> {
        let mut events = Vec::new();
        for (net, behind) in suspects {
            if now < self.grace_until.at(net) {
                continue; // reinstatement grace: observe, don't declare
            }
            if !self.faulty.at(net) {
                self.faulty.set(net, true);
                events.push(RrpEvent::Fault(FaultReport {
                    net,
                    at: now,
                    reason: FaultReason::ReceptionLag { behind, monitor },
                }));
            }
        }
        events
    }

    /// Puts a faulty network back in service, leveling its reception
    /// counts and starting a declaration grace period. Returns whether
    /// it was faulty.
    pub fn reinstate(&mut self, now: u64, net: NetworkId, grace: u64) -> bool {
        let was = self.faulty.at(net);
        self.faulty.set(net, false);
        self.level_monitors(net);
        self.grace_until.set(net, now + grace);
        was
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ReplicationStyle;
    use totem_wire::{RingId, Seq};

    fn cfg(n: usize, k: u8) -> RrpConfig {
        RrpConfig::new(ReplicationStyle::ActivePassive { copies: k }, n)
    }

    fn token(rotation: u64, seq: u64) -> Token {
        let mut t = Token::initial(RingId::new(NodeId::new(0), 1));
        t.rotation = rotation;
        t.seq = Seq::new(seq);
        t
    }

    #[test]
    fn window_slides_by_one_and_has_k_networks() {
        let cfg = cfg(4, 2);
        let mut s = ActivePassiveState::new(&cfg, 2);
        let w1: Vec<u8> = s.routes_message().iter().map(|n| n.as_u8()).collect();
        let w2: Vec<u8> = s.routes_message().iter().map(|n| n.as_u8()).collect();
        let w3: Vec<u8> = s.routes_message().iter().map(|n| n.as_u8()).collect();
        assert_eq!(w1, vec![1, 2]);
        assert_eq!(w2, vec![2, 3]);
        assert_eq!(w3, vec![3, 0]);
    }

    #[test]
    fn window_skips_faulty_networks() {
        let cfg = cfg(4, 2);
        let mut s = ActivePassiveState::new(&cfg, 2);
        s.faulty[2] = true;
        let w: Vec<u8> = s.routes_message().iter().map(|n| n.as_u8()).collect();
        assert_eq!(w, vec![1, 3]);
    }

    #[test]
    fn token_delivers_after_k_copies() {
        let cfg = cfg(3, 2);
        let mut s = ActivePassiveState::new(&cfg, 2);
        let t = token(0, 4);
        assert!(s
            .on_token(0, NetworkId::new(0), t.clone(), &cfg)
            .iter()
            .all(|e| !matches!(e, RrpEvent::Deliver(..))));
        let ev = s.on_token(1, NetworkId::new(2), t.clone(), &cfg);
        assert!(ev.iter().any(|e| matches!(e, RrpEvent::Deliver(p, _) if p.is_token_class())));
        // The third copy is ignored.
        assert!(s
            .on_token(2, NetworkId::new(1), t, &cfg)
            .iter()
            .all(|e| !matches!(e, RrpEvent::Deliver(..))));
    }

    #[test]
    fn timeout_passes_token_with_fewer_than_k_copies() {
        let cfg = cfg(3, 2);
        let mut s = ActivePassiveState::new(&cfg, 2);
        s.on_token(0, NetworkId::new(1), token(0, 4), &cfg);
        let d = s.next_deadline().unwrap();
        let ev = s.on_timer(d, &cfg);
        assert!(ev.iter().any(|e| matches!(e, RrpEvent::Deliver(p, _) if p.is_token_class())));
    }

    #[test]
    fn monitors_flag_lagging_network() {
        let cfg = cfg(3, 2);
        let mut s = ActivePassiveState::new(&cfg, 2);
        let mut faults = Vec::new();
        // Enough receptions that the leading network's count exceeds
        // net2's by strictly more than the threshold despite the
        // message-driven compensation crediting the laggard.
        for i in 0..cfg.monitor_threshold * 2 + 20 {
            faults.extend(
                s.on_message(i, NetworkId::new(i as u8 % 2), NodeId::new(7), &cfg)
                    .into_iter()
                    .filter(|e| matches!(e, RrpEvent::Fault(_))),
            );
        }
        // Networks 0 and 1 alternate; network 2 never receives → flagged.
        assert_eq!(faults.len(), 1);
        assert!(s.faulty[2]);
    }

    #[test]
    fn newer_token_resets_the_copy_count() {
        let cfg = cfg(3, 2);
        let mut s = ActivePassiveState::new(&cfg, 2);
        s.on_token(0, NetworkId::new(0), token(0, 4), &cfg);
        // A newer instance arrives before the second copy of the old.
        assert!(s
            .on_token(1, NetworkId::new(1), token(1, 4), &cfg)
            .iter()
            .all(|e| !matches!(e, RrpEvent::Deliver(..))));
        // A stale copy of the old instance no longer counts.
        assert!(s
            .on_token(2, NetworkId::new(2), token(0, 4), &cfg)
            .iter()
            .all(|e| !matches!(e, RrpEvent::Deliver(..))));
        // The second copy of the new one delivers.
        let ev = s.on_token(3, NetworkId::new(0), token(1, 4), &cfg);
        assert!(ev.iter().any(|e| matches!(e, RrpEvent::Deliver(..))));
    }
}
