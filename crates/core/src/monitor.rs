//! The network monitor module for passive replication (paper §6,
//! Figure 5).
//!
//! A module counts receptions per network; if some network's count
//! falls more than a threshold behind the best one, that network is
//! declared faulty. To keep sporadic losses from accumulating into a
//! false alarm over long runs (Requirement P5), lagging counts are
//! credited one reception every `comp_every` receptions ("slowly
//! increasing `recvCount` for networks that lag behind" — the paper's
//! *message-driven* variant). Message-driven forgiveness is
//! self-scaling: its rate is a fixed fraction of the traffic rate, so
//! it forgives sporadic loss at any throughput yet can never mask a
//! dead network (whose divergence grows with ~half the traffic).

use serde::{Deserialize, Serialize};

use totem_wire::NetworkId;

use crate::pernet::PerNet;

/// One Figure-5 monitoring module: reception counts per network.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MonitorModule {
    counts: PerNet<u64>,
    threshold: u64,
    /// Credit laggards one reception every this many receptions.
    comp_every: u64,
    since_comp: u64,
}

impl MonitorModule {
    /// A module for `networks` networks with the given divergence
    /// threshold, compensating laggards once per `comp_every`
    /// receptions.
    pub fn new(networks: usize, threshold: u64, comp_every: u64) -> Self {
        MonitorModule {
            counts: PerNet::filled(networks, 0),
            threshold,
            comp_every: comp_every.max(1),
            since_comp: 0,
        }
    }

    /// Records one reception on `net`; returns the networks that just
    /// crossed the divergence threshold (newly suspect), with how far
    /// behind they are.
    pub fn record(&mut self, net: NetworkId, faulty: &PerNet<bool>) -> Vec<(NetworkId, u64)> {
        if let Some(c) = self.counts.get_mut(net) {
            *c = c.saturating_add(1);
        }
        self.since_comp += 1;
        if self.since_comp >= self.comp_every {
            self.since_comp = 0;
            self.compensate();
        }
        let max = self.counts.values().copied().max().unwrap_or(0);
        let mut out = Vec::new();
        for (id, &c) in self.counts.iter() {
            let behind = max - c;
            if behind > self.threshold && !faulty.at(id) {
                out.push((id, behind));
            }
        }
        out
    }

    /// Periodic compensation: credits every lagging network one
    /// reception (Requirement P5).
    pub fn compensate(&mut self) {
        let max = self.counts.values().copied().max().unwrap_or(0);
        for c in self.counts.values_mut() {
            if *c < max {
                *c += 1;
            }
        }
    }

    /// Current reception count of one network.
    pub fn count(&self, net: NetworkId) -> u64 {
        self.counts.at(net)
    }

    /// All reception counts, indexed by network.
    pub fn counts(&self) -> &[u64] {
        self.counts.as_slice()
    }

    /// Resets one network's count to the current maximum so a
    /// reinstated network starts its probation with a clean slate
    /// instead of being re-flagged on the next reception.
    pub fn reinstate(&mut self, net: NetworkId) {
        let max = self.counts.values().copied().max().unwrap_or(0);
        self.counts.set(net, max);
    }

    /// How far the worst network lags the best.
    pub fn max_divergence(&self) -> u64 {
        let max = self.counts.values().copied().max().unwrap_or(0);
        let min = self.counts.values().copied().min().unwrap_or(0);
        max - min
    }

    /// Deterministically corrupts one network's reception count
    /// (fault injection for self-stabilization testing): the count
    /// jumps up or down by up to twice the divergence threshold, so
    /// the module may spuriously suspect a healthy network or
    /// temporarily mask a dead one. Both decay back to truth through
    /// normal traffic and compensation.
    pub fn corrupt<R: rand::Rng>(&mut self, rng: &mut R) {
        let nets = self.counts.len().max(1) as u64;
        let net = NetworkId::new(rng.gen_range(0..nets) as u8);
        let delta = rng.gen_range(1..self.threshold.saturating_mul(2).max(2));
        let cur = self.counts.at(net);
        let corrupted =
            if rng.gen_bool(0.5) { cur.saturating_add(delta) } else { cur.saturating_sub(delta) };
        self.counts.set(net, corrupted);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_faults(n: usize) -> PerNet<bool> {
        PerNet::filled(n, false)
    }

    #[test]
    fn balanced_reception_never_trips() {
        let mut m = MonitorModule::new(2, 5, 1000);
        let faulty = no_faults(2);
        for _ in 0..1000 {
            assert!(m.record(NetworkId::new(0), &faulty).is_empty());
            assert!(m.record(NetworkId::new(1), &faulty).is_empty());
        }
        assert!(m.max_divergence() <= 1);
    }

    #[test]
    fn dead_network_crosses_threshold_exactly_once_threshold_plus_one_behind() {
        let mut m = MonitorModule::new(2, 5, 1000);
        let faulty = no_faults(2);
        let mut tripped = None;
        for i in 1..=10 {
            let suspects = m.record(NetworkId::new(0), &faulty);
            if !suspects.is_empty() {
                tripped = Some((i, suspects));
                break;
            }
        }
        let (i, suspects) = tripped.expect("network 1 must be flagged");
        assert_eq!(i, 6, "flagged on the reception that makes the gap threshold+1");
        assert_eq!(suspects, vec![(NetworkId::new(1), 6)]);
    }

    #[test]
    fn already_faulty_networks_are_not_reflagged() {
        let mut m = MonitorModule::new(2, 2, 1000);
        let mut faulty = no_faults(2);
        for _ in 0..3 {
            m.record(NetworkId::new(0), &faulty);
        }
        let suspects = m.record(NetworkId::new(0), &faulty);
        assert_eq!(suspects.len(), 1);
        faulty[1] = true;
        assert!(m.record(NetworkId::new(0), &faulty).is_empty());
    }

    #[test]
    fn compensation_forgives_sporadic_loss() {
        let mut m = MonitorModule::new(2, 10, 1000);
        let faulty = no_faults(2);
        // Network 1 drops ~1 in 5 receptions.
        for i in 0..50u64 {
            m.record(NetworkId::new(0), &faulty);
            if i % 5 != 0 {
                m.record(NetworkId::new(1), &faulty);
            }
        }
        let gap_before = m.max_divergence();
        assert!(gap_before > 0);
        for _ in 0..gap_before {
            m.compensate();
        }
        assert_eq!(m.max_divergence(), 0, "compensation must close the gap");
    }

    #[test]
    fn message_driven_compensation_forgives_but_cannot_mask_death() {
        // comp_every=10: forgiveness rate is 10% of traffic.
        let mut m = MonitorModule::new(2, 20, 10);
        let faulty = no_faults(2);
        // Sporadic 5% loss on net1: divergence growth (2.5% of
        // traffic) stays below forgiveness (10%) — never flags.
        for i in 0..2000u64 {
            assert!(m.record(NetworkId::new(0), &faulty).is_empty());
            if i % 20 != 0 {
                assert!(m.record(NetworkId::new(1), &faulty).is_empty(), "tripped at {i}");
            }
        }
        // A dead net1: divergence grows with every reception; the
        // 10% forgiveness cannot keep up and it flags quickly.
        let mut flagged = false;
        for _ in 0..60 {
            if !m.record(NetworkId::new(0), &faulty).is_empty() {
                flagged = true;
                break;
            }
        }
        assert!(flagged, "dead network must not be masked by compensation");
    }

    #[test]
    fn compensation_never_overshoots_the_max() {
        let mut m = MonitorModule::new(3, 5, 1000);
        let faulty = no_faults(3);
        m.record(NetworkId::new(0), &faulty);
        for _ in 0..10 {
            m.compensate();
        }
        assert_eq!(m.count(NetworkId::new(1)), m.count(NetworkId::new(0)));
        assert_eq!(m.max_divergence(), 0);
    }
}
