//! Passive replication (paper §6, Figures 4 and 5).
//!
//! Each message and token is sent over exactly one network, assigned
//! round-robin (skipping networks marked faulty). Received messages
//! pass straight up. A token that arrives while messages are still
//! missing is **buffered** (Requirement P1 — a delayed message on
//! another network must not provoke a retransmission request) and
//! released either by the message that fills the gap or by a small
//! token timer (Requirement P3; the paper used 10 ms). The network
//! health monitor is a set of M+1 Figure-5 modules — one per sender's
//! message traffic plus one for token traffic — each comparing
//! per-network reception counts (Requirements P4/P5).

use std::collections::HashMap;

use totem_wire::{NetworkId, NodeId, Packet, Token};

use crate::active::token_key;
use crate::config::RrpConfig;
use crate::fault::{FaultReason, FaultReport, MonitorKind};
use crate::layer::RrpEvent;
use crate::monitor::MonitorModule;
use crate::pernet::PerNet;

/// State of the passive replication algorithm (Figure 4) plus its
/// monitor modules (Figure 5).
#[derive(Debug)]
pub(crate) struct PassiveState {
    pub faulty: PerNet<bool>,
    /// `sendMessageVia` of Figure 4 — advanced only by this node's
    /// own data packets, so each sender's stream alternates networks
    /// strictly (the property the Figure-5 monitors rely on).
    msg_rr: usize,
    /// `sendTokenVia` of Figure 4 — regular tokens only.
    tok_rr: usize,
    /// Round-robin for retransmissions this node serves on behalf of
    /// other senders. Kept separate from `msg_rr`: a retransmitted
    /// packet carries the original sender's id, and letting it perturb
    /// this node's own data rotation phase-locks the rotation under
    /// saturation, skewing every receiver's per-sender monitor.
    retrans_rr: usize,
    /// `lastToken` buffered behind missing messages.
    buffered: Option<Token>,
    buffered_net: NetworkId,
    /// The token timer (never restarted while running).
    timer: Option<u64>,
    token_monitor: MonitorModule,
    msg_monitors: HashMap<NodeId, MonitorModule>,
    /// Per-network instant until which fault declaration is suspended
    /// after a reinstatement (0 = none); counts are re-leveled when
    /// the grace expires.
    grace_until: PerNet<u64>,
}

impl PassiveState {
    pub fn new(cfg: &RrpConfig) -> Self {
        PassiveState {
            faulty: PerNet::filled(cfg.networks, false),
            msg_rr: 0,
            tok_rr: 0,
            retrans_rr: 0,
            buffered: None,
            buffered_net: NetworkId::new(0),
            timer: None,
            token_monitor: MonitorModule::new(
                cfg.networks,
                cfg.monitor_threshold,
                cfg.compensation_every,
            ),
            msg_monitors: HashMap::new(),
            grace_until: PerNet::filled(cfg.networks, 0),
        }
    }

    fn level_monitors(&mut self, net: NetworkId) {
        self.token_monitor.reinstate(net);
        for m in self.msg_monitors.values_mut() {
            m.reinstate(net);
        }
    }

    fn next_rr(rr: &mut usize, faulty: &PerNet<bool>) -> NetworkId {
        let n = faulty.len().max(1);
        for _ in 0..n {
            *rr = (*rr + 1) % n;
            let net = NetworkId::new(*rr as u8);
            if !faulty.at(net) {
                return net;
            }
        }
        // Everything is marked faulty: keep rotating anyway rather
        // than going silent.
        *rr = (*rr + 1) % n;
        NetworkId::new(*rr as u8)
    }

    /// Figure 4 `sendMsg` network selection.
    pub fn route_message(&mut self) -> NetworkId {
        Self::next_rr(&mut self.msg_rr, &self.faulty)
    }

    /// Figure 4 `sendToken` network selection.
    pub fn route_token(&mut self) -> NetworkId {
        Self::next_rr(&mut self.tok_rr, &self.faulty)
    }

    /// Network for a retransmission served on another sender's behalf.
    pub fn route_retransmission(&mut self) -> NetworkId {
        Self::next_rr(&mut self.retrans_rr, &self.faulty)
    }

    /// Message-monitor update on reception of a message-class packet
    /// from `sender` via `net` (Figure 4 `messageMonitor`).
    pub fn on_message(
        &mut self,
        now: u64,
        net: NetworkId,
        sender: NodeId,
        cfg: &RrpConfig,
    ) -> Vec<RrpEvent> {
        let monitor = self.msg_monitors.entry(sender).or_insert_with(|| {
            MonitorModule::new(cfg.networks, cfg.monitor_threshold, cfg.compensation_every)
        });
        let suspects = monitor.record(net, &self.faulty);
        self.flag(now, suspects, MonitorKind::Messages { sender })
    }

    /// Figure 4 `recvToken` (with `tokenMonitor`): deliver if nothing
    /// is missing, otherwise buffer and start the token timer.
    pub fn on_token(
        &mut self,
        now: u64,
        net: NetworkId,
        t: Token,
        any_missing: bool,
        cfg: &RrpConfig,
    ) -> Vec<RrpEvent> {
        let suspects = self.token_monitor.record(net, &self.faulty);
        let mut events = self.flag(now, suspects, MonitorKind::Token);
        if !any_missing {
            events.push(RrpEvent::Deliver(Packet::Token(t).into(), net));
            return events;
        }
        // Buffer the newest token; the timer is never restarted while
        // it is active (Figure 4).
        match &self.buffered {
            Some(old) if token_key(old) >= token_key(&t) => {}
            _ => {
                self.buffered = Some(t);
                self.buffered_net = net;
            }
        }
        if self.timer.is_none() {
            self.timer = Some(now + cfg.passive_token_timeout);
        }
        events
    }

    /// Token-monitor update without gating — used for commit tokens,
    /// which travel the token path but pass up unconditionally.
    pub fn on_token_monitor_only(
        &mut self,
        now: u64,
        net: NetworkId,
        _cfg: &RrpConfig,
    ) -> Vec<RrpEvent> {
        let suspects = self.token_monitor.record(net, &self.faulty);
        self.flag(now, suspects, MonitorKind::Token)
    }

    /// Whether a token is currently buffered behind missing messages
    /// (the token timer is running). The layer samples this around
    /// each call to track the Idle/Buffered machine for conformance.
    pub fn buffering(&self) -> bool {
        self.timer.is_some()
    }

    /// Figure 4 `recvMsg` tail: if the token timer is running and the
    /// just-processed message closed the last gap, release the
    /// buffered token immediately.
    pub fn poll_release(&mut self, any_missing: bool) -> Vec<RrpEvent> {
        if self.timer.is_some() && !any_missing {
            self.timer = None;
            if let Some(t) = self.buffered.take() {
                return vec![RrpEvent::Deliver(Packet::Token(t).into(), self.buffered_net)];
            }
        }
        Vec::new()
    }

    /// Figure 4 `tokenTimerExpired` plus grace-expiry bookkeeping.
    /// (Compensation is message-driven, inside the monitor modules.)
    pub fn on_timer(&mut self, now: u64, _cfg: &RrpConfig) -> Vec<RrpEvent> {
        let mut events = Vec::new();
        if self.timer.is_some_and(|d| d <= now) {
            self.timer = None;
            if let Some(t) = self.buffered.take() {
                events.push(RrpEvent::Deliver(Packet::Token(t).into(), self.buffered_net));
            }
        }
        // Grace expiry: level the counts once everyone has had time to
        // resume sending, so the monitors judge the network afresh.
        let expired: Vec<NetworkId> = self
            .grace_until
            .iter()
            .filter(|(_, &g)| g != 0 && now >= g)
            .map(|(net, _)| net)
            .collect();
        for net in expired {
            self.grace_until.set(net, 0);
            self.level_monitors(net);
        }
        events
    }

    pub fn next_deadline(&self) -> Option<u64> {
        let grace = self.grace_until.values().copied().filter(|&g| g != 0).min();
        [self.timer, grace].into_iter().flatten().min()
    }

    /// Puts a faulty network back in service, leveling its reception
    /// counts and starting a declaration grace period. Returns whether
    /// it was faulty.
    pub fn reinstate(&mut self, now: u64, net: NetworkId, grace: u64) -> bool {
        let was = self.faulty.at(net);
        self.faulty.set(net, false);
        self.level_monitors(net);
        self.grace_until.set(net, now + grace);
        was
    }

    /// Diagnostic snapshot of all monitor modules' reception counts.
    pub fn monitor_report(&self) -> Vec<(MonitorKind, Vec<u64>)> {
        let mut out = vec![(MonitorKind::Token, self.token_monitor.counts().to_vec())];
        for (sender, m) in &self.msg_monitors {
            out.push((MonitorKind::Messages { sender: *sender }, m.counts().to_vec()));
        }
        out
    }

    fn flag(
        &mut self,
        now: u64,
        suspects: Vec<(NetworkId, u64)>,
        monitor: MonitorKind,
    ) -> Vec<RrpEvent> {
        let mut events = Vec::new();
        for (net, behind) in suspects {
            if now < self.grace_until.at(net) {
                continue; // reinstatement grace: observe, don't declare
            }
            if !self.faulty.at(net) {
                self.faulty.set(net, true);
                events.push(RrpEvent::Fault(FaultReport {
                    net,
                    at: now,
                    reason: FaultReason::ReceptionLag { behind, monitor },
                }));
            }
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ReplicationStyle;
    use totem_wire::{RingId, Seq};

    fn cfg(n: usize) -> RrpConfig {
        let mut c = RrpConfig::new(ReplicationStyle::Passive, n);
        c.monitor_threshold = 5;
        c
    }

    fn token(seq: u64) -> Token {
        let mut t = Token::initial(RingId::new(NodeId::new(0), 1));
        t.seq = Seq::new(seq);
        t
    }

    #[test]
    fn round_robin_alternates_networks() {
        let cfg = cfg(2);
        let mut s = PassiveState::new(&cfg);
        let seq: Vec<u8> = (0..6).map(|_| s.route_message().as_u8()).collect();
        assert_eq!(seq, vec![1, 0, 1, 0, 1, 0]);
        // Tokens rotate independently.
        let seq: Vec<u8> = (0..4).map(|_| s.route_token().as_u8()).collect();
        assert_eq!(seq, vec![1, 0, 1, 0]);
    }

    #[test]
    fn round_robin_skips_faulty_networks() {
        let cfg = cfg(3);
        let mut s = PassiveState::new(&cfg);
        s.faulty[1] = true;
        let seq: Vec<u8> = (0..4).map(|_| s.route_message().as_u8()).collect();
        assert_eq!(seq, vec![2, 0, 2, 0]);
    }

    #[test]
    fn all_faulty_keeps_sending() {
        let cfg = cfg(2);
        let mut s = PassiveState::new(&cfg);
        s.faulty = PerNet::from_vec(vec![true, true]);
        // Still yields a network rather than silence.
        let _ = s.route_message();
        let _ = s.route_token();
    }

    #[test]
    fn token_with_nothing_missing_passes_straight_through() {
        let cfg = cfg(2);
        let mut s = PassiveState::new(&cfg);
        let ev = s.on_token(0, NetworkId::new(0), token(5), false, &cfg);
        assert!(matches!(ev.as_slice(), [RrpEvent::Deliver(p, _)] if p.is_token_class()));
        assert!(s.timer.is_none());
    }

    #[test]
    fn token_behind_missing_messages_is_buffered_until_release() {
        // Requirement P1: a delayed message (Figure 3 scenarios) must
        // not let the token reach the SRP early.
        let cfg = cfg(2);
        let mut s = PassiveState::new(&cfg);
        let ev = s.on_token(0, NetworkId::new(1), token(5), true, &cfg);
        assert!(ev.iter().all(|e| !matches!(e, RrpEvent::Deliver(p, _) if p.is_token_class())));
        assert!(s.timer.is_some());
        // Still missing: no release.
        assert!(s.poll_release(true).is_empty());
        // The gap closes: release immediately, well before the timer.
        let ev = s.poll_release(false);
        assert!(matches!(ev.as_slice(), [RrpEvent::Deliver(p, _)] if p.is_token_class()));
        assert!(s.timer.is_none());
    }

    #[test]
    fn token_timer_expiry_releases_buffered_token() {
        // Requirement P3: progress even if the missing message never
        // arrives.
        let cfg = cfg(2);
        let mut s = PassiveState::new(&cfg);
        s.on_token(0, NetworkId::new(0), token(5), true, &cfg);
        let deadline = s.next_deadline().unwrap();
        assert_eq!(deadline, cfg.passive_token_timeout);
        let ev = s.on_timer(deadline, &cfg);
        assert!(matches!(ev.as_slice(), [RrpEvent::Deliver(p, _)] if p.is_token_class()));
    }

    #[test]
    fn timer_is_not_restarted_while_active() {
        let cfg = cfg(2);
        let mut s = PassiveState::new(&cfg);
        s.on_token(0, NetworkId::new(0), token(5), true, &cfg);
        let first = s.timer.unwrap();
        // A newer token arrives while one is already buffered (can
        // happen across a reconfiguration): buffer is replaced, timer
        // is left alone.
        let mut newer = token(9);
        newer.rotation = 1;
        s.on_token(5_000_000, NetworkId::new(1), newer, true, &cfg);
        assert_eq!(s.timer.unwrap(), first);
        let ev = s.on_timer(first, &cfg);
        match ev.as_slice() {
            [RrpEvent::Deliver(p, _)] => match p.packet() {
                Packet::Token(t) => assert_eq!(t.seq.as_u64(), 9),
                other => panic!("unexpected packet: {other:?}"),
            },
            other => panic!("unexpected events: {other:?}"),
        }
    }

    #[test]
    fn lagging_network_is_flagged_by_message_monitor() {
        let cfg = cfg(2);
        let mut s = PassiveState::new(&cfg);
        let sender = NodeId::new(3);
        let mut reports = Vec::new();
        for _ in 0..cfg.monitor_threshold + 1 {
            reports.extend(s.on_message(7, NetworkId::new(0), sender, &cfg));
        }
        assert_eq!(reports.len(), 1);
        match &reports[0] {
            RrpEvent::Fault(r) => {
                assert_eq!(r.net, NetworkId::new(1));
                assert!(matches!(
                    r.reason,
                    FaultReason::ReceptionLag { monitor: MonitorKind::Messages { sender: sd }, .. } if sd == sender
                ));
            }
            other => panic!("expected fault, got {other:?}"),
        }
        assert!(s.faulty[1]);
    }

    #[test]
    fn token_monitor_covers_quiet_periods() {
        // "Token monitoring is a useful alternative during periods in
        // which no messages are sent" (paper §6).
        let cfg = cfg(2);
        let mut s = PassiveState::new(&cfg);
        let mut flagged = false;
        for i in 0..cfg.monitor_threshold + 1 {
            let ev = s.on_token(i, NetworkId::new(1), token(i), false, &cfg);
            flagged |=
                ev.iter().any(|e| matches!(e, RrpEvent::Fault(r) if r.net == NetworkId::new(0)));
        }
        assert!(flagged);
    }

    #[test]
    fn monitors_are_per_sender() {
        let cfg = cfg(2);
        let mut s = PassiveState::new(&cfg);
        // Each sender's own traffic alternates networks (as passive
        // round-robin sending guarantees): no monitor may trip even
        // though the interleaving differs per sender.
        for i in 0..100u64 {
            let sender = NodeId::new((i % 2) as u16);
            let net = NetworkId::new(((i / 2) % 2) as u8);
            assert!(
                s.on_message(i, net, sender, &cfg).iter().all(|e| !matches!(e, RrpEvent::Fault(_))),
                "alternating traffic must not trip the monitor"
            );
        }
        assert!(!s.faulty[0] && !s.faulty[1]);
    }

    #[test]
    fn message_driven_compensation_forgives_sporadic_loss() {
        let mut cfg = cfg(2);
        cfg.monitor_threshold = 20;
        cfg.compensation_every = 10;
        let mut s = PassiveState::new(&cfg);
        // A sender whose traffic alternates but loses ~4% on net1:
        // forgiveness (10% of receptions) outpaces the divergence.
        for i in 0..5000u64 {
            let ev = s.on_message(i, NetworkId::new(0), NodeId::new(0), &cfg);
            assert!(ev.iter().all(|e| !matches!(e, RrpEvent::Fault(_))), "tripped at {i}");
            if i % 25 != 0 {
                let ev = s.on_message(i, NetworkId::new(1), NodeId::new(0), &cfg);
                assert!(ev.iter().all(|e| !matches!(e, RrpEvent::Fault(_))), "tripped at {i}");
            }
        }
        assert!(!s.faulty[1], "sporadic loss must be forgiven (P5)");
    }
}
