//! The Totem Redundant Ring Protocol (RRP).
//!
//! This crate is the primary contribution of *"The Totem Redundant
//! Ring Protocol"* (Koch, Moser, Melliar-Smith, ICDCS 2002): a thin
//! layer between the Totem single ring protocol and **N redundant
//! local-area networks** that makes partial or total failure of up to
//! N−1 networks transparent to the application, while a purely local
//! monitor raises fault reports for the operator.
//!
//! All replicated styles are one parameterized **K-of-N engine** —
//! a send window of K consecutive non-faulty networks, a stage-one
//! health monitor, and a stage-two wait-for-K-copies token gate —
//! instantiated at a different replication degree (paper §4–§7):
//!
//! * [`ReplicationStyle::Active`] — K=N: every message and token on
//!   all N networks (§5, Figure 2). Loss on up to N−1 networks is
//!   masked with no retransmission delay; bandwidth cost is N×.
//! * [`ReplicationStyle::Passive`] — K=1: each message and token on
//!   exactly one network, round-robin (§6, Figures 4 and 5). The
//!   networks' aggregate bandwidth becomes usable; a loss costs a
//!   retransmission.
//! * [`ReplicationStyle::ActivePassive`] — 1<K<N copies, round-robin
//!   (§7): a two-stage receive pipeline of the passive monitor
//!   followed by the active wait-for-K-copies gate.
//! * [`ReplicationStyle::KOfN`] — the engine over the full
//!   `1 <= K <= N` range, with K runtime-reconfigurable via
//!   [`RrpLayer::set_k`] and an optional automatic degradation policy
//!   ([`RrpConfig::auto_degrade`]).
//!
//! plus [`ReplicationStyle::Single`], the unreplicated baseline the
//! paper's evaluation compares against.
//!
//! The layer is sans-io: [`RrpLayer`] decides **routes** for outgoing
//! packets ([`RrpLayer::routes_for_message`],
//! [`RrpLayer::routes_for_token`]), **gates** incoming packets
//! ([`RrpLayer::on_packet`]), and reports network faults
//! ([`RrpEvent::Fault`]). Composition with the SRP lives in
//! `totem-cluster`.
//!
//! # Example: active replication masks a dead network
//!
//! ```
//! use totem_rrp::{ReplicationStyle, RrpConfig, RrpEvent, RrpLayer};
//! use totem_wire::{NetworkId, NodeId, Packet, RingId, Token};
//!
//! # fn main() -> Result<(), totem_rrp::RrpConfigError> {
//! let cfg = RrpConfig::new(ReplicationStyle::Active, 2);
//! let mut rrp = RrpLayer::new(cfg)?;
//!
//! // Outgoing packets go to both networks.
//! assert_eq!(rrp.routes_for_token().len(), 2);
//!
//! // A token is handed to the SRP only once BOTH copies arrived...
//! let t = Packet::Token(Token::initial(RingId::new(NodeId::new(0), 1)));
//! let up = rrp.on_packet(1_000, NetworkId::new(0), t.clone().into(), false);
//! assert!(up.is_empty(), "first copy alone is not delivered");
//! let up = rrp.on_packet(2_000, NetworkId::new(1), t.into(), false);
//! assert!(matches!(up.as_slice(), [RrpEvent::Deliver(p, _)] if p.is_token_class()));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
mod engine;
pub mod fault;
pub mod layer;
pub mod monitor;
pub mod pernet;

pub use config::{ReplicationStyle, RrpConfig, RrpConfigError};
pub use fault::{FaultReason, FaultReport, MonitorKind};
pub use layer::{RrpEvent, RrpLayer, RrpStats};
pub use pernet::PerNet;
