//! Active replication (paper §5, Figure 2).
//!
//! Every message and token is sent over all non-faulty networks.
//! Messages pass straight up (the SRP's sequence-number filter
//! destroys duplicates — Requirement A1). Tokens are **gated**: a
//! token is handed to the SRP only once a copy has arrived on every
//! non-faulty network (Requirements A2 and A3), or when the token
//! timer expires (Requirement A4). Each expiry increments the problem
//! counter of the networks that failed to deliver; crossing a
//! threshold marks the network faulty (A5), and a periodic decay of
//! the counters keeps sporadic loss from accumulating into a false
//! alarm (A6).
//!
//! The paper's Figure 2 pseudocode has two evident typos that we
//! correct to the clearly intended semantics: `faulty[N]` in
//! `sendToken` is read as `faulty[i]`, and the unindexed
//! `faulty = true` in `tokenTimerExpired` as `faulty[i] = true`.

use totem_wire::{NetworkId, Packet, Token};

use crate::config::RrpConfig;
use crate::fault::{FaultReason, FaultReport};
use crate::layer::RrpEvent;
use crate::pernet::PerNet;

/// Ordering key for token instances: `(ring seq, rotation, seq)`.
/// Copies of the same token instance share the key; a genuinely newer
/// token always compares greater (the ring leader bumps `rotation`
/// every full rotation, even on an idle ring).
pub(crate) fn token_key(t: &Token) -> (u64, u64, u64) {
    (t.ring.seq, t.rotation, t.seq.as_u64())
}

/// State of the active replication algorithm (Figure 2).
#[derive(Debug)]
pub(crate) struct ActiveState {
    pub faulty: PerNet<bool>,
    /// `recvLastToken[i]` of Figure 2.
    recv_last: PerNet<bool>,
    /// The newest token seen (None once delivered upward).
    last_token: Option<Token>,
    last_key: Option<(u64, u64, u64)>,
    /// Token timer of Figure 2.
    timer: Option<u64>,
    /// `problemCounter[i]` of Figure 2.
    problem: PerNet<u32>,
    /// Next periodic decay of the problem counters (A6).
    decay_at: u64,
    /// Per-network instant until which fault declaration is suspended
    /// after a reinstatement (0 = no grace active).
    grace_until: PerNet<u64>,
}

impl ActiveState {
    pub fn new(cfg: &RrpConfig) -> Self {
        ActiveState {
            faulty: PerNet::filled(cfg.networks, false),
            recv_last: PerNet::filled(cfg.networks, false),
            last_token: None,
            last_key: None,
            timer: None,
            problem: PerNet::filled(cfg.networks, 0),
            decay_at: cfg.problem_decay_interval,
            grace_until: PerNet::filled(cfg.networks, 0),
        }
    }

    /// Networks to send on: all non-faulty ones, in index order (the
    /// paper sends via n' first, n'' second, ...). If everything has
    /// been declared faulty we keep sending on all networks — sending
    /// nothing would kill a ring that might still limp along.
    #[cfg(test)]
    pub fn routes(&self) -> Vec<NetworkId> {
        let mut out = Vec::new();
        self.routes_into(&mut out);
        out
    }

    /// Allocation-free route computation: clears `out` and fills it in
    /// place so steady-state sends reuse one buffer.
    pub fn routes_into(&self, out: &mut Vec<NetworkId>) {
        out.clear();
        out.extend(self.faulty.iter().filter(|(_, &f)| !f).map(|(n, _)| n));
        if out.is_empty() {
            out.extend(self.faulty.ids());
        }
    }

    /// Figure 2 `recvToken`.
    pub fn on_token(
        &mut self,
        now: u64,
        net: NetworkId,
        t: Token,
        cfg: &RrpConfig,
    ) -> Vec<RrpEvent> {
        let key = token_key(&t);
        match self.last_key {
            Some(last) if key < last => return Vec::new(), // stale copy of an older token
            Some(last) if key == last => {
                if self.last_token.is_none() {
                    // Already passed up (all copies or timer); later
                    // copies are ignored (Figure 2 / Requirement A4).
                    self.recv_last.set(net, true);
                    return Vec::new();
                }
                self.recv_last.set(net, true);
            }
            _ => {
                // A new token instance: reset the per-network flags and
                // start the token timer. The timer is never restarted
                // while running — a new token can only arrive after the
                // previous one completed a rotation, at which point it
                // was already delivered or timed out.
                self.last_key = Some(key);
                self.last_token = Some(t);
                self.recv_last.fill(false);
                self.recv_last.set(net, true);
                self.timer = Some(now + cfg.active_token_timeout);
            }
        }
        let complete =
            self.recv_last.values().zip(self.faulty.values()).all(|(&got, &faulty)| got || faulty);
        if complete {
            self.timer = None;
            if let Some(tok) = self.last_token.take() {
                return vec![RrpEvent::Deliver(Packet::Token(tok).into(), net)];
            }
        }
        Vec::new()
    }

    /// Figure 2 `tokenTimerExpired` plus the periodic counter decay.
    pub fn on_timer(&mut self, now: u64, cfg: &RrpConfig) -> Vec<RrpEvent> {
        let mut events = Vec::new();
        if self.timer.is_some_and(|d| d <= now) {
            self.timer = None;
            let mut newly_faulty = Vec::new();
            for (net, problem) in self.problem.iter_mut() {
                if self.recv_last.at(net) || self.faulty.at(net) || now < self.grace_until.at(net) {
                    continue;
                }
                *problem = problem.saturating_add(1);
                if *problem >= cfg.problem_threshold {
                    newly_faulty.push(net);
                    events.push(RrpEvent::Fault(FaultReport {
                        net,
                        at: now,
                        reason: FaultReason::TokenTimeouts { count: *problem },
                    }));
                }
            }
            for net in newly_faulty {
                self.faulty.set(net, true);
            }
            if let Some(tok) = self.last_token.take() {
                events.push(RrpEvent::Deliver(
                    Packet::Token(tok).into(),
                    // Attribute delivery to the first network that did
                    // deliver a copy, if any.
                    self.recv_last
                        .iter()
                        .find(|(_, &r)| r)
                        .map(|(n, _)| n)
                        .unwrap_or(NetworkId::new(0)),
                ));
            }
        }
        if self.decay_at <= now {
            for p in self.problem.values_mut() {
                *p = p.saturating_sub(1);
            }
            self.decay_at = now + cfg.problem_decay_interval;
        }
        events
    }

    pub fn next_deadline(&self) -> Option<u64> {
        [self.timer, Some(self.decay_at)].into_iter().flatten().min()
    }

    /// Current problem counter of a network (tests/diagnostics).
    pub fn problem_counter(&self, net: NetworkId) -> u32 {
        self.problem.at(net)
    }

    /// Puts a faulty network back in service with a cleared problem
    /// counter and a declaration grace period. Returns whether it was
    /// faulty.
    pub fn reinstate(&mut self, now: u64, net: NetworkId, grace: u64) -> bool {
        let was = self.faulty.at(net);
        self.faulty.set(net, false);
        self.problem.set(net, 0);
        self.grace_until.set(net, now + grace);
        was
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ReplicationStyle;
    use totem_wire::{NodeId, RingId, Seq};

    fn cfg(n: usize) -> RrpConfig {
        RrpConfig::new(ReplicationStyle::Active, n)
    }

    fn token(ring_seq: u64, rotation: u64, seq: u64) -> Token {
        let mut t = Token::initial(RingId::new(NodeId::new(0), ring_seq));
        t.rotation = rotation;
        t.seq = Seq::new(seq);
        t
    }

    fn is_token_delivery(ev: &RrpEvent) -> bool {
        matches!(ev, RrpEvent::Deliver(p, _) if p.is_token_class())
    }

    #[test]
    fn token_waits_for_all_healthy_networks() {
        let cfg = cfg(3);
        let mut s = ActiveState::new(&cfg);
        let t = token(1, 0, 5);
        assert!(s.on_token(0, NetworkId::new(0), t.clone(), &cfg).is_empty());
        assert!(s.on_token(10, NetworkId::new(2), t.clone(), &cfg).is_empty());
        let ev = s.on_token(20, NetworkId::new(1), t, &cfg);
        assert_eq!(ev.len(), 1);
        assert!(is_token_delivery(&ev[0]));
    }

    #[test]
    fn duplicate_copy_on_same_network_does_not_complete() {
        let cfg = cfg(2);
        let mut s = ActiveState::new(&cfg);
        let t = token(1, 0, 5);
        assert!(s.on_token(0, NetworkId::new(0), t.clone(), &cfg).is_empty());
        assert!(s.on_token(1, NetworkId::new(0), t, &cfg).is_empty());
    }

    #[test]
    fn timer_expiry_delivers_and_penalizes_missing_networks() {
        let cfg = cfg(2);
        let mut s = ActiveState::new(&cfg);
        let t = token(1, 0, 5);
        s.on_token(0, NetworkId::new(0), t, &cfg);
        let deadline = s.next_deadline().unwrap();
        assert_eq!(deadline, cfg.active_token_timeout);
        let ev = s.on_timer(deadline, &cfg);
        assert_eq!(ev.len(), 1);
        assert!(is_token_delivery(&ev[0]));
        assert_eq!(s.problem_counter(NetworkId::new(1)), 1);
        assert_eq!(s.problem_counter(NetworkId::new(0)), 0);
    }

    #[test]
    fn late_copy_after_timer_delivery_is_ignored() {
        let cfg = cfg(2);
        let mut s = ActiveState::new(&cfg);
        let t = token(1, 0, 5);
        s.on_token(0, NetworkId::new(0), t.clone(), &cfg);
        s.on_timer(s.next_deadline().unwrap(), &cfg);
        // The straggler arrives afterwards: no second delivery (A1 for
        // tokens is handled here, not in the SRP).
        assert!(s.on_token(999_999_999, NetworkId::new(1), t, &cfg).is_empty());
    }

    #[test]
    fn repeated_timeouts_mark_network_faulty_and_report_once() {
        let cfg = cfg(2);
        let mut s = ActiveState::new(&cfg);
        let mut faults = 0;
        let mut rounds = 0;
        for i in 0..cfg.problem_threshold + 3 {
            let t = token(1, i as u64, i as u64);
            s.on_token(u64::from(i) * 10_000_000, NetworkId::new(0), t, &cfg);
            let Some(deadline) = s.timer else {
                // Once net1 is faulty the lone healthy copy completes
                // the token instantly — no timer is armed any more.
                assert!(s.faulty[1]);
                continue;
            };
            rounds += 1;
            for ev in s.on_timer(deadline, &cfg) {
                if let RrpEvent::Fault(r) = ev {
                    faults += 1;
                    assert_eq!(r.net, NetworkId::new(1));
                    assert!(
                        matches!(r.reason, FaultReason::TokenTimeouts { count } if count == cfg.problem_threshold)
                    );
                }
            }
        }
        assert_eq!(faults, 1, "a network is reported faulty exactly once");
        assert_eq!(rounds, cfg.problem_threshold, "fault lands exactly at the threshold");
        assert!(s.faulty[1]);
    }

    #[test]
    fn after_fault_tokens_deliver_without_the_dead_network() {
        let cfg = cfg(2);
        let mut s = ActiveState::new(&cfg);
        s.faulty[1] = true;
        let t = token(1, 0, 5);
        let ev = s.on_token(0, NetworkId::new(0), t, &cfg);
        assert_eq!(ev.len(), 1, "single healthy copy suffices once net1 is faulty");
    }

    #[test]
    fn decay_prevents_sporadic_loss_accumulation() {
        let cfg = cfg(2);
        let mut s = ActiveState::new(&cfg);
        // One isolated timeout...
        let t = token(1, 0, 1);
        s.on_token(0, NetworkId::new(0), t, &cfg);
        s.on_timer(s.timer.unwrap(), &cfg);
        assert_eq!(s.problem_counter(NetworkId::new(1)), 1);
        // ...decays away after an idle decay interval.
        s.on_timer(s.decay_at, &cfg);
        assert_eq!(s.problem_counter(NetworkId::new(1)), 0);
        assert!(!s.faulty[1]);
    }

    #[test]
    fn stale_older_token_copies_are_dropped() {
        let cfg = cfg(2);
        let mut s = ActiveState::new(&cfg);
        let newer = token(1, 5, 50);
        let older = token(1, 4, 50);
        s.on_token(0, NetworkId::new(0), newer, &cfg);
        assert!(s.on_token(1, NetworkId::new(1), older, &cfg).is_empty());
        // The newer instance still completes when its second copy lands.
        let newer = token(1, 5, 50);
        let ev = s.on_token(2, NetworkId::new(1), newer, &cfg);
        assert_eq!(ev.len(), 1);
    }

    #[test]
    fn all_faulty_routes_fall_back_to_all_networks() {
        let cfg = cfg(2);
        let mut s = ActiveState::new(&cfg);
        assert_eq!(s.routes().len(), 2);
        s.faulty[0] = true;
        assert_eq!(s.routes(), vec![NetworkId::new(1)]);
        s.faulty[1] = true;
        assert_eq!(s.routes().len(), 2, "never stop sending entirely");
    }

    #[test]
    fn rotation_counter_distinguishes_idle_ring_tokens() {
        // Two rotations with identical seq (idle ring): the second is
        // a NEW instance, not a duplicate (paper §2 footnote 1).
        let cfg = cfg(2);
        let mut s = ActiveState::new(&cfg);
        let r1 = token(1, 1, 7);
        s.on_token(0, NetworkId::new(0), r1.clone(), &cfg);
        s.on_token(1, NetworkId::new(1), r1, &cfg);
        let r2 = token(1, 2, 7);
        assert!(s.on_token(2, NetworkId::new(0), r2.clone(), &cfg).is_empty());
        let ev = s.on_token(3, NetworkId::new(1), r2, &cfg);
        assert_eq!(ev.len(), 1, "second rotation delivers again");
    }
}
