//! Network fault reports (paper §3).
//!
//! The RRP monitor operates entirely locally: it never probes, it only
//! watches what arrives. When a network's behaviour deviates from
//! normal it is marked faulty, the node stops **sending** on it (but
//! keeps accepting receptions, since other nodes may not have noticed
//! yet), and a [`FaultReport`] is raised to the application so an
//! administrator can react while the system keeps running.

use serde::{Deserialize, Serialize};

use totem_wire::{NetworkId, NodeId};

/// Which monitoring module detected the fault (paper §6: one module
/// per sender's message traffic plus one for the token traffic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MonitorKind {
    /// The token monitor (covers the token path even when no messages
    /// flow).
    Token,
    /// The per-sender message monitor.
    Messages {
        /// The sender whose traffic exposed the divergence.
        sender: NodeId,
    },
}

impl core::fmt::Display for MonitorKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MonitorKind::Token => f.write_str("token monitor"),
            MonitorKind::Messages { sender } => write!(f, "message monitor for {sender}"),
        }
    }
}

/// Why a network was declared faulty.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultReason {
    /// Active replication: the network failed to deliver the token
    /// before the token timer expired `count` times (Requirement A5).
    TokenTimeouts {
        /// Value the problem counter reached.
        count: u32,
    },
    /// Passive / active-passive replication: the network's reception
    /// count fell `behind` receptions short of the best network
    /// (Requirement P4).
    ReceptionLag {
        /// How far behind the best network the faulty one was.
        behind: u64,
        /// The monitoring module that noticed.
        monitor: MonitorKind,
    },
}

/// A fault report delivered to the application process (paper §3:
/// "the Totem RRP issues a fault report to the user application
/// process"). The order and content of reports across nodes aid
/// diagnosis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultReport {
    /// The network declared faulty.
    pub net: NetworkId,
    /// Protocol time of the detection, in nanoseconds.
    pub at: u64,
    /// What the monitor observed.
    pub reason: FaultReason,
}

impl core::fmt::Display for FaultReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self.reason {
            FaultReason::TokenTimeouts { count } => {
                write!(f, "{} declared faulty: missed the token {count} times", self.net)
            }
            FaultReason::ReceptionLag { behind, monitor } => {
                write!(f, "{} declared faulty: {behind} receptions behind ({monitor})", self.net)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_render_for_operators() {
        let r = FaultReport {
            net: NetworkId::new(1),
            at: 5,
            reason: FaultReason::TokenTimeouts { count: 10 },
        };
        assert_eq!(r.to_string(), "net1 declared faulty: missed the token 10 times");

        let r = FaultReport {
            net: NetworkId::new(0),
            at: 9,
            reason: FaultReason::ReceptionLag {
                behind: 51,
                monitor: MonitorKind::Messages { sender: NodeId::new(2) },
            },
        };
        assert_eq!(
            r.to_string(),
            "net0 declared faulty: 51 receptions behind (message monitor for n2)"
        );
        let r = FaultReport {
            net: NetworkId::new(0),
            at: 9,
            reason: FaultReason::ReceptionLag { behind: 51, monitor: MonitorKind::Token },
        };
        assert!(r.to_string().contains("token monitor"));
    }
}
