//! Property tests for the fault-detection arms of the layer: the
//! passive reception-count monitor (paper §6 Figure 5, Requirements
//! P4/P5) and active replication's problem counters with decay (§5
//! Figure 2, Requirements A5/A6).
//!
//! The invariant pair under test, for both styles:
//!
//! * **sporadic** loss — rarer than the forgiveness mechanism's rate —
//!   must never accumulate into a false alarm, over any loss pattern;
//! * **sustained** loss (a dead network) must always be flagged, and
//!   flagged exactly once, regardless of the traffic that preceded it.

use proptest::prelude::*;
use totem_rrp::monitor::MonitorModule;
use totem_rrp::{PerNet, ReplicationStyle, RrpConfig, RrpEvent, RrpLayer};
use totem_wire::{NetworkId, NodeId, Packet, RingId, Seq, Token};

fn token(rotation: u64, seq: u64) -> Token {
    let mut t = Token::initial(RingId::new(NodeId::new(0), 1));
    t.rotation = totem_wire::Rotation::new(rotation);
    t.seq = Seq::new(seq);
    t
}

fn fault_count(events: &[RrpEvent]) -> usize {
    events.iter().filter(|e| matches!(e, RrpEvent::Fault(_))).count()
}

proptest! {
    /// P4/P5: message-driven compensation forgives sporadic loss. With
    /// forgiveness at one credit per `comp_every = 10` receptions
    /// (~19% of traffic here) and a loss rate of ~1/8 (~6% divergence
    /// growth), no loss pattern drawn at that rate may ever flag the
    /// lossy network.
    #[test]
    fn sporadic_reception_loss_never_faults(
        drops in proptest::collection::vec(0u8..8, 50..400),
    ) {
        let mut m = MonitorModule::new(2, 25, 10);
        let faulty: PerNet<bool> = PerNet::filled(2, false);
        for &d in &drops {
            prop_assert!(
                m.record(NetworkId::new(0), &faulty).is_empty(),
                "net0 (lossless) must never be suspect"
            );
            if d != 0 {
                prop_assert!(
                    m.record(NetworkId::new(1), &faulty).is_empty(),
                    "sporadic loss accumulated into a false alarm"
                );
            }
        }
    }

    /// P5's flip side: a dead network can never be masked by the
    /// compensation. Whatever balanced traffic came before, once net1
    /// goes silent the divergence grows at (comp_every - 1) per
    /// comp_every receptions and must cross any finite threshold —
    /// within threshold * comp_every / (comp_every - 1) receptions,
    /// and the flag fires on net1 only.
    #[test]
    fn dead_network_always_crosses_the_threshold(
        warmup in 0usize..200,
        threshold in 5u64..40,
    ) {
        let comp_every = 10u64;
        let mut m = MonitorModule::new(2, threshold, comp_every);
        let faulty: PerNet<bool> = PerNet::filled(2, false);
        for _ in 0..warmup {
            prop_assert!(m.record(NetworkId::new(0), &faulty).is_empty());
            prop_assert!(m.record(NetworkId::new(1), &faulty).is_empty());
        }
        // net1 dies: only net0 receives from here on.
        let bound = (threshold as usize + 2) * comp_every as usize / (comp_every as usize - 1) + 2;
        let mut flagged_at = None;
        for i in 0..bound {
            let suspects = m.record(NetworkId::new(0), &faulty);
            if !suspects.is_empty() {
                prop_assert!(suspects.iter().all(|(n, _)| *n == NetworkId::new(1)));
                flagged_at = Some(i);
                break;
            }
        }
        prop_assert!(
            flagged_at.is_some(),
            "dead network not flagged within {bound} receptions (threshold {threshold})"
        );
    }

    /// A5/A6: active replication's problem-counter decay forgives
    /// token-copy losses spaced at least one decay interval apart.
    /// For any such loss pattern the lossy network's counter never
    /// exceeds 1, so no fault is ever declared.
    #[test]
    fn active_decay_forgives_spaced_token_losses(
        drops in proptest::collection::vec(any::<bool>(), 20..120),
    ) {
        let cfg = RrpConfig::new(ReplicationStyle::Active, 2);
        let mut layer = RrpLayer::new(cfg.clone()).expect("valid config");
        // Each round is one token rotation, spaced so that a decay
        // interval elapses between consecutive rounds: a loss in every
        // round is still "sporadic" relative to the decay clock.
        let round_len = cfg.problem_decay_interval + cfg.active_token_timeout + 2;
        for (i, &drop_net1) in drops.iter().enumerate() {
            let now = i as u64 * round_len;
            let t = token(i as u64, i as u64);
            let ev = layer.on_packet(now, NetworkId::new(0), Packet::Token(t.clone()).into(), false);
            prop_assert_eq!(fault_count(&ev), 0);
            if !drop_net1 {
                let ev = layer.on_packet(now + 1, NetworkId::new(1), Packet::Token(t).into(), false);
                prop_assert_eq!(fault_count(&ev), 0);
            }
            // Fires the token timer (penalizing net1 on a loss) and,
            // with this spacing, exactly one counter decay.
            let ev = layer.on_timer(now + round_len - 1);
            prop_assert_eq!(fault_count(&ev), 0, "sporadic token loss must never fault");
            prop_assert!(layer.problem_counters().iter().all(|&c| c <= 1));
            prop_assert!(layer.faulty().iter().all(|&f| !f));
        }
    }

    /// A5: sustained token-copy loss — faster than the decay — always
    /// faults the dead network, exactly once, at exactly the problem
    /// threshold, for any length of healthy warmup traffic.
    #[test]
    fn active_sustained_loss_always_faults(
        warmup in 0u64..30,
        extra in 1u64..20,
    ) {
        let cfg = RrpConfig::new(ReplicationStyle::Active, 2);
        let mut layer = RrpLayer::new(cfg.clone()).expect("valid config");
        let round_len = cfg.active_token_timeout + 2; // far below the decay interval
        let mut now = 0;
        let mut rotation = 0;
        for _ in 0..warmup {
            let t = token(rotation, rotation);
            layer.on_packet(now, NetworkId::new(0), Packet::Token(t.clone()).into(), false);
            layer.on_packet(now + 1, NetworkId::new(1), Packet::Token(t).into(), false);
            now += round_len;
            rotation += 1;
        }
        prop_assert!(layer.faulty().iter().all(|&f| !f));
        // net1 dies; every rotation now times out.
        let mut faults = 0;
        let mut faulted_after = None;
        for dead_round in 0..u64::from(cfg.problem_threshold) + extra {
            let t = token(rotation, rotation);
            layer.on_packet(now, NetworkId::new(0), Packet::Token(t).into(), false);
            let ev = layer.on_timer(now + cfg.active_token_timeout);
            let n = fault_count(&ev);
            if n > 0 {
                faults += n;
                faulted_after.get_or_insert(dead_round + 1);
            }
            now += round_len;
            rotation += 1;
        }
        prop_assert_eq!(faults, 1, "a dead network is reported exactly once");
        prop_assert_eq!(faulted_after, Some(u64::from(cfg.problem_threshold)));
        prop_assert_eq!(layer.faulty(), vec![false, true]);
    }
}
