//! Differential pin tests for the unified replication engine.
//!
//! A deterministic harness drives an [`RrpLayer`] with a seeded
//! schedule of data packets, token rotations, commit tokens, timer
//! firings, route queries and reinstatements — with per-network loss —
//! and folds every observable output (events, routes, stats, faulty
//! flags, counters, recorded transitions) into one FNV-1a digest.
//!
//! The `FIXTURES` table was recorded from the pre-refactor per-style
//! state machines (`active.rs` / `passive.rs` / `active_passive.rs`);
//! the tests assert the unified engine reproduces those traces bit for
//! bit for the three legacy configurations. If an intentional protocol
//! change ever invalidates them, regenerate with
//! `cargo test -p totem-rrp --test differential -- --ignored --nocapture`.

use bytes::Bytes;
use totem_rrp::{ReplicationStyle, RrpConfig, RrpEvent, RrpLayer};
use totem_wire::{Chunk, CommitToken, DataPacket, NetworkId, NodeId, Packet, RingId, Seq, Token};

/// The three legacy configurations under differential pinning.
fn legacy_configs() -> [RrpConfig; 3] {
    [
        RrpConfig::new(ReplicationStyle::Active, 2),
        RrpConfig::new(ReplicationStyle::Passive, 2),
        RrpConfig::new(ReplicationStyle::ActivePassive { copies: 2 }, 3),
    ]
}

/// Digests recorded from the legacy implementation, indexed
/// `[config][seed]` (configs in `legacy_configs` order, seeds `0..8`).
const FIXTURES: [[u64; 8]; 3] = [
    [
        0xd4efe8fa5ef80b10,
        0x9b05a225a014997f,
        0x8537e1028b1a41e9,
        0xb8757434ccf9e4fe,
        0x89022a677718d85c,
        0x0864dab9a7ece3dc,
        0xbffe40b9842c1a56,
        0x1b7c44c0d48510a3,
    ],
    [
        0x45559be9e7dcb2a4,
        0x5a72575763fb4973,
        0x2da21c4e49666ffe,
        0xd9a2e87c75057476,
        0xb23b6e0553dc0cfb,
        0x25f60215b88847e7,
        0xc060a16523934bd6,
        0x17187741587a7a74,
    ],
    [
        0x94696286d912a5af,
        0xfd93dfed47e67b13,
        0x6a9ff9c899725d3f,
        0xd6803afd71dcd916,
        0xce6600e2bfc06e70,
        0x4d6fc2e9bb3d42a8,
        0x7bbeb8f0c7f171ab,
        0x099c8baa4d145185,
    ],
];

// ---------------------------------------------------------------------
// Deterministic helpers (no external RNG: the schedule itself is the
// fixture, so it must never change behind the digests' back)
// ---------------------------------------------------------------------

/// FNV-1a, the same construction the bench gate uses for its digests.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn bytes(&mut self, data: &[u8]) {
        for &b in data {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_be_bytes());
    }
}

/// splitmix64: tiny, stable, dependency-free.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0x1234_5678_9ABC_DEF1))
    }
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn data_packet(seq: u64, sender: u16, fill: u8) -> Packet {
    Packet::Data(DataPacket {
        ring: RingId::new(NodeId::new(0), 1),
        seq: Seq::new(seq),
        sender: NodeId::new(sender),
        chunks: vec![Chunk::complete(0, Bytes::from(vec![fill; 16]))],
    })
}

fn token_packet(rotation: u64, seq: u64) -> Packet {
    let mut t = Token::initial(RingId::new(NodeId::new(0), 1));
    t.rotation = totem_wire::Rotation::new(rotation);
    t.seq = Seq::new(seq);
    Packet::Token(t)
}

fn commit_packet(ring_seq: u64) -> Packet {
    Packet::Commit(CommitToken {
        ring: RingId::new(NodeId::new(0), ring_seq),
        round: 0,
        entries: vec![],
    })
}

fn hash_events(h: &mut Fnv, tag: &str, events: &[RrpEvent]) {
    for ev in events {
        h.str(tag);
        h.str(&format!("{ev:?}"));
    }
}

/// Runs the seeded schedule against a fresh layer and digests every
/// observable output.
fn trace_digest(cfg: &RrpConfig, seed: u64) -> u64 {
    let mut l = RrpLayer::new(cfg.clone()).unwrap();
    let mut rng = Rng::new(seed);
    let mut h = Fnv::new();
    let nets = cfg.networks as u64;
    let mut data_seq = 1u64;
    let mut rotation = 0u64;
    let mut tok_seq = 1u64;

    for step in 0..600u64 {
        let now = step * 250_000; // 0.25 ms per step

        // Fire every timer that has come due (bounded: a broken
        // deadline must fail the test, not hang it).
        for _ in 0..16 {
            match l.next_deadline() {
                Some(d) if d <= now => hash_events(&mut h, "timer", &l.on_timer(d)),
                _ => break,
            }
        }

        match rng.below(100) {
            // A data packet from one of four senders, delivered on
            // each network with 70% probability (independent loss).
            0..=34 => {
                let sender = rng.below(4) as u16;
                let pkt = data_packet(data_seq, sender, (data_seq % 251) as u8);
                data_seq += 1;
                for net in 0..nets {
                    if rng.below(100) < 70 {
                        let missing = rng.below(4) == 0;
                        let ev = l.on_packet(
                            now,
                            NetworkId::new(net as u8),
                            pkt.clone().into(),
                            missing,
                        );
                        hash_events(&mut h, "data", &ev);
                    }
                }
            }
            // A token rotation: the same instance offered on each
            // network with 75% probability, gap state drawn per copy.
            35..=69 => {
                let pkt = token_packet(rotation, tok_seq);
                rotation += 1;
                tok_seq += rng.below(3);
                for net in 0..nets {
                    if rng.below(100) < 75 {
                        let missing = rng.below(3) == 0;
                        let ev = l.on_packet(
                            now,
                            NetworkId::new(net as u8),
                            pkt.clone().into(),
                            missing,
                        );
                        hash_events(&mut h, "token", &ev);
                    }
                }
            }
            // The SRP filled (or reported) a gap.
            70..=76 => {
                let missing = rng.below(2) == 0;
                hash_events(&mut h, "release", &l.poll_release(now, missing));
            }
            // A commit token (travels the token path, passes up).
            77..=82 => {
                let pkt = commit_packet(2 + rng.below(3));
                for net in 0..nets {
                    if rng.below(100) < 70 {
                        let ev =
                            l.on_packet(now, NetworkId::new(net as u8), pkt.clone().into(), false);
                        hash_events(&mut h, "commit", &ev);
                    }
                }
            }
            // Route queries: every class, hashed in order.
            83..=92 => {
                for (tag, routes) in [
                    ("rm", l.routes_for_message()),
                    ("rt", l.routes_for_token()),
                    ("rr", l.routes_for_retransmission()),
                    ("rb", l.routes_for_membership()),
                ] {
                    h.str(tag);
                    for n in routes {
                        h.u64(n.index() as u64);
                    }
                }
            }
            // Administrative repair of a random network.
            _ => {
                let net = NetworkId::new(rng.below(nets) as u8);
                if l.reinstate(now, net) {
                    h.str("reinstated");
                    h.u64(net.index() as u64);
                }
            }
        }
    }

    // Final observable state.
    h.str(&format!("{:?}", l.stats()));
    h.str(&format!("{:?}", l.faulty()));
    h.str(&format!("{:?}", l.problem_counters()));
    let mut monitors: Vec<String> =
        l.monitor_report().iter().map(|(k, c)| format!("{k:?}:{c:?}")).collect();
    monitors.sort(); // HashMap iteration order is not part of the trace
    h.str(&format!("{monitors:?}"));
    h.str(&format!("{:?}", l.take_transitions()));
    h.0
}

#[test]
fn legacy_traces_are_reproduced() {
    for (ci, cfg) in legacy_configs().iter().enumerate() {
        for seed in 0..8u64 {
            assert_eq!(
                trace_digest(cfg, seed),
                FIXTURES[ci][seed as usize],
                "trace diverged from the recorded legacy fixture (config {ci}, seed {seed})"
            );
        }
    }
}

proptest::proptest! {
    /// Event-trace equivalence against the recorded legacy fixtures
    /// under seeded loss schedules.
    #[test]
    fn traces_match_recorded_fixtures(ci in 0usize..3, seed in 0u64..8) {
        let cfg = &legacy_configs()[ci];
        proptest::prop_assert_eq!(trace_digest(cfg, seed), FIXTURES[ci][seed as usize]);
    }
}

/// Regenerates the fixture table (run with `--ignored --nocapture`).
#[test]
#[ignore]
fn print_fixture_table() {
    for cfg in legacy_configs().iter() {
        println!("    [");
        for seed in 0..8u64 {
            println!("        0x{:016x},", trace_digest(cfg, seed));
        }
        println!("    ],");
    }
}
