//! Property-based tests on the redundant ring layer: the paper's
//! requirements as invariants over arbitrary interleavings.

use proptest::prelude::*;
use totem_rrp::{ReplicationStyle, RrpConfig, RrpEvent, RrpLayer};
use totem_wire::{NetworkId, NodeId, Packet, RingId, Seq, Token};

fn token(rotation: u64, seq: u64) -> Token {
    let mut t = Token::initial(RingId::new(NodeId::new(0), 1));
    t.rotation = totem_wire::Rotation::new(rotation);
    t.seq = Seq::new(seq);
    t
}

fn deliveries(events: &[RrpEvent]) -> usize {
    events.iter().filter(|e| matches!(e, RrpEvent::Deliver(p, _) if p.is_token_class())).count()
}

proptest! {
    /// Active replication, arbitrary interleaving of token copies over
    /// N lossless networks and rotations: every token instance is
    /// delivered to the SRP exactly once, and never before all N
    /// copies arrived (no timer runs in this test).
    #[test]
    fn active_delivers_each_token_instance_exactly_once(
        networks in 2usize..5,
        rotations in 1u64..20,
        // Per rotation, a permutation choice for copy arrival order.
        perm_seed in any::<u64>(),
    ) {
        let mut layer = RrpLayer::new(RrpConfig::new(ReplicationStyle::Active, networks)).expect("valid config");
        let mut seed = perm_seed;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let mut now = 0u64;
        for r in 0..rotations {
            let t = token(r, r * 3);
            // Random arrival order of the N copies.
            let mut order: Vec<usize> = (0..networks).collect();
            for i in (1..order.len()).rev() {
                order.swap(i, (rng() % (i as u64 + 1)) as usize);
            }
            let mut total = 0;
            for (k, &net) in order.iter().enumerate() {
                now += 1;
                let ev = layer.on_packet(now, NetworkId::new(net as u8), Packet::Token(t.clone()).into(), false);
                let d = deliveries(&ev);
                if k + 1 < networks {
                    prop_assert_eq!(d, 0, "delivered before all copies arrived");
                }
                total += d;
            }
            prop_assert_eq!(total, 1, "rotation {} delivered {} times", r, total);
        }
    }

    /// Active replication: data packets always pass straight up, one
    /// event per reception, never a fault on lossless networks.
    #[test]
    fn active_passes_every_message_reception_up(
        networks in 2usize..5,
        packets in proptest::collection::vec((0u64..100, 0u8..4), 1..200),
    ) {
        let mut layer = RrpLayer::new(RrpConfig::new(ReplicationStyle::Active, networks)).expect("valid config");
        for (i, (seq, net)) in packets.iter().enumerate() {
            let net = NetworkId::new(net % networks as u8);
            let pkt = Packet::Data(totem_wire::DataPacket {
                ring: RingId::new(NodeId::new(0), 1),
                seq: Seq::new(*seq),
                sender: NodeId::new((seq % 4) as u16),
                chunks: vec![],
            });
            let ev = layer.on_packet(i as u64, net, pkt.into(), false);
            prop_assert_eq!(ev.len(), 1);
            prop_assert!(matches!(&ev[0], RrpEvent::Deliver(p, n) if p.data().is_some() && *n == net));
        }
    }

    /// Passive replication: any interleaving of balanced per-sender
    /// traffic (each sender's stream strictly alternating networks, as
    /// the sending rule guarantees) never declares a fault (P5), and
    /// round-robin routing is balanced within one packet.
    #[test]
    fn passive_monitors_tolerate_any_balanced_interleaving(
        lanes in proptest::collection::vec(0usize..4, 1..400),
    ) {
        let networks = 2usize;
        let mut layer = RrpLayer::new(RrpConfig::new(ReplicationStyle::Passive, networks)).expect("valid config");
        // Each "lane" is a sender whose own packets alternate networks.
        let mut next_net = [0u8; 4];
        for (i, &lane) in lanes.iter().enumerate() {
            let net = NetworkId::new(next_net[lane]);
            next_net[lane] = (next_net[lane] + 1) % networks as u8;
            let pkt = Packet::Data(totem_wire::DataPacket {
                ring: RingId::new(NodeId::new(0), 1),
                seq: Seq::new(i as u64 + 1),
                sender: NodeId::new(lane as u16),
                chunks: vec![],
            });
            let ev = layer.on_packet(i as u64, net, pkt.into(), false);
            prop_assert!(
                ev.iter().all(|e| !matches!(e, RrpEvent::Fault(_))),
                "balanced traffic must never trip a monitor"
            );
        }
        // Routing stays balanced: over 2k routes the two networks
        // differ by at most one.
        let mut counts = [0u32; 2];
        for _ in 0..2000 {
            for net in layer.routes_for_message() {
                counts[net.index()] += 1;
            }
        }
        prop_assert!(counts[0].abs_diff(counts[1]) <= 1, "routing imbalance: {counts:?}");
    }

    /// Passive replication never delivers a token while messages are
    /// missing, except through the explicit timer/release paths (P1):
    /// feeding tokens with `any_missing = true` yields no token
    /// delivery, and the buffered token is recovered exactly once via
    /// `poll_release`.
    #[test]
    fn passive_gates_tokens_behind_gaps(
        seqs in proptest::collection::vec(1u64..1000, 1..30),
    ) {
        let mut layer = RrpLayer::new(RrpConfig::new(ReplicationStyle::Passive, 2)).expect("valid config");
        let mut now = 0;
        let mut best: Option<(u64, u64)> = None;
        for (i, &s) in seqs.iter().enumerate() {
            now += 1;
            let t = token(i as u64, s);
            best = best.max(Some((i as u64, s)));
            let ev = layer.on_packet(now, NetworkId::new((i % 2) as u8), Packet::Token(t).into(), true);
            prop_assert_eq!(deliveries(&ev), 0, "token leaked past a gap");
        }
        let ev = layer.poll_release(now + 1, false);
        prop_assert_eq!(deliveries(&ev), 1);
        // The newest token is the one released.
        if let Some(RrpEvent::Deliver(p, _)) =
            ev.iter().find(|e| matches!(e, RrpEvent::Deliver(p, _) if p.is_token_class()))
        {
            if let Packet::Token(t) = p.packet() {
                prop_assert_eq!((t.rotation.as_u64(), t.seq.as_u64()), best.unwrap());
            }
        }
        // Nothing more to release.
        prop_assert_eq!(layer.poll_release(now + 2, false).len(), 0);
    }

    /// Active-passive: a token instance is delivered exactly once as
    /// soon as K distinct copies arrive, for any arrival interleaving.
    #[test]
    fn active_passive_k_copy_gate(
        networks in 3usize..6,
        k_off in 0usize..2,
        perm_seed in any::<u64>(),
        rotations in 1u64..12,
    ) {
        let k = (2 + k_off).min(networks - 1);
        let mut layer =
            RrpLayer::new(RrpConfig::new(ReplicationStyle::ActivePassive { copies: k as u8 }, networks)).expect("valid config");
        let mut seed = perm_seed | 1;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let mut now = 0u64;
        for r in 0..rotations {
            let t = token(r, r);
            let mut order: Vec<usize> = (0..networks).collect();
            for i in (1..order.len()).rev() {
                order.swap(i, (rng() % (i as u64 + 1)) as usize);
            }
            let mut seen = 0;
            let mut total = 0;
            for &net in &order {
                now += 1;
                let ev = layer.on_packet(now, NetworkId::new(net as u8), Packet::Token(t.clone()).into(), false);
                seen += 1;
                let d = deliveries(&ev);
                if seen < k {
                    prop_assert_eq!(d, 0, "delivered with only {} of {} copies", seen, k);
                } else if seen == k {
                    prop_assert_eq!(d, 1, "not delivered at the K-th copy");
                } else {
                    prop_assert_eq!(d, 0, "delivered again after the K-th copy");
                }
                total += d;
            }
            prop_assert_eq!(total, 1);
        }
    }
}
