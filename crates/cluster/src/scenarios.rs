//! Deterministic transition-coverage scenarios for the conformance
//! gate (`cargo xtask conformance`).
//!
//! Every documented state-machine transition in `spec/protocol.toml`
//! must be *exercised* — not just present in the code — before a
//! change ships. [`run_all`] drives the protocol through a fixed set
//! of scenarios and reports every [`Transition`] observed:
//!
//! * **simulator scenarios** run whole clusters in `totem-sim` (fixed
//!   seeds, so runs are reproducible bit-for-bit) and read the
//!   transitions back out of the trace layer, exercising the full
//!   recording pipeline (`SrpNode`/`RrpLayer` →
//!   [`crate::TotemNode::take_transitions`] →
//!   [`totem_sim::Ctx::note_transition`] → [`totem_sim::TraceLog`]);
//! * **direct-drive scenarios** feed crafted packets and timer ticks
//!   straight into a state machine for the rare edges a healthy
//!   cluster almost never takes (commit-token loss, foreign traffic,
//!   an incomplete commit round, passive token-buffer expiry).

use bytes::Bytes;

use totem_rrp::{ReplicationStyle, RrpConfig, RrpLayer};
use totem_sim::{FaultCommand, SimDuration, SimTime};
use totem_srp::{SrpConfig, SrpEvent, SrpNode};
use totem_wire::{
    Chunk, CommitToken, DataPacket, JoinMessage, MembEntry, NetworkId, NodeId, Packet, RingId, Seq,
    Token, Transition,
};

use crate::sim_cluster::{ClusterConfig, SimCluster};

/// The transitions one named scenario exercised.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Scenario name (stable; shown in the conformance report).
    pub name: &'static str,
    /// Every state-machine transition observed, in order.
    pub transitions: Vec<Transition>,
}

/// Runs every coverage scenario and returns the per-scenario reports.
///
/// The union of the reported transitions is the coverage set the
/// conformance gate checks `spec/protocol.toml` against.
pub fn run_all() -> Vec<ScenarioReport> {
    vec![
        cold_start_membership(),
        token_loss_reformation(),
        fault_and_reinstate("active-fault-reinstate", ReplicationStyle::Active),
        fault_and_reinstate("passive-fault-reinstate", ReplicationStyle::Passive),
        fault_and_reinstate(
            "active-passive-fault-reinstate",
            ReplicationStyle::ActivePassive { copies: 2 },
        ),
        crash_rejoin(),
        membership_edges(),
        passive_token_buffering(),
        style_switch(),
        ring_paxos_duty_cycle(),
    ]
}

// ----------------------------------------------------------------------
// Simulator scenarios
// ----------------------------------------------------------------------

/// Drains the transition records out of a finished simulation.
fn trace_transitions(cluster: &SimCluster) -> Vec<Transition> {
    cluster.trace().map(|log| log.transitions().map(|r| r.transition).collect()).unwrap_or_default()
}

/// Three nodes cold-start through the membership protocol: Gather →
/// consensus → commit rounds → recovery → Operational.
fn cold_start_membership() -> ScenarioReport {
    let mut cluster =
        SimCluster::new(ClusterConfig::new(3, ReplicationStyle::Active).joining().with_seed(11));
    cluster.enable_trace(4096);
    cluster.run_until(SimTime::from_secs(2));
    ScenarioReport { name: "cold-start-membership", transitions: trace_transitions(&cluster) }
}

/// A running ring loses every network, declares token loss, and
/// reforms once the networks come back.
fn token_loss_reformation() -> ScenarioReport {
    let mut cluster =
        SimCluster::new(ClusterConfig::new(3, ReplicationStyle::Active).with_seed(12));
    cluster.enable_trace(4096);
    for net in 0..2u8 {
        cluster.schedule_fault(
            SimTime::from_millis(100),
            FaultCommand::NetworkDown { net: NetworkId::new(net), down: true },
        );
        cluster.schedule_fault(
            SimTime::from_millis(700),
            FaultCommand::NetworkDown { net: NetworkId::new(net), down: false },
        );
    }
    cluster.run_until(SimTime::from_millis(2500));
    ScenarioReport { name: "token-loss-reformation", transitions: trace_transitions(&cluster) }
}

/// One network dies under a live workload; every node flags it, then
/// the operator repairs it and reinstates the network.
fn fault_and_reinstate(name: &'static str, style: ReplicationStyle) -> ScenarioReport {
    let nodes = 4usize;
    let mut cluster = SimCluster::new(ClusterConfig::new(nodes, style).with_seed(13));
    cluster.enable_trace(4096);
    cluster.schedule_fault(
        SimTime::from_millis(50),
        FaultCommand::NetworkDown { net: NetworkId::new(0), down: true },
    );
    // A steady workload keeps the reception monitors fed (the passive
    // styles detect faults by comparing per-network reception counts,
    // so detection latency scales with the message rate). Run until
    // every node has flagged the dead network, with a hard cap so a
    // regression cannot hang the gate.
    let all_flagged =
        |c: &SimCluster| (0..nodes).all(|n| c.faulty_networks(n).first().copied().unwrap_or(false));
    let mut t = SimTime::ZERO;
    while t < SimTime::from_secs(6) {
        cluster.run_until(t);
        if all_flagged(&cluster) {
            break;
        }
        for node in 0..nodes {
            let _ = cluster.try_submit(node, Bytes::from_static(b"coverage-tick"));
        }
        t += SimDuration::from_millis(5);
    }
    // Repair the medium, then reinstate it wherever it was flagged.
    cluster.fault_now(FaultCommand::NetworkDown { net: NetworkId::new(0), down: false });
    for node in 0..nodes {
        if cluster.faulty_networks(node).first().copied().unwrap_or(false) {
            cluster.reinstate(node, NetworkId::new(0));
        }
    }
    let end = cluster.now() + SimDuration::from_millis(200);
    cluster.run_until(end);
    ScenarioReport { name, transitions: trace_transitions(&cluster) }
}

/// A node crashes out of a running ring and later reboots cold. The
/// survivors' consensus watchdog expires without hearing the corpse
/// (`Gather --PeerCrashTimeout--> Gather`) and reforms a smaller ring;
/// the reboot rejoins with a fresh identity epoch
/// (`Gather --CrashRejoin--> Gather`) and the full ring reassembles.
fn crash_rejoin() -> ScenarioReport {
    let mut cluster =
        SimCluster::new(ClusterConfig::new(3, ReplicationStyle::Active).with_seed(14));
    cluster.enable_trace(8192);
    cluster.schedule_fault(
        SimTime::from_millis(100),
        FaultCommand::CrashNode { node: NodeId::new(2) },
    );
    cluster
        .schedule_fault(SimTime::from_secs(3), FaultCommand::RestartNode { node: NodeId::new(2) });
    cluster.run_until(SimTime::from_secs(6));
    ScenarioReport { name: "crash-rejoin", transitions: trace_transitions(&cluster) }
}

/// The replication degree K changes while the ring keeps running: the
/// operator raises and restores K by hand (`Steady --OperatorSetK-->`),
/// then a network fault drives the automatic policy — K steps down
/// when the fault is declared (`Steady --AutoDegrade-->`) and back up
/// when the repaired network is reinstated (`Steady --AutoRestore-->`).
fn style_switch() -> ScenarioReport {
    let nodes = 4usize;
    let mut cfg = ClusterConfig::new(nodes, ReplicationStyle::KOfN { copies: 2 })
        .with_networks(3)
        .with_seed(15);
    cfg.rrp.auto_degrade = true;
    let mut cluster = SimCluster::new(cfg);
    cluster.enable_trace(4096);
    // Let the ring settle, then exercise the operator path on node 0:
    // K 2 -> 3 (full active) and back down to the K-of-N baseline.
    cluster.run_until(SimTime::from_millis(20));
    assert!(cluster.set_k(0, 3), "operator raise rejected");
    assert!(cluster.set_k(0, 2), "operator restore rejected");
    // Kill one network under a live workload; every node's divergence
    // monitors flag it and the auto-degrade policy drops K to 1.
    cluster.schedule_fault(
        SimTime::from_millis(50),
        FaultCommand::NetworkDown { net: NetworkId::new(0), down: true },
    );
    let all_degraded =
        |c: &SimCluster| (0..nodes).all(|n| c.faulty_networks(n).first().copied().unwrap_or(false));
    let mut t = SimTime::from_millis(20);
    while t < SimTime::from_secs(6) {
        cluster.run_until(t);
        if all_degraded(&cluster) {
            break;
        }
        for node in 0..nodes {
            let _ = cluster.try_submit(node, Bytes::from_static(b"coverage-tick"));
        }
        t += SimDuration::from_millis(5);
    }
    // Repair and reinstate: K climbs back to the baseline everywhere.
    cluster.fault_now(FaultCommand::NetworkDown { net: NetworkId::new(0), down: false });
    for node in 0..nodes {
        if cluster.faulty_networks(node).first().copied().unwrap_or(false) {
            cluster.reinstate(node, NetworkId::new(0));
        }
    }
    let end = cluster.now() + SimDuration::from_millis(200);
    cluster.run_until(end);
    ScenarioReport { name: "style-switch", transitions: trace_transitions(&cluster) }
}

// ----------------------------------------------------------------------
// Direct-drive scenarios
// ----------------------------------------------------------------------

/// The single packet a batch of SRP events asked the host to send.
fn only_packet(events: &[SrpEvent]) -> Packet {
    let mut pkts = events.iter().filter_map(|e| e.packet().cloned());
    let first = pkts.next().unwrap_or_else(|| unreachable!("scenario step produced no packet"));
    first.into_packet()
}

/// Unwraps a commit token out of a packet the scenarios just produced.
fn as_commit(pkt: Packet) -> CommitToken {
    if let Packet::Commit(ct) = pkt {
        ct
    } else {
        unreachable!("scenario step expected a commit token")
    }
}

/// A join broadcast from an outsider node.
fn join_from(sender: NodeId, ring_seq: u64) -> Packet {
    Packet::Join(JoinMessage { sender, ring_seq, proc_set: vec![sender], fail_set: Vec::new() })
}

/// Drives two fresh joining nodes through the join exchange until the
/// representative (node 0) reaches consensus and emits the round-0
/// commit token. Node 1 is left in Gather, awaiting that token.
fn pair_to_commit(cfg: &SrpConfig) -> (SrpNode, SrpNode, CommitToken) {
    let mut a = SrpNode::new_joining(NodeId::new(0), cfg.clone()).expect("valid SRP config");
    let mut b = SrpNode::new_joining(NodeId::new(1), cfg.clone()).expect("valid SRP config");
    let ja = only_packet(&a.start(0));
    let jb = only_packet(&b.start(0));
    // Each side learns of the other and re-advertises the merged set...
    let jb2 = only_packet(&b.handle_packet(0, ja.into()));
    let ja2 = only_packet(&a.handle_packet(0, jb.into()));
    // ...node 1 sees agreement and awaits the rep's commit token...
    b.handle_packet(0, ja2.into());
    // ...and node 0 (the rep) reaches consensus and builds it.
    let ct = as_commit(only_packet(&a.handle_packet(0, jb2.into())));
    (a, b, ct)
}

/// A node statically bootstrapped onto the two-member ring `{0, 1}`.
fn operational_node(cfg: &SrpConfig) -> SrpNode {
    let members = [NodeId::new(0), NodeId::new(1)];
    SrpNode::new_operational(NodeId::new(0), cfg.clone(), &members, 0).expect("valid bootstrap")
}

/// Walks the membership machine through every rare edge a healthy
/// simulated cluster almost never takes.
fn membership_edges() -> ScenarioReport {
    let cfg = SrpConfig::lan_defaults();
    let mut trs = Vec::new();

    // Commit --IncompleteRound--> Gather: the round-0 token returns to
    // the representative with node 1's received flag still unset.
    {
        let (mut a, _b, ct) = pair_to_commit(&cfg);
        a.handle_packet(0, Packet::Commit(ct).into());
        trs.extend(a.take_transitions());
    }

    // Commit --TokenLoss--> Gather: the commit token never returns.
    {
        let (mut a, _b, _ct) = pair_to_commit(&cfg);
        a.on_timer(cfg.token_loss_timeout + 1);
        trs.extend(a.take_transitions());
    }

    // Commit --JoinReceived--> Gather: an outsider's join arrives
    // while the commit token is in flight.
    {
        let (mut a, _b, _ct) = pair_to_commit(&cfg);
        a.handle_packet(0, join_from(NodeId::new(9), 7).into());
        trs.extend(a.take_transitions());
    }

    // Gather --CommitRound0--> Commit (node 1 adopts the token),
    // Commit --RoundComplete--> Recovery (the completed round returns
    // to the rep), then Recovery --JoinReceived--> Gather.
    {
        let (mut a, mut b, ct) = pair_to_commit(&cfg);
        let ct1 = as_commit(only_packet(&b.handle_packet(0, Packet::Commit(ct).into())));
        a.handle_packet(0, Packet::Commit(ct1).into());
        a.handle_packet(0, join_from(NodeId::new(9), 9).into());
        trs.extend(a.take_transitions());
        trs.extend(b.take_transitions());
    }

    // Recovery --TokenLoss--> Gather: the ring forms but the recovery
    // token never arrives.
    {
        let (mut a, mut b, ct) = pair_to_commit(&cfg);
        let ct1 = as_commit(only_packet(&b.handle_packet(0, Packet::Commit(ct).into())));
        a.handle_packet(0, Packet::Commit(ct1).into());
        a.on_timer(cfg.token_loss_timeout + 1);
        trs.extend(a.take_transitions());
    }

    // Operational --ForeignData--> Gather: traffic from a ring we have
    // never heard of (two healed partitions discovering each other).
    {
        let mut n = operational_node(&cfg);
        n.handle_packet(
            0,
            Packet::Data(DataPacket {
                ring: RingId::new(NodeId::new(9), 5),
                seq: Seq::new(1),
                sender: NodeId::new(9),
                chunks: vec![Chunk::complete(0, Bytes::from_static(b"foreign"))],
            })
            .into(),
        );
        trs.extend(n.take_transitions());
    }

    // Operational --ForeignToken--> Gather: a token from a newer ring
    // we are not on.
    {
        let mut n = operational_node(&cfg);
        n.handle_packet(0, Packet::Token(Token::initial(RingId::new(NodeId::new(1), 5))).into());
        trs.extend(n.take_transitions());
    }

    // Operational --JoinReceived--> Gather: a joiner knocks.
    {
        let mut n = operational_node(&cfg);
        n.handle_packet(0, join_from(NodeId::new(9), 3).into());
        trs.extend(n.take_transitions());
    }

    // Operational --CommitRound0--> Commit: a newer ring's round-0
    // commit token that includes us (we missed its gather phase).
    {
        let mut n = operational_node(&cfg);
        let entry = |node: u16| MembEntry {
            node: NodeId::new(node),
            old_ring: RingId::new(NodeId::new(node), 0),
            my_aru: Seq::ZERO,
            high_delivered: Seq::ZERO,
            received_flag: false,
        };
        let ct = CommitToken {
            ring: RingId::new(NodeId::new(0), 2),
            round: 0,
            entries: vec![entry(0), entry(1)],
        };
        n.handle_packet(0, Packet::Commit(ct).into());
        trs.extend(n.take_transitions());
    }

    // Operational --TokenLoss--> Gather: the regular token vanishes.
    {
        let mut n = operational_node(&cfg);
        n.on_timer(cfg.token_loss_timeout + 1);
        trs.extend(n.take_transitions());
    }

    ScenarioReport { name: "membership-edges", transitions: trs }
}

/// Drives the passive token-buffering machine through all three of its
/// edges: buffer behind a gap, release when the gap closes, and
/// release on timer expiry.
fn passive_token_buffering() -> ScenarioReport {
    let mut layer =
        RrpLayer::new(RrpConfig::new(ReplicationStyle::Passive, 2)).expect("valid RRP config");
    let ring = RingId::new(NodeId::new(0), 1);
    let token_with_seq = |seq: u64| {
        let mut t = Token::initial(ring);
        t.seq = Seq::new(seq);
        Packet::Token(t)
    };
    // A token ahead of messages still missing: buffered.
    layer.on_packet(0, NetworkId::new(0), token_with_seq(3).into(), true);
    // The missing messages arrive: the gap closes, token released.
    layer.poll_release(1, false);
    // Buffer again, and this time let the release timer expire.
    layer.on_packet(2, NetworkId::new(1), token_with_seq(4).into(), true);
    if let Some(deadline) = layer.next_deadline() {
        layer.on_timer(deadline);
    }
    ScenarioReport { name: "passive-token-buffering", transitions: layer.take_transitions() }
}

/// Drives a raw three-node Ring Paxos ensemble through its whole duty
/// cycle: a pipelined burst (open → ring ack → last-acceptor decision
/// → drained), a coordinator retry after total Accept loss, and a
/// learner gap repaired end-to-end — with the repair request landing
/// once while the pipeline is idle and once while it is open.
fn ring_paxos_duty_cycle() -> ScenarioReport {
    use std::collections::VecDeque;

    use crate::backend::Broadcast;
    use crate::backends::RingPaxosNode;
    use crate::node::NodeOutput;
    use totem_wire::RingPaxosMsg;

    let members: Vec<NodeId> = (0..3).map(NodeId::new).collect();
    let mut nodes: Vec<RingPaxosNode> =
        members.iter().map(|&id| RingPaxosNode::new(id, &members, 0, 0)).collect();

    /// Routes queued sends until the wire falls silent;
    /// `drop_decisions_to` models one learner missing every `Decision`
    /// multicast (the loss the gap-repair path exists for).
    fn route(
        nodes: &mut [RingPaxosNode],
        start: Vec<(usize, NodeOutput)>,
        now: u64,
        drop_decisions_to: Option<usize>,
    ) {
        let mut wire: VecDeque<(usize, NodeOutput)> = start.into();
        let mut guard = 0;
        while let Some((src, o)) = wire.pop_front() {
            guard += 1;
            assert!(guard < 100_000, "ring-paxos scenario wire never drained");
            let NodeOutput::Send { dst, pkt, .. } = o else { continue };
            let targets: Vec<usize> = match dst {
                Some(d) => vec![d.as_u16() as usize],
                None => (0..nodes.len()).filter(|&i| i != src).collect(),
            };
            for t in targets {
                if drop_decisions_to == Some(t)
                    && matches!(pkt.packet(), Packet::RingPaxos(RingPaxosMsg::Decision { .. }))
                {
                    continue;
                }
                let mut out = Vec::new();
                nodes[t].on_packet_into(now, NetworkId::new(0), pkt.clone(), &mut out);
                wire.extend(out.into_iter().map(|x| (t, x)));
            }
        }
    }

    // Propose / Pipeline / RingForward / LastDecide / Drained: two
    // values from two proposers arrive back-to-back, so the second is
    // sequenced while the first instance is still circling the ring.
    let mut burst = Vec::new();
    {
        let mut out = Vec::new();
        nodes[1].submit_into(0, Bytes::from_static(b"rp-a"), &mut out).expect("empty queue");
        burst.extend(out.drain(..).map(|o| (1usize, o)));
        nodes[2].submit_into(0, Bytes::from_static(b"rp-b"), &mut out).expect("empty queue");
        burst.extend(out.drain(..).map(|o| (2usize, o)));
    }
    route(&mut nodes, burst, 0, None);

    // Retry: the coordinator's own Accept multicast is lost outright;
    // once the retransmit backoff expires its tick re-drives the ring
    // and the instance completes.
    {
        let mut lost = Vec::new();
        nodes[0].submit_into(1_000_000, Bytes::from_static(b"rp-c"), &mut lost).expect("queue");
        drop(lost);
        nodes[0].next_deadline().expect("an open instance arms the retry tick");
        let t = 42_000_000; // past the initial 40 ms retransmit backoff
        let mut out = Vec::new();
        nodes[0].on_timer_into(t, &mut out);
        route(&mut nodes, out.into_iter().map(|o| (0usize, o)).collect(), t, None);
    }

    // GapRepair + HoleFill while the pipeline is idle: node 1 misses a
    // Decision, waits out the grace period, and asks the coordinator.
    {
        let mut out = Vec::new();
        nodes[0].submit_into(60_000_000, Bytes::from_static(b"rp-d"), &mut out).expect("queue");
        route(&mut nodes, out.into_iter().map(|o| (0usize, o)).collect(), 60_000_000, Some(1));
        let mut learn = Vec::new();
        nodes[1].on_timer_into(80_000_000, &mut learn);
        route(&mut nodes, learn.into_iter().map(|o| (1usize, o)).collect(), 80_000_000, None);
    }

    // GapRepair + HoleFill while the pipeline is open: same loss, but
    // a further instance is in flight (its Accept withheld) when the
    // repair request lands.
    {
        let mut out = Vec::new();
        nodes[2].submit_into(90_000_000, Bytes::from_static(b"rp-e"), &mut out).expect("queue");
        route(&mut nodes, out.into_iter().map(|o| (2usize, o)).collect(), 90_000_000, Some(1));
        let mut held = Vec::new();
        nodes[0].submit_into(95_000_000, Bytes::from_static(b"rp-f"), &mut held).expect("queue");
        let mut learn = Vec::new();
        nodes[1].on_timer_into(110_000_000, &mut learn);
        route(&mut nodes, learn.into_iter().map(|o| (1usize, o)).collect(), 110_000_000, None);
        // Release the held Accept so the scenario ends quiesced.
        route(&mut nodes, held.into_iter().map(|o| (0usize, o)).collect(), 110_000_000, None);
    }

    let mut trs = Vec::new();
    for n in &mut nodes {
        trs.extend(n.take_transitions());
    }
    ScenarioReport { name: "ring-paxos-duty-cycle", transitions: trs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    /// The full (machine, from, event, to) coverage the scenarios must
    /// deliver — kept in lockstep with `spec/protocol.toml`.
    const EXPECTED: &[(&str, &str, &str, &str)] = &[
        ("srp-membership", "Gather", "Restart", "Gather"),
        ("srp-membership", "Gather", "PeerCrashTimeout", "Gather"),
        ("srp-membership", "Gather", "CrashRejoin", "Gather"),
        ("srp-membership", "Gather", "ConsensusReached", "Commit"),
        ("srp-membership", "Gather", "CommitRound0", "Commit"),
        ("srp-membership", "Operational", "CommitRound0", "Commit"),
        ("srp-membership", "Operational", "TokenLoss", "Gather"),
        ("srp-membership", "Operational", "ForeignData", "Gather"),
        ("srp-membership", "Operational", "ForeignToken", "Gather"),
        ("srp-membership", "Operational", "JoinReceived", "Gather"),
        ("srp-membership", "Commit", "TokenLoss", "Gather"),
        ("srp-membership", "Commit", "JoinReceived", "Gather"),
        ("srp-membership", "Commit", "IncompleteRound", "Gather"),
        ("srp-membership", "Commit", "RoundComplete", "Recovery"),
        ("srp-membership", "Recovery", "TokenLoss", "Gather"),
        ("srp-membership", "Recovery", "JoinReceived", "Gather"),
        ("srp-membership", "Recovery", "RecoveryComplete", "Operational"),
        ("rrp-active-net", "Operative", "TokenTimeouts", "Faulty"),
        ("rrp-active-net", "Faulty", "Reinstate", "Operative"),
        ("rrp-passive-net", "Operative", "ReceptionLag", "Faulty"),
        ("rrp-passive-net", "Faulty", "Reinstate", "Operative"),
        ("rrp-active-passive-net", "Operative", "ReceptionLag", "Faulty"),
        ("rrp-active-passive-net", "Faulty", "Reinstate", "Operative"),
        ("rrp-passive-token", "Idle", "TokenBehindGap", "Buffered"),
        ("rrp-passive-token", "Buffered", "GapClosed", "Idle"),
        ("rrp-passive-token", "Buffered", "TimerExpiry", "Idle"),
        ("rrp-replication", "Steady", "OperatorSetK", "Steady"),
        ("rrp-replication", "Steady", "AutoDegrade", "Steady"),
        ("rrp-replication", "Steady", "AutoRestore", "Steady"),
        ("ring-paxos", "Idle", "Propose", "Open"),
        ("ring-paxos", "Open", "Pipeline", "Open"),
        ("ring-paxos", "Open", "Retry", "Open"),
        ("ring-paxos", "Open", "Drained", "Idle"),
        ("ring-paxos", "Idle", "HoleFill", "Idle"),
        ("ring-paxos", "Open", "HoleFill", "Open"),
        ("ring-paxos-ring", "Steady", "RingForward", "Steady"),
        ("ring-paxos-ring", "Steady", "LastDecide", "Steady"),
        ("ring-paxos-ring", "Steady", "GapRepair", "Steady"),
    ];

    #[test]
    fn scenarios_cover_every_documented_transition() {
        let reports = run_all();
        let covered: BTreeSet<(&str, &str, &str, &str)> = reports
            .iter()
            .flat_map(|r| r.transitions.iter())
            .map(|t| (t.machine, t.from, t.event, t.to))
            .collect();
        let missing: Vec<_> = EXPECTED.iter().filter(|want| !covered.contains(*want)).collect();
        assert!(missing.is_empty(), "transitions never exercised: {missing:?}");
    }

    #[test]
    fn membership_edges_are_deterministic() {
        let a = membership_edges();
        let b = membership_edges();
        assert_eq!(a.transitions, b.transitions);
        assert!(!a.transitions.is_empty());
    }
}
