//! Bounded exhaustive model checking of the SRP membership machine.
//!
//! [`explore`] drives the **existing** sans-io protocol stack — the
//! same [`SimCluster`] the tests and the chaos fuzzer use, via the
//! same shared executor ([`crate::chaos`]'s schedule core) — through
//! every fault interleaving expressible in a small action alphabet, up
//! to a configurable depth. There is no second implementation of the
//! protocol or of fault injection here: an explored path **is** a
//! [`ChaosSchedule`], so a violating path serializes to the exact TOML
//! format `cargo xtask chaos --replay` runs back, and shrinks with the
//! existing delta-debugging machinery.
//!
//! # The action alphabet
//!
//! Exploration alternates *quiet steps* (a fixed slice of simulated
//! time in which the cluster runs free: token rotation, timer firings,
//! message deliveries, retransmissions) with *instantaneous fault
//! injections* at step boundaries:
//!
//! * [`Action::Step`] — run one quiet step (`step_ms` of virtual
//!   time, with the chaos traffic workload submitting one message per
//!   [`crate::chaos::TICK`]); the bound `depth` counts these;
//! * [`Action::Crash`]/[`Action::Restart`] — fail-stop a processor /
//!   reboot it cold (fresh identity epoch, rejoins via Gather);
//! * [`Action::Partition`]/[`Action::Heal`] — split every network at
//!   a cut point / reconnect everything;
//! * [`Action::Drop`] — blackout one processor's reception on every
//!   network for one step (models a burst of message loss);
//! * [`Action::Dup`] — deliver every frame on one network twice for
//!   one step (models a duplicating medium).
//!
//! Budgets (`crashes`, `partitions`, `drops`, `dups`) bound how many
//! of each injection a path may carry, which keeps the state space
//! finite and focused: protocol bugs of the class the chaos fuzzer
//! found all needed only one or two coordinated faults.
//!
//! # State canonicalization and partial-order reduction
//!
//! Each explored state is re-executed from the initial state (the
//! deterministic simulator guarantees a path's prefix *is* its state),
//! then folded to a 64-bit canonical hash ([`SimCluster`]'s
//! `state_fingerprint`: per-node protocol state via the
//! `SrpNode`/`RrpLayer` fingerprint hooks, delivery logs, fault plane,
//! event-queue horizon) for visited-state pruning. Injections at the
//! same boundary commute — the simulator applies same-instant fault
//! commands back-to-back before any protocol event — so the explorer
//! only generates them in one canonical order (sorted by a fixed
//! per-action rank), a simple partial-order reduction. See DESIGN.md
//! §14 for the soundness argument and the hash-compaction caveats.
//!
//! # Checks
//!
//! Every explored state runs the caller's delivery oracle (default:
//! the full EVS safety oracle [`oracle::check_safety`]) plus per-state
//! invariants: membership/view sanity ([`oracle::check_view_sanity`])
//! and RFC 1982 monotonicity of each node's ring-sequence horizon
//! across the parent→child transition. Spec coverage is recorded from
//! the simulator's transition trace: which `spec/protocol.toml`
//! `srp-membership` edges the bounded exploration exercised, and at
//! which depth each was first seen.

use std::collections::{BTreeMap, HashSet, VecDeque};

use totem_sim::{FaultCommand, SimTime};
use totem_wire::{Incarnation, NetworkId, NodeId, Seq};

use crate::backend::BackendKind;
use crate::chaos::oracle::{self, Violation};
use crate::chaos::{exec, ChaosSchedule, ReplicationStyle, ScheduledCommand, TICK};
use crate::sim_cluster::SimCluster;

/// Transition-trace capacity per execution; generous, and
/// [`McReport::transitions_dropped`] reports any overflow instead of
/// silently losing coverage.
const TRACE_CAPACITY: usize = 16_384;

/// One explorer action: either a quiet step of virtual time or an
/// instantaneous fault injection at the current step boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Run one quiet step (`step_ms` of simulated time with traffic).
    Step,
    /// Fail-stop this processor.
    Crash(u16),
    /// Reboot a crashed processor cold (fresh identity epoch).
    Restart(u16),
    /// Split every network: processors `< cut` on one side, the rest
    /// on the other.
    Partition(u16),
    /// Reconnect every network.
    Heal,
    /// Blackout this processor's reception on every network for one
    /// step.
    Drop(u16),
    /// Deliver every frame on this network twice for one step.
    Dup(u8),
}

impl Action {
    /// Canonical order of injections within one step boundary — the
    /// partial-order reduction only generates boundary groups sorted
    /// strictly by this rank. [`Action::Step`] has no rank: it closes
    /// the group.
    fn rank(self) -> Option<u32> {
        match self {
            Action::Step => None,
            Action::Crash(n) => Some(u32::from(n)),
            Action::Restart(n) => Some(0x1_0000 + u32::from(n)),
            Action::Partition(cut) => Some(0x2_0000 + u32::from(cut)),
            Action::Heal => Some(0x3_0000),
            Action::Drop(n) => Some(0x4_0000 + u32::from(n)),
            Action::Dup(k) => Some(0x5_0000 + u32::from(k)),
        }
    }
}

impl core::fmt::Display for Action {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Action::Step => write!(f, "step"),
            Action::Crash(n) => write!(f, "crash({n})"),
            Action::Restart(n) => write!(f, "restart({n})"),
            Action::Partition(cut) => write!(f, "partition(<{cut} | {cut}..)"),
            Action::Heal => write!(f, "heal"),
            Action::Drop(n) => write!(f, "drop({n})"),
            Action::Dup(k) => write!(f, "dup(net {k})"),
        }
    }
}

/// Explorer configuration. Start from [`McOptions::new`] and override
/// fields as needed.
#[derive(Debug, Clone)]
pub struct McOptions {
    /// Cluster size (≥ 2). The cluster runs the active replication
    /// style on two networks, matching the chaos fuzzer's default.
    pub nodes: usize,
    /// Exploration bound: the maximum number of quiet steps per path.
    pub depth: u64,
    /// How many crash injections one path may carry.
    pub crashes: usize,
    /// How many partition injections one path may carry.
    pub partitions: usize,
    /// How many one-step reception blackouts one path may carry.
    pub drops: usize,
    /// How many one-step duplication windows one path may carry.
    pub dups: usize,
    /// Virtual time per quiet step, in milliseconds. Must be a
    /// multiple of the 5 ms traffic tick and long enough for the
    /// membership timeouts (token loss 200 ms, consensus 250 ms) to
    /// fire within one step; the 400 ms default is calibrated to the
    /// LAN config.
    pub step_ms: u64,
    /// Simulation seed (the explored graph is seed-deterministic).
    pub seed: u64,
    /// Initial global sequence number of the bootstrapped ring (zero
    /// is the production default; `--start-near-wrap` sets a value
    /// just below `u64::MAX` so exploration crosses the serial wrap
    /// and the reserved-zero skip).
    pub start_seq: u64,
    /// Delivery oracle run at every explored state. Defaults to the
    /// full EVS safety oracle; the counterexample harness swaps in
    /// [`oracle::check_prefix_equality`] to prove the
    /// emission/shrink/replay pipeline end-to-end.
    pub oracle: fn(&SimCluster, usize) -> Vec<Violation>,
    /// Which broadcast engine the explored cluster runs. Under
    /// [`BackendKind::RingPaxos`] the coordinator (node 0) is exempt
    /// from crash injections — its crash-recovery is out of the
    /// backend's documented scope — and the view-sanity invariant is
    /// skipped (a static ensemble forms no membership views).
    pub backend: BackendKind,
}

impl McOptions {
    /// Defaults: one crash, one partition, no drop/dup windows,
    /// 400 ms steps, seed 0, EVS safety oracle.
    pub fn new(nodes: usize, depth: u64) -> Self {
        McOptions {
            nodes,
            depth,
            crashes: 1,
            partitions: 1,
            drops: 0,
            dups: 0,
            step_ms: 400,
            seed: 0,
            start_seq: 0,
            oracle: oracle::check_safety,
            backend: BackendKind::default(),
        }
    }

    /// The spec machines whose exercised edges the exploration report
    /// tracks for this backend.
    pub fn tracked_machines(&self) -> &'static [&'static str] {
        match self.backend {
            BackendKind::Totem => &["srp-membership"],
            BackendKind::RingPaxos => &["ring-paxos", "ring-paxos-ring"],
        }
    }

    /// The lowest node id crash injections may target: 1 under Ring
    /// Paxos (fixed coordinator, see [`McOptions::backend`]), 0
    /// otherwise.
    fn first_crashable(&self) -> u16 {
        match self.backend {
            BackendKind::Totem => 0,
            BackendKind::RingPaxos => 1,
        }
    }

    fn step_ns(&self) -> u64 {
        self.step_ms * 1_000_000
    }
}

/// A violating path, minimized and ready to replay.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The explorer path that first hit the violation.
    pub actions: Vec<Action>,
    /// Every violation the per-state checks reported there.
    pub violations: Vec<Violation>,
    /// The path as a chaos schedule, shrunk with the existing
    /// delta-debugging minimizer where the violation survives a full
    /// chaos run (mc-internal per-state invariants shrink to the
    /// original path). Serialize with [`ChaosSchedule::to_toml`] and
    /// replay with `cargo xtask chaos --replay`.
    pub schedule: ChaosSchedule,
}

/// What [`explore`] found.
#[derive(Debug, Clone, Default)]
pub struct McReport {
    /// Distinct states visited (after hash pruning), root included.
    pub states: u64,
    /// Prefix executions run (every candidate child costs one).
    pub executions: u64,
    /// Candidate states pruned as already visited.
    pub pruned: u64,
    /// Order-independent digest of every visited state hash — the
    /// determinism regression tests pin this.
    pub digest: u64,
    /// Deepest quiet-step count reached.
    pub deepest: u64,
    /// Every tracked spec edge exercised (the backend's machines, see
    /// [`McOptions::tracked_machines`]), keyed
    /// `(from, event, to)`, with the quiet-step depth it was first
    /// seen at.
    pub edges: BTreeMap<(String, String, String), u64>,
    /// Transition-trace overflow across all executions (0 = full
    /// coverage data; anything else means the fixed trace capacity is too
    /// small for this configuration).
    pub transitions_dropped: u64,
    /// The first violating path found, if any (exploration stops on
    /// the first violation — it is the shallowest, BFS order).
    pub counterexample: Option<Counterexample>,
}

impl McReport {
    /// `true` when the bounded exploration finished with no violation.
    pub fn passed(&self) -> bool {
        self.counterexample.is_none()
    }
}

/// Per-node snapshot for the parent→child monotonicity checks.
#[derive(Debug, Clone, Copy)]
struct NodeSnap {
    incarnation: Incarnation,
    max_ring_seq: u64,
    ring_seq: Option<u64>,
}

/// One frontier entry of the breadth-first exploration.
struct StateRec {
    actions: Vec<Action>,
    quiets: u64,
    crashes_used: usize,
    partitions_used: usize,
    drops_used: usize,
    dups_used: usize,
    /// Which processors are crashed at the end of this path.
    crashed: Vec<bool>,
    /// Whether a partition is currently in force.
    partitioned: bool,
    /// Injections since the last [`Action::Step`] (the open boundary
    /// group) — constrains further same-boundary injections.
    group: Vec<Action>,
    snapshot: Vec<NodeSnap>,
}

/// FNV-1a, fixed here so visited-state hashes and the state-space
/// digest are stable across toolchains (the std `DefaultHasher` makes
/// no such promise, and the determinism regression tests pin digests).
struct Fnv64(u64);

impl Fnv64 {
    fn new() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }
}

impl core::hash::Hasher for Fnv64 {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// Maps an explorer path to the chaos schedule that executes it: each
/// quiet step is `step_ms / 5ms` traffic ticks, each injection becomes
/// fault commands at its boundary instant (drop/dup windows add their
/// paired heal one boundary later).
pub fn schedule_of(actions: &[Action], opts: &McOptions) -> ChaosSchedule {
    let step_ns = opts.step_ns();
    let both_nets = [NetworkId::new(0), NetworkId::new(1)];
    let mut commands: Vec<ScheduledCommand> = Vec::new();
    let mut quiets = 0u64;
    for action in actions {
        let at_ns = quiets * step_ns;
        match *action {
            Action::Step => quiets += 1,
            Action::Crash(n) => commands.push(ScheduledCommand {
                at_ns,
                cmd: FaultCommand::CrashNode { node: NodeId::new(n) },
            }),
            Action::Restart(n) => commands.push(ScheduledCommand {
                at_ns,
                cmd: FaultCommand::RestartNode { node: NodeId::new(n) },
            }),
            Action::Partition(cut) => {
                let groups: Vec<u8> =
                    (0..opts.nodes).map(|i| u8::from(i >= cut as usize)).collect();
                for net in both_nets {
                    commands.push(ScheduledCommand {
                        at_ns,
                        cmd: FaultCommand::Partition { net, groups: groups.clone() },
                    });
                }
            }
            Action::Heal => {
                for net in both_nets {
                    commands.push(ScheduledCommand {
                        at_ns,
                        cmd: FaultCommand::Partition { net, groups: Vec::new() },
                    });
                }
            }
            Action::Drop(n) => {
                let node = NodeId::new(n);
                for net in both_nets {
                    commands.push(ScheduledCommand {
                        at_ns,
                        cmd: FaultCommand::RecvFault { node, net, failed: true },
                    });
                    commands.push(ScheduledCommand {
                        at_ns: at_ns + step_ns,
                        cmd: FaultCommand::RecvFault { node, net, failed: false },
                    });
                }
            }
            Action::Dup(k) => {
                let net = NetworkId::new(k);
                commands.push(ScheduledCommand {
                    at_ns,
                    cmd: FaultCommand::DuplicateNet { net, on: true },
                });
                commands.push(ScheduledCommand {
                    at_ns: at_ns + step_ns,
                    cmd: FaultCommand::DuplicateNet { net, on: false },
                });
            }
        }
    }
    // Stable by construction ordering within an instant: boundary
    // groups are generated rank-sorted and off-commands precede the
    // next boundary's injections in insertion order.
    commands.sort_by_key(|c| c.at_ns);
    ChaosSchedule {
        seed: opts.seed,
        nodes: opts.nodes,
        style: ReplicationStyle::Active,
        steps: quiets * (opts.step_ns() / TICK.as_nanos()),
        commands,
        kflips: Vec::new(),
        corruptions: Vec::new(),
        start_seq: opts.start_seq,
        backend: opts.backend,
    }
}

/// Re-executes a path from the initial state and returns the cluster
/// at its end (the deterministic simulator makes this exact).
fn run_prefix(actions: &[Action], opts: &McOptions) -> (SimCluster, ChaosSchedule) {
    let schedule = schedule_of(actions, opts);
    let mut exec = exec::Execution::new(&schedule, Some(TRACE_CAPACITY));
    exec.run_traffic_window(schedule.steps);
    // A zero-step prefix (injections before any quiet time) still has
    // to process its t=0 events: the actors' starts and the boundary's
    // fault commands.
    exec.cluster.run_until(SimTime::from_nanos(schedule.steps * TICK.as_nanos()));
    (exec.cluster, schedule)
}

fn snapshot(cluster: &SimCluster, nodes: usize) -> Vec<NodeSnap> {
    (0..nodes)
        .map(|n| NodeSnap {
            incarnation: cluster.incarnation(n),
            max_ring_seq: cluster.max_ring_seq(n),
            ring_seq: cluster.ring_id(n).map(|r| r.seq),
        })
        .collect()
}

/// The per-state invariants beyond the delivery oracle: view sanity
/// plus RFC 1982 monotonicity of each node's ring-sequence horizon
/// (and, within one incarnation, of its current ring's sequence)
/// across the parent→child transition.
fn check_state(cluster: &SimCluster, opts: &McOptions, parent: &[NodeSnap]) -> Vec<Violation> {
    let mut violations = (opts.oracle)(cluster, opts.nodes);
    if opts.backend == BackendKind::Totem {
        violations.extend(oracle::check_view_sanity(cluster, opts.nodes));
    }
    for (n, snap) in parent.iter().enumerate() {
        let now = cluster.max_ring_seq(n);
        if !Seq::new(now).at_or_after(Seq::new(snap.max_ring_seq)) {
            violations.push(Violation::StateInvariant {
                node: n,
                detail: format!(
                    "ring-sequence horizon went backwards: {} -> {now} (RFC 1982 order)",
                    snap.max_ring_seq
                ),
            });
        }
        if cluster.incarnation(n) == snap.incarnation {
            if let (Some(prev), Some(now)) = (snap.ring_seq, cluster.ring_id(n).map(|r| r.seq)) {
                if !Seq::new(now).at_or_after(Seq::new(prev)) {
                    violations.push(Violation::StateInvariant {
                        node: n,
                        detail: format!(
                            "ring id sequence went backwards within one incarnation: \
                             {prev} -> {now} (RFC 1982 order)"
                        ),
                    });
                }
            }
        }
    }
    violations
}

/// Canonical state hash: the cluster fingerprint plus the scheduling
/// context (depth, spent budgets, open boundary group) — two paths
/// merge only when both the protocol state *and* the explorer's
/// remaining choices coincide, which keeps the pruning sound with
/// respect to the budgeted action alphabet.
fn hash_state(cluster: &SimCluster, rec: &StateRec) -> u64 {
    use core::hash::{Hash as _, Hasher as _};
    let mut h = Fnv64::new();
    cluster.state_fingerprint(&mut h);
    rec.quiets.hash(&mut h);
    rec.crashes_used.hash(&mut h);
    rec.partitions_used.hash(&mut h);
    rec.drops_used.hash(&mut h);
    rec.dups_used.hash(&mut h);
    for a in &rec.group {
        a.rank().hash(&mut h);
    }
    h.finish()
}

fn record_edges(cluster: &SimCluster, quiets: u64, opts: &McOptions, report: &mut McReport) {
    if let Some(trace) = cluster.trace() {
        report.transitions_dropped += trace.transitions_dropped();
        for rec in trace.transitions() {
            let t = rec.transition;
            if opts.tracked_machines().contains(&t.machine) {
                report
                    .edges
                    .entry((t.from.to_string(), t.event.to_string(), t.to.to_string()))
                    .or_insert(quiets);
            }
        }
    }
}

/// Every action applicable at `rec` under the budgets, the structural
/// guards, and the partial-order reduction (injections of one boundary
/// group only in strictly increasing [`Action::rank`] order, no
/// restart of a processor crashed in the same group, no heal in the
/// same group as its partition).
fn expansions(rec: &StateRec, opts: &McOptions) -> Vec<Action> {
    let mut actions = Vec::new();
    if rec.quiets < opts.depth {
        actions.push(Action::Step);
    } else {
        return actions; // at the bound: no more time, so no injections
    }
    let group_min = rec.group.iter().filter_map(|a| a.rank()).max();
    let admissible = |a: Action| group_min.is_none_or(|m| a.rank() > Some(m));

    if rec.crashes_used < opts.crashes {
        for n in opts.first_crashable()..opts.nodes as u16 {
            let a = Action::Crash(n);
            if !rec.crashed[n as usize] && admissible(a) {
                actions.push(a);
            }
        }
    }
    for n in 0..opts.nodes as u16 {
        let a = Action::Restart(n);
        if rec.crashed[n as usize] && admissible(a) && !rec.group.contains(&Action::Crash(n)) {
            actions.push(a);
        }
    }
    if rec.partitions_used < opts.partitions && !rec.partitioned {
        for cut in 1..opts.nodes as u16 {
            let a = Action::Partition(cut);
            if admissible(a) {
                actions.push(a);
            }
        }
    }
    if rec.partitioned
        && admissible(Action::Heal)
        && !rec.group.iter().any(|a| matches!(a, Action::Partition(_)))
    {
        actions.push(Action::Heal);
    }
    if rec.drops_used < opts.drops {
        for n in 0..opts.nodes as u16 {
            let a = Action::Drop(n);
            if !rec.crashed[n as usize] && admissible(a) {
                actions.push(a);
            }
        }
    }
    if rec.dups_used < opts.dups {
        for k in 0..2u8 {
            let a = Action::Dup(k);
            if admissible(a) {
                actions.push(a);
            }
        }
    }
    actions
}

/// Applies `action` to the bookkeeping of `rec`, producing the child
/// record (cluster snapshot filled in by the caller after execution).
fn child_rec(rec: &StateRec, action: Action) -> StateRec {
    let mut actions = rec.actions.clone();
    actions.push(action);
    let mut child = StateRec {
        actions,
        quiets: rec.quiets,
        crashes_used: rec.crashes_used,
        partitions_used: rec.partitions_used,
        drops_used: rec.drops_used,
        dups_used: rec.dups_used,
        crashed: rec.crashed.clone(),
        partitioned: rec.partitioned,
        group: rec.group.clone(),
        snapshot: Vec::new(),
    };
    match action {
        Action::Step => {
            child.quiets += 1;
            child.group.clear();
        }
        Action::Crash(n) => {
            child.crashes_used += 1;
            child.crashed[n as usize] = true;
            child.group.push(action);
        }
        Action::Restart(n) => {
            child.crashed[n as usize] = false;
            child.group.push(action);
        }
        Action::Partition(_) => {
            child.partitions_used += 1;
            child.partitioned = true;
            child.group.push(action);
        }
        Action::Heal => {
            child.partitioned = false;
            child.group.push(action);
        }
        Action::Drop(_) => {
            child.drops_used += 1;
            child.group.push(action);
        }
        Action::Dup(_) => {
            child.dups_used += 1;
            child.group.push(action);
        }
    }
    child
}

/// Runs the bounded exhaustive exploration. Deterministic: the same
/// options always produce the same report (state count, digest, edge
/// set), which the regression tests pin.
///
/// Exploration stops at the first violating state (breadth-first, so
/// it is a shallowest one) and returns it as a shrunk, replayable
/// [`Counterexample`].
///
/// # Panics
///
/// Panics if `nodes < 2`, `depth == 0`, or `step_ms` is not a positive
/// multiple of the 5 ms traffic tick.
pub fn explore(opts: &McOptions) -> McReport {
    assert!(opts.nodes >= 2, "model checking needs at least two nodes");
    assert!(opts.depth >= 1, "depth must be at least one quiet step");
    assert!(
        opts.step_ms > 0 && opts.step_ns().is_multiple_of(TICK.as_nanos()),
        "step_ms must be a positive multiple of the 5 ms traffic tick"
    );

    let mut report = McReport::default();
    let mut visited: HashSet<u64> = HashSet::new();
    let mut queue: VecDeque<StateRec> = VecDeque::new();

    // Root: the freshly bootstrapped operational cluster after zero
    // quiet steps.
    let mut root = StateRec {
        actions: Vec::new(),
        quiets: 0,
        crashes_used: 0,
        partitions_used: 0,
        drops_used: 0,
        dups_used: 0,
        crashed: vec![false; opts.nodes],
        partitioned: false,
        group: Vec::new(),
        snapshot: Vec::new(),
    };
    let (cluster, schedule) = run_prefix(&root.actions, opts);
    report.executions += 1;
    root.snapshot = snapshot(&cluster, opts.nodes);
    let violations = check_state(&cluster, opts, &root.snapshot);
    if !violations.is_empty() {
        report.counterexample =
            Some(make_counterexample(root.actions.clone(), violations, schedule, opts));
        return report;
    }
    let hash = hash_state(&cluster, &root);
    visited.insert(hash);
    report.states += 1;
    report.digest = report.digest.wrapping_add(hash);
    record_edges(&cluster, 0, opts, &mut report);
    queue.push_back(root);

    while let Some(rec) = queue.pop_front() {
        for action in expansions(&rec, opts) {
            let mut child = child_rec(&rec, action);
            let (cluster, schedule) = run_prefix(&child.actions, opts);
            report.executions += 1;
            let violations = check_state(&cluster, opts, &rec.snapshot);
            if !violations.is_empty() {
                report.counterexample =
                    Some(make_counterexample(child.actions, violations, schedule, opts));
                return report;
            }
            let hash = hash_state(&cluster, &child);
            if !visited.insert(hash) {
                report.pruned += 1;
                continue;
            }
            report.states += 1;
            report.digest = report.digest.wrapping_add(hash);
            report.deepest = report.deepest.max(child.quiets);
            record_edges(&cluster, child.quiets, opts, &mut report);
            child.snapshot = snapshot(&cluster, opts.nodes);
            queue.push_back(child);
        }
    }
    report
}

/// Minimizes a violating path with the chaos shrinker when the
/// violation survives a full chaos run (safety violations do: the
/// delivery logs only grow through the heal/convergence tail). For
/// mc-internal per-state invariants the full run passes and the
/// shrinker returns the path unchanged — still a valid repro of the
/// path itself.
fn make_counterexample(
    actions: Vec<Action>,
    violations: Vec<Violation>,
    schedule: ChaosSchedule,
    opts: &McOptions,
) -> Counterexample {
    let schedule = crate::chaos::shrink(&schedule, opts.oracle);
    Counterexample { actions, violations, schedule }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_exploration_passes_and_is_deterministic() {
        let mut opts = McOptions::new(2, 2);
        opts.crashes = 1;
        opts.partitions = 0;
        let a = explore(&opts);
        let b = explore(&opts);
        assert!(a.passed(), "violation: {:?}", a.counterexample.map(|c| c.violations));
        assert!(a.states > 1, "explored only the root");
        assert_eq!(a.states, b.states);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.edges, b.edges);
    }

    #[test]
    fn schedule_mapping_counts_steps_and_sorts_commands() {
        let opts = McOptions::new(3, 4);
        let actions =
            [Action::Crash(1), Action::Step, Action::Restart(1), Action::Step, Action::Step];
        let s = schedule_of(&actions, &opts);
        assert_eq!(s.steps, 3 * (400_000_000 / TICK.as_nanos()));
        assert_eq!(s.commands.len(), 2);
        assert_eq!(s.commands[0].at_ns, 0);
        assert_eq!(s.commands[1].at_ns, 400_000_000);
        assert!(s.commands.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
        // The mc path replays through the standard chaos runner.
        let report = crate::chaos::run(&s);
        assert!(report.passed(), "mc path failed chaos replay: {:?}", report.violations);
    }

    #[test]
    fn por_generates_boundary_groups_in_rank_order_only() {
        let mut opts = McOptions::new(3, 3);
        opts.crashes = 1;
        opts.partitions = 1;
        let rec = StateRec {
            actions: vec![Action::Partition(1)],
            quiets: 0,
            crashes_used: 0,
            partitions_used: 1,
            drops_used: 0,
            dups_used: 0,
            crashed: vec![false; 3],
            partitioned: true,
            group: vec![Action::Partition(1)],
            snapshot: Vec::new(),
        };
        let next = expansions(&rec, &opts);
        // Crashes rank below Partition, so the open group admits no
        // crash; Heal is blocked in the same group as its partition.
        assert!(next.iter().all(|a| !matches!(a, Action::Crash(_))), "got {next:?}");
        assert!(!next.contains(&Action::Heal), "got {next:?}");
        assert!(next.contains(&Action::Step));
    }
}
