//! The broadcast backend seam.
//!
//! Everything above the protocol engine — [`crate::SimCluster`], the
//! threaded [`crate::runtime`], the chaos harness, the model checker,
//! the CLI — drives a [`Broadcast`] implementor, not a concrete
//! protocol. The seam mirrors the sans-io surface [`TotemNode`] always
//! had: feed inputs (`submit` / `on_packet` / `on_timer`), drain
//! [`NodeOutput`]s into a caller-owned buffer, ask for the next timer
//! deadline. Anything that can speak that contract can be benched,
//! fuzzed and model-checked by the same hosts.
//!
//! Two engines implement it today:
//!
//! * [`TotemNode`] — Totem SRP over RRP, the paper's protocol;
//! * [`crate::backends::RingPaxosNode`] — a minimal Ring Paxos
//!   (coordinator + ring of acceptors, pipelined instances), the
//!   head-to-head counterpart from ROADMAP item 4.
//!
//! [`BackendNode`] is the closed sum of the two, used wherever a host
//! must pick the engine at runtime (a `ClusterConfig`, a CLI flag)
//! rather than at compile time. Enum dispatch keeps the hot paths
//! monomorphic — no vtables on the per-packet path.
//!
//! # What the trait deliberately excludes
//!
//! The seam is the *broadcast* contract only: totally ordered
//! delivery, configuration changes, fault reports, timers. It does not
//! model membership change as an operation (Totem discovers
//! membership; Ring Paxos here runs a static ensemble), does not
//! expose the token or any other protocol internal, and does not
//! promise that administrative verbs apply everywhere — `reinstate`
//! and `set_k` are RRP concepts that default to "unsupported", and
//! state corruption (`corrupt`) defaults to a no-op on backends that
//! have no self-stabilization story yet.

use bytes::Bytes;

use totem_srp::{SrpState, SubmitError};
use totem_wire::{NetworkId, NodeId, RingId, SharedPacket, Transition};

use crate::backends::RingPaxosNode;
use crate::node::{Nanos, NodeOutput, TotemNode};

/// Which broadcast engine a cluster runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BackendKind {
    /// Totem single-ring protocol over the redundant ring layer (the
    /// paper's stack; the default).
    #[default]
    Totem,
    /// Ring Paxos: coordinator + ring of acceptors, pipelined
    /// instances, learner delivery in instance order.
    RingPaxos,
}

impl BackendKind {
    /// Every selectable backend, in CLI presentation order.
    pub const ALL: [BackendKind; 2] = [BackendKind::Totem, BackendKind::RingPaxos];

    /// The canonical CLI / TOML spelling.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Totem => "totem",
            BackendKind::RingPaxos => "ring-paxos",
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for BackendKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "totem" => Ok(BackendKind::Totem),
            "ring-paxos" | "ring_paxos" | "ringpaxos" => Ok(BackendKind::RingPaxos),
            other => Err(format!("unknown backend {other:?} (expected totem or ring-paxos)")),
        }
    }
}

/// The sans-io atomic-broadcast contract every backend implements.
///
/// All methods are driven by a host that owns the clock and the wire:
/// inputs arrive with an explicit `now` in protocol nanoseconds,
/// outputs accumulate in a caller-owned buffer (so reception hot paths
/// recycle one allocation across packets), and the backend never does
/// I/O of its own.
pub trait Broadcast {
    /// This node's identifier.
    fn id(&self) -> NodeId;

    /// Begins the backend's startup protocol on a node that joins (or
    /// rejoins) the ensemble dynamically. Static members that need no
    /// startup traffic emit nothing.
    fn start_into(&mut self, now: Nanos, out: &mut Vec<NodeOutput>);

    /// Bootstrap action of the distinguished starter (Totem: the
    /// representative injects the initial token). Backends without a
    /// bootstrap artifact emit nothing.
    fn bootstrap_into(&mut self, now: Nanos, out: &mut Vec<NodeOutput>);

    /// Queues an application message for totally ordered broadcast,
    /// appending any resulting outputs to `out`.
    ///
    /// # Errors
    ///
    /// Returns [`SubmitError`] on flow-control backpressure; `out` is
    /// left untouched in that case.
    fn submit_into(
        &mut self,
        now: Nanos,
        data: Bytes,
        out: &mut Vec<NodeOutput>,
    ) -> Result<(), SubmitError>;

    /// Feeds a packet received on `net`.
    fn on_packet_into(
        &mut self,
        now: Nanos,
        net: NetworkId,
        pkt: SharedPacket,
        out: &mut Vec<NodeOutput>,
    );

    /// Fires any expired timers.
    fn on_timer_into(&mut self, now: Nanos, out: &mut Vec<NodeOutput>);

    /// The earliest instant `on_timer_into` must be called, if any
    /// timer is armed.
    fn next_deadline(&self) -> Option<Nanos>;

    /// Application messages queued locally but not yet disposed of —
    /// the saturation pump keeps this topped up, and flow control
    /// bounds it.
    fn send_queue_len(&self) -> usize;

    /// Drains the protocol state-machine transitions recorded since
    /// the last call (the conformance trace).
    fn take_transitions(&mut self) -> Vec<Transition>;

    /// Feeds the backend's protocol-visible state into a
    /// caller-supplied hasher (the model checker's per-node state-hash
    /// component).
    fn fingerprint<H: std::hash::Hasher>(&self, h: &mut H);

    /// The identity watermark a crash must carry into the next
    /// incarnation (Totem: the highest ring sequence number observed;
    /// Ring Paxos: the highest instance observed). A cold restart must
    /// start beyond it.
    fn crash_epoch(&self) -> u64;

    /// Administrative repair of a faulty network. Backends without a
    /// redundant-network plane report `false` (unsupported).
    fn reinstate(&mut self, _now: Nanos, _net: NetworkId) -> bool {
        false
    }

    /// Runtime change of the replication degree K. Backends without a
    /// redundant-network plane report `false` (unsupported).
    fn set_k(&mut self, _now: Nanos, _k: usize) -> bool {
        false
    }

    /// Applies a seeded state corruption (the self-stabilization fault
    /// plane). Backends without corruption targets ignore it.
    fn corrupt(&mut self, _target: totem_sim::CorruptionTarget, _salt: u64) {}
}

impl Broadcast for TotemNode {
    fn id(&self) -> NodeId {
        TotemNode::id(self)
    }

    fn start_into(&mut self, now: Nanos, out: &mut Vec<NodeOutput>) {
        out.extend(TotemNode::start(self, now));
    }

    fn bootstrap_into(&mut self, now: Nanos, out: &mut Vec<NodeOutput>) {
        out.extend(TotemNode::bootstrap_token(self, now));
    }

    fn submit_into(
        &mut self,
        now: Nanos,
        data: Bytes,
        out: &mut Vec<NodeOutput>,
    ) -> Result<(), SubmitError> {
        TotemNode::submit_into(self, now, data, out)
    }

    fn on_packet_into(
        &mut self,
        now: Nanos,
        net: NetworkId,
        pkt: SharedPacket,
        out: &mut Vec<NodeOutput>,
    ) {
        TotemNode::on_packet_into(self, now, net, pkt, out);
    }

    fn on_timer_into(&mut self, now: Nanos, out: &mut Vec<NodeOutput>) {
        TotemNode::on_timer_into(self, now, out);
    }

    fn next_deadline(&self) -> Option<Nanos> {
        TotemNode::next_deadline(self)
    }

    fn send_queue_len(&self) -> usize {
        self.srp().send_queue_len()
    }

    fn take_transitions(&mut self) -> Vec<Transition> {
        TotemNode::take_transitions(self)
    }

    fn fingerprint<H: std::hash::Hasher>(&self, h: &mut H) {
        TotemNode::fingerprint(self, h);
    }

    fn crash_epoch(&self) -> u64 {
        self.srp().max_ring_seq()
    }

    fn reinstate(&mut self, now: Nanos, net: NetworkId) -> bool {
        TotemNode::reinstate(self, now, net)
    }

    fn set_k(&mut self, now: Nanos, k: usize) -> bool {
        TotemNode::set_k(self, now, k)
    }

    fn corrupt(&mut self, target: totem_sim::CorruptionTarget, salt: u64) {
        TotemNode::corrupt(self, target, salt);
    }
}

/// The closed sum of the available backends: runtime backend selection
/// with enum (not virtual) dispatch.
///
/// The variants differ in size (Totem carries the full SRP+RRP state),
/// but one `BackendNode` lives per actor for the node's whole life and
/// is never moved on a packet path, so the footprint of the smaller
/// variant is irrelevant and boxing would only add a pointer chase.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum BackendNode {
    /// Totem SRP over RRP.
    Totem(TotemNode),
    /// Ring Paxos.
    RingPaxos(RingPaxosNode),
}

impl BackendNode {
    /// Which engine this is.
    pub fn kind(&self) -> BackendKind {
        match self {
            BackendNode::Totem(_) => BackendKind::Totem,
            BackendNode::RingPaxos(_) => BackendKind::RingPaxos,
        }
    }

    /// The Totem engine, if that is what this node runs.
    pub fn as_totem(&self) -> Option<&TotemNode> {
        match self {
            BackendNode::Totem(n) => Some(n),
            BackendNode::RingPaxos(_) => None,
        }
    }

    /// The Ring Paxos engine, if that is what this node runs.
    pub fn as_ring_paxos(&self) -> Option<&RingPaxosNode> {
        match self {
            BackendNode::Totem(_) => None,
            BackendNode::RingPaxos(n) => Some(n),
        }
    }

    /// Protocol state as seen by the membership observers. Ring Paxos
    /// runs a static ensemble, so it is always operational.
    pub fn srp_state(&self) -> SrpState {
        match self {
            BackendNode::Totem(n) => n.state(),
            BackendNode::RingPaxos(_) => SrpState::Operational,
        }
    }

    /// Current membership view: Totem's ring membership, or Ring
    /// Paxos's static ensemble.
    pub fn members(&self) -> Option<Vec<NodeId>> {
        match self {
            BackendNode::Totem(n) => n.srp().members().map(|m| m.to_vec()),
            BackendNode::RingPaxos(n) => Some(n.members().to_vec()),
        }
    }

    /// Which networks this node has marked faulty (Totem's RRP fault
    /// plane; Ring Paxos declares nothing faulty).
    pub fn faulty_networks(&self, networks: usize) -> Vec<bool> {
        match self {
            BackendNode::Totem(n) => n.rrp().faulty(),
            BackendNode::RingPaxos(_) => vec![false; networks],
        }
    }

    /// Ring identity, if the backend has one (Ring Paxos reports
    /// none — its "ring" is a static forwarding order, not a formed
    /// membership artifact).
    pub fn ring_id(&self) -> Option<RingId> {
        match self {
            BackendNode::Totem(n) => n.srp().ring_id(),
            BackendNode::RingPaxos(_) => None,
        }
    }

    /// Highest ordering watermark observed (Totem: ring sequence;
    /// Ring Paxos: instance id) — the identity epoch a crash carries
    /// forward.
    pub fn max_ring_seq(&self) -> u64 {
        match self {
            BackendNode::Totem(n) => n.srp().max_ring_seq(),
            BackendNode::RingPaxos(n) => n.crash_epoch(),
        }
    }

    /// Per-node SRP statistics (zeroes on non-Totem backends).
    pub fn srp_stats(&self) -> totem_srp::node::SrpStats {
        match self {
            BackendNode::Totem(n) => n.srp().stats().clone(),
            BackendNode::RingPaxos(_) => totem_srp::node::SrpStats::default(),
        }
    }

    /// Diagnostic snapshot of the RRP monitors (empty on non-Totem
    /// backends).
    pub fn monitor_report(&self) -> Vec<(totem_rrp::MonitorKind, Vec<u64>)> {
        match self {
            BackendNode::Totem(n) => n.rrp().monitor_report(),
            BackendNode::RingPaxos(_) => Vec::new(),
        }
    }
}

macro_rules! delegate {
    ($self:ident, $n:ident => $body:expr) => {
        match $self {
            BackendNode::Totem($n) => $body,
            BackendNode::RingPaxos($n) => $body,
        }
    };
}

impl Broadcast for BackendNode {
    fn id(&self) -> NodeId {
        delegate!(self, n => n.id())
    }

    fn start_into(&mut self, now: Nanos, out: &mut Vec<NodeOutput>) {
        delegate!(self, n => Broadcast::start_into(n, now, out));
    }

    fn bootstrap_into(&mut self, now: Nanos, out: &mut Vec<NodeOutput>) {
        delegate!(self, n => Broadcast::bootstrap_into(n, now, out));
    }

    fn submit_into(
        &mut self,
        now: Nanos,
        data: Bytes,
        out: &mut Vec<NodeOutput>,
    ) -> Result<(), SubmitError> {
        delegate!(self, n => Broadcast::submit_into(n, now, data, out))
    }

    fn on_packet_into(
        &mut self,
        now: Nanos,
        net: NetworkId,
        pkt: SharedPacket,
        out: &mut Vec<NodeOutput>,
    ) {
        delegate!(self, n => Broadcast::on_packet_into(n, now, net, pkt, out));
    }

    fn on_timer_into(&mut self, now: Nanos, out: &mut Vec<NodeOutput>) {
        delegate!(self, n => Broadcast::on_timer_into(n, now, out));
    }

    fn next_deadline(&self) -> Option<Nanos> {
        delegate!(self, n => Broadcast::next_deadline(n))
    }

    fn send_queue_len(&self) -> usize {
        delegate!(self, n => Broadcast::send_queue_len(n))
    }

    fn take_transitions(&mut self) -> Vec<Transition> {
        delegate!(self, n => Broadcast::take_transitions(n))
    }

    fn fingerprint<H: std::hash::Hasher>(&self, h: &mut H) {
        use std::hash::Hash as _;
        // The backend choice is part of the canonical state: two
        // worlds running different engines must never hash equal.
        (self.kind() as u8).hash(h);
        delegate!(self, n => Broadcast::fingerprint(n, h));
    }

    fn crash_epoch(&self) -> u64 {
        delegate!(self, n => Broadcast::crash_epoch(n))
    }

    fn reinstate(&mut self, now: Nanos, net: NetworkId) -> bool {
        delegate!(self, n => Broadcast::reinstate(n, now, net))
    }

    fn set_k(&mut self, now: Nanos, k: usize) -> bool {
        delegate!(self, n => Broadcast::set_k(n, now, k))
    }

    fn corrupt(&mut self, target: totem_sim::CorruptionTarget, salt: u64) {
        delegate!(self, n => Broadcast::corrupt(n, target, salt));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_kind_round_trips_through_its_name() {
        for kind in BackendKind::ALL {
            assert_eq!(kind.name().parse::<BackendKind>().unwrap(), kind);
        }
        assert!("raft".parse::<BackendKind>().is_err());
        assert_eq!("ring_paxos".parse::<BackendKind>().unwrap(), BackendKind::RingPaxos);
    }

    #[test]
    fn totem_node_speaks_the_trait() {
        use totem_rrp::{ReplicationStyle, RrpConfig};
        use totem_srp::SrpConfig;

        let members: Vec<NodeId> = (0..2).map(NodeId::new).collect();
        let mut node = BackendNode::Totem(TotemNode::new_operational(
            NodeId::new(0),
            &members,
            SrpConfig::default(),
            RrpConfig::new(ReplicationStyle::Active, 2),
            0,
        ));
        assert_eq!(node.kind(), BackendKind::Totem);
        assert_eq!(Broadcast::id(&node), NodeId::new(0));
        assert!(node.as_totem().is_some());
        assert!(node.as_ring_paxos().is_none());
        let mut out = Vec::new();
        Broadcast::submit_into(&mut node, 0, Bytes::from_static(b"x"), &mut out).unwrap();
        Broadcast::bootstrap_into(&mut node, 0, &mut out);
        assert!(
            out.iter().any(|o| matches!(o, NodeOutput::Send { .. })),
            "bootstrap with a queued message must put frames on the wire"
        );
        assert_eq!(node.srp_state(), SrpState::Operational);
        assert!(node.members().is_some());
    }
}
