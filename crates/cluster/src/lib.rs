//! High-level API for the Totem redundant ring protocol.
//!
//! This crate composes the two protocol layers —
//! [`totem_srp::SrpNode`] (ordering, reliability, membership) below
//! the application and [`totem_rrp::RrpLayer`] (redundant networks)
//! below the SRP — into a single [`TotemNode`] state machine, and
//! provides two hosts for it:
//!
//! * [`SimCluster`] — a whole cluster inside the deterministic
//!   discrete-event simulator (`totem-sim`): the substrate for every
//!   test and for the paper's performance figures;
//! * [`runtime`] — a threaded real-time host driving one node over a
//!   real [`totem_transport::Transport`] (UDP or in-memory).
//!
//! # Example: four nodes, two networks, one network dies
//!
//! ```
//! use totem_cluster::{ClusterConfig, SimCluster};
//! use totem_rrp::ReplicationStyle;
//! use totem_sim::{FaultCommand, SimTime};
//! use totem_wire::NetworkId;
//!
//! let cfg = ClusterConfig::new(4, ReplicationStyle::Active);
//! let mut cluster = SimCluster::new(cfg);
//!
//! // Warm up, then kill network 0 entirely.
//! cluster.run_until(SimTime::from_millis(50));
//! cluster.schedule_fault(
//!     SimTime::from_millis(50),
//!     FaultCommand::NetworkDown { net: NetworkId::new(0), down: true },
//! );
//!
//! // The application keeps working through network 1.
//! cluster.submit(0, bytes::Bytes::from_static(b"still here"));
//! cluster.run_until(SimTime::from_secs(3));
//! for node in 0..4 {
//!     assert!(cluster
//!         .delivered(node)
//!         .iter()
//!         .any(|d| &d.data[..] == b"still here"));
//! }
//! // ...and the fault was reported to the operator on every node.
//! assert!((0..4).all(|n| !cluster.faults(n).is_empty()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod backends;
pub mod chaos;
pub mod mc;
pub mod node;
pub mod runtime;
pub mod scenarios;
pub mod sim_cluster;

pub use backend::{BackendKind, BackendNode, Broadcast};
pub use backends::RingPaxosNode;
pub use chaos::{ChaosReport, ChaosSchedule, ScheduledCommand};
pub use mc::{Counterexample, McOptions, McReport};
pub use node::{NodeOutput, TotemNode};
pub use runtime::{
    collect_deliveries, spawn_node, spawn_node_with, PollMode, RuntimeConfig, RuntimeEvent,
    RuntimeHandle, StartMode,
};
pub use scenarios::{run_all, ScenarioReport};
pub use sim_cluster::{ClusterConfig, ClusterCounters, SimCluster};
