//! A minimal sans-io Ring Paxos engine (Marandi et al., DSN 2010).
//!
//! The shape is the paper's: one **coordinator** sequences client
//! values into consensus **instances** and multicasts `Accept`s; the
//! acceptors form a logical **ring** (members in id order) and
//! acknowledge along it, so one `RingAck` travelling the ring carries
//! everyone's vote; the **last** acceptor closes the instance by
//! multicasting the `Decision` (value included, so learners need no
//! separate value channel); learners deliver strictly in instance
//! order. Instances are pipelined behind a bounded in-flight window.
//! The simulator's shared-medium broadcast stands in for IP multicast.
//!
//! # Scope — and what is deliberately out of it
//!
//! This is the *steady-state* protocol plus the loss-recovery plumbing
//! a chaos run needs (retry timers, duplicate suppression, gap repair
//! via [`RingPaxosMsg::LearnReq`]). The coordinator is **fixed**: node
//! `members[0]`, no failover, no Paxos phase 1. A coordinator crash
//! therefore stalls the ensemble until that same node restarts — the
//! chaos harness retargets coordinator crashes for this backend, and
//! the comparison in EXPERIMENTS.md calls the asymmetry out. Ballots
//! exist (they carry the coordinator's incarnation so stale traffic
//! from a previous life is discarded) but are never contended.
//!
//! Everything is sans-io in the house style: inputs arrive with an
//! explicit `now`, outputs accumulate in a caller-owned buffer, and
//! the engine self-applies its own multicasts because the simulated
//! medium — like real multicast sockets configured without loopback —
//! does not echo a frame back to its sender.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::hash::{Hash, Hasher};

use bytes::Bytes;

use totem_srp::{Delivered, SubmitError};
use totem_wire::{
    Ballot, InstanceId, NetworkId, NodeId, Packet, Proposal, RingId, RingPaxosMsg, Seq,
    SerialOrdKey, SharedPacket, Transition,
};

use crate::backend::Broadcast;
use crate::node::{Nanos, NodeOutput};

/// All Ring Paxos traffic travels on one network: the first. The
/// redundant-network plane is a Totem/RRP concept this backend does
/// not use (a head-to-head must not quietly inherit RRP's masking).
const NET: NetworkId = NetworkId::new(0);

/// In-flight (opened, undecided) instance window at the coordinator.
const WINDOW: usize = 32;

/// Proposer-side bound on unacknowledged submissions; mirrors the SRP
/// send-queue limit so the saturation pump exerts the same pressure on
/// both backends.
const QUEUE_LIMIT: usize = 64;

/// Retry / gap-repair tick.
const TICK_NS: Nanos = 5_000_000;

/// First retransmit backoff for an unacknowledged `Propose` or an
/// undecided open instance; doubles per retry up to [`RETRY_MAX_NS`].
/// Without a backoff a saturated proposer re-pushes its whole
/// outstanding queue every tick — a retransmission storm that drowns
/// the shared medium long before anything is actually stuck (the
/// pipeline keeps every queue full in steady state, so "outstanding"
/// does not mean "lost").
const RETRY_NS: Nanos = 8 * TICK_NS;

/// Retransmit backoff ceiling.
const RETRY_MAX_NS: Nanos = 128 * TICK_NS;

/// How long a delivery gap may stand before the learner asks the
/// coordinator to fill it.
const GAP_NS: Nanos = 10_000_000;

/// A submitted value awaiting its decision, with the retransmit
/// clock that paces how often it is re-pushed at the coordinator.
#[derive(Debug, Clone)]
struct PendingReq {
    payload: Bytes,
    /// When the `Propose` last went out.
    sent: Nanos,
    /// Current retransmit backoff (doubles per retry, capped).
    backoff: Nanos,
}

/// One node of the Ring Paxos ensemble. Every node is proposer,
/// acceptor and learner; `members[0]` additionally coordinates.
#[derive(Debug)]
pub struct RingPaxosNode {
    id: NodeId,
    /// The static ensemble, in id order — also the acceptor ring.
    members: Vec<NodeId>,
    /// This node's position on the ring.
    pos: usize,
    /// The ballot this node stamps on coordinator traffic: its
    /// incarnation, so a rebooted coordinator outranks its past self.
    ballot: Ballot,
    /// This node's incarnation (restamped on proposals so the
    /// coordinator can tell a rebooted proposer's fresh request
    /// counter from its previous life's).
    inc: u64,

    // --- proposer ---
    /// Next request number to assign (from 1, per incarnation).
    next_req: u64,
    /// Submitted values awaiting a decision, in request order, each
    /// with its retransmit clock (not part of the observable state:
    /// timestamps are excluded from [`Broadcast::hash_state`]).
    outstanding: BTreeMap<u64, PendingReq>,

    // --- coordinator (only populated on `members[0]`) ---
    /// Next instance to open.
    next_iid: InstanceId,
    /// Per-proposer next expected request number (in-order intake).
    expected_req: BTreeMap<(NodeId, u64), u64>,
    /// Out-of-order proposals parked until their predecessors arrive.
    parked: BTreeMap<(NodeId, u64), BTreeMap<u64, Proposal>>,
    /// In-order proposals waiting for a window slot.
    ready: VecDeque<Proposal>,
    /// Opened, undecided instances.
    open: BTreeMap<SerialOrdKey, Proposal>,
    /// Retransmit clock per open instance: when its `Accept` last
    /// went out and the current backoff (excluded from
    /// [`Broadcast::hash_state`], like every timestamp here).
    accept_retry: BTreeMap<SerialOrdKey, (Nanos, Nanos)>,
    /// Which instance each request was sequenced into (duplicate
    /// `Propose` suppression and re-serve).
    assigned: BTreeMap<(NodeId, u64, u64), InstanceId>,
    /// Every decision this node has learned, kept forever so any
    /// `LearnReq` can be served from it (every node keeps one: the
    /// coordinator itself may miss the `Decision` multicast, and its
    /// repair request can then be answered by any peer that saw it).
    decision_log: BTreeMap<SerialOrdKey, Option<Proposal>>,

    // --- acceptor ---
    /// Serially-highest *coordinator* ballot seen; older coordinator
    /// lives are ignored. Starts at zero on non-coordinators — it
    /// tracks the coordinator's incarnation, not this node's, so a
    /// reborn acceptor must not outrank a coordinator that never
    /// crashed.
    max_ballot: Ballot,
    /// Accepted but not yet decided instances.
    accepted: BTreeMap<SerialOrdKey, Proposal>,
    /// Instances whose predecessor ack has arrived.
    pred_acked: BTreeSet<SerialOrdKey>,
    /// Instances this acceptor has already acked / decided. A
    /// retransmitted `Accept` clears the entry first: a retry means
    /// the ring stalled, so the ack (or the closing `Decision`) must
    /// travel again — the original may have been lost.
    forwarded: BTreeSet<SerialOrdKey>,

    // --- learner ---
    /// Decisions not yet delivered (`None` = hole filled with a nop).
    decided: BTreeMap<SerialOrdKey, Option<Proposal>>,
    /// Next instance to deliver.
    next_deliver: InstanceId,
    /// Requests already delivered — a re-sequenced duplicate (post
    /// coordinator amnesia) is skipped, not re-delivered.
    delivered_reqs: BTreeSet<(NodeId, u64, u64)>,
    /// Serially-highest instance observed anywhere in the traffic
    /// (gap detection: delivery is behind whenever this outruns
    /// `next_deliver`).
    max_seen: InstanceId,
    /// When the current head-of-line delivery gap was first seen.
    gap_since: Option<Nanos>,

    // --- machinery ---
    transitions: Vec<Transition>,
    deadline: Option<Nanos>,
}

impl RingPaxosNode {
    /// A node of the static ensemble `members`.
    ///
    /// `incarnation` stamps this node's proposals (and, on the
    /// coordinator, its ballot); `epoch` is the crash watermark a
    /// restart carries in ([`Broadcast::crash_epoch`] of the previous
    /// life) — delivery and instance numbering resume strictly beyond
    /// it. A fresh boot passes `epoch = 0`.
    pub fn new(id: NodeId, members: &[NodeId], incarnation: u64, epoch: u64) -> Self {
        let mut members: Vec<NodeId> = members.to_vec();
        members.sort_unstable();
        members.dedup();
        let pos = members.iter().position(|&m| m == id).expect("node must be a member");
        let horizon = InstanceId::new(epoch);
        RingPaxosNode {
            id,
            pos,
            ballot: Ballot::new(incarnation),
            inc: incarnation,
            next_req: 1,
            outstanding: BTreeMap::new(),
            next_iid: horizon.next(),
            expected_req: BTreeMap::new(),
            parked: BTreeMap::new(),
            ready: VecDeque::new(),
            open: BTreeMap::new(),
            accept_retry: BTreeMap::new(),
            assigned: BTreeMap::new(),
            decision_log: BTreeMap::new(),
            max_ballot: if pos == 0 { Ballot::new(incarnation) } else { Ballot::ZERO },
            accepted: BTreeMap::new(),
            pred_acked: BTreeSet::new(),
            forwarded: BTreeSet::new(),
            decided: BTreeMap::new(),
            next_deliver: horizon.next(),
            delivered_reqs: BTreeSet::new(),
            max_seen: horizon,
            gap_since: None,
            transitions: Vec::new(),
            deadline: None,
            members,
        }
    }

    /// The static ensemble, in ring order.
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// Whether this node is the (fixed) coordinator.
    pub fn is_coordinator(&self) -> bool {
        self.pos == 0
    }

    /// Opened-but-undecided instances at the coordinator (zero
    /// elsewhere); exposed for tests and diagnostics.
    pub fn open_instances(&self) -> usize {
        self.open.len()
    }

    fn coordinator(&self) -> NodeId {
        self.members[0]
    }

    /// The fixed ring identity stamped on deliveries: led by the
    /// coordinator, sequence 0 (the ensemble never reforms).
    fn ring_id(&self) -> RingId {
        RingId::new(self.coordinator(), 0)
    }

    fn note_transition(
        &mut self,
        machine: &'static str,
        from: &'static str,
        event: &'static str,
        to: &'static str,
    ) {
        self.transitions.push(Transition { machine, from, event, to });
    }

    /// The coordinator pipeline machine's current state name.
    fn pipeline_state(&self) -> &'static str {
        if self.open.is_empty() {
            "Idle"
        } else {
            "Open"
        }
    }

    fn observe(&mut self, iid: InstanceId) {
        self.max_seen = self.max_seen.serial_max(iid);
    }

    /// Emits `msg` to every peer on the shared medium and applies it
    /// locally (the medium does not echo to the sender).
    fn multicast(&mut self, now: Nanos, msg: RingPaxosMsg, out: &mut Vec<NodeOutput>) {
        out.push(NodeOutput::Send {
            net: NET,
            dst: None,
            pkt: SharedPacket::new(Packet::RingPaxos(msg.clone())),
        });
        self.handle(now, msg, out);
    }

    fn unicast(&mut self, now: Nanos, dst: NodeId, msg: RingPaxosMsg, out: &mut Vec<NodeOutput>) {
        if dst == self.id {
            self.handle(now, msg, out);
        } else {
            out.push(NodeOutput::Send {
                net: NET,
                dst: Some(dst),
                pkt: SharedPacket::new(Packet::RingPaxos(msg)),
            });
        }
    }

    fn handle(&mut self, now: Nanos, msg: RingPaxosMsg, out: &mut Vec<NodeOutput>) {
        match msg {
            RingPaxosMsg::Propose(p) => self.on_propose(now, p, out),
            RingPaxosMsg::Accept { iid, ballot, value } => {
                self.on_accept(now, iid, ballot, value, out);
            }
            RingPaxosMsg::RingAck { iid, ballot, from } => {
                self.on_ring_ack(now, iid, ballot, from, out);
            }
            RingPaxosMsg::Decision { iid, nop, value } => {
                self.on_decision(now, iid, nop, value, out);
            }
            RingPaxosMsg::LearnReq { from, iid } => self.on_learn_req(now, from, iid, out),
        }
        self.rearm(now);
    }

    // --- coordinator ---

    fn on_propose(&mut self, now: Nanos, p: Proposal, out: &mut Vec<NodeOutput>) {
        if !self.is_coordinator() {
            return;
        }
        let key = (p.sender, p.inc);
        let expected = *self.expected_req.get(&key).unwrap_or(&1);
        if p.req < expected {
            // A retransmission of a request already sequenced: re-serve
            // whatever stage it is in rather than sequencing it twice.
            if let Some(&iid) = self.assigned.get(&(p.sender, p.inc, p.req)) {
                if let Some(decision) = self.decision_log.get(&iid.ord_key()).cloned() {
                    let nop = decision.is_none();
                    let value = decision.unwrap_or_else(Self::nop_value);
                    self.multicast(now, RingPaxosMsg::Decision { iid, nop, value }, out);
                } else if let Some(value) = self.open.get(&iid.ord_key()).cloned() {
                    let ballot = self.ballot;
                    self.multicast(now, RingPaxosMsg::Accept { iid, ballot, value }, out);
                }
            }
            return;
        }
        if p.req > expected {
            // Ahead of its predecessors (reordering or loss): park it;
            // intake stays strictly in per-proposer request order so
            // FIFO survives sequencing.
            self.parked.entry(key).or_default().insert(p.req, p);
            return;
        }
        let mut next = expected + 1;
        self.ready.push_back(p);
        // Unpark any successors this arrival released.
        if let Some(run) = self.parked.get_mut(&key) {
            while let Some(q) = run.remove(&next) {
                self.ready.push_back(q);
                next += 1;
            }
            if run.is_empty() {
                self.parked.remove(&key);
            }
        }
        self.expected_req.insert(key, next);
        self.fill_window(now, out);
    }

    /// Opens ready proposals into instances while the in-flight window
    /// has room.
    fn fill_window(&mut self, now: Nanos, out: &mut Vec<NodeOutput>) {
        while self.open.len() < WINDOW {
            let Some(p) = self.ready.pop_front() else { break };
            let iid = self.next_iid;
            self.next_iid = self.next_iid.next();
            self.observe(iid);
            if self.open.is_empty() {
                self.note_transition("ring-paxos", "Idle", "Propose", "Open");
            } else {
                self.note_transition("ring-paxos", "Open", "Pipeline", "Open");
            }
            self.open.insert(iid.ord_key(), p.clone());
            self.accept_retry.insert(iid.ord_key(), (now, RETRY_NS));
            self.assigned.insert((p.sender, p.inc, p.req), iid);
            let ballot = self.ballot;
            self.multicast(now, RingPaxosMsg::Accept { iid, ballot, value: p }, out);
        }
    }

    fn nop_value() -> Proposal {
        Proposal { sender: NodeId::new(0), inc: 0, req: 0, payload: Bytes::new() }
    }

    fn on_learn_req(
        &mut self,
        now: Nanos,
        _from: NodeId,
        iid: InstanceId,
        out: &mut Vec<NodeOutput>,
    ) {
        if self.decision_log.contains_key(&iid.ord_key()) {
            // Any node that saw the decision can serve a repair (the
            // requester may be the coordinator itself, if it missed
            // the Decision multicast). Serve the requested instance
            // plus a run of known successors so a reborn learner
            // catches up a burst per gap tick, not one instance.
            self.note_hole_fill();
            let mut at = iid;
            for _ in 0..8 {
                let Some(decision) = self.decision_log.get(&at.ord_key()).cloned() else {
                    break;
                };
                let nop = decision.is_none();
                let value = decision.unwrap_or_else(Self::nop_value);
                self.multicast(now, RingPaxosMsg::Decision { iid: at, nop, value }, out);
                at = at.next();
            }
            return;
        }
        if !self.is_coordinator() {
            return; // nothing known here; the coordinator will answer
        }
        if let Some(value) = self.open.get(&iid.ord_key()).cloned() {
            // Still in flight: drive the ring again instead of
            // deciding over its head.
            self.note_hole_fill();
            self.accept_retry.insert(iid.ord_key(), (now, RETRY_NS));
            let ballot = self.ballot;
            self.multicast(now, RingPaxosMsg::Accept { iid, ballot, value }, out);
        } else if self.next_iid.follows(iid) {
            // Opened by a previous life of this coordinator and lost
            // with it: fill the hole with a nop so delivery can move.
            self.note_hole_fill();
            self.multicast(
                now,
                RingPaxosMsg::Decision { iid, nop: true, value: Self::nop_value() },
                out,
            );
        }
        // An iid at or beyond next_iid is a confused learner; ignore.
    }

    fn note_hole_fill(&mut self) {
        if self.pipeline_state() == "Idle" {
            self.note_transition("ring-paxos", "Idle", "HoleFill", "Idle");
        } else {
            self.note_transition("ring-paxos", "Open", "HoleFill", "Open");
        }
    }

    // --- acceptor ---

    fn on_accept(
        &mut self,
        now: Nanos,
        iid: InstanceId,
        ballot: Ballot,
        value: Proposal,
        out: &mut Vec<NodeOutput>,
    ) {
        if !ballot.at_or_after(self.max_ballot) {
            return; // stale coordinator life
        }
        self.max_ballot = ballot;
        self.observe(iid);
        if self.decided.contains_key(&iid.ord_key()) || self.next_deliver.follows(iid) {
            return; // already decided here
        }
        // A fresh Accept is not in `forwarded`; a retransmitted one
        // means the coordinator is still waiting, so whatever this
        // acceptor sent last time was lost — send it again.
        self.forwarded.remove(&iid.ord_key());
        self.accepted.insert(iid.ord_key(), value);
        self.advance_ring(now, iid, out);
    }

    fn on_ring_ack(
        &mut self,
        now: Nanos,
        iid: InstanceId,
        ballot: Ballot,
        from: NodeId,
        out: &mut Vec<NodeOutput>,
    ) {
        if !ballot.at_or_after(self.max_ballot) {
            return;
        }
        self.max_ballot = ballot;
        self.observe(iid);
        if self.pos == 0 || self.members[self.pos - 1] != from {
            return; // not my predecessor's ack; not mine to forward
        }
        self.pred_acked.insert(iid.ord_key());
        if self.accepted.contains_key(&iid.ord_key()) {
            self.advance_ring(now, iid, out);
        }
    }

    /// Moves the ring forward for `iid` if this acceptor's turn has
    /// come: position 1's vote is unlocked by the `Accept` itself (the
    /// coordinator's vote is implicit in sending it), later positions
    /// need their predecessor's `RingAck`; the last position closes the
    /// instance by multicasting the `Decision`.
    fn advance_ring(&mut self, now: Nanos, iid: InstanceId, out: &mut Vec<NodeOutput>) {
        let last = self.members.len() - 1;
        if self.pos == 0 && last != 0 {
            return; // the coordinator's vote travels inside the Accept
        }
        let turn = self.pos <= 1 || self.pred_acked.contains(&iid.ord_key());
        if !turn || self.forwarded.contains(&iid.ord_key()) {
            return;
        }
        self.forwarded.insert(iid.ord_key());
        if self.pos == last {
            let value = self.accepted.get(&iid.ord_key()).cloned().expect("accepted before decide");
            self.note_transition("ring-paxos-ring", "Steady", "LastDecide", "Steady");
            self.multicast(now, RingPaxosMsg::Decision { iid, nop: false, value }, out);
        } else {
            let ballot = self.max_ballot;
            let next = self.members[self.pos + 1];
            self.note_transition("ring-paxos-ring", "Steady", "RingForward", "Steady");
            self.unicast(now, next, RingPaxosMsg::RingAck { iid, ballot, from: self.id }, out);
        }
    }

    // --- learner ---

    fn on_decision(
        &mut self,
        now: Nanos,
        iid: InstanceId,
        nop: bool,
        value: Proposal,
        out: &mut Vec<NodeOutput>,
    ) {
        self.observe(iid);
        let decision = if nop { None } else { Some(value) };
        self.decision_log.entry(iid.ord_key()).or_insert_with(|| decision.clone());
        self.accept_retry.remove(&iid.ord_key());
        if self.is_coordinator()
            && self.open.remove(&iid.ord_key()).is_some()
            && self.open.is_empty()
        {
            self.note_transition("ring-paxos", "Open", "Drained", "Idle");
        }
        // Our own submission came home: stop retrying it.
        if let Some(p) = decision.as_ref() {
            if p.sender == self.id && p.inc == self.inc {
                self.outstanding.remove(&p.req);
            }
        }
        if self.next_deliver.follows(iid) {
            return; // already delivered (retransmitted decision)
        }
        self.decided.insert(iid.ord_key(), decision);
        self.accepted.remove(&iid.ord_key());
        self.pred_acked.remove(&iid.ord_key());
        self.forwarded.remove(&iid.ord_key());
        self.deliver_in_order(out);
        if self.is_coordinator() {
            self.fill_window(now, out);
        }
    }

    fn deliver_in_order(&mut self, out: &mut Vec<NodeOutput>) {
        while let Some(decision) = self.decided.remove(&self.next_deliver.ord_key()) {
            let iid = self.next_deliver;
            self.next_deliver = self.next_deliver.next();
            self.gap_since = None;
            // A nop hole-fill occupies the instance but delivers
            // nothing; a request the (amnesiac) coordinator sequenced
            // twice is delivered at its first instance only.
            let Some(p) = decision else { continue };
            if !self.delivered_reqs.insert((p.sender, p.inc, p.req)) {
                continue;
            }
            out.push(NodeOutput::Deliver(Delivered {
                sender: p.sender,
                seq: Seq::new(iid.as_u64()),
                ring: self.ring_id(),
                data: p.payload,
            }));
        }
    }

    /// Whether delivery is stuck behind a missing decision.
    fn delivery_gap(&self) -> bool {
        self.max_seen.at_or_after(self.next_deliver)
            && !self.decided.contains_key(&self.next_deliver.ord_key())
    }

    // --- timers ---

    fn rearm(&mut self, now: Nanos) {
        let busy = !self.outstanding.is_empty()
            || !self.open.is_empty()
            || !self.ready.is_empty()
            || !self.decided.is_empty()
            || self.delivery_gap();
        if !busy {
            self.deadline = None;
        } else {
            // Arm a fresh tick, but never push back one already armed:
            // rearm runs on every event, and under a steady inbound
            // stream (peers retrying every tick) a sliding deadline
            // would be postponed forever — the retry timer this node
            // itself needs to unwedge the ring would starve.
            let next = now + TICK_NS;
            self.deadline = Some(self.deadline.filter(|&d| d > now).map_or(next, |d| d.min(next)));
        }
        if self.delivery_gap() {
            self.gap_since.get_or_insert(now);
        } else {
            self.gap_since = None;
        }
    }

    fn fire(&mut self, now: Nanos, out: &mut Vec<NodeOutput>) {
        // Proposer: re-push unacknowledged requests whose backoff has
        // expired, oldest first (duplicates are suppressed at the
        // coordinator). The backoff doubles per retry so a healthily
        // loaded pipeline — where "outstanding" just means "queued" —
        // is not drowned in retransmissions.
        let due: Vec<u64> = self
            .outstanding
            .iter()
            .filter(|(_, r)| now.saturating_sub(r.sent) >= r.backoff)
            .take(8)
            .map(|(&req, _)| req)
            .collect();
        for req in due {
            let r = self.outstanding.get_mut(&req).expect("selected above");
            r.sent = now;
            r.backoff = (r.backoff * 2).min(RETRY_MAX_NS);
            let p = Proposal { sender: self.id, inc: self.inc, req, payload: r.payload.clone() };
            self.unicast(now, self.coordinator(), RingPaxosMsg::Propose(p), out);
        }
        // Coordinator: drive the ring again for undecided instances
        // whose backoff has expired.
        if self.is_coordinator() {
            let stalled: Vec<(InstanceId, Proposal)> = self
                .open
                .iter()
                .filter(|(k, _)| {
                    self.accept_retry
                        .get(k)
                        .is_none_or(|&(sent, backoff)| now.saturating_sub(sent) >= backoff)
                })
                .take(8)
                .map(|(k, p)| (InstanceId::new(k.as_u64()), p.clone()))
                .collect();
            if !stalled.is_empty() {
                self.note_transition("ring-paxos", "Open", "Retry", "Open");
            }
            for (iid, value) in stalled {
                let e = self.accept_retry.entry(iid.ord_key()).or_insert((now, RETRY_NS));
                e.0 = now;
                e.1 = (e.1 * 2).min(RETRY_MAX_NS);
                let ballot = self.ballot;
                self.multicast(now, RingPaxosMsg::Accept { iid, ballot, value }, out);
            }
        }
        // Learner: a gap that outlived the grace period gets reported
        // for repair — to the coordinator, whose log is authoritative;
        // or, when the *coordinator* is the one with the gap (it
        // missed a Decision multicast), to everyone, since any peer
        // that saw the decision can re-serve it.
        if self.delivery_gap() {
            if let Some(since) = self.gap_since {
                if now.saturating_sub(since) >= GAP_NS {
                    self.gap_since = Some(now);
                    let iid = self.next_deliver;
                    self.note_transition("ring-paxos-ring", "Steady", "GapRepair", "Steady");
                    let from = self.id;
                    if self.is_coordinator() {
                        self.multicast(now, RingPaxosMsg::LearnReq { from, iid }, out);
                    } else {
                        self.unicast(
                            now,
                            self.coordinator(),
                            RingPaxosMsg::LearnReq { from, iid },
                            out,
                        );
                    }
                }
            }
        }
        self.rearm(now);
    }
}

impl Broadcast for RingPaxosNode {
    fn id(&self) -> NodeId {
        self.id
    }

    fn start_into(&mut self, _now: Nanos, _out: &mut Vec<NodeOutput>) {
        // Static ensemble: nothing to announce.
    }

    fn bootstrap_into(&mut self, _now: Nanos, _out: &mut Vec<NodeOutput>) {
        // No bootstrap artifact (the token is a Totem concept).
    }

    fn submit_into(
        &mut self,
        now: Nanos,
        data: Bytes,
        out: &mut Vec<NodeOutput>,
    ) -> Result<(), SubmitError> {
        if self.outstanding.len() >= QUEUE_LIMIT {
            return Err(SubmitError { limit: QUEUE_LIMIT });
        }
        let req = self.next_req;
        self.next_req += 1;
        self.outstanding
            .insert(req, PendingReq { payload: data.clone(), sent: now, backoff: RETRY_NS });
        let p = Proposal { sender: self.id, inc: self.inc, req, payload: data };
        self.unicast(now, self.coordinator(), RingPaxosMsg::Propose(p), out);
        self.rearm(now);
        Ok(())
    }

    fn on_packet_into(
        &mut self,
        now: Nanos,
        net: NetworkId,
        pkt: SharedPacket,
        out: &mut Vec<NodeOutput>,
    ) {
        if net != NET {
            return; // single-network protocol: other planes are noise
        }
        if let Packet::RingPaxos(msg) = pkt.into_packet() {
            self.handle(now, msg, out);
        }
    }

    fn on_timer_into(&mut self, now: Nanos, out: &mut Vec<NodeOutput>) {
        match self.deadline {
            Some(d) if now >= d => self.fire(now, out),
            _ => {}
        }
    }

    fn next_deadline(&self) -> Option<Nanos> {
        self.deadline
    }

    fn send_queue_len(&self) -> usize {
        self.outstanding.len()
    }

    fn take_transitions(&mut self) -> Vec<Transition> {
        std::mem::take(&mut self.transitions)
    }

    fn fingerprint<H: Hasher>(&self, h: &mut H) {
        self.id.hash(h);
        self.ballot.hash(h);
        self.max_ballot.hash(h);
        self.inc.hash(h);
        self.next_req.hash(h);
        self.next_iid.hash(h);
        self.next_deliver.hash(h);
        self.max_seen.hash(h);
        self.outstanding.len().hash(h);
        for (req, pending) in &self.outstanding {
            req.hash(h);
            pending.payload.len().hash(h);
        }
        self.open.len().hash(h);
        for k in self.open.keys() {
            k.as_u64().hash(h);
        }
        self.accepted.len().hash(h);
        for k in self.accepted.keys() {
            k.as_u64().hash(h);
        }
        self.decided.len().hash(h);
        for (k, v) in &self.decided {
            k.as_u64().hash(h);
            v.is_some().hash(h);
        }
        self.delivered_reqs.len().hash(h);
    }

    fn crash_epoch(&self) -> u64 {
        // The *delivered* watermark, not `max_seen`: a reboot resumes
        // delivery exactly where the dead incarnation stopped, so it
        // redelivers nothing yet still acks (and later catches up on)
        // every instance the old life saw but never delivered. Seeding
        // it from `max_seen` would make the reborn acceptor refuse
        // those in-flight instances as "already delivered", wedging
        // the ring at its position forever. The coordinator would need
        // `max_seen` here to avoid re-numbering collisions — but a
        // coordinator crash is outside this backend's scope (fixed
        // coordinator, no failover) and the chaos/mc harnesses never
        // inject one.
        self.next_deliver.as_u64().wrapping_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ensemble(n: u16) -> Vec<RingPaxosNode> {
        let members: Vec<NodeId> = (0..n).map(NodeId::new).collect();
        members.iter().map(|&id| RingPaxosNode::new(id, &members, 0, 0)).collect()
    }

    /// Routes queued `Send` outputs between the nodes until the wire
    /// falls silent, returning deliveries per node.
    fn pump(nodes: &mut [RingPaxosNode], out: Vec<NodeOutput>) -> Vec<Vec<Delivered>> {
        let mut delivered: Vec<Vec<Delivered>> = vec![Vec::new(); nodes.len()];
        let mut wire: VecDeque<(usize, NodeOutput)> = out.into_iter().map(|o| (0, o)).collect();
        let mut guard = 0;
        while let Some((src, o)) = wire.pop_front() {
            guard += 1;
            assert!(guard < 100_000, "wire never drained");
            match o {
                NodeOutput::Send { dst, pkt, .. } => {
                    let targets: Vec<usize> = match dst {
                        Some(d) => vec![d.as_u16() as usize],
                        None => (0..nodes.len()).filter(|&i| i != src).collect(),
                    };
                    for t in targets {
                        let mut out = Vec::new();
                        nodes[t].on_packet_into(0, NET, pkt.clone(), &mut out);
                        for x in out {
                            match x {
                                NodeOutput::Deliver(d) => delivered[t].push(d),
                                other => wire.push_back((t, other)),
                            }
                        }
                    }
                }
                NodeOutput::Deliver(d) => delivered[src].push(d),
                _ => {}
            }
        }
        delivered
    }

    fn submit(nodes: &mut [RingPaxosNode], who: usize, data: &'static [u8]) -> Vec<NodeOutput> {
        let mut out = Vec::new();
        nodes[who].submit_into(0, Bytes::from_static(data), &mut out).unwrap();
        out.into_iter().collect()
    }

    #[test]
    fn three_nodes_agree_on_one_value() {
        let mut nodes = ensemble(3);
        let out = submit(&mut nodes, 1, b"v-1");
        let delivered = pump(&mut nodes, out);
        for (i, d) in delivered.iter().enumerate() {
            assert_eq!(d.len(), 1, "node {i} must deliver exactly once");
            assert_eq!(d[0].data.as_ref(), b"v-1");
            assert_eq!(d[0].sender, NodeId::new(1));
            assert_eq!(d[0].seq, Seq::new(1));
        }
    }

    #[test]
    fn two_node_ring_decides_without_acks() {
        // n = 2: the single non-coordinator acceptor is also the last;
        // the Accept alone closes the instance.
        let mut nodes = ensemble(2);
        let out = submit(&mut nodes, 0, b"x-1");
        let delivered = pump(&mut nodes, out);
        assert!(delivered.iter().all(|d| d.len() == 1));
    }

    #[test]
    fn pipelined_submissions_deliver_in_instance_order_everywhere() {
        let mut nodes = ensemble(4);
        let mut out = Vec::new();
        out.extend(submit(&mut nodes, 1, b"a-1"));
        out.extend(submit(&mut nodes, 2, b"b-1"));
        out.extend(submit(&mut nodes, 1, b"a-2"));
        let delivered = pump(&mut nodes, out);
        let orders: Vec<Vec<&[u8]>> =
            delivered.iter().map(|d| d.iter().map(|m| m.data.as_ref()).collect()).collect();
        for o in &orders {
            assert_eq!(o.len(), 3);
            assert_eq!(o, &orders[0], "total order must be identical on every node");
        }
        // FIFO per sender survives sequencing.
        let a: Vec<&[u8]> = orders[0].iter().copied().filter(|p| p.starts_with(b"a-")).collect();
        assert_eq!(a, vec![b"a-1".as_ref(), b"a-2".as_ref()]);
    }

    #[test]
    fn duplicate_propose_is_sequenced_once() {
        let mut nodes = ensemble(3);
        let out = submit(&mut nodes, 1, b"v-1");
        // The proposer's retry timer re-sends the same request.
        let dup = {
            let mut out2 = Vec::new();
            let p = Proposal {
                sender: NodeId::new(1),
                inc: 0,
                req: 1,
                payload: Bytes::from_static(b"v-1"),
            };
            nodes[1].unicast(0, NodeId::new(0), RingPaxosMsg::Propose(p), &mut out2);
            out2
        };
        let mut all = out;
        all.extend(dup);
        let mut wire: Vec<(usize, NodeOutput)> = Vec::new();
        for o in all {
            wire.push((1, o));
        }
        // Re-route by hand: both the original and the duplicate go to
        // the coordinator, which must open exactly one instance.
        let mut delivered: Vec<Vec<Delivered>> = vec![Vec::new(); 3];
        let mut queue: VecDeque<(usize, NodeOutput)> = wire.into();
        let mut guard = 0;
        while let Some((src, o)) = queue.pop_front() {
            guard += 1;
            assert!(guard < 100_000);
            if let NodeOutput::Send { dst, pkt, .. } = o {
                let targets: Vec<usize> = match dst {
                    Some(d) => vec![d.as_u16() as usize],
                    None => (0..3).filter(|&i| i != src).collect(),
                };
                for t in targets {
                    let mut out = Vec::new();
                    nodes[t].on_packet_into(0, NET, pkt.clone(), &mut out);
                    for x in out {
                        match x {
                            NodeOutput::Deliver(d) => delivered[t].push(d),
                            other => queue.push_back((t, other)),
                        }
                    }
                }
            } else if let NodeOutput::Deliver(d) = o {
                delivered[src].push(d);
            }
        }
        for d in &delivered {
            assert_eq!(d.len(), 1, "duplicate request must not deliver twice");
        }
    }

    #[test]
    fn learner_gap_is_repaired_via_learn_req() {
        // In a 3-node ring the last acceptor (node 2) originates the
        // Decision, so the lossy learner must be node 1: it sees the
        // Accept, acks, and then loses the Decision multicast.
        let mut nodes = ensemble(3);
        let out = submit(&mut nodes, 0, b"w-1");
        let mut dropped = 0;
        let mut queue: VecDeque<(usize, NodeOutput)> = out.into_iter().map(|o| (0, o)).collect();
        let mut delivered1 = 0;
        let mut guard = 0;
        while let Some((src, o)) = queue.pop_front() {
            guard += 1;
            assert!(guard < 100_000);
            if let NodeOutput::Send { dst, pkt, .. } = o {
                let targets: Vec<usize> = match dst {
                    Some(d) => vec![d.as_u16() as usize],
                    None => (0..3).filter(|&i| i != src).collect(),
                };
                for t in targets {
                    if t == 1
                        && matches!(pkt.packet(), Packet::RingPaxos(RingPaxosMsg::Decision { .. }))
                    {
                        dropped += 1;
                        continue; // the loss under test
                    }
                    let mut out = Vec::new();
                    nodes[t].on_packet_into(0, NET, pkt.clone(), &mut out);
                    for x in out {
                        match x {
                            NodeOutput::Deliver(_) if t == 1 => delivered1 += 1,
                            NodeOutput::Deliver(_) => {}
                            other => queue.push_back((t, other)),
                        }
                    }
                }
            }
        }
        assert!(dropped > 0, "test must actually drop a decision");
        assert_eq!(delivered1, 0);
        // Node 1 knows instance 1 exists (it saw the Accept): its gap
        // timer fires, asks the coordinator, and the re-multicast
        // decision completes delivery.
        assert!(nodes[1].next_deadline().is_some(), "gapped learner must arm a timer");
        let mut learn = Vec::new();
        let t1 = nodes[1].next_deadline().unwrap().max(GAP_NS);
        nodes[1].on_timer_into(t1, &mut learn);
        assert!(
            learn.iter().any(|o| matches!(
                o,
                NodeOutput::Send { dst: Some(_), pkt, .. }
                    if matches!(pkt.packet(), Packet::RingPaxos(RingPaxosMsg::LearnReq { .. }))
            )),
            "gap must produce a LearnReq to the coordinator: {learn:?}"
        );
        // Route the LearnReq to the coordinator and its answer back.
        let mut queue: VecDeque<(usize, NodeOutput)> = learn.into_iter().map(|o| (1, o)).collect();
        let mut final_deliveries = 0;
        let mut guard = 0;
        while let Some((src, o)) = queue.pop_front() {
            guard += 1;
            assert!(guard < 100_000);
            if let NodeOutput::Send { dst, pkt, .. } = o {
                let targets: Vec<usize> = match dst {
                    Some(d) => vec![d.as_u16() as usize],
                    None => (0..3).filter(|&i| i != src).collect(),
                };
                for t in targets {
                    let mut out = Vec::new();
                    nodes[t].on_packet_into(GAP_NS * 2, NET, pkt.clone(), &mut out);
                    for x in out {
                        match x {
                            NodeOutput::Deliver(_) if t == 1 => final_deliveries += 1,
                            NodeOutput::Deliver(_) => {}
                            other => queue.push_back((t, other)),
                        }
                    }
                }
            }
        }
        assert_eq!(final_deliveries, 1, "repair must deliver the missed value exactly once");
    }

    #[test]
    fn restart_resumes_beyond_the_crash_epoch() {
        let mut nodes = ensemble(3);
        let out = submit(&mut nodes, 1, b"v-1");
        let _ = pump(&mut nodes, out);
        let epoch = nodes[1].crash_epoch();
        assert_eq!(epoch, 1);
        let members: Vec<NodeId> = (0..3).map(NodeId::new).collect();
        let reborn = RingPaxosNode::new(NodeId::new(1), &members, 1, epoch);
        assert_eq!(reborn.next_deliver, InstanceId::new(2));
        assert_eq!(reborn.inc, 1);
        // Its ballot outranks its first life's.
        assert!(reborn.ballot.follows(Ballot::ZERO));
    }

    #[test]
    fn window_bounds_in_flight_instances() {
        let members: Vec<NodeId> = (0..2).map(NodeId::new).collect();
        let mut coord = RingPaxosNode::new(NodeId::new(0), &members, 0, 0);
        // Submit more than a window's worth without letting the wire
        // answer: opened instances must cap at WINDOW.
        let mut out = Vec::new();
        for _ in 0..QUEUE_LIMIT {
            coord.submit_into(0, Bytes::from_static(b"z"), &mut out).unwrap();
        }
        assert_eq!(coord.open_instances(), WINDOW);
        assert!(coord.submit_into(0, Bytes::from_static(b"z"), &mut out).is_err());
    }

    #[test]
    fn transitions_cover_the_spec_edges() {
        let mut nodes = ensemble(3);
        let out = submit(&mut nodes, 1, b"t-1");
        let _ = pump(&mut nodes, out);
        let coord: Vec<String> =
            nodes[0].take_transitions().iter().map(|t| t.to_string()).collect();
        assert!(coord.iter().any(|t| t == "ring-paxos: Idle --Propose--> Open"), "{coord:?}");
        assert!(coord.iter().any(|t| t == "ring-paxos: Open --Drained--> Idle"), "{coord:?}");
        let mut ring: Vec<String> =
            nodes[1].take_transitions().iter().map(|t| t.to_string()).collect();
        ring.extend(nodes[2].take_transitions().iter().map(|t| t.to_string()));
        assert!(
            ring.iter().any(|t| t == "ring-paxos-ring: Steady --RingForward--> Steady"),
            "{ring:?}"
        );
        assert!(
            ring.iter().any(|t| t == "ring-paxos-ring: Steady --LastDecide--> Steady"),
            "{ring:?}"
        );
    }
}
