//! Alternative broadcast engines behind the [`crate::Broadcast`] seam.
//!
//! The Totem stack ([`crate::TotemNode`]) lives in [`crate::node`]; this
//! module collects the non-Totem backends. Today that is one engine:
//! a minimal Ring Paxos, the head-to-head counterpart called for by
//! ROADMAP item 4.

pub mod ring_paxos;

pub use ring_paxos::RingPaxosNode;
