//! Threaded real-time host: one driver thread per node over a real
//! [`Transport`].
//!
//! The driver loop waits on the transport with a timeout equal to the
//! node's next protocol deadline, decodes packets, feeds the state
//! machine, puts its sends back on the wire, and forwards deliveries,
//! configuration changes and fault reports to the application through
//! a channel.

use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};

use totem_rrp::FaultReport;
use totem_srp::{ConfigChange, Delivered};
use totem_transport::{Destination, Transport};
use totem_wire::{Packet, SharedPacket};

use crate::node::{NodeOutput, TotemNode};

/// How a node enters the ring at startup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StartMode {
    /// Statically bootstrapped member that waits for the token.
    Member,
    /// Statically bootstrapped representative: injects the initial
    /// token.
    Representative,
    /// Cold start through the membership protocol.
    Joining,
}

/// Events forwarded to the application.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeEvent {
    /// A totally ordered application message.
    Delivered(Delivered),
    /// A membership change.
    Config(ConfigChange),
    /// A network fault report (paper §3).
    Fault(FaultReport),
    /// A previously faulty network was put back in service.
    Reinstated {
        /// The repaired network.
        net: totem_wire::NetworkId,
        /// When, in nanoseconds of protocol time.
        at: u64,
    },
}

enum Cmd {
    Submit(Bytes),
    Reinstate(totem_wire::NetworkId),
    SetK(usize),
    Shutdown,
}

/// Handle to a running node.
#[derive(Debug)]
pub struct RuntimeHandle {
    cmd_tx: Sender<Cmd>,
    events_rx: Receiver<RuntimeEvent>,
    join: Option<std::thread::JoinHandle<TotemNode>>,
}

impl RuntimeHandle {
    /// Queues an application message for ordered broadcast. The driver
    /// retries internally on flow-control backpressure.
    pub fn submit(&self, data: Bytes) {
        let _ = self.cmd_tx.send(Cmd::Submit(data));
    }

    /// Administrative repair: puts a faulty network back in service on
    /// this node (see [`totem_rrp::RrpLayer::reinstate`]).
    pub fn reinstate(&self, net: totem_wire::NetworkId) {
        let _ = self.cmd_tx.send(Cmd::Reinstate(net));
    }

    /// Operator reconfiguration: changes this node's replication
    /// degree K on the fly (see [`totem_rrp::RrpLayer::set_k`]).
    pub fn set_k(&self, k: usize) {
        let _ = self.cmd_tx.send(Cmd::SetK(k));
    }

    /// The stream of deliveries, configuration changes and fault
    /// reports.
    pub fn events(&self) -> &Receiver<RuntimeEvent> {
        &self.events_rx
    }

    /// Convenience: waits up to `timeout` for the next event.
    pub fn next_event(&self, timeout: Duration) -> Option<RuntimeEvent> {
        self.events_rx.recv_timeout(timeout).ok()
    }

    /// Stops the driver and returns the final node state.
    pub fn shutdown(mut self) -> TotemNode {
        let _ = self.cmd_tx.send(Cmd::Shutdown);
        self.join.take().expect("not yet joined").join().expect("driver thread panicked")
    }
}

impl Drop for RuntimeHandle {
    fn drop(&mut self) {
        if let Some(join) = self.join.take() {
            let _ = self.cmd_tx.send(Cmd::Shutdown);
            let _ = join.join();
        }
    }
}

/// Spawns the driver thread for `node` over `transport`.
///
/// # Example
///
/// A two-node cluster over the in-memory transport:
///
/// ```
/// # use totem_cluster::{spawn_node, RuntimeEvent, StartMode, TotemNode};
/// # use totem_rrp::{ReplicationStyle, RrpConfig};
/// # use totem_srp::SrpConfig;
/// # use totem_transport::InMemoryHub;
/// # use totem_wire::NodeId;
/// # use std::time::Duration;
/// let members = [NodeId::new(0), NodeId::new(1)];
/// let handles: Vec<_> = InMemoryHub::new(2, 2)
///     .into_iter()
///     .enumerate()
///     .map(|(i, t)| {
///         let node = TotemNode::new_operational(
///             NodeId::new(i as u16), &members,
///             SrpConfig::default(), RrpConfig::new(ReplicationStyle::Active, 2), 0);
///         let mode = if i == 0 { StartMode::Representative } else { StartMode::Member };
///         spawn_node(node, t, mode)
///     })
///     .collect();
/// handles[0].submit(bytes::Bytes::from_static(b"hello"));
/// let mut got = false;
/// for _ in 0..200 {
///     if let Some(RuntimeEvent::Delivered(d)) = handles[1].next_event(Duration::from_millis(50)) {
///         got = d.data == b"hello"[..];
///         if got { break; }
///     }
/// }
/// assert!(got);
/// # for h in handles { h.shutdown(); }
/// ```
pub fn spawn_node<T: Transport + 'static>(
    mut node: TotemNode,
    transport: T,
    start: StartMode,
) -> RuntimeHandle {
    let (cmd_tx, cmd_rx) = unbounded();
    let (events_tx, events_rx) = unbounded();
    let join = std::thread::Builder::new()
        .name(format!("totem-{}", node.id()))
        .spawn(move || {
            drive(&mut node, &transport, start, &cmd_rx, &events_tx);
            node
        })
        .expect("spawn totem driver thread");
    RuntimeHandle { cmd_tx, events_rx, join: Some(join) }
}

fn drive<T: Transport>(
    node: &mut TotemNode,
    transport: &T,
    start: StartMode,
    cmd_rx: &Receiver<Cmd>,
    events_tx: &Sender<RuntimeEvent>,
) {
    let epoch = Instant::now();
    let now_ns = || epoch.elapsed().as_nanos() as u64;

    let mut pending: Vec<Bytes> = Vec::new();
    let outputs = match start {
        StartMode::Member => Vec::new(),
        StartMode::Representative => node.bootstrap_token(now_ns()),
        StartMode::Joining => node.start(now_ns()),
    };
    perform(outputs, transport, events_tx);

    loop {
        // Application commands.
        loop {
            match cmd_rx.try_recv() {
                Ok(Cmd::Submit(data)) => pending.push(data),
                Ok(Cmd::Reinstate(net)) => {
                    if node.reinstate(now_ns(), net) {
                        let _ = events_tx.send(RuntimeEvent::Reinstated { net, at: now_ns() });
                    }
                }
                Ok(Cmd::SetK(k)) => {
                    // An out-of-range K is dropped; the CLI validates
                    // before sending, so there is no one to tell here.
                    let _ = node.set_k(now_ns(), k);
                }
                Ok(Cmd::Shutdown) => return,
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => return,
            }
        }
        // Feed pending submissions while the queue has room.
        while let Some(data) = pending.first().cloned() {
            match node.submit(now_ns(), data) {
                Ok(outs) => {
                    pending.remove(0);
                    perform(outs, transport, events_tx);
                }
                Err(_) => break, // backpressure: retry next iteration
            }
        }
        // Wait for traffic or the next deadline.
        let now = now_ns();
        let timeout = match node.next_deadline() {
            Some(d) if d > now => Duration::from_nanos((d - now).min(50_000_000)),
            Some(_) => Duration::ZERO,
            None => Duration::from_millis(50),
        };
        if let Some((net, bytes)) = transport.recv_timeout(timeout) {
            if let Ok(pkt) = Packet::decode(&bytes) {
                // Seed the encode cache with the received datagram so
                // retransmitting this packet never re-encodes it.
                let outs = node.on_packet(now_ns(), net, SharedPacket::from_wire(pkt, bytes));
                perform(outs, transport, events_tx);
            }
        }
        let now = now_ns();
        if node.next_deadline().is_some_and(|d| d <= now) {
            let outs = node.on_timer(now);
            perform(outs, transport, events_tx);
        }
    }
}

fn perform<T: Transport>(
    outputs: Vec<NodeOutput>,
    transport: &T,
    events_tx: &Sender<RuntimeEvent>,
) {
    for out in outputs {
        match out {
            NodeOutput::Send { net, dst, pkt } => {
                let dest = match dst {
                    None => Destination::Broadcast,
                    Some(d) => Destination::Node(d),
                };
                // Treat transient send failures as packet loss; the
                // protocol retransmits. The cached encoding makes every
                // copy of this frame share one buffer.
                let _ = transport.send(net, dest, pkt.encoded().clone());
            }
            NodeOutput::Deliver(d) => {
                let _ = events_tx.send(RuntimeEvent::Delivered(d));
            }
            NodeOutput::Config(c) => {
                let _ = events_tx.send(RuntimeEvent::Config(c));
            }
            NodeOutput::Fault(f) => {
                let _ = events_tx.send(RuntimeEvent::Fault(f));
            }
            NodeOutput::Reinstated { net, at } => {
                let _ = events_tx.send(RuntimeEvent::Reinstated { net, at });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use totem_rrp::{ReplicationStyle, RrpConfig};
    use totem_srp::SrpConfig;
    use totem_transport::InMemoryHub;
    use totem_wire::NodeId;

    fn cluster(n: usize, style: ReplicationStyle, networks: usize) -> Vec<RuntimeHandle> {
        let members: Vec<NodeId> = (0..n as u16).map(NodeId::new).collect();
        let transports = InMemoryHub::new(n, networks);
        transports
            .into_iter()
            .enumerate()
            .map(|(i, t)| {
                let me = NodeId::new(i as u16);
                let node = TotemNode::new_operational(
                    me,
                    &members,
                    SrpConfig::default(),
                    RrpConfig::new(style, networks),
                    0,
                );
                let mode = if i == 0 { StartMode::Representative } else { StartMode::Member };
                spawn_node(node, t, mode)
            })
            .collect()
    }

    #[test]
    fn threaded_cluster_delivers_over_in_memory_transport() {
        let handles = cluster(3, ReplicationStyle::Active, 2);
        handles[1].submit(Bytes::from_static(b"threaded hello"));
        for (i, h) in handles.iter().enumerate() {
            let mut got = false;
            let deadline = Instant::now() + Duration::from_secs(10);
            while Instant::now() < deadline {
                match h.next_event(Duration::from_millis(200)) {
                    Some(RuntimeEvent::Delivered(d)) if &d.data[..] == b"threaded hello" => {
                        got = true;
                        break;
                    }
                    _ => {}
                }
            }
            assert!(got, "node {i} never delivered");
        }
        for h in handles {
            h.shutdown();
        }
    }

    #[test]
    fn shutdown_returns_node_state() {
        let mut handles = cluster(2, ReplicationStyle::Single, 1);
        let h = handles.remove(0);
        let node = h.shutdown();
        assert_eq!(node.id(), NodeId::new(0));
    }
}
