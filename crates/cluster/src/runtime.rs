//! Threaded real-time host: one driver thread per node over a real
//! [`Transport`].
//!
//! The driver loop waits on the transport with a timeout equal to the
//! node's next protocol deadline, decodes packets, feeds the state
//! machine, puts its sends back on the wire, and forwards deliveries,
//! configuration changes and fault reports to the application through
//! a channel.

use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};

use totem_rrp::FaultReport;
use totem_srp::{ConfigChange, Delivered};
use totem_transport::{Destination, RecvBatch, SendBatch, Transport};
use totem_wire::SharedPacket;

use crate::backend::Broadcast;
use crate::node::{NodeOutput, TotemNode};

/// How the driver waits for traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PollMode {
    /// Block in the transport until traffic or the next protocol
    /// deadline (the default; zero CPU while idle).
    #[default]
    Wait,
    /// Spin on zero-timeout drains for up to `spin_us` microseconds
    /// before blocking for the remainder of the deadline. Shaves the
    /// wake-up latency off the token hot path at the cost of burning
    /// a core while traffic is expected momentarily.
    BusyPoll {
        /// Spin budget per wait, in microseconds.
        spin_us: u64,
    },
}

/// Tuning knobs for the driver loop (see [`spawn_node_with`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Use the batched transport fast path: drain a whole
    /// [`RecvBatch`] per wake, feed every frame, and flush all
    /// resulting sends as one [`SendBatch`]. On a batch-aware
    /// transport (UDP) this amortizes submission/completion syscalls
    /// across the batch; on any other transport the trait's default
    /// loops make it behave exactly like the single-shot path.
    pub batch: bool,
    /// How to wait for traffic.
    pub poll: PollMode,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig { batch: true, poll: PollMode::Wait }
    }
}

/// How a node enters the ring at startup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StartMode {
    /// Statically bootstrapped member that waits for the token.
    Member,
    /// Statically bootstrapped representative: injects the initial
    /// token.
    Representative,
    /// Cold start through the membership protocol.
    Joining,
}

/// Events forwarded to the application.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeEvent {
    /// A totally ordered application message.
    Delivered(Delivered),
    /// A membership change.
    Config(ConfigChange),
    /// A network fault report (paper §3).
    Fault(FaultReport),
    /// A previously faulty network was put back in service.
    Reinstated {
        /// The repaired network.
        net: totem_wire::NetworkId,
        /// When, in nanoseconds of protocol time.
        at: u64,
    },
}

enum Cmd {
    Submit(Bytes),
    Reinstate(totem_wire::NetworkId),
    SetK(usize),
    Shutdown,
}

/// Handle to a running node. Generic over the broadcast engine the
/// driver thread hosts; defaults to [`TotemNode`], so existing Totem
/// call sites never spell the parameter.
#[derive(Debug)]
pub struct RuntimeHandle<B: Broadcast = TotemNode> {
    cmd_tx: Sender<Cmd>,
    events_rx: Receiver<RuntimeEvent>,
    join: Option<std::thread::JoinHandle<B>>,
}

impl<B: Broadcast> RuntimeHandle<B> {
    /// Queues an application message for ordered broadcast. The driver
    /// retries internally on flow-control backpressure.
    pub fn submit(&self, data: Bytes) {
        let _ = self.cmd_tx.send(Cmd::Submit(data));
    }

    /// Administrative repair: puts a faulty network back in service on
    /// this node (see [`totem_rrp::RrpLayer::reinstate`]).
    pub fn reinstate(&self, net: totem_wire::NetworkId) {
        let _ = self.cmd_tx.send(Cmd::Reinstate(net));
    }

    /// Operator reconfiguration: changes this node's replication
    /// degree K on the fly (see [`totem_rrp::RrpLayer::set_k`]).
    pub fn set_k(&self, k: usize) {
        let _ = self.cmd_tx.send(Cmd::SetK(k));
    }

    /// The stream of deliveries, configuration changes and fault
    /// reports.
    pub fn events(&self) -> &Receiver<RuntimeEvent> {
        &self.events_rx
    }

    /// Convenience: waits up to `timeout` for the next event.
    pub fn next_event(&self, timeout: Duration) -> Option<RuntimeEvent> {
        self.events_rx.recv_timeout(timeout).ok()
    }

    /// Stops the driver and returns the final node state.
    pub fn shutdown(mut self) -> B {
        let _ = self.cmd_tx.send(Cmd::Shutdown);
        self.join.take().expect("not yet joined").join().expect("driver thread panicked")
    }
}

impl<B: Broadcast> Drop for RuntimeHandle<B> {
    fn drop(&mut self) {
        if let Some(join) = self.join.take() {
            let _ = self.cmd_tx.send(Cmd::Shutdown);
            let _ = join.join();
        }
    }
}

/// Drains [`RuntimeEvent::Delivered`] payloads from every handle until
/// each node has `want` deliveries or `timeout` elapses, whichever
/// comes first. Returns the per-node delivery orders and the elapsed
/// wall time (measured here so callers that must stay free of
/// wall-clock reads — everything outside the real-time crates — can
/// still report throughput).
pub fn collect_deliveries<B: Broadcast>(
    handles: &[RuntimeHandle<B>],
    want: usize,
    timeout: Duration,
) -> (Vec<Vec<Bytes>>, Duration) {
    let started = Instant::now();
    let deadline = started + timeout;
    let mut orders: Vec<Vec<Bytes>> = vec![Vec::new(); handles.len()];
    while orders.iter().any(|o| o.len() < want) && Instant::now() < deadline {
        for (i, h) in handles.iter().enumerate() {
            while let Some(ev) = h.next_event(Duration::from_millis(10)) {
                if let RuntimeEvent::Delivered(d) = ev {
                    orders[i].push(d.data);
                }
            }
        }
    }
    (orders, started.elapsed())
}

/// Spawns the driver thread for `node` over `transport`.
///
/// # Example
///
/// A two-node cluster over the in-memory transport:
///
/// ```
/// # use totem_cluster::{spawn_node, RuntimeEvent, StartMode, TotemNode};
/// # use totem_rrp::{ReplicationStyle, RrpConfig};
/// # use totem_srp::SrpConfig;
/// # use totem_transport::InMemoryHub;
/// # use totem_wire::NodeId;
/// # use std::time::Duration;
/// let members = [NodeId::new(0), NodeId::new(1)];
/// let handles: Vec<_> = InMemoryHub::new(2, 2)
///     .into_iter()
///     .enumerate()
///     .map(|(i, t)| {
///         let node = TotemNode::new_operational(
///             NodeId::new(i as u16), &members,
///             SrpConfig::default(), RrpConfig::new(ReplicationStyle::Active, 2), 0);
///         let mode = if i == 0 { StartMode::Representative } else { StartMode::Member };
///         spawn_node(node, t, mode)
///     })
///     .collect();
/// handles[0].submit(bytes::Bytes::from_static(b"hello"));
/// let mut got = false;
/// for _ in 0..200 {
///     if let Some(RuntimeEvent::Delivered(d)) = handles[1].next_event(Duration::from_millis(50)) {
///         got = d.data == b"hello"[..];
///         if got { break; }
///     }
/// }
/// assert!(got);
/// # for h in handles { h.shutdown(); }
/// ```
pub fn spawn_node<B, T>(node: B, transport: T, start: StartMode) -> RuntimeHandle<B>
where
    B: Broadcast + Send + 'static,
    T: Transport + 'static,
{
    spawn_node_with(node, transport, start, RuntimeConfig::default())
}

/// Like [`spawn_node`], with explicit [`RuntimeConfig`] tuning.
pub fn spawn_node_with<B, T>(
    mut node: B,
    transport: T,
    start: StartMode,
    config: RuntimeConfig,
) -> RuntimeHandle<B>
where
    B: Broadcast + Send + 'static,
    T: Transport + 'static,
{
    let (cmd_tx, cmd_rx) = unbounded();
    let (events_tx, events_rx) = unbounded();
    let join = std::thread::Builder::new()
        .name(format!("totem-{}", node.id()))
        .spawn(move || {
            drive(&mut node, &transport, start, config, &cmd_rx, &events_tx);
            node
        })
        .expect("spawn totem driver thread");
    RuntimeHandle { cmd_tx, events_rx, join: Some(join) }
}

fn drive<B: Broadcast, T: Transport>(
    node: &mut B,
    transport: &T,
    start: StartMode,
    config: RuntimeConfig,
    cmd_rx: &Receiver<Cmd>,
    events_tx: &Sender<RuntimeEvent>,
) {
    let epoch = Instant::now();
    let now_ns = || epoch.elapsed().as_nanos() as u64;

    let mut pending: Vec<Bytes> = Vec::new();
    // Batched mode reuses these across wakes: sends accumulate in
    // `out_batch` and go to the kernel in one flush per wake; receives
    // drain into `in_batch` and are all fed before any send happens.
    let mut out_batch = SendBatch::new();
    let mut in_batch = RecvBatch::new();

    // One recycled output buffer serves the whole driver loop.
    let mut outputs: Vec<NodeOutput> = Vec::new();
    match start {
        StartMode::Member => {}
        StartMode::Representative => node.bootstrap_into(now_ns(), &mut outputs),
        StartMode::Joining => node.start_into(now_ns(), &mut outputs),
    }
    if config.batch {
        stage(&mut outputs, &mut out_batch, events_tx);
        flush(transport, &mut out_batch);
    } else {
        perform(&mut outputs, transport, events_tx);
    }

    loop {
        // Application commands.
        loop {
            match cmd_rx.try_recv() {
                Ok(Cmd::Submit(data)) => pending.push(data),
                Ok(Cmd::Reinstate(net)) => {
                    if node.reinstate(now_ns(), net) {
                        let _ = events_tx.send(RuntimeEvent::Reinstated { net, at: now_ns() });
                    }
                }
                Ok(Cmd::SetK(k)) => {
                    // An out-of-range K is dropped; the CLI validates
                    // before sending, so there is no one to tell here.
                    let _ = node.set_k(now_ns(), k);
                }
                Ok(Cmd::Shutdown) => return,
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => return,
            }
        }
        // Feed pending submissions while the queue has room.
        while let Some(data) = pending.first().cloned() {
            match node.submit_into(now_ns(), data, &mut outputs) {
                Ok(()) => {
                    pending.remove(0);
                    if config.batch {
                        stage(&mut outputs, &mut out_batch, events_tx);
                    } else {
                        perform(&mut outputs, transport, events_tx);
                    }
                }
                Err(_) => break, // backpressure: retry next iteration
            }
        }
        // Wait for traffic or the next deadline.
        let now = now_ns();
        let timeout = match node.next_deadline() {
            Some(d) if d > now => Duration::from_nanos((d - now).min(50_000_000)),
            Some(_) => Duration::ZERO,
            None => Duration::from_millis(50),
        };
        if config.batch {
            // Everything staged so far (bootstrap frames, submissions)
            // rides one submission before the wait.
            flush(transport, &mut out_batch);
            in_batch.clear();
            if recv_wait(transport, &mut in_batch, timeout, config.poll) > 0 {
                let when = now_ns();
                for (net, bytes) in in_batch.iter() {
                    // Seed the encode cache with the received datagram
                    // so retransmitting it never re-encodes.
                    if let Ok(shared) = SharedPacket::from_datagram(bytes.clone()) {
                        node.on_packet_into(when, *net, shared, &mut outputs);
                        stage(&mut outputs, &mut out_batch, events_tx);
                    }
                }
            }
        } else if let Some((net, bytes)) = transport.recv_timeout(timeout) {
            if let Ok(shared) = SharedPacket::from_datagram(bytes) {
                node.on_packet_into(now_ns(), net, shared, &mut outputs);
                perform(&mut outputs, transport, events_tx);
            }
        }
        let now = now_ns();
        if node.next_deadline().is_some_and(|d| d <= now) {
            node.on_timer_into(now, &mut outputs);
            if config.batch {
                stage(&mut outputs, &mut out_batch, events_tx);
            } else {
                perform(&mut outputs, transport, events_tx);
            }
        }
        if config.batch {
            // One submission flushes the whole wake's output: token
            // forwarding, retransmissions and fan-out together.
            flush(transport, &mut out_batch);
        }
    }
}

/// Waits for inbound traffic per `poll`: either one blocking
/// [`Transport::recv_batch`], or zero-timeout spins for up to
/// `spin_us` before blocking for whatever remains of `timeout`.
fn recv_wait<T: Transport>(
    transport: &T,
    out: &mut RecvBatch,
    timeout: Duration,
    poll: PollMode,
) -> usize {
    match poll {
        PollMode::Wait => transport.recv_batch(out, timeout),
        PollMode::BusyPoll { spin_us } => {
            let spin = Duration::from_micros(spin_us).min(timeout);
            let start = Instant::now();
            loop {
                let got = transport.recv_batch(out, Duration::ZERO);
                if got > 0 {
                    return got;
                }
                if start.elapsed() >= spin {
                    break;
                }
                std::hint::spin_loop();
            }
            let rest = timeout.saturating_sub(start.elapsed());
            if rest.is_zero() {
                0
            } else {
                transport.recv_batch(out, rest)
            }
        }
    }
}

/// Batched-mode output handling: events go to the application
/// immediately, sends accumulate in `out_batch` for the next
/// [`flush`].
fn stage(
    outputs: &mut Vec<NodeOutput>,
    out_batch: &mut SendBatch,
    events_tx: &Sender<RuntimeEvent>,
) {
    for out in outputs.drain(..) {
        match out {
            NodeOutput::Send { net, dst, pkt } => {
                let dest = match dst {
                    None => Destination::Broadcast,
                    Some(d) => Destination::Node(d),
                };
                out_batch.push(net, dest, pkt.encoded().clone());
            }
            other => forward_event(other, events_tx),
        }
    }
}

/// Submits everything staged in `out_batch`. Transient failures are
/// packet loss — the protocol retransmits — so an errored or
/// partially-sent tail is dropped rather than retried in a loop.
fn flush<T: Transport>(transport: &T, out_batch: &mut SendBatch) {
    // The node emits each frame's redundant copies net-by-net;
    // regrouping them per network turns the flush into one contiguous
    // run (one sendmmsg submission) per network.
    out_batch.group_by_net();
    while !out_batch.is_empty() {
        match transport.send_batch(out_batch) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
    out_batch.clear();
}

fn perform<T: Transport>(
    outputs: &mut Vec<NodeOutput>,
    transport: &T,
    events_tx: &Sender<RuntimeEvent>,
) {
    for out in outputs.drain(..) {
        match out {
            NodeOutput::Send { net, dst, pkt } => {
                let dest = match dst {
                    None => Destination::Broadcast,
                    Some(d) => Destination::Node(d),
                };
                // Treat transient send failures as packet loss; the
                // protocol retransmits. The cached encoding makes every
                // copy of this frame share one buffer.
                let _ = transport.send(net, dest, pkt.encoded().clone());
            }
            other => forward_event(other, events_tx),
        }
    }
}

fn forward_event(out: NodeOutput, events_tx: &Sender<RuntimeEvent>) {
    match out {
        NodeOutput::Send { .. } => unreachable!("sends are handled by the caller"),
        NodeOutput::Deliver(d) => {
            let _ = events_tx.send(RuntimeEvent::Delivered(d));
        }
        NodeOutput::Config(c) => {
            let _ = events_tx.send(RuntimeEvent::Config(c));
        }
        NodeOutput::Fault(f) => {
            let _ = events_tx.send(RuntimeEvent::Fault(f));
        }
        NodeOutput::Reinstated { net, at } => {
            let _ = events_tx.send(RuntimeEvent::Reinstated { net, at });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use totem_rrp::{ReplicationStyle, RrpConfig};
    use totem_srp::SrpConfig;
    use totem_transport::InMemoryHub;
    use totem_wire::NodeId;

    fn cluster(n: usize, style: ReplicationStyle, networks: usize) -> Vec<RuntimeHandle> {
        cluster_with(n, style, networks, RuntimeConfig::default())
    }

    fn cluster_with(
        n: usize,
        style: ReplicationStyle,
        networks: usize,
        config: RuntimeConfig,
    ) -> Vec<RuntimeHandle> {
        let members: Vec<NodeId> = (0..n as u16).map(NodeId::new).collect();
        let transports = InMemoryHub::new(n, networks);
        transports
            .into_iter()
            .enumerate()
            .map(|(i, t)| {
                let me = NodeId::new(i as u16);
                let node = TotemNode::new_operational(
                    me,
                    &members,
                    SrpConfig::default(),
                    RrpConfig::new(style, networks),
                    0,
                );
                let mode = if i == 0 { StartMode::Representative } else { StartMode::Member };
                spawn_node_with(node, t, mode, config)
            })
            .collect()
    }

    #[test]
    fn threaded_cluster_delivers_over_in_memory_transport() {
        let handles = cluster(3, ReplicationStyle::Active, 2);
        handles[1].submit(Bytes::from_static(b"threaded hello"));
        for (i, h) in handles.iter().enumerate() {
            let mut got = false;
            let deadline = Instant::now() + Duration::from_secs(10);
            while Instant::now() < deadline {
                match h.next_event(Duration::from_millis(200)) {
                    Some(RuntimeEvent::Delivered(d)) if &d.data[..] == b"threaded hello" => {
                        got = true;
                        break;
                    }
                    _ => {}
                }
            }
            assert!(got, "node {i} never delivered");
        }
        for h in handles {
            h.shutdown();
        }
    }

    #[test]
    fn every_runtime_config_delivers() {
        let configs = [
            RuntimeConfig { batch: false, poll: PollMode::Wait },
            RuntimeConfig { batch: true, poll: PollMode::Wait },
            RuntimeConfig { batch: true, poll: PollMode::BusyPoll { spin_us: 50 } },
        ];
        for config in configs {
            let handles = cluster_with(3, ReplicationStyle::Active, 2, config);
            handles[2].submit(Bytes::from_static(b"any mode"));
            for (i, h) in handles.iter().enumerate() {
                let mut got = false;
                let deadline = Instant::now() + Duration::from_secs(10);
                while Instant::now() < deadline {
                    match h.next_event(Duration::from_millis(200)) {
                        Some(RuntimeEvent::Delivered(d)) if &d.data[..] == b"any mode" => {
                            got = true;
                            break;
                        }
                        _ => {}
                    }
                }
                assert!(got, "node {i} never delivered under {config:?}");
            }
            for h in handles {
                h.shutdown();
            }
        }
    }

    #[test]
    fn shutdown_returns_node_state() {
        let mut handles = cluster(2, ReplicationStyle::Single, 1);
        let h = handles.remove(0);
        let node = h.shutdown();
        assert_eq!(node.id(), NodeId::new(0));
    }
}
