//! The composed Totem node: SRP over RRP.
//!
//! [`TotemNode`] wires the two sans-io layers together exactly as the
//! paper's architecture prescribes (§5: "The algorithm forms a layer
//! that resides between the Totem SRP and the networks"):
//!
//! * SRP send actions are fanned out to networks chosen by the RRP
//!   ([`totem_rrp::RrpLayer::routes_for_message`] /
//!   [`totem_rrp::RrpLayer::routes_for_token`]);
//! * received packets are gated by the RRP and handed up to the SRP;
//! * after the SRP digests a message, the RRP gets a chance to release
//!   a token it buffered behind the gap (passive replication, Figure
//!   4 `recvMsg`).

use bytes::Bytes;

use totem_rrp::{FaultReport, RrpConfig, RrpEvent, RrpLayer};
use totem_srp::{ConfigChange, Delivered, SrpConfig, SrpEvent, SrpNode, SrpState, SubmitError};
use totem_wire::{NetworkId, NodeId, Packet, SharedPacket, Transition};

/// Protocol time in nanoseconds (shared with `totem-srp`).
pub type Nanos = u64;

/// Everything a [`TotemNode`] asks its host to do or observe.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeOutput {
    /// Put this packet on the wire.
    Send {
        /// Which redundant network.
        net: NetworkId,
        /// `None` = broadcast to all peers; `Some` = unicast.
        dst: Option<NodeId>,
        /// The packet, as a shared encode-once handle: every route's
        /// copy of one frame is a refcount bump on the same buffer.
        pkt: SharedPacket,
    },
    /// An application message was delivered in total order.
    Deliver(Delivered),
    /// A configuration (membership) change was delivered.
    Config(ConfigChange),
    /// A network was declared faulty (paper §3 fault report).
    Fault(FaultReport),
    /// A previously faulty network was put back in service.
    Reinstated {
        /// The repaired network.
        net: NetworkId,
        /// When, in nanoseconds of protocol time.
        at: Nanos,
    },
}

/// A full Totem endpoint: single ring protocol over the redundant
/// ring layer.
#[derive(Debug)]
pub struct TotemNode {
    srp: SrpNode,
    rrp: RrpLayer,
    /// Recycled RRP event buffer: the per-reception fast path (one
    /// `Deliver` per packet) allocates nothing in steady state.
    rrp_events: Vec<RrpEvent>,
    /// Recycled route buffer: picking the networks for an outgoing
    /// packet reuses one `Vec` instead of allocating per send.
    route_buf: Vec<NetworkId>,
}

impl TotemNode {
    /// A node on a statically known ring (benchmarks, most tests).
    /// The representative must be given [`TotemNode::bootstrap_token`]
    /// once every member exists.
    ///
    /// # Panics
    ///
    /// Panics if either configuration is invalid (see
    /// [`SrpNode::new_operational`] and [`RrpLayer::new`]).
    pub fn new_operational(
        me: NodeId,
        members: &[NodeId],
        srp_cfg: SrpConfig,
        rrp_cfg: RrpConfig,
        now: Nanos,
    ) -> Self {
        TotemNode {
            srp: SrpNode::new_operational(me, srp_cfg, members, now).expect("valid SRP bootstrap"),
            rrp: RrpLayer::new(rrp_cfg).expect("valid RRP config"),
            rrp_events: Vec::new(),
            route_buf: Vec::new(),
        }
    }

    /// A node that discovers its peers through the membership
    /// protocol. Call [`TotemNode::start`] to begin gathering.
    ///
    /// # Panics
    ///
    /// Panics if either configuration is invalid.
    pub fn new_joining(me: NodeId, srp_cfg: SrpConfig, rrp_cfg: RrpConfig) -> Self {
        TotemNode {
            srp: SrpNode::new_joining(me, srp_cfg).expect("valid SRP config"),
            rrp: RrpLayer::new(rrp_cfg).expect("valid RRP config"),
            rrp_events: Vec::new(),
            route_buf: Vec::new(),
        }
    }

    /// A node rebooting cold after a processor crash, with a fresh
    /// identity `epoch` (the highest ring sequence number the dead
    /// incarnation reached; see [`SrpNode::new_rejoining`]). Both
    /// layers start from scratch: the RRP's fault monitors, like the
    /// SRP's ring state, do not survive a crash.
    ///
    /// # Panics
    ///
    /// Panics if either configuration is invalid.
    pub fn new_rejoining(me: NodeId, srp_cfg: SrpConfig, rrp_cfg: RrpConfig, epoch: u64) -> Self {
        TotemNode {
            srp: SrpNode::new_rejoining(me, srp_cfg, epoch).expect("valid SRP config"),
            rrp: RrpLayer::new(rrp_cfg).expect("valid RRP config"),
            rrp_events: Vec::new(),
            route_buf: Vec::new(),
        }
    }

    /// This node's identifier.
    pub fn id(&self) -> NodeId {
        self.srp.id()
    }

    /// The SRP layer (state, stats, membership).
    pub fn srp(&self) -> &SrpNode {
        &self.srp
    }

    /// The RRP layer (network health, stats).
    pub fn rrp(&self) -> &RrpLayer {
        &self.rrp
    }

    /// Current protocol state (shortcut for `srp().state()`).
    pub fn state(&self) -> SrpState {
        self.srp.state()
    }

    /// Feeds both layers' protocol-visible state into a caller-supplied
    /// hasher (see [`totem_srp::SrpNode::fingerprint`] and
    /// [`totem_rrp::RrpLayer::fingerprint`]). The bounded model checker
    /// uses this as the per-node component of its canonical state hash.
    pub fn fingerprint<H: std::hash::Hasher>(&self, h: &mut H) {
        self.srp.fingerprint(h);
        self.rrp.fingerprint(h);
    }

    /// Begins the membership protocol on a joining node.
    pub fn start(&mut self, now: Nanos) -> Vec<NodeOutput> {
        let events = self.srp.start(now);
        let mut out = Vec::new();
        self.route_srp(now, events, &mut out);
        out
    }

    /// Injects the initial token (representative of a static ring
    /// only; see [`SrpNode::bootstrap_token`]).
    pub fn bootstrap_token(&mut self, now: Nanos) -> Vec<NodeOutput> {
        let events = self.srp.bootstrap_token(now);
        let mut out = Vec::new();
        self.route_srp(now, events, &mut out);
        out
    }

    /// Queues an application message for totally ordered broadcast.
    ///
    /// # Errors
    ///
    /// Returns [`SubmitError`] when the local send queue is full
    /// (flow-control backpressure); retry after some deliveries.
    pub fn submit(&mut self, now: Nanos, data: Bytes) -> Result<Vec<NodeOutput>, SubmitError> {
        let mut out = Vec::new();
        self.submit_into(now, data, &mut out)?;
        Ok(out)
    }

    /// Like [`TotemNode::submit`], but appends the outputs to a
    /// caller-owned buffer.
    ///
    /// # Errors
    ///
    /// Returns [`SubmitError`] when the local send queue is full;
    /// `out` is left untouched in that case.
    pub fn submit_into(
        &mut self,
        now: Nanos,
        data: Bytes,
        out: &mut Vec<NodeOutput>,
    ) -> Result<(), SubmitError> {
        let events = self.srp.submit(now, data)?;
        self.route_srp(now, events, out);
        Ok(())
    }

    /// Feeds a packet received on `net`.
    pub fn on_packet(&mut self, now: Nanos, net: NetworkId, pkt: SharedPacket) -> Vec<NodeOutput> {
        let mut out = Vec::new();
        self.on_packet_into(now, net, pkt, &mut out);
        out
    }

    /// Like [`TotemNode::on_packet`], but appends the outputs to a
    /// caller-owned buffer so the reception hot path can recycle one
    /// allocation across packets.
    pub fn on_packet_into(
        &mut self,
        now: Nanos,
        net: NetworkId,
        pkt: SharedPacket,
        out: &mut Vec<NodeOutput>,
    ) {
        let missing = self.srp.any_messages_missing();
        let mut events = std::mem::take(&mut self.rrp_events);
        self.rrp.on_packet_into(now, net, pkt, missing, &mut events);
        self.process_rrp(now, &mut events, out);
        self.rrp_events = events;
        self.drain_releases(now, out);
    }

    /// Fires any expired timers of either layer.
    pub fn on_timer(&mut self, now: Nanos) -> Vec<NodeOutput> {
        let mut out = Vec::new();
        self.on_timer_into(now, &mut out);
        out
    }

    /// Like [`TotemNode::on_timer`], but appends the outputs to a
    /// caller-owned buffer.
    pub fn on_timer_into(&mut self, now: Nanos, out: &mut Vec<NodeOutput>) {
        if self.srp.next_deadline().is_some_and(|d| d <= now) {
            let events = self.srp.on_timer(now);
            self.route_srp(now, events, out);
        }
        if self.rrp.next_deadline().is_some_and(|d| d <= now) {
            let mut events = self.rrp.on_timer(now);
            self.process_rrp(now, &mut events, out);
        }
        self.drain_releases(now, out);
    }

    /// Administrative repair of a faulty network (see
    /// [`RrpLayer::reinstate`]).
    pub fn reinstate(&mut self, now: Nanos, net: NetworkId) -> bool {
        self.rrp.reinstate(now, net)
    }

    /// Operator command: changes the replication degree K on the fly
    /// (see [`RrpLayer::set_k`]). Returns `false` if K is out of range
    /// or the node runs the unreplicated baseline.
    pub fn set_k(&mut self, now: Nanos, k: usize) -> bool {
        self.rrp.set_k(now, k)
    }

    /// Applies a seeded state corruption to the addressed machine —
    /// the self-stabilization fault plane
    /// (`totem_sim::FaultCommand::CorruptState`). The mutation is
    /// drawn entirely from a RNG seeded with `salt`, so replaying a
    /// schedule reproduces the exact same wrong bits.
    pub fn corrupt(&mut self, target: totem_sim::CorruptionTarget, salt: u64) {
        use rand::SeedableRng as _;
        use totem_sim::CorruptionTarget;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(salt);
        match target {
            CorruptionTarget::SeqCounters => self.srp.corrupt_seq_counters(&mut rng),
            CorruptionTarget::Membership => self.srp.corrupt_membership(&mut rng),
            CorruptionTarget::Rotation => self.srp.corrupt_rotation(&mut rng),
            CorruptionTarget::MonitorCounters => self.rrp.corrupt_monitors(&mut rng),
            CorruptionTarget::TokenGate => self.rrp.corrupt_token_gate(&mut rng),
        }
    }

    /// The earliest instant [`TotemNode::on_timer`] must be called.
    pub fn next_deadline(&self) -> Option<Nanos> {
        [self.srp.next_deadline(), self.rrp.next_deadline()].into_iter().flatten().min()
    }

    /// Drains the protocol state-machine transitions recorded by both
    /// layers since the last call (the conformance trace consumed by
    /// `cargo xtask conformance`).
    pub fn take_transitions(&mut self) -> Vec<Transition> {
        let mut trs = self.srp.take_transitions();
        trs.extend(self.rrp.take_transitions());
        trs
    }

    /// Passive replication: release tokens that were buffered behind
    /// gaps the SRP has since filled.
    fn drain_releases(&mut self, now: Nanos, out: &mut Vec<NodeOutput>) {
        loop {
            let mut events = self.rrp.poll_release(now, self.srp.any_messages_missing());
            if events.is_empty() {
                break;
            }
            self.process_rrp(now, &mut events, out);
        }
    }

    fn process_rrp(&mut self, now: Nanos, events: &mut Vec<RrpEvent>, out: &mut Vec<NodeOutput>) {
        for ev in events.drain(..) {
            match ev {
                RrpEvent::Deliver(pkt, _net) => {
                    let srp_events = self.srp.handle_packet(now, pkt);
                    self.route_srp(now, srp_events, out);
                }
                RrpEvent::Fault(report) => out.push(NodeOutput::Fault(report)),
                RrpEvent::Reinstated { net, at } => out.push(NodeOutput::Reinstated { net, at }),
            }
        }
    }

    /// Maps SRP events onto networks and application outputs.
    fn route_srp(&mut self, _now: Nanos, mut events: Vec<SrpEvent>, out: &mut Vec<NodeOutput>) {
        let mut routes = std::mem::take(&mut self.route_buf);
        for ev in events.drain(..) {
            match ev {
                SrpEvent::Broadcast(pkt) => {
                    // Membership traffic is replicated on every
                    // healthy network regardless of style; data takes
                    // the style's route.
                    match pkt.packet() {
                        Packet::Join(_) | Packet::Commit(_) => {
                            self.rrp.routes_for_membership_into(&mut routes);
                        }
                        Packet::Data(_) | Packet::Token(_) => {
                            self.rrp.routes_for_message_into(&mut routes);
                        }
                        // The SRP never emits another backend's
                        // packets; route nowhere.
                        Packet::RingPaxos(_) => routes.clear(),
                    }
                    for &net in &routes {
                        out.push(NodeOutput::Send { net, dst: None, pkt: pkt.clone() });
                    }
                }
                SrpEvent::Rebroadcast(pkt) => {
                    self.rrp.routes_for_retransmission_into(&mut routes);
                    for &net in &routes {
                        out.push(NodeOutput::Send { net, dst: None, pkt: pkt.clone() });
                    }
                }
                SrpEvent::ToSuccessor(succ, pkt) => {
                    match pkt.packet() {
                        Packet::Commit(_) => self.rrp.routes_for_membership_into(&mut routes),
                        Packet::Data(_) | Packet::Token(_) | Packet::Join(_) => {
                            self.rrp.routes_for_token_into(&mut routes);
                        }
                        Packet::RingPaxos(_) => routes.clear(),
                    }
                    for &net in &routes {
                        out.push(NodeOutput::Send { net, dst: Some(succ), pkt: pkt.clone() });
                    }
                }
                SrpEvent::Deliver(d) => out.push(NodeOutput::Deliver(d)),
                SrpEvent::Config(c) => out.push(NodeOutput::Config(c)),
            }
        }
        self.route_buf = routes;
        self.srp.recycle_events(events);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use totem_rrp::ReplicationStyle;

    fn node(style: ReplicationStyle, networks: usize) -> TotemNode {
        let members: Vec<NodeId> = (0..2).map(NodeId::new).collect();
        TotemNode::new_operational(
            NodeId::new(0),
            &members,
            SrpConfig::default(),
            RrpConfig::new(style, networks),
            0,
        )
    }

    #[test]
    fn active_bootstrap_fans_token_to_all_networks() {
        let mut n = node(ReplicationStyle::Active, 2);
        let out = n.bootstrap_token(0);
        let sends: Vec<&NodeOutput> =
            out.iter().filter(|o| matches!(o, NodeOutput::Send { .. })).collect();
        // The initial (idle) token is held briefly, then forwarded on
        // both networks — or forwarded immediately if something was
        // queued. Drive the hold timer.
        if sends.is_empty() {
            let deadline = n.next_deadline().unwrap();
            let out = n.on_timer(deadline);
            let nets: Vec<u8> = out
                .iter()
                .filter_map(|o| match o {
                    NodeOutput::Send { net, dst: Some(_), pkt }
                        if matches!(pkt.packet(), Packet::Token(_)) =>
                    {
                        Some(net.as_u8())
                    }
                    _ => None,
                })
                .collect();
            assert_eq!(nets, vec![0, 1], "token must go out on both networks");
        }
    }

    #[test]
    fn passive_submit_alternates_networks_for_data() {
        let mut n = node(ReplicationStyle::Passive, 2);
        n.submit(0, Bytes::from_static(b"a")).unwrap();
        let out = n.bootstrap_token(0);
        let data_nets: Vec<u8> = out
            .iter()
            .filter_map(|o| match o {
                NodeOutput::Send { net, dst: None, pkt } if pkt.data().is_some() => {
                    Some(net.as_u8())
                }
                _ => None,
            })
            .collect();
        assert_eq!(data_nets.len(), 1, "passive sends exactly one copy");
    }

    #[test]
    fn deadlines_merge_both_layers() {
        let n = node(ReplicationStyle::Passive, 2);
        // SRP token-loss timer and RRP compensation timer are both
        // armed; the composite deadline is their minimum.
        let d = n.next_deadline().unwrap();
        assert!(d <= n.srp().next_deadline().unwrap());
    }

    #[test]
    fn single_style_runs_one_network() {
        let mut n = node(ReplicationStyle::Single, 1);
        n.submit(0, Bytes::from_static(b"x")).unwrap();
        let out = n.bootstrap_token(0);
        for o in &out {
            if let NodeOutput::Send { net, .. } = o {
                assert_eq!(net.as_u8(), 0);
            }
        }
    }
}
