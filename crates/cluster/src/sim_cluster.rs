//! A whole broadcast cluster inside the deterministic simulator.
//!
//! [`SimCluster`] hosts N broadcast engines — [`TotemNode`]s by
//! default, or any other [`Broadcast`] backend selected through
//! [`ClusterConfig::with_backend`] — as actors of a
//! [`totem_sim::SimWorld`], wiring protocol sends to the simulated
//! networks and collecting deliveries, configuration changes and
//! fault reports per node. It is the substrate for the integration
//! tests and for every figure of the paper's evaluation.

use bytes::Bytes;

use totem_rrp::{FaultReport, ReplicationStyle, RrpConfig};
use totem_sim::{Actor, Ctx, FaultCommand, SimConfig, SimStats, SimTime, SimWorld};
use totem_srp::{ConfigChange, Delivered, SrpConfig, SrpState, SubmitError};
use totem_wire::{Incarnation, NetworkId, NodeId};

use crate::backend::{BackendKind, BackendNode, Broadcast};
use crate::backends::RingPaxosNode;
use crate::node::{NodeOutput, TotemNode};

/// Configuration of a simulated cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Replication style under test.
    pub style: ReplicationStyle,
    /// Number of redundant networks (defaulted from the style).
    pub networks: usize,
    /// Single ring protocol parameters.
    pub srp: SrpConfig,
    /// Redundant ring layer parameters.
    pub rrp: RrpConfig,
    /// Simulator parameters (network + CPU models, seed).
    pub sim: SimConfig,
    /// Start through the membership protocol instead of a static ring.
    pub joining: bool,
    /// Keep full per-node delivery logs (tests) or only counters
    /// (benchmarks).
    pub record_deliveries: bool,
    /// Which broadcast engine the nodes run (default: Totem).
    pub backend: BackendKind,
}

impl ClusterConfig {
    /// Defaults for `nodes` nodes under `style`: 2 networks for
    /// active/passive, K+1 for active-passive, 1 for the unreplicated
    /// baseline; 100 Mbit/s Ethernets; the paper's first-testbed CPU
    /// model.
    pub fn new(nodes: usize, style: ReplicationStyle) -> Self {
        let networks = match style {
            ReplicationStyle::Single => 1,
            ReplicationStyle::Active | ReplicationStyle::Passive => 2,
            ReplicationStyle::ActivePassive { copies } => copies as usize + 1,
            // K-of-N spans the full 1..=N range, so K alone doesn't
            // pin N; default to K networks (at least 2) and let the
            // caller override for headroom to reconfigure upward.
            ReplicationStyle::KOfN { copies } => (copies as usize).max(2),
        };
        ClusterConfig {
            nodes,
            style,
            networks,
            srp: SrpConfig::default(),
            rrp: RrpConfig::new(style, networks),
            sim: SimConfig::lan(nodes, networks),
            joining: false,
            record_deliveries: true,
            backend: BackendKind::Totem,
        }
    }

    /// Overrides the network count (keeping per-network models).
    pub fn with_networks(mut self, networks: usize) -> Self {
        assert!(networks > 0, "need at least one network");
        self.networks = networks;
        self.rrp.networks = networks;
        let model = self.sim.networks[0].clone();
        self.sim.networks = vec![model; networks];
        self
    }

    /// Replaces the simulator configuration wholesale.
    pub fn with_sim(mut self, sim: SimConfig) -> Self {
        self.sim = sim;
        self
    }

    /// Sets the simulation seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.sim.seed = seed;
        self
    }

    /// Starts the statically bootstrapped ring's global sequence
    /// numbers at `seq` instead of zero (see
    /// [`totem_srp::SrpConfig::initial_seq`]). Wrap-equivariance tests
    /// place this just below `u64::MAX`.
    pub fn with_start_seq(mut self, seq: u64) -> Self {
        self.srp.initial_seq = totem_wire::Seq::new(seq);
        self
    }

    /// Starts all nodes through the membership protocol (cold start)
    /// instead of a statically bootstrapped ring.
    pub fn joining(mut self) -> Self {
        self.joining = true;
        self
    }

    /// Disables per-message delivery logs; only counters are kept
    /// (benchmarks).
    pub fn counters_only(mut self) -> Self {
        self.record_deliveries = false;
        self
    }

    /// Selects the broadcast engine. Non-Totem backends run a static
    /// ensemble: `joining` is ignored and the RRP plane (replication
    /// style, reinstatement, K changes) does not apply.
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }
}

/// Aggregated application-level counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterCounters {
    /// Application messages delivered (summed over the queried nodes).
    pub msgs: u64,
    /// Application payload bytes delivered.
    pub bytes: u64,
    /// Sum of end-to-end latencies observed (saturation messages
    /// carry their send timestamp), in nanoseconds.
    pub latency_sum_ns: u128,
    /// Number of latency samples.
    pub latency_samples: u64,
    /// Maximum latency observed, in nanoseconds.
    pub latency_max_ns: u64,
}

impl ClusterCounters {
    /// Mean delivery latency in nanoseconds, if any samples exist.
    pub fn latency_mean_ns(&self) -> Option<u64> {
        (self.latency_samples > 0)
            .then(|| (self.latency_sum_ns / self.latency_samples as u128) as u64)
    }

    fn absorb(&mut self, other: &ClusterCounters) {
        self.msgs += other.msgs;
        self.bytes += other.bytes;
        self.latency_sum_ns += other.latency_sum_ns;
        self.latency_samples += other.latency_samples;
        self.latency_max_ns = self.latency_max_ns.max(other.latency_max_ns);
    }
}

/// One node hosted in the simulator.
struct ClusterActor {
    node: BackendNode,
    /// Builds a cold replacement engine after a crash, from the
    /// identity epoch the dead incarnation reached and the reboot's
    /// incarnation number (think: the two counters on stable storage).
    rebuild: Box<dyn Fn(u64, Incarnation) -> BackendNode + Send>,
    /// `false` while crashed by [`FaultCommand::CrashNode`].
    alive: bool,
    /// Reboots survived ([`Incarnation::ZERO`] = the original
    /// incarnation).
    incarnation: Incarnation,
    /// Identity epoch carried into the next incarnation: the highest
    /// ring sequence number any dead incarnation reached.
    epoch: u64,
    /// Per-delivery protocol processing cost model (see
    /// `CpuConfig::deliver_cost`).
    cpu: totem_sim::CpuConfig,
    bootstrap: bool,
    joining: bool,
    record: bool,
    /// Saturating workload: keep the send queue topped up with
    /// messages of this many bytes (paper §8: "every node sent as many
    /// messages as the Totem flow control mechanism permitted").
    saturate: Option<usize>,
    delivered: Vec<Delivered>,
    /// Simulated delivery instant (nanoseconds) of each entry in
    /// `delivered`.
    delivered_at: Vec<u64>,
    configs: Vec<ConfigChange>,
    faults: Vec<FaultReport>,
    reinstated: Vec<(NetworkId, u64)>,
    counters: ClusterCounters,
    /// Recycled [`NodeOutput`] buffer for the reception/timer/pump hot
    /// paths: one buffer per node, zero allocations per callback in
    /// steady state.
    out_buf: Vec<NodeOutput>,
}

impl ClusterActor {
    fn handle(&mut self, now: SimTime, outputs: &mut Vec<NodeOutput>, ctx: &mut Ctx<'_>) {
        for out in outputs.drain(..) {
            match out {
                NodeOutput::Send { net, dst, pkt } => match dst {
                    None => ctx.broadcast(net, pkt),
                    Some(d) => ctx.unicast(net, d, pkt),
                },
                NodeOutput::Deliver(d) => {
                    // Full protocol processing of a distinct message
                    // (ordering, liveness, copy to the application) —
                    // the cost the paper identifies as passive
                    // replication's ceiling (§8).
                    ctx.consume_cpu(self.cpu.deliver_cost(d.data.len()));
                    self.counters.msgs += 1;
                    self.counters.bytes += d.data.len() as u64;
                    if self.saturate.is_some() && d.data.len() >= 8 {
                        let ts = u64::from_be_bytes(d.data[..8].try_into().expect("8 bytes"));
                        let lat = now.as_nanos().saturating_sub(ts);
                        self.counters.latency_sum_ns += lat as u128;
                        self.counters.latency_samples += 1;
                        self.counters.latency_max_ns = self.counters.latency_max_ns.max(lat);
                    }
                    if self.record {
                        self.delivered.push(d);
                        self.delivered_at.push(now.as_nanos());
                    }
                }
                NodeOutput::Config(c) => self.configs.push(c),
                NodeOutput::Fault(f) => self.faults.push(f),
                NodeOutput::Reinstated { net, at } => self.reinstated.push((net, at)),
            }
        }
    }

    fn pump(&mut self, now: SimTime, ctx: &mut Ctx<'_>) {
        if !self.alive {
            return;
        }
        let Some(size) = self.saturate else { return };
        // Keep a healthy backlog without churning the full queue
        // limit on every callback.
        let mut outs = std::mem::take(&mut self.out_buf);
        while self.node.send_queue_len() < 64 {
            let mut body = vec![0u8; size.max(8)];
            body[..8].copy_from_slice(&now.as_nanos().to_be_bytes());
            match self.node.submit_into(now.as_nanos(), Bytes::from(body), &mut outs) {
                Ok(()) => self.handle(now, &mut outs, ctx),
                Err(_) => break,
            }
        }
        self.out_buf = outs;
    }

    fn arm(&mut self, ctx: &mut Ctx<'_>) {
        match self.node.next_deadline() {
            Some(d) => ctx.set_alarm(SimTime::from_nanos(d)),
            None => ctx.cancel_alarm(),
        }
        // Hand any state-machine transitions this callback produced to
        // the world's trace (timestamped, attributed to this node).
        for t in self.node.take_transitions() {
            ctx.note_transition(t);
        }
    }
}

impl Actor for ClusterActor {
    fn on_start(&mut self, now: SimTime, ctx: &mut Ctx<'_>) {
        let mut outputs = std::mem::take(&mut self.out_buf);
        if self.joining {
            self.node.start_into(now.as_nanos(), &mut outputs);
        } else if self.bootstrap {
            self.node.bootstrap_into(now.as_nanos(), &mut outputs);
        }
        self.handle(now, &mut outputs, ctx);
        self.out_buf = outputs;
        self.pump(now, ctx);
        self.arm(ctx);
    }

    fn on_packet(
        &mut self,
        now: SimTime,
        net: NetworkId,
        _from: NodeId,
        pkt: totem_wire::SharedPacket,
        ctx: &mut Ctx<'_>,
    ) {
        let mut outputs = std::mem::take(&mut self.out_buf);
        self.node.on_packet_into(now.as_nanos(), net, pkt, &mut outputs);
        self.handle(now, &mut outputs, ctx);
        self.out_buf = outputs;
        self.pump(now, ctx);
        self.arm(ctx);
    }

    fn on_alarm(&mut self, now: SimTime, ctx: &mut Ctx<'_>) {
        let mut outputs = std::mem::take(&mut self.out_buf);
        self.node.on_timer_into(now.as_nanos(), &mut outputs);
        self.handle(now, &mut outputs, ctx);
        self.out_buf = outputs;
        self.pump(now, ctx);
        self.arm(ctx);
    }

    fn on_crash(&mut self, _now: SimTime) {
        // Remember how far the dying incarnation's ordering history
        // got: the reboot must start beyond it.
        self.epoch = self.epoch.max(self.node.crash_epoch());
        self.alive = false;
    }

    fn on_corrupt(
        &mut self,
        now: SimTime,
        target: totem_sim::CorruptionTarget,
        salt: u64,
        ctx: &mut Ctx<'_>,
    ) {
        // Arbitrary-state fault: flip the addressed machine's state by
        // seeded mutation, then let the protocol run — the
        // self-stabilization hardening must route any resulting
        // inconsistency into ring reformation. Re-arm the alarm, since
        // the corruption may have moved (or disarmed) a deadline.
        self.node.corrupt(target, salt);
        let _ = now;
        self.arm(ctx);
    }

    fn on_restart(&mut self, now: SimTime, ctx: &mut Ctx<'_>) {
        // Cold reboot: all protocol state is rebuilt from scratch;
        // only the identity epoch survives (think: stable storage
        // holding a single counter). Delivery logs and counters are
        // the *observer's* records, not the node's, and accumulate
        // across incarnations.
        self.incarnation = self.incarnation.next();
        self.node = (self.rebuild)(self.epoch, self.incarnation);
        self.alive = true;
        let mut outputs = std::mem::take(&mut self.out_buf);
        self.node.start_into(now.as_nanos(), &mut outputs);
        self.handle(now, &mut outputs, ctx);
        self.out_buf = outputs;
        self.pump(now, ctx);
        self.arm(ctx);
    }
}

/// A simulated Totem cluster. See the [crate example](crate).
pub struct SimCluster {
    world: SimWorld<ClusterActor>,
}

impl std::fmt::Debug for SimCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimCluster").field("now", &self.world.now()).finish()
    }
}

impl SimCluster {
    /// Builds and wires the cluster (nothing runs until
    /// [`SimCluster::run_until`]).
    ///
    /// # Panics
    ///
    /// Panics on inconsistent configuration (mismatched network
    /// counts, invalid protocol configs).
    pub fn new(cfg: ClusterConfig) -> Self {
        assert_eq!(cfg.networks, cfg.rrp.networks, "network counts must agree");
        assert_eq!(cfg.networks, cfg.sim.network_count(), "sim network count must agree");
        assert_eq!(cfg.nodes, cfg.sim.nodes, "sim node count must agree");
        let members: Vec<NodeId> = (0..cfg.nodes as u16).map(NodeId::new).collect();
        let actors = members
            .iter()
            .map(|&me| {
                let node = match cfg.backend {
                    BackendKind::Totem => BackendNode::Totem(if cfg.joining {
                        TotemNode::new_joining(me, cfg.srp.clone(), cfg.rrp.clone())
                    } else {
                        TotemNode::new_operational(
                            me,
                            &members,
                            cfg.srp.clone(),
                            cfg.rrp.clone(),
                            0,
                        )
                    }),
                    BackendKind::RingPaxos => {
                        BackendNode::RingPaxos(RingPaxosNode::new(me, &members, 0, 0))
                    }
                };
                let rebuild: Box<dyn Fn(u64, Incarnation) -> BackendNode + Send> = match cfg.backend
                {
                    BackendKind::Totem => {
                        let srp = cfg.srp.clone();
                        let rrp = cfg.rrp.clone();
                        Box::new(move |epoch, _inc| {
                            BackendNode::Totem(TotemNode::new_rejoining(
                                me,
                                srp.clone(),
                                rrp.clone(),
                                epoch,
                            ))
                        })
                    }
                    BackendKind::RingPaxos => {
                        let ensemble = members.clone();
                        Box::new(move |epoch, inc| {
                            BackendNode::RingPaxos(RingPaxosNode::new(
                                me,
                                &ensemble,
                                inc.as_u64(),
                                epoch,
                            ))
                        })
                    }
                };
                ClusterActor {
                    node,
                    rebuild,
                    alive: true,
                    incarnation: Incarnation::ZERO,
                    epoch: 0,
                    cpu: cfg.sim.cpus[me.index()].clone(),
                    bootstrap: !cfg.joining && me == members[0],
                    joining: cfg.joining && cfg.backend == BackendKind::Totem,
                    record: cfg.record_deliveries,
                    saturate: None,
                    delivered: Vec::new(),
                    delivered_at: Vec::new(),
                    configs: Vec::new(),
                    faults: Vec::new(),
                    reinstated: Vec::new(),
                    counters: ClusterCounters::default(),
                    out_buf: Vec::new(),
                }
            })
            .collect();
        SimCluster { world: SimWorld::new(cfg.sim.clone(), actors) }
    }

    /// Advances the simulation to `t`.
    pub fn run_until(&mut self, t: SimTime) {
        self.world.run_until(t);
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.world.now()
    }

    /// Queues an application message on `node`.
    ///
    /// # Errors
    ///
    /// Returns [`SubmitError`] on flow-control backpressure, or with
    /// `limit == 0` when the node is currently crashed (a dead
    /// processor accepts nothing).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn try_submit(&mut self, node: usize, data: Bytes) -> Result<(), SubmitError> {
        self.world.with_actor(NodeId::new(node as u16), |a, now, ctx| {
            if !a.alive {
                return Err(SubmitError { limit: 0 });
            }
            let mut outs = std::mem::take(&mut a.out_buf);
            match a.node.submit_into(now.as_nanos(), data, &mut outs) {
                Ok(()) => {
                    a.handle(now, &mut outs, ctx);
                    a.out_buf = outs;
                    a.arm(ctx);
                    Ok(())
                }
                Err(e) => {
                    a.out_buf = outs;
                    Err(e)
                }
            }
        })
    }

    /// Queues an application message, panicking on backpressure
    /// (convenient in tests).
    ///
    /// # Panics
    ///
    /// Panics if the node's send queue is full or `node` is out of
    /// range.
    pub fn submit(&mut self, node: usize, data: Bytes) {
        self.try_submit(node, data).expect("send queue full");
    }

    /// Turns on the saturating workload on every node: each keeps its
    /// send queue topped up with `msg_size`-byte messages (minimum 8;
    /// a send timestamp rides in the first 8 bytes for latency
    /// accounting). This is the paper's §8 workload ("every node sent
    /// as many messages as the Totem flow control mechanism
    /// permitted").
    ///
    /// # Example
    ///
    /// ```
    /// # use totem_cluster::{ClusterConfig, SimCluster};
    /// # use totem_rrp::ReplicationStyle;
    /// # use totem_sim::SimTime;
    /// let cfg = ClusterConfig::new(4, ReplicationStyle::Single).counters_only();
    /// let mut cluster = SimCluster::new(cfg);
    /// cluster.enable_saturation(1000);
    /// cluster.run_until(SimTime::from_millis(100));
    /// assert!(cluster.counters().msgs > 1000, "the ring should be saturated");
    /// ```
    pub fn enable_saturation(&mut self, msg_size: usize) {
        for i in 0..self.nodes() {
            self.world.with_actor(NodeId::new(i as u16), |a, now, ctx| {
                a.saturate = Some(msg_size);
                a.pump(now, ctx);
                a.arm(ctx);
            });
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.world.config().nodes
    }

    /// Messages delivered at `node`, in delivery order (empty when
    /// built with [`ClusterConfig::counters_only`]).
    pub fn delivered(&self, node: usize) -> &[Delivered] {
        &self.world.actor(NodeId::new(node as u16)).delivered
    }

    /// Simulated delivery instants (nanoseconds) matching
    /// [`SimCluster::delivered`] one-to-one.
    pub fn delivery_times(&self, node: usize) -> &[u64] {
        &self.world.actor(NodeId::new(node as u16)).delivered_at
    }

    /// Drops the oldest delivery-log entries of `node`, keeping only
    /// the most recent `keep_last`; returns how many were dropped.
    /// Counters are untouched — only the replay log shrinks. The
    /// rolling soak oracle uses this to keep a multi-hour run's memory
    /// proportional to its check window instead of its length.
    pub fn prune_delivered(&mut self, node: usize, keep_last: usize) -> usize {
        let actor = self.world.actor_mut(NodeId::new(node as u16));
        let excess = actor.delivered.len().saturating_sub(keep_last);
        if excess > 0 {
            actor.delivered.drain(..excess);
            actor.delivered_at.drain(..excess);
        }
        excess
    }

    /// Configuration changes delivered at `node`.
    pub fn configs(&self, node: usize) -> &[ConfigChange] {
        &self.world.actor(NodeId::new(node as u16)).configs
    }

    /// Fault reports raised at `node`.
    pub fn faults(&self, node: usize) -> &[FaultReport] {
        &self.world.actor(NodeId::new(node as u16)).faults
    }

    /// Reinstatement events observed at `node`: `(network, at-nanos)`.
    pub fn reinstatements(&self, node: usize) -> &[(NetworkId, u64)] {
        &self.world.actor(NodeId::new(node as u16)).reinstated
    }

    /// Administrative repair of a faulty network at one node (see
    /// [`totem_rrp::RrpLayer::reinstate`]).
    pub fn reinstate(&mut self, node: usize, net: NetworkId) -> bool {
        self.world.with_actor(NodeId::new(node as u16), |a, now, ctx| {
            let r = a.node.reinstate(now.as_nanos(), net);
            a.arm(ctx);
            r
        })
    }

    /// Operator reconfiguration: changes one node's replication degree
    /// K on the fly (see [`totem_rrp::RrpLayer::set_k`]).
    pub fn set_k(&mut self, node: usize, k: usize) -> bool {
        self.world.with_actor(NodeId::new(node as u16), |a, now, ctx| {
            let r = a.node.set_k(now.as_nanos(), k);
            a.arm(ctx);
            r
        })
    }

    /// Counters of one node.
    pub fn node_counters(&self, node: usize) -> ClusterCounters {
        self.world.actor(NodeId::new(node as u16)).counters
    }

    /// Counters summed over all nodes.
    pub fn counters(&self) -> ClusterCounters {
        let mut total = ClusterCounters::default();
        for a in self.world.actors() {
            total.absorb(&a.counters);
        }
        total
    }

    /// Which engine this cluster runs.
    pub fn backend(&self) -> BackendKind {
        self.world.actor(NodeId::new(0)).node.kind()
    }

    /// Protocol state of one node as seen by the membership observers
    /// (non-Totem backends are always operational).
    pub fn srp_state(&self, node: usize) -> SrpState {
        self.world.actor(NodeId::new(node as u16)).node.srp_state()
    }

    /// Membership view of one node: the ring membership (Totem) or
    /// the static ensemble (Ring Paxos).
    pub fn members(&self, node: usize) -> Option<Vec<NodeId>> {
        self.world.actor(NodeId::new(node as u16)).node.members()
    }

    /// Which networks `node` has marked faulty (all-false on backends
    /// without a redundant-network plane).
    pub fn faulty_networks(&self, node: usize) -> Vec<bool> {
        let networks = self.world.config().network_count();
        self.world.actor(NodeId::new(node as u16)).node.faulty_networks(networks)
    }

    /// Schedules a fault command at a simulated instant.
    pub fn schedule_fault(&mut self, at: SimTime, cmd: FaultCommand) {
        self.world.schedule_fault(at, cmd);
    }

    /// Applies a fault command immediately.
    pub fn fault_now(&mut self, cmd: FaultCommand) {
        self.world.fault_now(cmd);
    }

    /// Crashes `node` immediately (see [`FaultCommand::CrashNode`]).
    pub fn crash(&mut self, node: usize) {
        self.fault_now(FaultCommand::CrashNode { node: NodeId::new(node as u16) });
    }

    /// Restarts a crashed `node` immediately; it reboots cold with a
    /// fresh identity epoch and rejoins through the membership
    /// protocol (see [`FaultCommand::RestartNode`]).
    pub fn restart(&mut self, node: usize) {
        self.fault_now(FaultCommand::RestartNode { node: NodeId::new(node as u16) });
    }

    /// Corrupts one machine of `node`'s in-memory protocol state
    /// immediately (see [`FaultCommand::CorruptState`]): a seeded
    /// arbitrary-state fault the cluster must stabilize from.
    pub fn corrupt(&mut self, node: usize, target: totem_sim::CorruptionTarget, salt: u64) {
        self.fault_now(FaultCommand::CorruptState { node: NodeId::new(node as u16), target, salt });
    }

    /// Whether `node` is currently alive (not crashed).
    pub fn is_alive(&self, node: usize) -> bool {
        self.world.actor(NodeId::new(node as u16)).alive
    }

    /// How many times `node` has rebooted ([`Incarnation::ZERO`] =
    /// original incarnation).
    pub fn incarnation(&self, node: usize) -> Incarnation {
        self.world.actor(NodeId::new(node as u16)).incarnation
    }

    /// Diagnostic snapshot of one node's RRP monitors (empty on
    /// backends without a redundant-network plane).
    pub fn monitor_report(&self, node: usize) -> Vec<(totem_rrp::MonitorKind, Vec<u64>)> {
        self.world.actor(NodeId::new(node as u16)).node.monitor_report()
    }

    /// Wire-level statistics of the simulated networks.
    pub fn net_stats(&self) -> &SimStats {
        self.world.stats()
    }

    /// Enables wire-level tracing (see [`totem_sim::TraceLog`]),
    /// retaining up to `capacity` events.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.world.enable_trace(capacity);
    }

    /// The wire-level trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&totem_sim::TraceLog> {
        self.world.trace()
    }

    /// Per-node SRP statistics (zeroes on non-Totem backends).
    pub fn srp_stats(&self, node: usize) -> totem_srp::node::SrpStats {
        self.world.actor(NodeId::new(node as u16)).node.srp_stats()
    }

    /// Ring identity of one node, if the backend forms one.
    pub fn ring_id(&self, node: usize) -> Option<totem_wire::RingId> {
        self.world.actor(NodeId::new(node as u16)).node.ring_id()
    }

    /// Highest ordering watermark `node` has ever observed — ring
    /// sequence (Totem) or consensus instance (Ring Paxos); survives
    /// crashes as the identity epoch.
    pub fn max_ring_seq(&self, node: usize) -> u64 {
        self.world.actor(NodeId::new(node as u16)).node.max_ring_seq()
    }

    /// Feeds the observable cluster state into a caller-supplied
    /// hasher: per node the liveness flag, incarnation count, both
    /// protocol layers' fingerprints ([`TotemNode::fingerprint`]) and
    /// the observer logs (delivery log, configuration-change and
    /// fault-report counts), plus the fault plane (armed faults,
    /// partitions, crashes) and the simulator's event-queue horizon.
    /// The bounded model checker (`crate::mc`) uses this as the
    /// canonical state hash for visited-state pruning.
    pub fn state_fingerprint<H: std::hash::Hasher>(&self, h: &mut H) {
        use std::hash::Hash as _;
        for n in 0..self.nodes() {
            let a = self.world.actor(NodeId::new(n as u16));
            a.alive.hash(h);
            a.incarnation.hash(h);
            a.node.fingerprint(h);
            a.delivered.len().hash(h);
            for d in &a.delivered {
                d.sender.hash(h);
                d.data.as_ref().hash(h);
            }
            a.configs.len().hash(h);
            a.faults.len().hash(h);
        }
        self.world.faults().fingerprint(h);
        self.world.pending_events().hash(h);
        self.world.peek_event_time().map(|t| t.as_nanos()).hash(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use totem_sim::SimDuration;

    #[test]
    fn four_node_active_cluster_delivers_in_total_order() {
        let mut c = SimCluster::new(ClusterConfig::new(4, ReplicationStyle::Active).with_seed(1));
        for i in 0..4 {
            c.submit(i, Bytes::from(format!("m{i}")));
        }
        c.run_until(SimTime::from_millis(500));
        let reference: Vec<(NodeId, Bytes)> =
            c.delivered(0).iter().map(|d| (d.sender, d.data.clone())).collect();
        assert_eq!(reference.len(), 4);
        for node in 1..4 {
            let order: Vec<(NodeId, Bytes)> =
                c.delivered(node).iter().map(|d| (d.sender, d.data.clone())).collect();
            assert_eq!(order, reference, "node {node} disagrees on order");
        }
    }

    #[test]
    fn saturation_produces_sustained_throughput() {
        let mut c = SimCluster::new(
            ClusterConfig::new(4, ReplicationStyle::Single).counters_only().with_seed(2),
        );
        c.enable_saturation(1000);
        c.run_until(SimTime::from_millis(500));
        let counters = c.counters();
        assert!(counters.msgs > 1000, "only {} messages in 500ms", counters.msgs);
        assert!(counters.latency_mean_ns().unwrap() > 0);
    }

    #[test]
    fn cold_start_via_membership_protocol() {
        let mut c = SimCluster::new(ClusterConfig::new(3, ReplicationStyle::Active).joining());
        c.run_until(SimTime::from_secs(2));
        for n in 0..3 {
            assert_eq!(c.srp_state(n), SrpState::Operational, "node {n} not operational");
            assert_eq!(c.members(n).unwrap().len(), 3);
        }
    }

    #[test]
    fn counters_only_mode_keeps_no_logs() {
        let mut c = SimCluster::new(
            ClusterConfig::new(2, ReplicationStyle::Single).counters_only().with_seed(3),
        );
        c.submit(0, Bytes::from_static(b"x"));
        c.run_until(SimTime::from_millis(200));
        assert!(c.delivered(0).is_empty());
        assert_eq!(c.counters().msgs, 2, "both nodes count the delivery");
    }

    #[test]
    fn crashed_node_rejoins_cold_through_membership() {
        let mut c = SimCluster::new(ClusterConfig::new(3, ReplicationStyle::Active).with_seed(5));
        c.run_until(SimTime::from_millis(100));
        c.crash(2);
        assert!(!c.is_alive(2));
        assert!(c.try_submit(2, Bytes::from_static(b"dead")).is_err());
        // Survivors reform a 2-node ring once the token-loss timer and
        // consensus watchdog run their course.
        c.run_until(SimTime::from_secs(4));
        for n in 0..2 {
            assert_eq!(c.srp_state(n), SrpState::Operational, "survivor {n} not operational");
            assert_eq!(
                c.members(n).unwrap(),
                vec![NodeId::new(0), NodeId::new(1)],
                "survivor {n} should exclude the crashed node"
            );
        }
        // Reboot: the node rejoins cold via Gather → Commit → Recovery
        // and every node converges on the full ring again.
        c.restart(2);
        assert!(c.is_alive(2));
        assert_eq!(c.incarnation(2), Incarnation::new(1));
        c.run_until(SimTime::from_secs(8));
        for n in 0..3 {
            assert_eq!(c.srp_state(n), SrpState::Operational, "node {n} not operational");
            assert_eq!(c.members(n).unwrap().len(), 3, "node {n} missing members");
        }
        // The rejoined incarnation carries a fresh identity epoch.
        let survivors_ring = c.members(0).unwrap();
        assert_eq!(survivors_ring, c.members(2).unwrap());
        // Every surviving node delivered a new configuration change
        // that includes the rejoined node.
        for n in 0..2 {
            let last = c.configs(n).last().expect("survivor saw config changes");
            assert_eq!(last.members.len(), 3, "survivor {n} final config lacks rejoiner");
        }
    }

    #[test]
    fn run_for_composes_with_run_until() {
        let mut c = SimCluster::new(ClusterConfig::new(2, ReplicationStyle::Single));
        let t0 = c.now();
        c.run_until(t0 + SimDuration::from_millis(5));
        assert_eq!(c.now(), SimTime::from_millis(5));
    }
}
