//! Order-preserving work fan-out for seed sweeps.
//!
//! `cargo xtask chaos --jobs N`, `cargo xtask soak --jobs N`, and
//! `totem soak --jobs N` all run one fully deterministic simulation
//! per seed; the only shared state a sweep needs is the work counter.
//! [`fan_out`] pulls item indices from an atomic cursor and parks each
//! result in its own slot, so the collected output is identical for
//! any thread count — reports print in seed order and stay
//! bit-for-bit reproducible.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Default worker count: the machine's available parallelism.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Runs `f(i)` for every `i in 0..count` on up to `jobs` threads and
/// returns the results in item order.
pub fn fan_out<T, F>(jobs: usize, count: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let jobs = jobs.max(1).min(count.max(1));
    if jobs == 1 {
        return (0..count).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                let out = f(i);
                *slots[i].lock().expect("no worker panicked holding a slot") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("no worker panicked holding a slot")
                .expect("every index below the cursor was filled")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_item_order_for_any_job_count() {
        let serial = fan_out(1, 17, |i| i * i);
        for jobs in [2, 4, 32] {
            assert_eq!(fan_out(jobs, 17, |i| i * i), serial);
        }
        assert_eq!(serial, (0..17).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_item_sweeps_work() {
        assert_eq!(fan_out(8, 0, |i| i), Vec::<usize>::new());
        assert_eq!(fan_out(8, 1, |i| i + 40), vec![40]);
    }
}
