//! The reusable EVS invariant oracle.
//!
//! Every safety property the fault-injection tests assert lives here,
//! expressed as functions from a finished [`SimCluster`] to a list of
//! [`Violation`]s — so the same checks serve `#[test]` assertions (via
//! the panicking wrappers [`assert_safety`] and
//! [`assert_identical_delivery`]) and the chaos harness (which wants
//! the violations as data, to drive shrinking).
//!
//! The central check is **agreement in the sense of extended virtual
//! synchrony**: any two nodes order the messages they have in common
//! identically. Full prefix equality would be too strong — while
//! partitioned, each component legitimately delivers its own members'
//! messages, so two nodes' logs may interleave differently once the
//! partition heals. [`check_prefix_equality`] implements that
//! deliberately-too-strong check anyway, as a known-bad oracle used to
//! demonstrate the shrinker on a reproducible false positive.

use std::collections::{HashMap, HashSet, VecDeque};

use bytes::Bytes;
use totem_wire::NodeId;

use crate::sim_cluster::SimCluster;

/// One oracle violation: a safety or liveness property that did not
/// hold on the observed execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A node delivered the same `(sender, payload)` twice.
    Integrity {
        /// The delivering node.
        node: usize,
        /// The duplicated payload, printable-escaped.
        payload: String,
    },
    /// A node delivered one sender's messages out of submission order.
    FifoOrder {
        /// The delivering node.
        node: usize,
        /// The sender whose messages were reordered.
        sender: NodeId,
        /// Counter delivered first.
        prev: u64,
        /// The (smaller or equal) counter delivered after it.
        next: u64,
    },
    /// A payload did not carry the `...-<counter>` suffix the FIFO
    /// check keys on — the labeled replacement for what used to be a
    /// raw `unwrap()`/`expect()` panic in the test helpers.
    MalformedPayload {
        /// The delivering node.
        node: usize,
        /// The offending payload, printable-escaped.
        payload: String,
    },
    /// Two nodes order their common messages differently (the EVS
    /// agreement property).
    Agreement {
        /// First node.
        a: usize,
        /// Second node.
        b: usize,
        /// Index into the common subsequence where they diverge.
        position: usize,
    },
    /// Two nodes' full delivery logs are not prefix-related — only a
    /// violation under the deliberately-too-strong
    /// [`check_prefix_equality`] oracle.
    PrefixEquality {
        /// First node.
        a: usize,
        /// Second node.
        b: usize,
    },
    /// A node reported a network faulty although no fault command ever
    /// targeted that network and no processor crashed.
    FaultReportUnsound {
        /// The reporting node.
        node: usize,
        /// The network it blamed.
        net: u8,
    },
    /// The cluster failed to re-converge after all faults healed.
    NotConverged {
        /// Human-readable description of what was still wrong.
        detail: String,
    },
    /// A per-state structural invariant failed: malformed membership
    /// view, ring-identity disagreement, or a non-monotone ring
    /// sequence (RFC 1982 order). Raised by the bounded model checker's
    /// per-state checks ([`check_view_sanity`] and the explorer's
    /// parent/child sequence comparison), not by the end-of-run oracle.
    StateInvariant {
        /// The offending node.
        node: usize,
        /// Human-readable description of the broken invariant.
        detail: String,
    },
}

impl Violation {
    /// A stable discriminant name, used by the shrinker to decide
    /// whether a shrunk schedule reproduces "the same" failure.
    pub fn kind(&self) -> &'static str {
        match self {
            Violation::Integrity { .. } => "integrity",
            Violation::FifoOrder { .. } => "fifo-order",
            Violation::MalformedPayload { .. } => "malformed-payload",
            Violation::Agreement { .. } => "agreement",
            Violation::PrefixEquality { .. } => "prefix-equality",
            Violation::FaultReportUnsound { .. } => "fault-report-unsound",
            Violation::NotConverged { .. } => "not-converged",
            Violation::StateInvariant { .. } => "state-invariant",
        }
    }
}

impl core::fmt::Display for Violation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Violation::Integrity { node, payload } => {
                write!(f, "integrity: node {node} delivered {payload:?} twice")
            }
            Violation::FifoOrder { node, sender, prev, next } => write!(
                f,
                "fifo-order: node {node} delivered sender {sender} counter {next} after {prev}"
            ),
            Violation::MalformedPayload { node, payload } => write!(
                f,
                "malformed-payload: node {node} delivered {payload:?} without a counter suffix"
            ),
            Violation::Agreement { a, b, position } => write!(
                f,
                "agreement: nodes {a} and {b} order their common messages differently \
                 (first divergence at common index {position})"
            ),
            Violation::PrefixEquality { a, b } => {
                write!(f, "prefix-equality: nodes {a} and {b} delivery logs are not prefix-related")
            }
            Violation::FaultReportUnsound { node, net } => write!(
                f,
                "fault-report-unsound: node {node} declared network {net} faulty \
                 with no fault injected there and no crash in the run"
            ),
            Violation::NotConverged { detail } => write!(f, "not-converged: {detail}"),
            Violation::StateInvariant { node, detail } => {
                write!(f, "state-invariant: node {node}: {detail}")
            }
        }
    }
}

fn printable(data: &Bytes) -> String {
    String::from_utf8_lossy(data).into_owned()
}

fn orders(cluster: &SimCluster, nodes: usize) -> Vec<Vec<(NodeId, Bytes)>> {
    (0..nodes)
        .map(|n| cluster.delivered(n).iter().map(|d| (d.sender, d.data.clone())).collect())
        .collect()
}

/// The per-sender counter a workload payload carries as its
/// `...-<counter>` suffix, if present.
pub fn payload_counter(data: &Bytes) -> Option<u64> {
    String::from_utf8_lossy(data).rsplit('-').next()?.parse().ok()
}

fn integrity_of(orders: &[Vec<(NodeId, Bytes)>]) -> Vec<Violation> {
    let mut violations = Vec::new();
    for (n, order) in orders.iter().enumerate() {
        let mut seen = HashSet::new();
        for item in order {
            if !seen.insert(item.clone()) {
                violations.push(Violation::Integrity { node: n, payload: printable(&item.1) });
            }
        }
    }
    violations
}

/// Integrity: no node delivers the same `(sender, payload)` twice.
pub fn check_integrity(cluster: &SimCluster, nodes: usize) -> Vec<Violation> {
    integrity_of(&orders(cluster, nodes))
}

fn fifo_of(orders: &[Vec<(NodeId, Bytes)>]) -> Vec<Violation> {
    let mut violations = Vec::new();
    for (n, order) in orders.iter().enumerate() {
        let mut last: HashMap<NodeId, u64> = HashMap::new();
        for (sender, data) in order {
            let Some(counter) = payload_counter(data) else {
                violations.push(Violation::MalformedPayload { node: n, payload: printable(data) });
                continue;
            };
            if let Some(prev) = last.insert(*sender, counter) {
                if prev >= counter {
                    violations.push(Violation::FifoOrder {
                        node: n,
                        sender: *sender,
                        prev,
                        next: counter,
                    });
                }
            }
        }
    }
    violations
}

/// Per-sender FIFO: each node delivers one sender's messages in
/// strictly increasing counter order (payloads embed a per-sender
/// counter as a `-<n>` suffix).
pub fn check_fifo(cluster: &SimCluster, nodes: usize) -> Vec<Violation> {
    fifo_of(&orders(cluster, nodes))
}

fn agreement_of(orders: &[Vec<(NodeId, Bytes)>]) -> Vec<Violation> {
    let mut violations = Vec::new();
    let nodes = orders.len();
    for a in 0..nodes {
        for b in a + 1..nodes {
            let set_a: HashSet<_> = orders[a].iter().collect();
            let set_b: HashSet<_> = orders[b].iter().collect();
            let common_a: Vec<_> = orders[a].iter().filter(|x| set_b.contains(x)).collect();
            let common_b: Vec<_> = orders[b].iter().filter(|x| set_a.contains(x)).collect();
            if common_a != common_b {
                let position = common_a.iter().zip(&common_b).take_while(|(x, y)| x == y).count();
                violations.push(Violation::Agreement { a, b, position });
            }
        }
    }
    violations
}

/// Agreement on common messages (extended virtual synchrony): any two
/// nodes deliver the messages they both have in the same relative
/// order.
pub fn check_agreement(cluster: &SimCluster, nodes: usize) -> Vec<Violation> {
    agreement_of(&orders(cluster, nodes))
}

/// The reconvergence oracle's delivery check: EVS safety re-armed
/// after self-stabilization. Integrity, per-sender FIFO, and agreement
/// are checked only on each node's delivery-log suffix starting at
/// `from[n]` (the log length at the final heal). The pre-stabilization
/// prefix is exempt by design — while running on corrupted state a
/// node is not a correct processor in the self-stabilization sense,
/// and a rewound delivery watermark may cause a bounded, benign
/// re-delivery before the node routes itself through Gather. After
/// stabilization the full EVS contract must hold again, with no
/// further exemptions.
pub fn check_suffix_safety(cluster: &SimCluster, nodes: usize, from: &[usize]) -> Vec<Violation> {
    let suffixes: Vec<Vec<(NodeId, Bytes)>> = (0..nodes)
        .map(|n| {
            let skip = from.get(n).copied().unwrap_or(0);
            cluster.delivered(n).iter().skip(skip).map(|d| (d.sender, d.data.clone())).collect()
        })
        .collect();
    let mut violations = integrity_of(&suffixes);
    violations.extend(fifo_of(&suffixes));
    violations.extend(agreement_of(&suffixes));
    violations
}

/// The deliberately-too-strong check: requires any two nodes' **full**
/// delivery logs to be prefix-related. Under EVS this is false — a
/// healed partition leaves each side with its own messages ordered
/// ahead of the other side's — so this oracle produces reproducible
/// false positives. It exists to exercise and demonstrate the
/// shrinker; do not use it as a correctness gate.
pub fn check_prefix_equality(cluster: &SimCluster, nodes: usize) -> Vec<Violation> {
    let mut violations = Vec::new();
    let orders = orders(cluster, nodes);
    for a in 0..nodes {
        for b in a + 1..nodes {
            let len = orders[a].len().min(orders[b].len());
            if orders[a][..len] != orders[b][..len] {
                violations.push(Violation::PrefixEquality { a, b });
            }
        }
    }
    violations
}

/// All EVS safety checks together: integrity, per-sender FIFO, and
/// agreement on common messages.
pub fn check_safety(cluster: &SimCluster, nodes: usize) -> Vec<Violation> {
    let mut violations = check_integrity(cluster, nodes);
    violations.extend(check_fifo(cluster, nodes));
    violations.extend(check_agreement(cluster, nodes));
    violations
}

/// Fault-report soundness: a node may declare network `k` faulty only
/// if some fault command targeted `k`, or a processor crashed during
/// the run (a peer's crash surfaces as token timeouts that the
/// monitors can attribute to any network).
pub fn check_fault_reports(
    cluster: &SimCluster,
    nodes: usize,
    targeted_nets: &[bool],
    any_crash: bool,
) -> Vec<Violation> {
    if any_crash {
        return Vec::new();
    }
    let mut violations = Vec::new();
    for n in 0..nodes {
        for report in cluster.faults(n) {
            let net = report.net.as_u8();
            if !targeted_nets.get(net as usize).copied().unwrap_or(false) {
                violations.push(Violation::FaultReportUnsound { node: n, net });
            }
        }
    }
    violations
}

/// Per-state membership/view sanity, checked at every explored state
/// by the bounded model checker (`crate::mc`):
///
/// * an alive node in the `Operational` state has a membership view;
/// * that view contains the node itself, names only in-range
///   processors, and is sorted ascending with no duplicates (the SRP
///   ring order);
/// * any two alive operational nodes reporting the **same** ring
///   identity report the **same** membership (a ring id names exactly
///   one membership — disagreement here is a split-brain view).
pub fn check_view_sanity(cluster: &SimCluster, nodes: usize) -> Vec<Violation> {
    let mut violations = Vec::new();
    let mut by_ring: HashMap<totem_wire::RingId, (usize, Vec<NodeId>)> = HashMap::new();
    for n in 0..nodes {
        if !cluster.is_alive(n) || cluster.srp_state(n) != totem_srp::SrpState::Operational {
            continue;
        }
        let Some(members) = cluster.members(n) else {
            violations.push(Violation::StateInvariant {
                node: n,
                detail: "operational but reports no membership view".into(),
            });
            continue;
        };
        let me = NodeId::new(n as u16);
        if !members.contains(&me) {
            violations.push(Violation::StateInvariant {
                node: n,
                detail: format!("operational view {members:?} does not contain the node itself"),
            });
        }
        if members.iter().any(|m| m.index() >= nodes) {
            violations.push(Violation::StateInvariant {
                node: n,
                detail: format!("view {members:?} names an out-of-range processor"),
            });
        }
        if members.windows(2).any(|w| w[0] >= w[1]) {
            violations.push(Violation::StateInvariant {
                node: n,
                detail: format!("view {members:?} is not strictly ascending ring order"),
            });
        }
        let Some(ring) = cluster.ring_id(n) else {
            violations.push(Violation::StateInvariant {
                node: n,
                detail: "operational but reports no ring identity".into(),
            });
            continue;
        };
        match by_ring.get(&ring) {
            None => {
                by_ring.insert(ring, (n, members));
            }
            Some((first, reference)) => {
                if *reference != members {
                    violations.push(Violation::StateInvariant {
                        node: n,
                        detail: format!(
                            "ring {ring:?} has two memberships: node {first} sees {reference:?}, \
                             node {n} sees {members:?}"
                        ),
                    });
                }
            }
        }
    }
    violations
}

/// Strict total-delivery agreement: every node delivered exactly
/// `expect` messages, all in the identical order. This is the right
/// check for scenarios without partitions or crashes, where full
/// agreement (not just EVS agreement) is guaranteed.
pub fn check_identical_delivery(
    cluster: &SimCluster,
    nodes: usize,
    expect: usize,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    let reference: Vec<Bytes> = cluster.delivered(0).iter().map(|d| d.data.clone()).collect();
    if reference.len() != expect {
        violations.push(Violation::NotConverged {
            detail: format!("node 0 delivered {} of {expect} messages", reference.len()),
        });
    }
    for n in 1..nodes {
        let o: Vec<Bytes> = cluster.delivered(n).iter().map(|d| d.data.clone()).collect();
        if o != reference {
            violations.push(Violation::Agreement { a: 0, b: n, position: 0 });
        }
    }
    violations
}

/// Incremental EVS oracle with a bounded retained-delivery horizon,
/// for soak runs whose full delivery logs would otherwise grow with
/// the run length.
///
/// [`RollingOracle::scan`] consumes every delivery the cluster has
/// recorded since the previous scan, checks per-sender FIFO against
/// persistent high-water counters, checks integrity and cross-node
/// agreement over a retained tail of the most recent `window`
/// deliveries per node, then prunes the cluster's own logs down to
/// the window. Peak retained state is O(nodes × window) regardless of
/// how many hours the soak simulates.
///
/// The horizon is a real trade-off, stated plainly: a duplicate
/// arriving more than `window` deliveries after its first copy, or an
/// agreement divergence between messages that have already left both
/// tails, is invisible here. The bounded chaos suite's full-log
/// oracle covers those regimes.
#[derive(Debug)]
pub struct RollingOracle {
    window: usize,
    /// Per-node, per-sender highest counter delivered (persistent
    /// FIFO state — O(nodes × senders), not O(deliveries)).
    fifo: Vec<HashMap<NodeId, u64>>,
    /// Per-node retained tail of recent deliveries, in order.
    tails: Vec<VecDeque<(NodeId, Bytes)>>,
    /// Multiset of the tail contents (windowed duplicate detection).
    seen: Vec<HashMap<(NodeId, Bytes), u32>>,
    /// Per-node index of the first not-yet-consumed entry in the
    /// cluster's (pruned) delivery log.
    cursor: Vec<usize>,
    /// Deliveries ever consumed per node.
    consumed: Vec<u64>,
}

impl RollingOracle {
    /// An oracle for `nodes` nodes retaining the last `window`
    /// deliveries per node.
    pub fn new(nodes: usize, window: usize) -> Self {
        RollingOracle {
            window: window.max(1),
            fifo: vec![HashMap::new(); nodes],
            tails: vec![VecDeque::new(); nodes],
            seen: vec![HashMap::new(); nodes],
            cursor: vec![0; nodes],
            consumed: vec![0; nodes],
        }
    }

    fn push_tail(&mut self, n: usize, item: (NodeId, Bytes)) -> bool {
        let dup = {
            let count = self.seen[n].entry(item.clone()).or_insert(0);
            *count += 1;
            *count > 1
        };
        self.tails[n].push_back(item);
        if self.tails[n].len() > self.window {
            let old = self.tails[n].pop_front().expect("tail over window is non-empty");
            if let Some(count) = self.seen[n].get_mut(&old) {
                *count -= 1;
                if *count == 0 {
                    self.seen[n].remove(&old);
                }
            }
        }
        dup
    }

    /// Consumes all deliveries since the previous scan, returns any
    /// violations, and prunes the cluster's delivery logs to the
    /// window.
    pub fn scan(&mut self, cluster: &mut SimCluster) -> Vec<Violation> {
        let nodes = self.tails.len();
        let mut violations = Vec::new();
        for n in 0..nodes {
            let fresh: Vec<(NodeId, Bytes)> = cluster.delivered(n)[self.cursor[n]..]
                .iter()
                .map(|d| (d.sender, d.data.clone()))
                .collect();
            for (sender, data) in fresh {
                match payload_counter(&data) {
                    None => violations
                        .push(Violation::MalformedPayload { node: n, payload: printable(&data) }),
                    Some(counter) => {
                        if let Some(&prev) = self.fifo[n].get(&sender) {
                            if prev >= counter {
                                violations.push(Violation::FifoOrder {
                                    node: n,
                                    sender,
                                    prev,
                                    next: counter,
                                });
                            }
                        }
                        self.fifo[n].insert(sender, counter);
                    }
                }
                if self.push_tail(n, (sender, data.clone())) {
                    violations.push(Violation::Integrity { node: n, payload: printable(&data) });
                }
                self.consumed[n] += 1;
            }
            self.cursor[n] = cluster.delivered(n).len();
            self.cursor[n] -= cluster.prune_delivered(n, self.window);
        }
        let tails: Vec<Vec<(NodeId, Bytes)>> =
            self.tails.iter().map(|t| t.iter().cloned().collect()).collect();
        violations.extend(agreement_of(&tails));
        violations
    }

    /// Re-arms the oracle after an injected state corruption: consumes
    /// and exempts everything delivered so far (the stabilization
    /// interval), clears the FIFO marks and retained tails, and
    /// resumes checking from the next delivery — the rolling analogue
    /// of [`check_suffix_safety`]'s pre-stabilization exemption.
    pub fn rearm(&mut self, cluster: &mut SimCluster) {
        for n in 0..self.tails.len() {
            let len = cluster.delivered(n).len();
            self.consumed[n] += (len - self.cursor[n]) as u64;
            cluster.prune_delivered(n, 0);
            self.cursor[n] = 0;
            self.tails[n].clear();
            self.seen[n].clear();
            self.fifo[n].clear();
        }
    }

    /// Deliveries ever consumed across all nodes.
    pub fn total_consumed(&self) -> u64 {
        self.consumed.iter().sum()
    }

    /// Deliveries currently retained — oracle tails plus the cluster's
    /// pruned logs. The O(window) memory test bounds this quantity's
    /// peak over a long run.
    pub fn retained(&self, cluster: &SimCluster) -> usize {
        (0..self.tails.len()).map(|n| self.tails[n].len() + cluster.delivered(n).len()).sum()
    }
}

/// Panics with every violation listed if the EVS safety checks fail —
/// the shared helper behind the fault-injection tests' assertions.
///
/// # Panics
///
/// Panics if [`check_safety`] reports any violation.
pub fn assert_safety(cluster: &SimCluster, nodes: usize) {
    let violations = check_safety(cluster, nodes);
    assert!(
        violations.is_empty(),
        "EVS safety violated:\n{}",
        violations.iter().map(|v| format!("  - {v}")).collect::<Vec<_>>().join("\n")
    );
}

/// Panics unless every node delivered exactly `expect` messages in the
/// identical order — the shared helper behind the network-fault tests'
/// assertions.
///
/// # Panics
///
/// Panics if [`check_identical_delivery`] reports any violation.
pub fn assert_identical_delivery(cluster: &SimCluster, nodes: usize, expect: usize) {
    let violations = check_identical_delivery(cluster, nodes, expect);
    assert!(
        violations.is_empty(),
        "identical delivery violated:\n{}",
        violations.iter().map(|v| format!("  - {v}")).collect::<Vec<_>>().join("\n")
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim_cluster::ClusterConfig;
    use totem_rrp::ReplicationStyle;
    use totem_sim::SimTime;

    fn healthy_cluster() -> (SimCluster, usize) {
        let mut c = SimCluster::new(ClusterConfig::new(3, ReplicationStyle::Active).with_seed(11));
        for i in 0..3 {
            for k in 0..4u64 {
                c.submit(i, Bytes::from(format!("s{i}-{k}")));
            }
        }
        c.run_until(SimTime::from_secs(1));
        (c, 3)
    }

    #[test]
    fn healthy_cluster_passes_every_check() {
        let (c, n) = healthy_cluster();
        assert!(check_safety(&c, n).is_empty());
        assert!(check_prefix_equality(&c, n).is_empty());
        assert!(check_fault_reports(&c, n, &[false, false], false).is_empty());
        assert!(check_identical_delivery(&c, n, 12).is_empty());
        assert_safety(&c, n);
        assert_identical_delivery(&c, n, 12);
    }

    #[test]
    fn payload_counter_parses_suffix_or_reports_none() {
        assert_eq!(payload_counter(&Bytes::from_static(b"s2-17")), Some(17));
        assert_eq!(payload_counter(&Bytes::from_static(b"storm7/3-0")), Some(0));
        assert_eq!(payload_counter(&Bytes::from_static(b"no counter here")), None);
        assert_eq!(payload_counter(&Bytes::from_static(b"trailing-")), None);
    }

    #[test]
    fn malformed_payload_is_a_labeled_violation_not_a_panic() {
        let mut c = SimCluster::new(ClusterConfig::new(2, ReplicationStyle::Single).with_seed(12));
        c.submit(0, Bytes::from_static(b"no counter here"));
        c.run_until(SimTime::from_millis(500));
        let violations = check_fifo(&c, 2);
        assert!(
            violations.iter().any(|v| matches!(v, Violation::MalformedPayload { .. })),
            "expected a MalformedPayload violation, got {violations:?}"
        );
    }

    #[test]
    fn fault_report_soundness_respects_targets_and_crashes() {
        let (c, n) = healthy_cluster();
        // No reports in a healthy run, so nothing is unsound…
        assert!(check_fault_reports(&c, n, &[false, false], false).is_empty());
        // …and the crash amnesty suppresses everything wholesale.
        assert!(check_fault_reports(&c, n, &[false, false], true).is_empty());
    }

    #[test]
    fn identical_delivery_flags_shortfall() {
        let (c, n) = healthy_cluster();
        let violations = check_identical_delivery(&c, n, 13);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].kind(), "not-converged");
    }

    #[test]
    fn suffix_safety_exempts_the_pre_stabilization_prefix() {
        let (c, n) = healthy_cluster();
        // A healthy run passes from any horizon: the zero horizon is
        // the full-log check, the full horizon leaves empty suffixes.
        assert!(check_suffix_safety(&c, n, &[0, 0, 0]).is_empty());
        let lens: Vec<usize> = (0..n).map(|i| c.delivered(i).len()).collect();
        assert!(check_suffix_safety(&c, n, &lens).is_empty());
    }

    #[test]
    fn rolling_oracle_keeps_retained_state_bounded_by_window() {
        let window = 32;
        let mut c = SimCluster::new(ClusterConfig::new(3, ReplicationStyle::Active).with_seed(21));
        let mut oracle = RollingOracle::new(3, window);
        let mut counters = [0u64; 3];
        let mut peak = 0usize;
        let mut now = 0u64;
        for round in 0..40 {
            for (i, counter) in counters.iter_mut().enumerate() {
                for _ in 0..4 {
                    c.submit(i, Bytes::from(format!("s{i}-{counter}")));
                    *counter += 1;
                }
            }
            now += 200_000_000;
            c.run_until(SimTime::from_nanos(now));
            let violations = oracle.scan(&mut c);
            assert!(violations.is_empty(), "round {round}: {violations:?}");
            peak = peak.max(oracle.retained(&c));
        }
        // Every node delivered all 480 messages, but the oracle only
        // ever held its tails plus the freshly-pruned cluster logs:
        // O(nodes × window), independent of the run length.
        assert_eq!(oracle.total_consumed(), 3 * 480);
        assert!(peak <= 3 * 2 * window, "peak retained {peak} is not O(window)");
    }

    #[test]
    fn violation_display_is_informative() {
        let v = Violation::FifoOrder { node: 1, sender: NodeId::new(2), prev: 5, next: 3 };
        let s = v.to_string();
        assert!(s.contains("fifo-order") && s.contains("counter 3 after 5"), "got {s}");
        assert_eq!(v.kind(), "fifo-order");
    }
}
