//! Chaos schedule fuzzing for the simulated cluster.
//!
//! A [`ChaosSchedule`] is a seed-deterministic list of timed
//! [`FaultCommand`]s — crashes, restarts, partitions, network kills,
//! send/receive fault bursts — plus a traffic window. [`run`] executes
//! a schedule against a [`SimCluster`] while submitting application
//! traffic, heals everything at the end of the window, waits for the
//! cluster to re-converge, and hands the finished execution to the
//! [`oracle`] checks. Everything is deterministic: the same schedule
//! always produces the same execution, so a failing schedule **is** a
//! repro.
//!
//! When a schedule does violate the oracle, [`shrink`] minimizes it
//! with delta debugging: it repeatedly removes command chunks and
//! trims the traffic window, keeping each cut only if the same class
//! of violation still reproduces. The result serializes to a small
//! TOML file ([`ChaosSchedule::to_toml`]) that `cargo xtask chaos
//! --replay` can run back.

pub(crate) mod exec;
pub mod oracle;
pub mod par;
pub mod soak;

use bytes::Bytes;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
pub use totem_rrp::ReplicationStyle;
pub use totem_sim::CorruptionTarget;
use totem_sim::{FaultCommand, SimDuration, SimTime};
use totem_wire::{NetworkId, NodeId};

use crate::backend::BackendKind;
use crate::sim_cluster::{ClusterConfig, SimCluster};
use oracle::Violation;

/// Gap between two traffic submissions (one schedule "step").
pub const TICK: SimDuration = SimDuration::from_millis(5);

/// How long [`run`] waits for re-convergence after the final heal
/// before declaring the execution [`Violation::NotConverged`].
const CONVERGENCE_GRACE: SimDuration = SimDuration::from_secs(30);

/// A fault command with the simulation time it fires at.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledCommand {
    /// Absolute simulation time of the command, in nanoseconds.
    pub at_ns: u64,
    /// The fault to inject or heal.
    pub cmd: FaultCommand,
}

/// A runtime replication-degree change ([`SimCluster::set_k`]) fired
/// at a simulated instant. Not a fault: K-flips reconfigure how many
/// networks carry each packet while the EVS oracle stays unchanged.
#[derive(Debug, Clone, PartialEq)]
pub struct KFlip {
    /// Absolute simulation time of the flip, in nanoseconds.
    pub at_ns: u64,
    /// The node whose operator changes K.
    pub node: NodeId,
    /// The new replication degree.
    pub k: usize,
}

/// A state-corruption injection fired at a simulated instant: one
/// node's in-memory protocol state is deterministically scrambled
/// (seeded by `salt`) while the node keeps running. Kept separate from
/// [`ScheduledCommand`] so legacy schedules — and their pinned per-seed
/// digests — stay bit-identical when no corruption is requested.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduledCorruption {
    /// Absolute simulation time of the corruption, in nanoseconds.
    pub at_ns: u64,
    /// The node whose state is corrupted.
    pub node: NodeId,
    /// Which slice of protocol state to corrupt.
    pub target: CorruptionTarget,
    /// Deterministic entropy for the mutation.
    pub salt: u64,
}

/// A complete, replayable chaos scenario: cluster shape, traffic
/// window, and timed fault commands.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosSchedule {
    /// Seed for both the schedule generator and the simulation RNG.
    pub seed: u64,
    /// Cluster size.
    pub nodes: usize,
    /// Replication style under test.
    pub style: ReplicationStyle,
    /// Number of traffic ticks (one submission attempt per tick).
    pub steps: u64,
    /// Timed fault commands, sorted by time.
    pub commands: Vec<ScheduledCommand>,
    /// Runtime K changes, sorted by time (K-of-N schedules only).
    pub kflips: Vec<KFlip>,
    /// Timed state-corruption injections, sorted by time. Empty for
    /// every legacy schedule: the corruption plane is strictly
    /// additive, and [`generate`] never fills it (see
    /// [`generate_corrupting`]).
    pub corruptions: Vec<ScheduledCorruption>,
    /// Initial global sequence number of the bootstrapped ring (zero =
    /// the production default; near-`u64::MAX` values drive the run
    /// across the serial wrap boundary). Omitted from the TOML repro
    /// format when zero, so legacy repro files parse — and serialize —
    /// unchanged.
    pub start_seq: u64,
    /// Which broadcast engine runs under the schedule. Omitted from
    /// the TOML repro format when Totem (the default), so legacy repro
    /// files parse — and serialize — unchanged.
    pub backend: BackendKind,
}

impl ChaosSchedule {
    /// Retargets the schedule at `backend`.
    ///
    /// For [`BackendKind::RingPaxos`] this also moves any crash or
    /// restart of node 0 to node 1: the Ring Paxos coordinator is
    /// fixed at `members[0]` with no failover (a scope decision, see
    /// `backends::ring_paxos`), so killing it tests nothing but that
    /// documented gap — and an amnesiac coordinator re-sequencing
    /// in-flight values is exactly the divergence the fixed-coordinator
    /// assumption excludes from the safety argument.
    #[must_use]
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        if backend == BackendKind::RingPaxos {
            for sc in &mut self.commands {
                match &mut sc.cmd {
                    FaultCommand::CrashNode { node } | FaultCommand::RestartNode { node }
                        if *node == NodeId::new(0) =>
                    {
                        *node = NodeId::new(1);
                    }
                    _ => {}
                }
            }
        }
        self
    }
}

/// What [`run`] observed: oracle verdicts plus workload statistics.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Every oracle violation found (empty = the schedule passed).
    pub violations: Vec<Violation>,
    /// Messages accepted for submission during the traffic window.
    pub submitted: u64,
    /// Final delivery-log length per node.
    pub delivered: Vec<usize>,
    /// Total crash commands that took effect.
    pub crashes: u64,
}

impl ChaosReport {
    /// `true` when no oracle check was violated.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

fn networks_for(style: ReplicationStyle) -> usize {
    ClusterConfig::new(2, style).networks
}

/// Generates a seed-deterministic schedule: a weighted mix of
/// crash/restart pairs, partition/heal pairs, network kills, and
/// send/receive fault bursts inside the first 80% of the traffic
/// window. Every injection is paired with a later heal, but the
/// pairing is not load-bearing: [`run_with`] unconditionally heals
/// everything once the window ends, so re-convergence is always
/// possible — and so the shrinker cannot "reproduce" a convergence
/// failure by merely deleting heal commands.
pub fn generate(seed: u64, style: ReplicationStyle, nodes: usize, steps: u64) -> ChaosSchedule {
    assert!(nodes >= 2, "chaos needs at least two nodes");
    assert!(steps >= 16, "chaos needs at least 16 traffic steps");
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xC4A0_5C4A_0C4A_05C4);
    let networks = networks_for(style);
    let tick = TICK.as_nanos();
    let window = steps * tick;
    // Faults start once the initial ring has traffic flowing and stop
    // early enough that paired heals mostly land inside the window.
    let fault_from = window / 10;
    let fault_until = window * 8 / 10;
    let events = (steps / 16).clamp(2, 24);

    let mut commands = Vec::new();
    for _ in 0..events {
        let at = rng.gen_range(fault_from..fault_until);
        let dur = rng.gen_range(10 * tick..window / 2 + 10 * tick);
        let node = NodeId::new(rng.gen_range(0..nodes as u64) as u16);
        let net = NetworkId::new(rng.gen_range(0..networks as u64) as u8);
        match rng.gen_range(0..100) {
            0..=19 => {
                commands
                    .push(ScheduledCommand { at_ns: at, cmd: FaultCommand::CrashNode { node } });
                commands.push(ScheduledCommand {
                    at_ns: at + dur,
                    cmd: FaultCommand::RestartNode { node },
                });
            }
            20..=39 => {
                let groups: Vec<u8> = (0..nodes).map(|_| rng.gen_range(0..2) as u8).collect();
                commands.push(ScheduledCommand {
                    at_ns: at,
                    cmd: FaultCommand::Partition { net, groups },
                });
                commands.push(ScheduledCommand {
                    at_ns: at + dur,
                    cmd: FaultCommand::Partition { net, groups: Vec::new() },
                });
            }
            40..=59 => {
                commands.push(ScheduledCommand {
                    at_ns: at,
                    cmd: FaultCommand::NetworkDown { net, down: true },
                });
                commands.push(ScheduledCommand {
                    at_ns: at + dur,
                    cmd: FaultCommand::NetworkDown { net, down: false },
                });
            }
            60..=79 => {
                commands.push(ScheduledCommand {
                    at_ns: at,
                    cmd: FaultCommand::SendFault { node, net, failed: true },
                });
                commands.push(ScheduledCommand {
                    at_ns: at + dur,
                    cmd: FaultCommand::SendFault { node, net, failed: false },
                });
            }
            _ => {
                commands.push(ScheduledCommand {
                    at_ns: at,
                    cmd: FaultCommand::RecvFault { node, net, failed: true },
                });
                commands.push(ScheduledCommand {
                    at_ns: at + dur,
                    cmd: FaultCommand::RecvFault { node, net, failed: false },
                });
            }
        }
    }

    commands.sort_by_key(|c| c.at_ns);

    // K-flips ride along only under the K-of-N style, and their RNG
    // draws come after every fault draw, so the schedules of the fixed
    // styles stay bit-identical per seed (the bench digest gate pins
    // them).
    let mut kflips = Vec::new();
    if matches!(style, ReplicationStyle::KOfN { .. }) {
        for _ in 0..(events / 2).max(1) {
            let at = rng.gen_range(fault_from..fault_until);
            let node = NodeId::new(rng.gen_range(0..nodes as u64) as u16);
            let k = rng.gen_range(1..networks as u64 + 1) as usize;
            kflips.push(KFlip { at_ns: at, node, k });
        }
        kflips.sort_by_key(|f| f.at_ns);
    }

    ChaosSchedule {
        seed,
        nodes,
        style,
        steps,
        commands,
        kflips,
        corruptions: Vec::new(),
        start_seq: 0,
        backend: BackendKind::Totem,
    }
}

/// Like [`generate`], plus `events` state-corruption injections inside
/// the fault window. The corruption stream draws from its **own** RNG
/// (a different mix of the seed), so the base schedule — commands and
/// K-flips — is bit-identical to what [`generate`] produces for the
/// same seed: turning corruption on never perturbs the faults it rides
/// along with, and the pinned per-seed digests of the plain chaos
/// suite stay valid.
pub fn generate_corrupting(
    seed: u64,
    style: ReplicationStyle,
    nodes: usize,
    steps: u64,
    events: u64,
) -> ChaosSchedule {
    let mut schedule = generate(seed, style, nodes, steps);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5E1F_5AB1_0C0E_4ED5);
    let tick = TICK.as_nanos();
    let window = steps * tick;
    let fault_from = window / 10;
    let fault_until = window * 8 / 10;
    for i in 0..events {
        let at = rng.gen_range(fault_from..fault_until);
        let node = NodeId::new(rng.gen_range(0..nodes as u64) as u16);
        // Cycle the target so every variant appears once per five
        // events; the salt alone randomizes the mutation within it.
        let target = CorruptionTarget::ALL[(i % 5) as usize];
        let salt = rng.gen_range(0..u64::MAX);
        schedule.corruptions.push(ScheduledCorruption { at_ns: at, node, target, salt });
    }
    schedule.corruptions.sort_by_key(|c| c.at_ns);
    schedule
}

/// Whether the schedule injects any state corruption (via the
/// dedicated plane or a hand-authored `corrupt-state` command). Such
/// runs use the reconvergence oracle: fault-report amnesty plus EVS
/// safety re-armed after the final heal.
fn has_corruption(schedule: &ChaosSchedule) -> bool {
    !schedule.corruptions.is_empty()
        || schedule.commands.iter().any(|c| matches!(c.cmd, FaultCommand::CorruptState { .. }))
}

/// Which networks any command in the schedule targets (for the
/// fault-report soundness check), plus whether any crash is scheduled.
fn fault_targets(schedule: &ChaosSchedule) -> (Vec<bool>, bool) {
    let mut targeted = vec![false; networks_for(schedule.style)];
    let mut any_crash = false;
    for sc in &schedule.commands {
        match &sc.cmd {
            FaultCommand::SendFault { net, failed: true, .. }
            | FaultCommand::RecvFault { net, failed: true, .. }
            | FaultCommand::NetworkDown { net, down: true }
            | FaultCommand::DuplicateNet { net, on: true } => {
                targeted[net.index()] = true;
            }
            FaultCommand::Partition { net, groups } if !groups.is_empty() => {
                targeted[net.index()] = true;
            }
            FaultCommand::CrashNode { .. } => any_crash = true,
            _ => {}
        }
    }
    (targeted, any_crash)
}

fn converged(cluster: &SimCluster, nodes: usize) -> bool {
    let full: Vec<NodeId> = (0..nodes).map(|n| NodeId::new(n as u16)).collect();
    (0..nodes).all(|n| {
        cluster.is_alive(n)
            && cluster.srp_state(n) == totem_srp::SrpState::Operational
            && cluster.members(n).map(|mut m| {
                m.sort();
                m == full
            }) == Some(true)
    })
}

/// Runs a schedule with the standard EVS safety oracle
/// ([`oracle::check_safety`]).
pub fn run(schedule: &ChaosSchedule) -> ChaosReport {
    run_with(schedule, oracle::check_safety)
}

/// Runs a schedule with a caller-chosen delivery oracle (used by the
/// shrinker demo to plug in the deliberately-too-strong
/// [`oracle::check_prefix_equality`]).
///
/// The execution: build an operational cluster, schedule every fault
/// command, submit one message per [`TICK`] from a rotating sender
/// (skipping dead nodes; per-sender counters advance only on accepted
/// submissions), run past the last command, heal every remaining
/// fault and restart every crashed node, wait up to 30 simulated
/// seconds for re-convergence, then send one probe message per node
/// and require every probe to reach every node. Convergence and probe
/// failures, fault-report soundness, and the delivery oracle all
/// contribute violations.
pub fn run_with(
    schedule: &ChaosSchedule,
    delivery_oracle: fn(&SimCluster, usize) -> Vec<Violation>,
) -> ChaosReport {
    let nodes = schedule.nodes;

    // The schedule-application/traffic core is shared with the bounded
    // model checker (`crate::mc`) — see [`exec::Execution`] for the
    // determinism contract.
    let mut exec = exec::Execution::new(schedule, None);
    exec.run_traffic_window(schedule.steps);
    let settle = exec.settle(schedule);
    exec.heal_all(schedule);
    let crashes = exec.crashes;
    let mut submitted = exec.submitted;
    let mut counters = std::mem::take(&mut exec.counters);
    let mut cluster = exec.cluster;

    // Reconvergence-oracle horizon: anything delivered before the final
    // heal may have happened under corrupted state (including benign
    // re-deliveries from a rewound watermark) and is exempt from the
    // re-armed EVS check; only the post-stabilization suffixes must
    // agree. Empty — and the full-log oracle — for corruption-free
    // schedules.
    let corrupting = has_corruption(schedule);
    let horizon: Vec<usize> = if corrupting {
        (0..nodes).map(|n| cluster.delivered(n).len()).collect()
    } else {
        Vec::new()
    };

    let deadline = settle + CONVERGENCE_GRACE.as_nanos();
    let mut now = settle;
    let mut violations = Vec::new();
    while !converged(&cluster, nodes) {
        if now >= deadline {
            let states: Vec<String> = (0..nodes)
                .map(|n| {
                    format!(
                        "node {n}: alive={} state={:?} members={:?}",
                        cluster.is_alive(n),
                        cluster.srp_state(n),
                        cluster.members(n)
                    )
                })
                .collect();
            violations.push(Violation::NotConverged {
                detail: format!(
                    "no common full-membership operational ring {}s after final heal ({})",
                    CONVERGENCE_GRACE.as_nanos() / 1_000_000_000,
                    states.join("; ")
                ),
            });
            break;
        }
        now += SimDuration::from_millis(250).as_nanos();
        cluster.run_until(SimTime::from_nanos(now));
    }

    // Probe round: once converged, every node's next message must
    // reach every node (liveness after healing).
    if violations.is_empty() {
        let mut probes = Vec::new();
        for (sender, counter) in counters.iter_mut().enumerate() {
            let payload = Bytes::from(format!("s{sender}-{counter}"));
            let mut accepted = false;
            for _ in 0..40 {
                if cluster.try_submit(sender, payload.clone()).is_ok() {
                    accepted = true;
                    *counter += 1;
                    submitted += 1;
                    break;
                }
                now += SimDuration::from_millis(50).as_nanos();
                cluster.run_until(SimTime::from_nanos(now));
            }
            if accepted {
                probes.push(payload);
            } else {
                violations.push(Violation::NotConverged {
                    detail: format!("node {sender} still refuses submissions after healing"),
                });
            }
        }
        let all_probes_delivered = |cluster: &SimCluster, probes: &[Bytes]| {
            (0..nodes)
                .all(|n| probes.iter().all(|p| cluster.delivered(n).iter().any(|d| d.data == *p)))
        };
        let probe_deadline = now + SimDuration::from_secs(5).as_nanos();
        while now < probe_deadline && !all_probes_delivered(&cluster, &probes) {
            now += SimDuration::from_millis(250).as_nanos();
            cluster.run_until(SimTime::from_nanos(now));
        }
        for n in 0..nodes {
            for probe in &probes {
                if !cluster.delivered(n).iter().any(|d| d.data == *probe) {
                    violations.push(Violation::NotConverged {
                        detail: format!(
                            "probe {:?} never delivered at node {n}",
                            String::from_utf8_lossy(probe)
                        ),
                    });
                }
            }
        }
    }

    let (targeted, any_crash) = fault_targets(schedule);
    // Corruption amnesty: a scrambled monitor counter can legitimately
    // produce a fault report for a network nothing ever targeted, just
    // as a crash can — suppress the soundness check wholesale.
    violations.extend(oracle::check_fault_reports(
        &cluster,
        nodes,
        &targeted,
        any_crash || corrupting,
    ));
    if corrupting {
        violations.extend(oracle::check_suffix_safety(&cluster, nodes, &horizon));
    } else {
        violations.extend(delivery_oracle(&cluster, nodes));
    }

    let delivered = (0..nodes).map(|n| cluster.delivered(n).len()).collect();
    ChaosReport { violations, submitted, delivered, crashes }
}

/// Minimizes a violating schedule with delta debugging.
///
/// A candidate "still reproduces" when running it under the same
/// oracle yields at least one violation whose [`Violation::kind`]
/// appeared in the original run. The shrinker then:
///
/// 1. ddmin over the command list (drop chunks at increasing
///    granularity while the failure reproduces),
/// 2. halves the traffic window while the failure reproduces,
/// 3. runs one final ddmin pass at the reduced window.
///
/// Returns the smallest reproducing schedule found. If the input does
/// not violate the oracle at all, it is returned unchanged.
pub fn shrink(
    schedule: &ChaosSchedule,
    delivery_oracle: fn(&SimCluster, usize) -> Vec<Violation>,
) -> ChaosSchedule {
    let original = run_with(schedule, delivery_oracle);
    if original.passed() {
        return schedule.clone();
    }
    let target: std::collections::HashSet<&'static str> =
        original.violations.iter().map(Violation::kind).collect();
    let reproduces = |candidate: &ChaosSchedule| {
        run_with(candidate, delivery_oracle).violations.iter().any(|v| target.contains(v.kind()))
    };

    let mut best = schedule.clone();
    best.commands = ddmin(&best, &reproduces);

    // K-flips reconfigure replication, they do not inject faults; if
    // the violation reproduces without them, drop them all at once.
    if !best.kflips.is_empty() {
        let mut candidate = best.clone();
        candidate.kflips.clear();
        if reproduces(&candidate) {
            best = candidate;
        }
    }

    best.corruptions = ddmin_corruptions(&best, &reproduces);

    // Trim the traffic window.
    while best.steps >= 32 {
        let mut candidate = best.clone();
        candidate.steps /= 2;
        if reproduces(&candidate) {
            best = candidate;
        } else {
            break;
        }
    }

    best.commands = ddmin(&best, &reproduces);
    best
}

/// Classic ddmin over the command list: try dropping chunks at
/// granularity `n`, keeping any drop that still reproduces; refine the
/// granularity until chunks are single commands and nothing more can
/// go.
fn ddmin(
    schedule: &ChaosSchedule,
    reproduces: &dyn Fn(&ChaosSchedule) -> bool,
) -> Vec<ScheduledCommand> {
    let mut commands = schedule.commands.clone();
    let mut n = 2usize;
    while commands.len() >= 2 && n <= commands.len() {
        let chunk = commands.len().div_ceil(n);
        let mut reduced = false;
        let mut start = 0;
        while start < commands.len() {
            let end = (start + chunk).min(commands.len());
            let mut candidate_cmds = commands[..start].to_vec();
            candidate_cmds.extend_from_slice(&commands[end..]);
            if candidate_cmds.is_empty() {
                start = end;
                continue;
            }
            let mut candidate = schedule.clone();
            candidate.commands = candidate_cmds;
            if reproduces(&candidate) {
                commands = candidate.commands;
                reduced = true;
                // Re-scan from the top at the same granularity.
                start = 0;
                n = n.max(2).min(commands.len().max(2));
            } else {
                start = end;
            }
        }
        if !reduced {
            if chunk == 1 {
                break;
            }
            n = (n * 2).min(commands.len());
        }
    }
    commands
}

/// ddmin over the corruption stream. Unlike the command list, dropping
/// every corruption is a legal candidate — the faults alone may carry
/// the failure — so that wholesale cut is tried first.
fn ddmin_corruptions(
    schedule: &ChaosSchedule,
    reproduces: &dyn Fn(&ChaosSchedule) -> bool,
) -> Vec<ScheduledCorruption> {
    let mut items = schedule.corruptions.clone();
    if !items.is_empty() {
        let mut candidate = schedule.clone();
        candidate.corruptions = Vec::new();
        if reproduces(&candidate) {
            return Vec::new();
        }
    }
    let mut n = 2usize;
    while items.len() >= 2 && n <= items.len() {
        let chunk = items.len().div_ceil(n);
        let mut reduced = false;
        let mut start = 0;
        while start < items.len() {
            let end = (start + chunk).min(items.len());
            let mut kept = items[..start].to_vec();
            kept.extend_from_slice(&items[end..]);
            let mut candidate = schedule.clone();
            candidate.corruptions = kept;
            if reproduces(&candidate) {
                items = candidate.corruptions;
                reduced = true;
                start = 0;
                n = n.max(2).min(items.len().max(2));
            } else {
                start = end;
            }
        }
        if !reduced {
            if chunk == 1 {
                break;
            }
            n = (n * 2).min(items.len());
        }
    }
    items
}

// ---------------------------------------------------------------------------
// TOML repro serialization (hand-rolled: the vendored serde stub has no
// TOML backend, and the format is deliberately tiny).
// ---------------------------------------------------------------------------

fn style_name(style: ReplicationStyle) -> String {
    match style {
        ReplicationStyle::Single => "single".into(),
        ReplicationStyle::Active => "active".into(),
        ReplicationStyle::Passive => "passive".into(),
        ReplicationStyle::ActivePassive { copies } => format!("active-passive-{copies}"),
        ReplicationStyle::KOfN { copies } => format!("k-of-n-{copies}"),
    }
}

fn style_from_name(name: &str) -> Result<ReplicationStyle, String> {
    if let Some(copies) = name.strip_prefix("active-passive-") {
        let copies =
            copies.parse().map_err(|_| format!("bad active-passive copy count {copies:?}"))?;
        return Ok(ReplicationStyle::ActivePassive { copies });
    }
    if let Some(copies) = name.strip_prefix("k-of-n-") {
        let copies = copies.parse().map_err(|_| format!("bad k-of-n copy count {copies:?}"))?;
        return Ok(ReplicationStyle::KOfN { copies });
    }
    match name {
        "single" => Ok(ReplicationStyle::Single),
        "active" => Ok(ReplicationStyle::Active),
        "passive" => Ok(ReplicationStyle::Passive),
        other => Err(format!("unknown replication style {other:?}")),
    }
}

impl ChaosSchedule {
    /// Serializes the schedule as a small self-describing TOML
    /// document, suitable for `cargo xtask chaos --replay`.
    pub fn to_toml(&self) -> String {
        let mut out = String::new();
        out.push_str("# Chaos repro schedule (totem_cluster::chaos). Replay with:\n");
        out.push_str("#   cargo xtask chaos --replay <this file>\n");
        out.push_str(&format!("seed = {}\n", self.seed));
        out.push_str(&format!("nodes = {}\n", self.nodes));
        out.push_str(&format!("style = \"{}\"\n", style_name(self.style)));
        out.push_str(&format!("steps = {}\n", self.steps));
        if self.start_seq != 0 {
            out.push_str(&format!("start_seq = {}\n", self.start_seq));
        }
        if self.backend != BackendKind::Totem {
            out.push_str(&format!("backend = \"{}\"\n", self.backend.name()));
        }
        for sc in &self.commands {
            out.push_str("\n[[command]]\n");
            out.push_str(&format!("at_ns = {}\n", sc.at_ns));
            match &sc.cmd {
                FaultCommand::SendFault { node, net, failed } => {
                    out.push_str("kind = \"send-fault\"\n");
                    out.push_str(&format!("node = {}\n", node.as_u16()));
                    out.push_str(&format!("net = {}\n", net.as_u8()));
                    out.push_str(&format!("failed = {failed}\n"));
                }
                FaultCommand::RecvFault { node, net, failed } => {
                    out.push_str("kind = \"recv-fault\"\n");
                    out.push_str(&format!("node = {}\n", node.as_u16()));
                    out.push_str(&format!("net = {}\n", net.as_u8()));
                    out.push_str(&format!("failed = {failed}\n"));
                }
                FaultCommand::NetworkDown { net, down } => {
                    out.push_str("kind = \"net-down\"\n");
                    out.push_str(&format!("net = {}\n", net.as_u8()));
                    out.push_str(&format!("down = {down}\n"));
                }
                FaultCommand::Partition { net, groups } => {
                    out.push_str("kind = \"partition\"\n");
                    out.push_str(&format!("net = {}\n", net.as_u8()));
                    let labels: Vec<String> = groups.iter().map(|g| g.to_string()).collect();
                    out.push_str(&format!("groups = [{}]\n", labels.join(", ")));
                }
                FaultCommand::CrashNode { node } => {
                    out.push_str("kind = \"crash\"\n");
                    out.push_str(&format!("node = {}\n", node.as_u16()));
                }
                FaultCommand::RestartNode { node } => {
                    out.push_str("kind = \"restart\"\n");
                    out.push_str(&format!("node = {}\n", node.as_u16()));
                }
                FaultCommand::DuplicateNet { net, on } => {
                    out.push_str("kind = \"dup-net\"\n");
                    out.push_str(&format!("net = {}\n", net.as_u8()));
                    out.push_str(&format!("on = {on}\n"));
                }
                FaultCommand::CorruptState { node, target, salt } => {
                    out.push_str("kind = \"corrupt-state\"\n");
                    out.push_str(&format!("node = {}\n", node.as_u16()));
                    out.push_str(&format!("target = \"{}\"\n", target.name()));
                    out.push_str(&format!("salt = {salt}\n"));
                }
            }
        }
        for f in &self.kflips {
            out.push_str("\n[[kflip]]\n");
            out.push_str(&format!("at_ns = {}\n", f.at_ns));
            out.push_str(&format!("node = {}\n", f.node.as_u16()));
            out.push_str(&format!("k = {}\n", f.k));
        }
        for c in &self.corruptions {
            out.push_str("\n[[corrupt]]\n");
            out.push_str(&format!("at_ns = {}\n", c.at_ns));
            out.push_str(&format!("node = {}\n", c.node.as_u16()));
            out.push_str(&format!("target = \"{}\"\n", c.target.name()));
            out.push_str(&format!("salt = {}\n", c.salt));
        }
        out
    }

    /// Parses a schedule previously written by [`Self::to_toml`].
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on malformed input: unknown
    /// keys or kinds, missing fields, or unparsable values. Every
    /// message names the line (and, for block fields, the block's
    /// header line and the field) where the problem is, so a
    /// hand-edited repro file points at its own mistake.
    pub fn from_toml(text: &str) -> Result<Self, String> {
        #[derive(Clone, Copy)]
        enum BlockKind {
            Command,
            KFlip,
            Corrupt,
        }
        impl BlockKind {
            fn name(self) -> &'static str {
                match self {
                    BlockKind::Command => "[[command]]",
                    BlockKind::KFlip => "[[kflip]]",
                    BlockKind::Corrupt => "[[corrupt]]",
                }
            }
        }
        let mut seed = None;
        let mut nodes = None;
        let mut style = None;
        let mut steps = None;
        let mut start_seq = 0u64;
        let mut backend = BackendKind::Totem;
        let mut commands = Vec::new();
        let mut kflips = Vec::new();
        let mut corruptions = Vec::new();
        // (kind, header line number, fields)
        let mut current: Option<(BlockKind, usize, std::collections::HashMap<String, String>)> =
            None;

        let finish =
            |block: Option<(BlockKind, usize, std::collections::HashMap<String, String>)>,
             commands: &mut Vec<ScheduledCommand>,
             kflips: &mut Vec<KFlip>,
             corruptions: &mut Vec<ScheduledCorruption>|
             -> Result<(), String> {
                let Some((kind, header_line, block)) = block else { return Ok(()) };
                let context = |e: String| format!("{} at line {header_line}: {e}", kind.name());
                match kind {
                    BlockKind::Command => commands.push(parse_command(&block).map_err(context)?),
                    BlockKind::KFlip => kflips.push(parse_kflip(&block).map_err(context)?),
                    BlockKind::Corrupt => {
                        corruptions.push(parse_corrupt(&block).map_err(context)?);
                    }
                }
                Ok(())
            };

        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let header = match line {
                "[[command]]" => Some(BlockKind::Command),
                "[[kflip]]" => Some(BlockKind::KFlip),
                "[[corrupt]]" => Some(BlockKind::Corrupt),
                _ => None,
            };
            if let Some(kind) = header {
                finish(current.take(), &mut commands, &mut kflips, &mut corruptions)?;
                current = Some((kind, lineno, std::collections::HashMap::new()));
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {lineno}: expected `key = value`, got {line:?}"))?;
            let (key, value) = (key.trim(), value.trim());
            if let Some((_, _, block)) = current.as_mut() {
                block.insert(key.to_string(), value.to_string());
            } else {
                let at = |e: String| format!("line {lineno}: `{key}`: {e}");
                match key {
                    "seed" => seed = Some(parse_u64(value).map_err(at)?),
                    "nodes" => nodes = Some(parse_u64(value).map_err(at)? as usize),
                    "style" => {
                        style = Some(parse_str(value).and_then(style_from_name).map_err(at)?);
                    }
                    "steps" => steps = Some(parse_u64(value).map_err(at)?),
                    "start_seq" => start_seq = parse_u64(value).map_err(at)?,
                    "backend" => {
                        backend =
                            parse_str(value).and_then(|s| s.parse::<BackendKind>()).map_err(at)?;
                    }
                    other => return Err(format!("line {lineno}: unknown header key {other:?}")),
                }
            }
        }
        finish(current.take(), &mut commands, &mut kflips, &mut corruptions)?;

        Ok(ChaosSchedule {
            seed: seed.ok_or("missing `seed`")?,
            nodes: nodes.ok_or("missing `nodes`")?,
            style: style.ok_or("missing `style`")?,
            steps: steps.ok_or("missing `steps`")?,
            commands,
            kflips,
            corruptions,
            start_seq,
            backend,
        })
    }
}

fn parse_u64(value: &str) -> Result<u64, String> {
    value.parse().map_err(|_| format!("expected an integer, got {value:?}"))
}

fn parse_bool(value: &str) -> Result<bool, String> {
    match value {
        "true" => Ok(true),
        "false" => Ok(false),
        other => Err(format!("expected true/false, got {other:?}")),
    }
}

fn parse_str(value: &str) -> Result<&str, String> {
    value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or_else(|| format!("expected a quoted string, got {value:?}"))
}

fn field<'a>(
    block: &'a std::collections::HashMap<String, String>,
    key: &str,
) -> Result<&'a str, String> {
    block.get(key).map(String::as_str).ok_or_else(|| format!("missing field `{key}`"))
}

/// Fetches `key` from the block and parses it as a `u64`, naming the
/// field in the error.
fn field_u64(block: &std::collections::HashMap<String, String>, key: &str) -> Result<u64, String> {
    parse_u64(field(block, key)?).map_err(|e| format!("field `{key}`: {e}"))
}

/// Fetches `key` from the block and parses it as a bool, naming the
/// field in the error.
fn field_bool(
    block: &std::collections::HashMap<String, String>,
    key: &str,
) -> Result<bool, String> {
    parse_bool(field(block, key)?).map_err(|e| format!("field `{key}`: {e}"))
}

fn parse_command(
    block: &std::collections::HashMap<String, String>,
) -> Result<ScheduledCommand, String> {
    let at_ns = field_u64(block, "at_ns")?;
    let node = || -> Result<NodeId, String> { Ok(NodeId::new(field_u64(block, "node")? as u16)) };
    let net =
        || -> Result<NetworkId, String> { Ok(NetworkId::new(field_u64(block, "net")? as u8)) };
    let cmd = match parse_str(field(block, "kind")?)? {
        "send-fault" => FaultCommand::SendFault {
            node: node()?,
            net: net()?,
            failed: field_bool(block, "failed")?,
        },
        "recv-fault" => FaultCommand::RecvFault {
            node: node()?,
            net: net()?,
            failed: field_bool(block, "failed")?,
        },
        "net-down" => FaultCommand::NetworkDown { net: net()?, down: field_bool(block, "down")? },
        "partition" => {
            let raw = field(block, "groups")?;
            let inner = raw
                .strip_prefix('[')
                .and_then(|v| v.strip_suffix(']'))
                .ok_or_else(|| format!("field `groups`: expected `[..]`, got {raw:?}"))?;
            let groups = inner
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(|s| parse_u64(s).map(|g| g as u8))
                .collect::<Result<Vec<u8>, String>>()
                .map_err(|e| format!("field `groups`: {e}"))?;
            FaultCommand::Partition { net: net()?, groups }
        }
        "crash" => FaultCommand::CrashNode { node: node()? },
        "restart" => FaultCommand::RestartNode { node: node()? },
        "dup-net" => FaultCommand::DuplicateNet { net: net()?, on: field_bool(block, "on")? },
        "corrupt-state" => FaultCommand::CorruptState {
            node: node()?,
            target: field_target(block)?,
            salt: field_u64(block, "salt")?,
        },
        other => return Err(format!("unknown command kind {other:?}")),
    };
    Ok(ScheduledCommand { at_ns, cmd })
}

/// Fetches and parses the `target` field of a corruption block.
fn field_target(
    block: &std::collections::HashMap<String, String>,
) -> Result<CorruptionTarget, String> {
    let raw = parse_str(field(block, "target")?).map_err(|e| format!("field `target`: {e}"))?;
    CorruptionTarget::parse(raw)
        .ok_or_else(|| format!("field `target`: unknown corruption target {raw:?}"))
}

fn parse_corrupt(
    block: &std::collections::HashMap<String, String>,
) -> Result<ScheduledCorruption, String> {
    Ok(ScheduledCorruption {
        at_ns: field_u64(block, "at_ns")?,
        node: NodeId::new(field_u64(block, "node")? as u16),
        target: field_target(block)?,
        salt: field_u64(block, "salt")?,
    })
}

fn parse_kflip(block: &std::collections::HashMap<String, String>) -> Result<KFlip, String> {
    Ok(KFlip {
        at_ns: field_u64(block, "at_ns")?,
        node: NodeId::new(field_u64(block, "node")? as u16),
        k: field_u64(block, "k")? as usize,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_is_deterministic_per_seed() {
        let a = generate(7, ReplicationStyle::Active, 4, 100);
        let b = generate(7, ReplicationStyle::Active, 4, 100);
        let c = generate(8, ReplicationStyle::Active, 4, 100);
        assert_eq!(a, b);
        assert_ne!(a.commands, c.commands);
        assert!(a.kflips.is_empty(), "fixed styles never schedule K flips");
    }

    #[test]
    fn k_of_n_schedules_flip_k_and_pass_the_oracle() {
        let schedule = generate(2, ReplicationStyle::KOfN { copies: 2 }, 4, 64);
        assert!(!schedule.kflips.is_empty(), "k-of-n schedules should carry K flips");
        // The flip stream reuses the fault RNG, drawn afterwards: the
        // fault commands must match the fixed styles draw for draw.
        assert_eq!(schedule.commands, generate(2, ReplicationStyle::Active, 4, 64).commands);
        let report = run(&schedule);
        assert!(
            report.passed(),
            "k-of-n seed 2 violated the oracle:\n{}",
            report.violations.iter().map(|v| format!("  - {v}")).collect::<Vec<_>>().join("\n")
        );
        assert!(report.submitted > 0, "no traffic was accepted");
    }

    #[test]
    fn kflips_roundtrip_through_toml() {
        let schedule = generate(5, ReplicationStyle::KOfN { copies: 2 }, 4, 96);
        assert!(!schedule.kflips.is_empty());
        let parsed = ChaosSchedule::from_toml(&schedule.to_toml()).expect("roundtrip parse");
        assert_eq!(schedule, parsed);
    }

    #[test]
    fn backend_tag_roundtrips_through_toml_and_elides_totem() {
        let schedule = generate(5, ReplicationStyle::Active, 4, 96);
        // The default backend is elided so legacy repro files stay
        // byte-compatible in both directions.
        assert!(!schedule.to_toml().contains("backend"));
        let tagged =
            generate(5, ReplicationStyle::Active, 4, 96).with_backend(BackendKind::RingPaxos);
        let toml = tagged.to_toml();
        assert!(toml.contains("backend = \"ring-paxos\""), "{toml}");
        let parsed = ChaosSchedule::from_toml(&toml).expect("roundtrip parse");
        assert_eq!(tagged, parsed);
        assert_eq!(parsed.backend, BackendKind::RingPaxos);
    }

    #[test]
    fn with_backend_retargets_coordinator_crashes_for_ring_paxos() {
        // Find a seed whose schedule crashes node 0 so the retarget is
        // actually exercised.
        let (seed, schedule) = (0..100)
            .map(|seed| (seed, generate(seed, ReplicationStyle::Active, 4, 200)))
            .find(|(_, s)| {
                s.commands
                    .iter()
                    .any(|c| c.cmd == (FaultCommand::CrashNode { node: NodeId::new(0) }))
            })
            .expect("some seed must crash node 0");
        let retargeted = schedule.clone().with_backend(BackendKind::RingPaxos);
        assert_eq!(retargeted.backend, BackendKind::RingPaxos);
        for c in &retargeted.commands {
            assert_ne!(
                c.cmd,
                FaultCommand::CrashNode { node: NodeId::new(0) },
                "seed {seed}: the fixed coordinator must never be crashed"
            );
            assert_ne!(c.cmd, FaultCommand::RestartNode { node: NodeId::new(0) });
        }
        // Everything else is untouched.
        assert_eq!(retargeted.commands.len(), schedule.commands.len());
        // Totem keeps its schedule bit-identical.
        let same = schedule.clone().with_backend(BackendKind::Totem);
        assert_eq!(same.commands, schedule.commands);
    }

    #[test]
    fn generated_schedules_pair_crashes_with_restarts() {
        for seed in 0..20 {
            let s = generate(seed, ReplicationStyle::Active, 4, 200);
            for sc in &s.commands {
                if let FaultCommand::CrashNode { node } = sc.cmd {
                    assert!(
                        s.commands.iter().any(|other| other.at_ns > sc.at_ns
                            && other.cmd == (FaultCommand::RestartNode { node })),
                        "seed {seed}: crash of {node} has no later restart"
                    );
                }
            }
        }
    }

    #[test]
    fn corruption_plane_is_strictly_additive() {
        // Same seed: the corrupting generator's commands and K-flips
        // are bit-identical to the plain generator's (the corruption
        // stream draws from its own RNG).
        let plain = generate(7, ReplicationStyle::KOfN { copies: 2 }, 4, 100);
        let corrupting = generate_corrupting(7, ReplicationStyle::KOfN { copies: 2 }, 4, 100, 5);
        assert_eq!(plain.commands, corrupting.commands);
        assert_eq!(plain.kflips, corrupting.kflips);
        assert!(plain.corruptions.is_empty());
        assert_eq!(corrupting.corruptions.len(), 5);
        // Determinism: regenerating gives the same corruption stream.
        assert_eq!(
            corrupting,
            generate_corrupting(7, ReplicationStyle::KOfN { copies: 2 }, 4, 100, 5)
        );
        // Five events cycle through every corruption target once.
        let mut targets: Vec<&str> =
            corrupting.corruptions.iter().map(|c| c.target.name()).collect();
        targets.sort_unstable();
        assert_eq!(
            targets,
            vec!["membership", "monitor-counters", "rotation", "seq-counters", "token-gate"]
        );
    }

    #[test]
    fn corrupting_schedule_reconverges_and_roundtrips() {
        let schedule = generate_corrupting(3, ReplicationStyle::Active, 4, 128, 5);
        let parsed = ChaosSchedule::from_toml(&schedule.to_toml()).expect("roundtrip parse");
        assert_eq!(schedule, parsed);
        let report = run(&schedule);
        assert!(
            report.passed(),
            "corrupting seed 3 violated the reconvergence oracle:\n{}",
            report.violations.iter().map(|v| format!("  - {v}")).collect::<Vec<_>>().join("\n")
        );
        assert!(report.submitted > 0, "no traffic was accepted");
    }

    #[test]
    fn corrupt_state_command_roundtrips_through_toml() {
        let schedule = ChaosSchedule {
            seed: 11,
            nodes: 3,
            style: ReplicationStyle::Active,
            steps: 32,
            commands: vec![ScheduledCommand {
                at_ns: 250,
                cmd: FaultCommand::CorruptState {
                    node: NodeId::new(2),
                    target: CorruptionTarget::Membership,
                    salt: 0xDEAD_BEEF,
                },
            }],
            kflips: Vec::new(),
            corruptions: vec![ScheduledCorruption {
                at_ns: 500,
                node: NodeId::new(1),
                target: CorruptionTarget::TokenGate,
                salt: 42,
            }],
            start_seq: 0,
            backend: BackendKind::Totem,
        };
        let text = schedule.to_toml();
        assert!(text.contains("[[corrupt]]"), "missing corrupt block:\n{text}");
        assert!(text.contains("corrupt-state"), "missing corrupt-state command:\n{text}");
        let parsed = ChaosSchedule::from_toml(&text).expect("roundtrip parse");
        assert_eq!(schedule, parsed);
        // Unknown targets are rejected with context.
        let bad = text.replace("\"token-gate\"", "\"bit-rot\"");
        let err = ChaosSchedule::from_toml(&bad).unwrap_err();
        assert!(err.contains("bit-rot"), "got {err}");
    }

    #[test]
    fn corruption_ddmin_minimizes_to_the_load_bearing_event() {
        let mut schedule = generate(1, ReplicationStyle::Active, 4, 64);
        for i in 0..8u64 {
            schedule.corruptions.push(ScheduledCorruption {
                at_ns: 1_000_000 * (i + 1),
                node: NodeId::new((i % 4) as u16),
                target: CorruptionTarget::ALL[(i % 5) as usize],
                salt: 1000 + i,
            });
        }
        // Failure "reproduces" iff the salt-1003 event survives: ddmin
        // must strip the other seven decoys.
        let needs_1003 = |c: &ChaosSchedule| c.corruptions.iter().any(|x| x.salt == 1003);
        let kept = ddmin_corruptions(&schedule, &needs_1003);
        assert_eq!(kept.len(), 1, "kept {kept:?}");
        assert_eq!(kept[0].salt, 1003);
        // And when the corruptions are pure decoys, the wholesale cut
        // drops them all in one probe.
        let always = |_: &ChaosSchedule| true;
        assert!(ddmin_corruptions(&schedule, &always).is_empty());
    }

    #[test]
    fn toml_roundtrip_preserves_schedule() {
        let schedule = generate(3, ReplicationStyle::Passive, 5, 160);
        let text = schedule.to_toml();
        let parsed = ChaosSchedule::from_toml(&text).expect("roundtrip parse");
        assert_eq!(schedule, parsed);
    }

    #[test]
    fn toml_parse_rejects_malformed_input() {
        assert!(ChaosSchedule::from_toml("steps = 10").is_err());
        assert!(ChaosSchedule::from_toml("bogus = 1").is_err());
        let text = "seed = 1\nnodes = 3\nstyle = \"active\"\nsteps = 32\n\n\
                    [[command]]\nat_ns = 5\nkind = \"teleport\"\nnode = 1\n";
        let err = ChaosSchedule::from_toml(text).unwrap_err();
        assert!(err.contains("teleport"), "got {err}");
    }

    #[test]
    fn clean_schedule_passes_the_oracle() {
        let schedule = generate(1, ReplicationStyle::Active, 4, 64);
        let report = run(&schedule);
        assert!(
            report.passed(),
            "seed 1 violated the oracle:\n{}",
            report.violations.iter().map(|v| format!("  - {v}")).collect::<Vec<_>>().join("\n")
        );
        assert!(report.submitted > 0, "no traffic was accepted");
    }

    /// A schedule that splits the cluster in two (both networks
    /// partitioned the same way) with traffic flowing on each side,
    /// plus removable decoy fault bursts. EVS agreement holds across
    /// the heal, but full prefix equality cannot.
    fn prefix_demo_schedule() -> ChaosSchedule {
        let ms = |v: u64| SimDuration::from_millis(v).as_nanos();
        let groups = vec![0u8, 0, 1, 1];
        let mut commands = Vec::new();
        for k in 0..2u8 {
            commands.push(ScheduledCommand {
                at_ns: ms(200),
                cmd: FaultCommand::Partition { net: NetworkId::new(k), groups: groups.clone() },
            });
            commands.push(ScheduledCommand {
                at_ns: ms(1_200),
                cmd: FaultCommand::Partition { net: NetworkId::new(k), groups: Vec::new() },
            });
        }
        // Decoys: transient single-network send/recv faults that the
        // shrinker should strip from the repro.
        commands.push(ScheduledCommand {
            at_ns: ms(150),
            cmd: FaultCommand::SendFault {
                node: NodeId::new(1),
                net: NetworkId::new(0),
                failed: true,
            },
        });
        commands.push(ScheduledCommand {
            at_ns: ms(400),
            cmd: FaultCommand::SendFault {
                node: NodeId::new(1),
                net: NetworkId::new(0),
                failed: false,
            },
        });
        commands.push(ScheduledCommand {
            at_ns: ms(300),
            cmd: FaultCommand::RecvFault {
                node: NodeId::new(3),
                net: NetworkId::new(1),
                failed: true,
            },
        });
        commands.push(ScheduledCommand {
            at_ns: ms(500),
            cmd: FaultCommand::RecvFault {
                node: NodeId::new(3),
                net: NetworkId::new(1),
                failed: false,
            },
        });
        commands.sort_by_key(|c| c.at_ns);
        ChaosSchedule {
            seed: 42,
            nodes: 4,
            style: ReplicationStyle::Active,
            steps: 128,
            commands,
            kflips: Vec::new(),
            corruptions: Vec::new(),
            start_seq: 0,
            backend: BackendKind::Totem,
        }
    }

    #[test]
    fn prefix_equality_oracle_is_too_strong_but_evs_holds() {
        let schedule = prefix_demo_schedule();
        let strict = run_with(&schedule, oracle::check_prefix_equality);
        assert!(
            strict.violations.iter().any(|v| v.kind() == "prefix-equality"),
            "expected the too-strong oracle to fire, got {:?}",
            strict.violations
        );
        let evs = run(&schedule);
        assert!(
            evs.passed(),
            "real EVS oracle must hold on the same run:\n{}",
            evs.violations.iter().map(|v| format!("  - {v}")).collect::<Vec<_>>().join("\n")
        );
    }

    #[test]
    fn shrinker_minimizes_a_prefix_equality_repro() {
        let schedule = prefix_demo_schedule();
        let shrunk = shrink(&schedule, oracle::check_prefix_equality);
        assert!(
            shrunk.commands.len() < schedule.commands.len(),
            "shrinker failed to drop the decoy commands: {} -> {}",
            schedule.commands.len(),
            shrunk.commands.len()
        );
        assert!(shrunk.steps <= schedule.steps);
        let report = run_with(&shrunk, oracle::check_prefix_equality);
        assert!(
            report.violations.iter().any(|v| v.kind() == "prefix-equality"),
            "shrunk schedule no longer reproduces: {:?}",
            report.violations
        );
        // And the minimized repro replays from its TOML form.
        let replay = ChaosSchedule::from_toml(&shrunk.to_toml()).expect("replay parse");
        assert_eq!(replay, shrunk);
    }

    #[test]
    fn shrink_returns_passing_schedules_unchanged() {
        let schedule = generate(1, ReplicationStyle::Active, 4, 64);
        let shrunk = shrink(&schedule, oracle::check_safety);
        assert_eq!(schedule, shrunk);
    }

    #[test]
    fn from_toml_errors_carry_line_and_field_context() {
        // Bad header value: names the line and the key.
        let err = ChaosSchedule::from_toml("seed = 1\nnodes = oops\n").unwrap_err();
        assert!(err.contains("line 2") && err.contains("`nodes`"), "got {err}");
        // Bad block field: names the block's header line and the field.
        let text = "seed = 1\nnodes = 3\nstyle = \"active\"\nsteps = 32\n\n\
                    [[command]]\nat_ns = nope\nkind = \"crash\"\nnode = 1\n";
        let err = ChaosSchedule::from_toml(text).unwrap_err();
        assert!(err.contains("[[command]] at line 6") && err.contains("`at_ns`"), "got {err}");
        // Missing block field: same context.
        let text = "seed = 1\nnodes = 3\nstyle = \"active\"\nsteps = 32\n\n\
                    [[kflip]]\nat_ns = 5\nnode = 1\n";
        let err = ChaosSchedule::from_toml(text).unwrap_err();
        assert!(err.contains("[[kflip]] at line 6") && err.contains("`k`"), "got {err}");
    }

    #[test]
    fn dup_net_roundtrips_through_toml() {
        let schedule = ChaosSchedule {
            seed: 9,
            nodes: 3,
            style: ReplicationStyle::Active,
            steps: 32,
            commands: vec![
                ScheduledCommand {
                    at_ns: 100,
                    cmd: FaultCommand::DuplicateNet { net: NetworkId::new(1), on: true },
                },
                ScheduledCommand {
                    at_ns: 900,
                    cmd: FaultCommand::DuplicateNet { net: NetworkId::new(1), on: false },
                },
            ],
            kflips: Vec::new(),
            corruptions: Vec::new(),
            start_seq: 0,
            backend: BackendKind::Totem,
        };
        let parsed = ChaosSchedule::from_toml(&schedule.to_toml()).expect("roundtrip parse");
        assert_eq!(schedule, parsed);
    }

    mod toml_roundtrip_props {
        use super::super::*;
        use proptest::prelude::*;

        fn arb_style() -> impl Strategy<Value = ReplicationStyle> {
            prop_oneof![
                Just(ReplicationStyle::Single),
                Just(ReplicationStyle::Active),
                Just(ReplicationStyle::Passive),
                (2u8..4).prop_map(|copies| ReplicationStyle::ActivePassive { copies }),
                (1u8..5).prop_map(|copies| ReplicationStyle::KOfN { copies }),
            ]
        }

        fn arb_cmd() -> impl Strategy<Value = FaultCommand> {
            prop_oneof![
                (0u16..8, 0u8..4, any::<bool>()).prop_map(|(n, k, failed)| {
                    FaultCommand::SendFault { node: NodeId::new(n), net: NetworkId::new(k), failed }
                }),
                (0u16..8, 0u8..4, any::<bool>()).prop_map(|(n, k, failed)| {
                    FaultCommand::RecvFault { node: NodeId::new(n), net: NetworkId::new(k), failed }
                }),
                (0u8..4, any::<bool>()).prop_map(|(k, down)| FaultCommand::NetworkDown {
                    net: NetworkId::new(k),
                    down,
                }),
                (0u8..4, proptest::collection::vec(0u8..3, 0..8)).prop_map(|(k, groups)| {
                    FaultCommand::Partition { net: NetworkId::new(k), groups }
                }),
                (0u16..8).prop_map(|n| FaultCommand::CrashNode { node: NodeId::new(n) }),
                (0u16..8).prop_map(|n| FaultCommand::RestartNode { node: NodeId::new(n) }),
                (0u8..4, any::<bool>())
                    .prop_map(|(k, on)| FaultCommand::DuplicateNet { net: NetworkId::new(k), on }),
                (0u16..8, 0usize..5, any::<u64>()).prop_map(|(n, t, salt)| {
                    FaultCommand::CorruptState {
                        node: NodeId::new(n),
                        target: CorruptionTarget::ALL[t],
                        salt,
                    }
                }),
            ]
        }

        fn arb_corruption() -> impl Strategy<Value = ScheduledCorruption> {
            (0u64..5_000_000_000, 0u16..8, 0usize..5, any::<u64>()).prop_map(
                |(at_ns, node, t, salt)| ScheduledCorruption {
                    at_ns,
                    node: NodeId::new(node),
                    target: CorruptionTarget::ALL[t],
                    salt,
                },
            )
        }

        fn arb_schedule() -> impl Strategy<Value = ChaosSchedule> {
            (
                any::<u64>(),
                2u64..8,
                arb_style(),
                16u64..512,
                proptest::collection::vec((0u64..5_000_000_000, arb_cmd()), 0..24),
                proptest::collection::vec((0u64..5_000_000_000, 0u16..8, 1u64..5), 0..8),
                proptest::collection::vec(arb_corruption(), 0..8),
                // Zero (the elided-from-TOML default) and near-wrap
                // starts both round-trip.
                prop_oneof![Just(0u64), any::<u64>()],
                // Both backends round-trip (Totem is elided from the
                // TOML form).
                prop_oneof![Just(BackendKind::Totem), Just(BackendKind::RingPaxos)],
            )
                .prop_map(
                    |(
                        seed,
                        nodes,
                        style,
                        steps,
                        commands,
                        kflips,
                        corruptions,
                        start_seq,
                        backend,
                    )| {
                        ChaosSchedule {
                            seed,
                            nodes: nodes as usize,
                            style,
                            steps,
                            commands: commands
                                .into_iter()
                                .map(|(at_ns, cmd)| ScheduledCommand { at_ns, cmd })
                                .collect(),
                            kflips: kflips
                                .into_iter()
                                .map(|(at_ns, node, k)| KFlip {
                                    at_ns,
                                    node: NodeId::new(node),
                                    k: k as usize,
                                })
                                .collect(),
                            corruptions,
                            start_seq,
                            backend,
                        }
                    },
                )
        }

        proptest! {
            /// Satellite of PR 6: `to_toml`/`from_toml` is the identity
            /// on arbitrary schedules — every command kind (including
            /// `dup-net`) and every `[[kflip]]` survives the trip.
            #[test]
            fn toml_roundtrips_arbitrary_schedules(schedule in arb_schedule()) {
                let text = schedule.to_toml();
                let parsed = ChaosSchedule::from_toml(&text)
                    .expect("generated schedule must parse back");
                prop_assert_eq!(schedule, parsed);
            }
        }
    }
}
