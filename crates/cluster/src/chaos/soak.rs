//! Long-horizon soak harness: a replicated-KV workload under diurnal
//! load, with a slow drip of chaos faults, state corruptions, and
//! runtime K reconfigurations, checked continuously by the
//! rolling-window EVS oracle ([`RollingOracle`]) and by the
//! **reconvergence oracle**: after every injected corruption, all
//! correct nodes must reach an agreed regular membership and resume
//! totally-ordered delivery within a bounded stabilization window
//! (60 simulated seconds — thousands of token rotations at the default
//! timers; generous, but finite).
//!
//! Everything is a deterministic function of `(seed, SoakOptions)`:
//! [`plan`] lays the whole drip out up front as a [`ChaosSchedule`]
//! (so a failing seed's scenario serializes to the standard repro TOML
//! and replays through `cargo xtask chaos --replay`), and [`run`]
//! executes it tick by tick. Re-running a seed — on any number of
//! worker threads — produces a bit-identical [`SoakReport`].
//!
//! Memory stays bounded on arbitrarily long horizons: the rolling
//! oracle consumes and prunes the per-node delivery logs as it goes,
//! so peak retained state is O(nodes × window), not O(run length).

use bytes::Bytes;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use totem_sim::{CorruptionTarget, FaultCommand, NetworkConfig, SimConfig, SimTime};
use totem_wire::{NetworkId, NodeId};

use super::oracle::RollingOracle;
use super::{
    converged, networks_for, ChaosSchedule, KFlip, ReplicationStyle, ScheduledCommand,
    ScheduledCorruption, TICK,
};
use crate::sim_cluster::{ClusterConfig, SimCluster};

const NS: u64 = 1_000_000_000;

/// One drip round: a fault burst in the first half, a corruption slot
/// in the second, spaced so stabilization windows never overlap the
/// next injection.
const ROUND_NS: u64 = 240 * NS;

/// The reconvergence bound: after a corruption fires, every correct
/// node must be back in an agreed regular membership within this much
/// simulated time (thousands of token rotations).
const STABILIZE_NS: u64 = 60 * NS;

/// Rolling-oracle scan cadence.
const SCAN_NS: u64 = 10 * NS;

/// Diurnal load period (one compressed "day").
const PERIOD_NS: u64 = 600 * NS;

/// Knobs of one soak run. All fields are plain data so option sets can
/// be built by CLIs and tests alike.
#[derive(Debug, Clone)]
pub struct SoakOptions {
    /// Cluster size.
    pub nodes: usize,
    /// Replication style under test.
    pub style: ReplicationStyle,
    /// Simulated run length in seconds.
    pub seconds: u64,
    /// Percent chance that each corruption slot fires (0 disables the
    /// corruption plane entirely).
    pub corrupt_pct: u64,
    /// Rolling-oracle window: retained deliveries per node.
    pub window: usize,
    /// Per-receiver packet loss percentage on every network (0 = clean
    /// links; loss exercises the retransmission machinery all run).
    pub loss_pct: f64,
}

impl Default for SoakOptions {
    fn default() -> Self {
        SoakOptions {
            nodes: 4,
            style: ReplicationStyle::Active,
            seconds: 1800,
            corrupt_pct: 50,
            window: 256,
            loss_pct: 0.0,
        }
    }
}

/// What one soak seed observed.
#[derive(Debug, Clone, PartialEq)]
pub struct SoakReport {
    /// Every violation, as a display string (empty = the seed passed).
    pub violations: Vec<String>,
    /// Messages accepted for submission.
    pub submitted: u64,
    /// Deliveries consumed by the rolling oracle, summed over nodes.
    pub delivered: u64,
    /// Fault commands in the drip (injections and their heals).
    pub faults: u64,
    /// Corruption injections per target, in [`CorruptionTarget::ALL`]
    /// order.
    pub corruptions: [u64; 5],
    /// Runtime K reconfigurations applied.
    pub kflips: u64,
    /// Rolling-oracle scans performed.
    pub scans: u64,
    /// Peak retained deliveries (oracle tails + pruned cluster logs) —
    /// the O(window) bound.
    pub peak_retained: usize,
    /// The full drip, replayable via `cargo xtask chaos --replay`.
    pub schedule: ChaosSchedule,
}

impl SoakReport {
    /// `true` when every oracle held for the whole horizon.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Lays out the whole drip for one seed: per 4-minute round, one
/// transient fault (healed within the round's first half), an optional
/// K reconfiguration, and — with probability `corrupt_pct`% — one
/// state corruption in the second half, far enough from every fault
/// that its stabilization window is undisturbed. Runs shorter than one
/// round get a single mid-run corruption slot so even smoke horizons
/// exercise the corruption plane.
pub fn plan(seed: u64, opts: &SoakOptions) -> ChaosSchedule {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x50AC_0DD5_50AC_0DD5);
    let networks = networks_for(opts.style);
    let total_ns = opts.seconds * NS;
    let steps = total_ns / TICK.as_nanos();
    let mut commands = Vec::new();
    let mut kflips = Vec::new();
    let mut corruptions = Vec::new();

    let rounds = total_ns / ROUND_NS;
    for r in 0..rounds {
        let base = r * ROUND_NS;
        let at = base + rng.gen_range(0..60 * NS);
        let dur = rng.gen_range(5 * NS..45 * NS);
        let node = NodeId::new(rng.gen_range(0..opts.nodes as u64) as u16);
        let net = NetworkId::new(rng.gen_range(0..networks as u64) as u8);
        match rng.gen_range(0..100) {
            0..=19 => {
                commands
                    .push(ScheduledCommand { at_ns: at, cmd: FaultCommand::CrashNode { node } });
                commands.push(ScheduledCommand {
                    at_ns: at + dur,
                    cmd: FaultCommand::RestartNode { node },
                });
            }
            20..=39 => {
                let groups: Vec<u8> = (0..opts.nodes).map(|_| rng.gen_range(0..2) as u8).collect();
                commands.push(ScheduledCommand {
                    at_ns: at,
                    cmd: FaultCommand::Partition { net, groups },
                });
                commands.push(ScheduledCommand {
                    at_ns: at + dur,
                    cmd: FaultCommand::Partition { net, groups: Vec::new() },
                });
            }
            40..=59 => {
                commands.push(ScheduledCommand {
                    at_ns: at,
                    cmd: FaultCommand::NetworkDown { net, down: true },
                });
                commands.push(ScheduledCommand {
                    at_ns: at + dur,
                    cmd: FaultCommand::NetworkDown { net, down: false },
                });
            }
            60..=79 => {
                commands.push(ScheduledCommand {
                    at_ns: at,
                    cmd: FaultCommand::SendFault { node, net, failed: true },
                });
                commands.push(ScheduledCommand {
                    at_ns: at + dur,
                    cmd: FaultCommand::SendFault { node, net, failed: false },
                });
            }
            _ => {
                commands.push(ScheduledCommand {
                    at_ns: at,
                    cmd: FaultCommand::RecvFault { node, net, failed: true },
                });
                commands.push(ScheduledCommand {
                    at_ns: at + dur,
                    cmd: FaultCommand::RecvFault { node, net, failed: false },
                });
            }
        }

        if matches!(opts.style, ReplicationStyle::KOfN { .. }) {
            let at = base + rng.gen_range(30 * NS..90 * NS);
            let node = NodeId::new(rng.gen_range(0..opts.nodes as u64) as u16);
            let k = rng.gen_range(1..networks as u64 + 1) as usize;
            kflips.push(KFlip { at_ns: at, node, k });
        }

        // Corruption slot: second half of the round, after every fault
        // in this round has healed (fault ends by base+105s, slot
        // opens at base+120s) and with the 60s stabilization window
        // closing before the next round's first injection.
        let roll = rng.gen_range(0..100);
        let at = base + 120 * NS + rng.gen_range(0..30 * NS);
        let node = NodeId::new(rng.gen_range(0..opts.nodes as u64) as u16);
        let salt = rng.gen_range(0..u64::MAX);
        if roll < opts.corrupt_pct {
            // Cycle the target by (seed + round) so every variant is
            // exercised across a seed fan-out even at one round/seed.
            let target = CorruptionTarget::ALL[((seed.wrapping_add(r)) % 5) as usize];
            corruptions.push(ScheduledCorruption { at_ns: at, node, target, salt });
        }
    }

    if rounds == 0 && opts.corrupt_pct > 0 && total_ns >= 30 * NS {
        // Smoke-length fallback: one mid-run corruption slot.
        let roll = rng.gen_range(0..100);
        let at = total_ns * 2 / 5;
        let node = NodeId::new(rng.gen_range(0..opts.nodes as u64) as u16);
        let salt = rng.gen_range(0..u64::MAX);
        if roll < opts.corrupt_pct {
            let target = CorruptionTarget::ALL[(seed % 5) as usize];
            corruptions.push(ScheduledCorruption { at_ns: at, node, target, salt });
        }
    }

    commands.sort_by_key(|c| c.at_ns);
    kflips.sort_by_key(|f| f.at_ns);
    corruptions.sort_by_key(|c| c.at_ns);
    ChaosSchedule {
        seed,
        nodes: opts.nodes,
        style: opts.style,
        steps,
        commands,
        kflips,
        corruptions,
        start_seq: 0,
        backend: crate::backend::BackendKind::Totem,
    }
}

/// The diurnal submission gap, in ticks: a triangle wave between a
/// quiet trough (one message per 100 ticks) and a busy peak (one per
/// 5 ticks) over each [`PERIOD_NS`] "day". Integer arithmetic only, so
/// the waveform is identical on every platform.
fn diurnal_gap_ticks(now_ns: u64) -> u64 {
    const GAP_MAX: u64 = 100;
    const GAP_MIN: u64 = 5;
    let pos = now_ns % PERIOD_NS;
    let half = PERIOD_NS / 2;
    let tri = if pos < half { pos } else { PERIOD_NS - pos };
    GAP_MAX - tri * (GAP_MAX - GAP_MIN) / half
}

/// Executes one soak seed end to end. See the module docs for the
/// oracle regime; the returned report is a pure function of the
/// inputs.
pub fn run(seed: u64, opts: &SoakOptions) -> SoakReport {
    let schedule = plan(seed, opts);
    let nodes = opts.nodes;

    let mut cfg = ClusterConfig::new(nodes, opts.style).with_seed(seed);
    if opts.loss_pct > 0.0 {
        let networks = cfg.networks;
        let mut sim = SimConfig::lan(nodes, networks);
        sim.networks =
            vec![NetworkConfig::ethernet_100mbit().with_rx_loss(opts.loss_pct / 100.0); networks];
        sim.seed = seed;
        cfg.sim = sim;
    }
    let mut cluster = SimCluster::new(cfg);
    for sc in &schedule.commands {
        cluster.schedule_fault(SimTime::from_nanos(sc.at_ns), sc.cmd.clone());
    }
    for c in &schedule.corruptions {
        cluster.schedule_fault(
            SimTime::from_nanos(c.at_ns),
            FaultCommand::CorruptState { node: c.node, target: c.target, salt: c.salt },
        );
    }

    let mut oracle = RollingOracle::new(nodes, opts.window);
    let mut counters = vec![0u64; nodes];
    let mut violations: Vec<String> = Vec::new();
    let mut submitted = 0u64;
    let mut scans = 0u64;
    let mut peak_retained = 0usize;
    let mut key_rng = SmallRng::seed_from_u64(seed ^ 0x4B5E_ED00_4B5E_ED00);

    let tick = TICK.as_nanos();
    let corrupt_times: Vec<u64> = schedule.corruptions.iter().map(|c| c.at_ns).collect();
    let mut corrupt_idx = 0usize;
    let mut kflip_idx = 0usize;
    let mut kflips_applied = 0u64;
    // While `Some(deadline)`: a corruption fired; scanning is paused
    // and the cluster must reconverge before the deadline, at which
    // point the oracle re-arms (everything delivered meanwhile is the
    // exempt stabilization interval).
    let mut stabilizing: Option<u64> = None;
    let mut next_scan = SCAN_NS;
    let mut next_submit = 0u64;

    for step in 0..schedule.steps {
        let now = (step + 1) * tick;
        cluster.run_until(SimTime::from_nanos(now));

        while schedule.kflips.get(kflip_idx).is_some_and(|f| f.at_ns <= now) {
            let f = &schedule.kflips[kflip_idx];
            let node = f.node.as_u16() as usize;
            if node < nodes && cluster.is_alive(node) && cluster.set_k(node, f.k) {
                kflips_applied += 1;
            }
            kflip_idx += 1;
        }

        while corrupt_times.get(corrupt_idx).is_some_and(|&t| t <= now) {
            let deadline = corrupt_times[corrupt_idx] + STABILIZE_NS;
            stabilizing = Some(stabilizing.map_or(deadline, |d: u64| d.max(deadline)));
            corrupt_idx += 1;
        }

        if let Some(deadline) = stabilizing {
            // Convergence polls are cheap but not free; every 100
            // ticks (500ms simulated) is plenty of resolution against
            // a 60s bound.
            if step % 100 == 0 || now >= deadline {
                if converged(&cluster, nodes) {
                    oracle.rearm(&mut cluster);
                    stabilizing = None;
                } else if now >= deadline {
                    violations.push(format!(
                        "reconvergence: cluster not back in an agreed regular membership \
                         within {}s of a state corruption (t={}ns)",
                        STABILIZE_NS / NS,
                        now
                    ));
                    oracle.rearm(&mut cluster);
                    stabilizing = None;
                }
            }
        }

        if now >= next_submit {
            let sender = (step as usize) % nodes;
            if cluster.is_alive(sender) {
                let key = key_rng.gen_range(0..64);
                let payload =
                    Bytes::from(format!("k{key}=v{}:s{sender}-{}", submitted, counters[sender]));
                if cluster.try_submit(sender, payload).is_ok() {
                    counters[sender] += 1;
                    submitted += 1;
                }
            }
            next_submit = now + diurnal_gap_ticks(now) * tick;
        }

        if now >= next_scan {
            if stabilizing.is_none() {
                for v in oracle.scan(&mut cluster) {
                    violations.push(format!("evs: {v}"));
                }
                scans += 1;
                peak_retained = peak_retained.max(oracle.retained(&cluster));
            }
            next_scan = now + SCAN_NS;
        }
    }

    // End of horizon: the cluster must settle into (or still hold) an
    // agreed regular membership, then prove it resumed totally-ordered
    // delivery with one probe per node reaching every node.
    let end = schedule.steps * tick;
    let mut now = end;
    let grace = end + 30 * NS;
    while !converged(&cluster, nodes) && now < grace {
        now += 250_000_000;
        cluster.run_until(SimTime::from_nanos(now));
    }
    if !converged(&cluster, nodes) {
        violations.push(
            "reconvergence: no agreed regular membership 30s after the end of the horizon".into(),
        );
    } else {
        if stabilizing.is_some() {
            // A corruption landed near the end of the window; the
            // cluster did reconverge, so exempt the stabilization
            // interval and resume checking.
            oracle.rearm(&mut cluster);
            stabilizing = None;
        }
        let mut probes: Vec<Bytes> = Vec::new();
        for (sender, counter) in counters.iter_mut().enumerate() {
            let payload = Bytes::from(format!("probe:s{sender}-{counter}"));
            let mut accepted = false;
            for _ in 0..40 {
                if cluster.try_submit(sender, payload.clone()).is_ok() {
                    accepted = true;
                    *counter += 1;
                    submitted += 1;
                    break;
                }
                now += 50_000_000;
                cluster.run_until(SimTime::from_nanos(now));
            }
            if accepted {
                probes.push(payload);
            } else {
                violations
                    .push(format!("liveness: node {sender} refuses submissions after the soak"));
            }
        }
        let all_delivered = |cluster: &SimCluster, probes: &[Bytes]| {
            (0..nodes)
                .all(|n| probes.iter().all(|p| cluster.delivered(n).iter().any(|d| d.data == *p)))
        };
        let probe_grace = now + 5 * NS;
        while now < probe_grace && !all_delivered(&cluster, &probes) {
            now += 250_000_000;
            cluster.run_until(SimTime::from_nanos(now));
        }
        for n in 0..nodes {
            for probe in &probes {
                if !cluster.delivered(n).iter().any(|d| d.data == *probe) {
                    violations.push(format!(
                        "liveness: probe {:?} never delivered at node {n}",
                        String::from_utf8_lossy(probe)
                    ));
                }
            }
        }
    }
    if stabilizing.is_none() {
        for v in oracle.scan(&mut cluster) {
            violations.push(format!("evs: {v}"));
        }
        scans += 1;
        peak_retained = peak_retained.max(oracle.retained(&cluster));
    }

    let mut corruption_counts = [0u64; 5];
    for c in &schedule.corruptions {
        let idx = CorruptionTarget::ALL
            .iter()
            .position(|t| *t == c.target)
            .expect("target is one of ALL");
        corruption_counts[idx] += 1;
    }
    SoakReport {
        violations,
        submitted,
        delivered: oracle.total_consumed(),
        faults: schedule.commands.len() as u64,
        corruptions: corruption_counts,
        kflips: kflips_applied,
        scans,
        peak_retained,
        schedule,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_deterministic_and_spaces_corruptions_safely() {
        let opts = SoakOptions { seconds: 1200, corrupt_pct: 100, ..SoakOptions::default() };
        let a = plan(9, &opts);
        assert_eq!(a, plan(9, &opts));
        assert_eq!(a.corruptions.len(), 5, "one corruption per round at 100%");
        // Every fault in a round heals before that round's corruption
        // slot opens, and each stabilization window ends before the
        // next round's first possible injection.
        for c in &a.corruptions {
            let round = c.at_ns / ROUND_NS;
            assert!(c.at_ns >= round * ROUND_NS + 120 * NS);
            for sc in &a.commands {
                if sc.at_ns / ROUND_NS == round {
                    assert!(
                        sc.at_ns < c.at_ns,
                        "fault at {} overlaps corruption at {}",
                        sc.at_ns,
                        c.at_ns
                    );
                }
            }
            assert!(c.at_ns + STABILIZE_NS <= (round + 1) * ROUND_NS + 60 * NS);
        }
        // Zero percent really disables the plane.
        let clean = plan(9, &SoakOptions { corrupt_pct: 0, ..opts });
        assert!(clean.corruptions.is_empty());
    }

    #[test]
    fn smoke_soak_with_corruption_passes_and_is_deterministic() {
        let opts =
            SoakOptions { seconds: 120, corrupt_pct: 100, window: 64, ..SoakOptions::default() };
        let report = run(1, &opts);
        assert_eq!(
            report.schedule.corruptions.len(),
            1,
            "smoke horizon gets the fallback corruption slot"
        );
        assert!(report.passed(), "soak seed 1 violated:\n{}", report.violations.join("\n"));
        assert!(report.submitted > 0 && report.delivered > 0);
        // Bit-identical on re-run (this is what lets the seed fan-out
        // run on any number of threads).
        assert_eq!(report, run(1, &opts));
        // O(window): retained state never exceeded tails + pruned logs.
        assert!(report.peak_retained <= opts.nodes * 2 * opts.window);
    }

    #[test]
    fn diurnal_wave_cycles_between_trough_and_peak() {
        assert_eq!(diurnal_gap_ticks(0), 100);
        assert_eq!(diurnal_gap_ticks(PERIOD_NS / 2), 5);
        assert_eq!(diurnal_gap_ticks(PERIOD_NS), 100);
        let quarter = diurnal_gap_ticks(PERIOD_NS / 4);
        assert!(quarter > 5 && quarter < 100);
    }
}
