//! The shared schedule executor behind `cargo xtask chaos` and
//! `cargo xtask mc`.
//!
//! Both the chaos fuzzer ([`super::run_with`]) and the bounded model
//! checker (`crate::mc`) execute a [`ChaosSchedule`] the same way:
//! build a seeded cluster, arm every fault command, then drive one
//! traffic tick at a time while applying runtime K-flips. Keeping that
//! core in one place means the two drivers cannot drift — an mc
//! counterexample replayed through `xtask chaos --replay` runs the
//! exact event sequence the explorer saw.
//!
//! **Determinism contract:** the operation order here is byte-for-byte
//! the order the pre-extraction `run_with` used (cluster construction,
//! then per-command crash counting + scheduling in schedule order,
//! then the sorted K-flip stream, then the tick loop). The bench
//! digest gate and the chaos regression tests pin the resulting
//! executions; any reordering is a breaking change.

use bytes::Bytes;
use totem_sim::{FaultCommand, SimTime};
use totem_wire::{NetworkId, NodeId};

use super::{networks_for, ChaosSchedule, KFlip, TICK};
use crate::sim_cluster::{ClusterConfig, SimCluster};

/// One in-flight execution of a [`ChaosSchedule`]: the cluster with
/// every fault command armed, plus the traffic-loop bookkeeping.
pub(crate) struct Execution {
    /// The simulated cluster (faults scheduled, nothing run yet at
    /// construction).
    pub cluster: SimCluster,
    /// Cluster size, cached from the schedule.
    pub nodes: usize,
    /// Crash commands the schedule carries.
    pub crashes: u64,
    /// Per-sender submission counters (payloads embed them).
    pub counters: Vec<u64>,
    /// Messages accepted for submission so far.
    pub submitted: u64,
    kflips: Vec<KFlip>,
    next_flip: usize,
}

impl Execution {
    /// Builds the cluster, optionally enables transition tracing
    /// (`trace_capacity`, used by the model checker; `None` keeps the
    /// legacy chaos behavior), and arms every scheduled fault command.
    pub fn new(schedule: &ChaosSchedule, trace_capacity: Option<usize>) -> Self {
        let nodes = schedule.nodes;
        let mut cluster = SimCluster::new(
            ClusterConfig::new(nodes, schedule.style)
                .with_seed(schedule.seed)
                .with_start_seq(schedule.start_seq)
                .with_backend(schedule.backend),
        );
        if let Some(capacity) = trace_capacity {
            cluster.enable_trace(capacity);
        }
        let mut crashes = 0;
        for sc in &schedule.commands {
            if matches!(sc.cmd, FaultCommand::CrashNode { .. }) {
                crashes += 1;
            }
            cluster.schedule_fault(SimTime::from_nanos(sc.at_ns), sc.cmd.clone());
        }
        // The corruption plane is strictly additive: these arms come
        // after every legacy command, so a schedule with no
        // corruptions runs the exact pre-corruption event sequence.
        for c in &schedule.corruptions {
            cluster.schedule_fault(
                SimTime::from_nanos(c.at_ns),
                FaultCommand::CorruptState { node: c.node, target: c.target, salt: c.salt },
            );
        }

        // K-flips fire at tick granularity from inside the traffic
        // loop (the simulator's fault queue only carries
        // FaultCommands — a reconfiguration is an operator action, not
        // a fault).
        let mut kflips = schedule.kflips.clone();
        kflips.sort_by_key(|f| f.at_ns);

        Execution {
            cluster,
            nodes,
            crashes,
            counters: vec![0; nodes],
            submitted: 0,
            kflips,
            next_flip: 0,
        }
    }

    /// Applies every K-flip scheduled at or before `now_ns` that has
    /// not fired yet (flips on dead or out-of-range nodes are dropped).
    pub fn apply_flips_until(&mut self, now_ns: u64) {
        while self.kflips.get(self.next_flip).is_some_and(|f| f.at_ns <= now_ns) {
            let f = &self.kflips[self.next_flip];
            let node = f.node.as_u16() as usize;
            if node < self.nodes && self.cluster.is_alive(node) {
                let _ = self.cluster.set_k(node, f.k);
            }
            self.next_flip += 1;
        }
    }

    /// The traffic window: one submission attempt per [`TICK`] from a
    /// rotating sender (skipping dead nodes; per-sender counters
    /// advance only on accepted submissions).
    pub fn run_traffic_window(&mut self, steps: u64) {
        for step in 0..steps {
            self.cluster.run_until(SimTime::from_nanos((step + 1) * TICK.as_nanos()));
            self.apply_flips_until((step + 1) * TICK.as_nanos());
            let sender = (step as usize) % self.nodes;
            if self.cluster.is_alive(sender) {
                let payload = Bytes::from(format!("s{sender}-{}", self.counters[sender]));
                if self.cluster.try_submit(sender, payload).is_ok() {
                    self.counters[sender] += 1;
                    self.submitted += 1;
                }
            }
        }
    }

    /// Runs one tick past the later of the last scheduled command and
    /// the traffic window, applies any remaining K-flips (late flips in
    /// replayed files), and returns the settle instant in nanoseconds.
    pub fn settle(&mut self, schedule: &ChaosSchedule) -> u64 {
        let last_cmd = schedule
            .commands
            .iter()
            .map(|c| c.at_ns)
            .chain(schedule.corruptions.iter().map(|c| c.at_ns))
            .max()
            .unwrap_or(0);
        let settle = last_cmd.max(schedule.steps * TICK.as_nanos()) + TICK.as_nanos();
        self.cluster.run_until(SimTime::from_nanos(settle));
        self.apply_flips_until(u64::MAX);
        settle
    }

    /// Heals everything — every network, every per-node fault, every
    /// crashed node — so that re-convergence is always achievable and
    /// a convergence failure is a real liveness verdict, never an
    /// artifact of an unhealed fault.
    pub fn heal_all(&mut self, schedule: &ChaosSchedule) {
        for k in 0..networks_for(schedule.style) {
            let net = NetworkId::new(k as u8);
            self.cluster.fault_now(FaultCommand::NetworkDown { net, down: false });
            self.cluster.fault_now(FaultCommand::Partition { net, groups: Vec::new() });
            self.cluster.fault_now(FaultCommand::DuplicateNet { net, on: false });
            for n in 0..self.nodes {
                let node = NodeId::new(n as u16);
                self.cluster.fault_now(FaultCommand::SendFault { node, net, failed: false });
                self.cluster.fault_now(FaultCommand::RecvFault { node, net, failed: false });
            }
        }
        for n in 0..self.nodes {
            self.cluster.fault_now(FaultCommand::RestartNode { node: NodeId::new(n as u16) });
        }
    }
}
