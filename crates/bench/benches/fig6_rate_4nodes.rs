//! Regenerates the paper's Figure 6 on the simulated testbed.
//!
//! Run with `cargo bench -p totem-bench --bench fig6_rate_4nodes`;
//! set `TOTEM_QUICK=1` for a reduced sweep.

fn main() {
    totem_bench::run_figure(&totem_bench::fig6());
}
