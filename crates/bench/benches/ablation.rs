//! Ablation studies on the design choices DESIGN.md calls out.
//!
//! Not part of the paper's evaluation — these probe the knobs the
//! paper fixes by fiat:
//!
//! 1. the passive token timer (the paper chose 10 ms);
//! 2. active-passive K on four networks (the paper could not measure
//!    active-passive at all — it had only two networks);
//! 3. loss sensitivity: how each style degrades as per-receiver loss
//!    rises (the motivation for replication in the first place);
//! 4. delivery disruption during a network failure: the worst
//!    inter-delivery gap per style, quantifying the paper's claim
//!    that active replication masks loss without retransmission
//!    delay.
//!
//! Run with `cargo bench -p totem-bench --bench ablation`;
//! set `TOTEM_QUICK=1` for shorter windows.

use bytes::Bytes;
use totem_cluster::{ClusterConfig, SimCluster};
use totem_rrp::{ReplicationStyle, RrpConfig};
use totem_sim::{FaultCommand, NetworkConfig, SimConfig, SimDuration, SimTime};
use totem_wire::NetworkId;

struct Point {
    msgs_per_sec: f64,
    latency_mean_us: f64,
}

/// Measures style/config under optional per-receiver loss.
fn run(
    style: ReplicationStyle,
    networks: usize,
    rx_loss: f64,
    passive_timeout_ms: Option<u64>,
    window: SimDuration,
) -> Point {
    let nodes = 4;
    let mut cfg = ClusterConfig::new(nodes, style).counters_only().with_seed(7);
    if cfg.networks != networks {
        cfg = cfg.with_networks(networks);
    }
    let mut rrp = RrpConfig::new(style, networks);
    if let Some(ms) = passive_timeout_ms {
        rrp.passive_token_timeout = ms * 1_000_000;
    }
    cfg.rrp = rrp;
    let net = NetworkConfig::ethernet_100mbit().with_rx_loss(rx_loss);
    cfg.sim = SimConfig::lan(nodes, networks).with_seed(7);
    cfg.sim.networks = vec![net; networks];
    let mut cluster = SimCluster::new(cfg);
    cluster.enable_saturation(1000);

    let warmup = SimDuration::from_millis(200);
    cluster.run_until(SimTime::ZERO + warmup);
    let before = cluster.counters();
    cluster.run_until(SimTime::ZERO + warmup + window);
    let after = cluster.counters();
    let secs = window.as_secs_f64();
    let msgs = (after.msgs - before.msgs) as f64 / nodes as f64 / secs;
    let lat = {
        let n = after.latency_samples - before.latency_samples;
        if n > 0 {
            ((after.latency_sum_ns - before.latency_sum_ns) / n as u128) as f64 / 1000.0
        } else {
            0.0
        }
    };
    Point { msgs_per_sec: msgs, latency_mean_us: lat }
}

fn main() {
    let quick = std::env::var_os("TOTEM_QUICK").is_some();
    let window = if quick { SimDuration::from_millis(200) } else { SimDuration::from_millis(800) };

    println!("== Ablation 1: passive token timer (paper fixed it at 10 ms) ==");
    println!("   4 nodes, 2 networks, 1 Kbyte messages, 2% per-receiver loss");
    println!("{:>12} | {:>12} | {:>14}", "timer (ms)", "msgs/sec", "mean lat (us)");
    for ms in [1u64, 2, 5, 10, 20, 50] {
        let p = run(ReplicationStyle::Passive, 2, 0.02, Some(ms), window);
        println!("{:>12} | {:>12.0} | {:>14.0}", ms, p.msgs_per_sec, p.latency_mean_us);
    }

    println!();
    println!("== Ablation 2: active-passive K on four networks ==");
    println!("   (the paper had only two networks and could not run this)");
    println!("{:>24} | {:>12} | {:>14}", "configuration", "msgs/sec", "mean lat (us)");
    let passive4 = run(ReplicationStyle::Passive, 4, 0.0, None, window);
    println!(
        "{:>24} | {:>12.0} | {:>14.0}",
        "passive (K=1)", passive4.msgs_per_sec, passive4.latency_mean_us
    );
    for k in [2u8, 3] {
        let p = run(ReplicationStyle::ActivePassive { copies: k }, 4, 0.0, None, window);
        println!(
            "{:>24} | {:>12.0} | {:>14.0}",
            format!("active-passive K={k}"),
            p.msgs_per_sec,
            p.latency_mean_us
        );
    }
    let active4 = run(ReplicationStyle::Active, 4, 0.0, None, window);
    println!(
        "{:>24} | {:>12.0} | {:>14.0}",
        "active (K=N)", active4.msgs_per_sec, active4.latency_mean_us
    );

    println!();
    println!("== Ablation 3: loss sensitivity (1 Kbyte messages) ==");
    println!("{:>10} | {:>14} | {:>14} | {:>14}", "rx loss", "single", "active", "passive");
    for loss in [0.0, 0.005, 0.02, 0.05] {
        let s = run(ReplicationStyle::Single, 1, loss, None, window);
        let a = run(ReplicationStyle::Active, 2, loss, None, window);
        let p = run(ReplicationStyle::Passive, 2, loss, None, window);
        println!(
            "{:>9.1}% | {:>7.0} msgs/s | {:>7.0} msgs/s | {:>7.0} msgs/s",
            loss * 100.0,
            s.msgs_per_sec,
            a.msgs_per_sec,
            p.msgs_per_sec
        );
    }
    println!();
    println!("expected: active masks loss (flat across the sweep); passive and");
    println!("single pay retransmission delays as loss grows.");

    println!();
    println!("== Ablation 4: delivery disruption during a network failure ==");
    println!("   steady 2 ms stream; network 0 dies at t=1 s; the worst");
    println!("   inter-delivery gap around the failure quantifies the blip");
    println!("{:>24} | {:>16} | {:>18}", "style", "max gap (ms)", "steady gap (ms)");
    for style in [ReplicationStyle::Active, ReplicationStyle::Passive] {
        let (blip, steady) = failover_blip(style);
        println!("{:>24} | {:>16.1} | {:>18.1}", style.to_string(), blip, steady);
    }
    println!();
    println!("expected: active rides through the failure at its steady cadence");
    println!("(loss masked, no retransmission delay — the §4/§5 claim); passive");
    println!("stalls for token-retransmission intervals until its monitors");
    println!("declare the network faulty and route around it.");
}

/// Returns (max inter-delivery gap around the fault, steady-state gap
/// before it), in milliseconds, observed at node 2.
fn failover_blip(style: ReplicationStyle) -> (f64, f64) {
    let mut cluster = SimCluster::new(ClusterConfig::new(4, style).with_seed(17));
    cluster.schedule_fault(
        SimTime::from_secs(1),
        FaultCommand::NetworkDown { net: NetworkId::new(0), down: true },
    );
    let mut t = SimTime::ZERO;
    let mut i = 0u32;
    while t < SimTime::from_secs(3) {
        cluster.run_until(t);
        let _ = cluster.try_submit(0, Bytes::from(format!("s{i}")));
        i += 1;
        t += SimDuration::from_millis(2);
    }
    cluster.run_until(SimTime::from_secs(4));
    let times = cluster.delivery_times(2);
    let gap_in = |lo_ms: u64, hi_ms: u64| -> f64 {
        let lo = lo_ms * 1_000_000;
        let hi = hi_ms * 1_000_000;
        times
            .windows(2)
            .filter(|w| w[1] >= lo && w[0] <= hi)
            .map(|w| w[1] - w[0])
            .max()
            .unwrap_or(0) as f64
            / 1e6
    };
    (gap_in(900, 2500), gap_in(200, 900))
}
