//! Criterion micro-benchmarks of the protocol building blocks:
//! codec round-trips, message packing, receive-window bookkeeping, and
//! the per-packet costs of the RRP replication algorithms.

use criterion::{
    criterion_group, criterion_main, BatchSize, Criterion, Throughput as CriterionThroughput,
};

use bytes::Bytes;
use totem_rrp::{ReplicationStyle, RrpConfig, RrpLayer};
use totem_srp::packing::Packer;
use totem_srp::window::ReceiveWindow;
use totem_wire::frame::{MAX_PAYLOAD, MAX_UNFRAGMENTED_MSG};
use totem_wire::{Chunk, DataPacket, NetworkId, NodeId, Packet, RingId, Seq, Token};

fn data_packet(seq: u64, payload: usize) -> Packet {
    Packet::Data(DataPacket {
        ring: RingId::new(NodeId::new(0), 1),
        seq: Seq::new(seq),
        sender: NodeId::new(2),
        chunks: vec![Chunk::complete(seq as u32, Bytes::from(vec![0xAB; payload]))],
    })
}

fn token_packet(rotation: u64, seq: u64) -> Token {
    let mut t = Token::initial(RingId::new(NodeId::new(0), 1));
    t.rotation = totem_wire::Rotation::new(rotation);
    t.seq = Seq::new(seq);
    t.aru = Seq::new(seq);
    t
}

fn bench_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("codec");
    // 100 B is the paper's smallest sweep point; MAX_UNFRAGMENTED_MSG
    // encodes to exactly the 1424-byte frame payload boundary.
    for payload in [100usize, MAX_UNFRAGMENTED_MSG] {
        let pkt = data_packet(1, payload);
        let bytes = pkt.encode();
        g.throughput(CriterionThroughput::Bytes(bytes.len() as u64));
        g.bench_function(format!("encode_data_{payload}B"), |b| b.iter(|| pkt.encode()));
        g.bench_function(format!("decode_data_{payload}B"), |b| {
            b.iter(|| Packet::decode(&bytes).unwrap());
        });
    }
    let tok = Packet::Token(token_packet(3, 500));
    let tok_bytes = tok.encode();
    g.bench_function("encode_token", |b| b.iter(|| tok.encode()));
    g.bench_function("decode_token", |b| b.iter(|| Packet::decode(&tok_bytes).unwrap()));
    g.finish();
}

fn bench_packer(c: &mut Criterion) {
    let mut g = c.benchmark_group("packer");
    for (name, size, count) in [
        ("small_100B", 100usize, 120usize),
        // 2 × (700 + chunk header) = 1424: two messages fill a frame
        // exactly (see `totem_wire::frame::chunks_per_frame`).
        ("frame_700B", 700, 40),
        // Largest message that still fits one frame unfragmented...
        ("boundary_fit_1frame", MAX_UNFRAGMENTED_MSG, 24),
        // ...one byte past the 1424-byte payload boundary: the packer
        // must fragment into two chunks across frames.
        ("boundary_split_2frames", MAX_UNFRAGMENTED_MSG + 1, 24),
        // A full frame payload with no room for the chunk header:
        // worst-case interior fragmentation.
        ("boundary_payload_1424B", MAX_PAYLOAD, 24),
        ("large_10KB", 10_000, 4),
    ] {
        g.bench_function(name, |b| {
            b.iter_batched(
                || {
                    (
                        Packer::new(),
                        (0..count)
                            .map(|_| Bytes::from(vec![7u8; size]))
                            .collect::<std::collections::VecDeque<_>>(),
                    )
                },
                |(mut packer, mut queue)| packer.pack(&mut queue, usize::MAX),
                BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

fn bench_window(c: &mut Criterion) {
    let mut g = c.benchmark_group("receive_window");
    g.bench_function("insert_deliver_1000_in_order", |b| {
        b.iter_batched(
            ReceiveWindow::new,
            |mut w| {
                for s in 1..=1000u64 {
                    let Packet::Data(d) = data_packet(s, 100) else { unreachable!() };
                    w.insert(d.into());
                }
                w.take_deliverable(Seq::new(1000)).len()
            },
            BatchSize::SmallInput,
        );
    });
    g.bench_function("insert_1000_reversed_gaps", |b| {
        b.iter_batched(
            ReceiveWindow::new,
            |mut w| {
                for s in (1..=1000u64).rev() {
                    let Packet::Data(d) = data_packet(s, 100) else { unreachable!() };
                    w.insert(d.into());
                }
                w.my_aru()
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_rrp(c: &mut Criterion) {
    let mut g = c.benchmark_group("rrp_layer");
    g.bench_function("active_token_two_copies", |b| {
        b.iter_batched(
            || RrpLayer::new(RrpConfig::new(ReplicationStyle::Active, 2)).expect("valid config"),
            |mut layer| {
                for r in 0..100u64 {
                    let t = token_packet(r, r);
                    layer.on_packet(
                        r * 1000,
                        NetworkId::new(0),
                        Packet::Token(t.clone()).into(),
                        false,
                    );
                    layer.on_packet(
                        r * 1000 + 1,
                        NetworkId::new(1),
                        Packet::Token(t).into(),
                        false,
                    );
                }
            },
            BatchSize::SmallInput,
        );
    });
    g.bench_function("passive_message_monitor", |b| {
        b.iter_batched(
            || RrpLayer::new(RrpConfig::new(ReplicationStyle::Passive, 2)).expect("valid config"),
            |mut layer| {
                for i in 0..100u64 {
                    let pkt = data_packet(i, 100);
                    layer.on_packet(i, NetworkId::new((i % 2) as u8), pkt.into(), false);
                }
            },
            BatchSize::SmallInput,
        );
    });
    g.bench_function("routes_round_robin", |b| {
        let mut layer =
            RrpLayer::new(RrpConfig::new(ReplicationStyle::Passive, 2)).expect("valid config");
        b.iter(|| layer.routes_for_message());
    });
    g.finish();
}

criterion_group!(benches, bench_codec, bench_packer, bench_window, bench_rrp);
criterion_main!(benches);
