//! Ring-size scalability sweep (beyond the paper, which measured only
//! 4 and 6 nodes): throughput and latency as the ring grows, for each
//! replication style. Token-ring ordering cost grows with ring size —
//! this quantifies it.
//!
//! Run with `cargo bench -p totem-bench --bench scalability`;
//! set `TOTEM_QUICK=1` for a shorter window.

use totem_bench::{measure, MeasureConfig};
use totem_rrp::ReplicationStyle;
use totem_sim::SimDuration;

fn main() {
    let quick = std::env::var_os("TOTEM_QUICK").is_some();
    let window = if quick { SimDuration::from_millis(200) } else { SimDuration::from_millis(800) };
    println!("== Scalability: ring size sweep, 1 Kbyte messages ==");
    println!();
    println!("{:>6} | {:>22} | {:>22} | {:>22}", "nodes", "no replication", "active", "passive");
    println!(
        "{:>6} | {:>11}{:>11} | {:>11}{:>11} | {:>11}{:>11}",
        "", "msgs/s", "lat µs", "msgs/s", "lat µs", "msgs/s", "lat µs"
    );
    println!("{:-^6}-+-{:-^22}-+-{:-^22}-+-{:-^22}", "", "", "", "");
    for nodes in [2usize, 3, 4, 6, 8, 12, 16] {
        let m = |style| {
            let cfg = MeasureConfig::new(style, 1000).with_nodes(nodes).with_window(window);
            measure(&cfg)
        };
        let s = m(ReplicationStyle::Single);
        let a = m(ReplicationStyle::Active);
        let p = m(ReplicationStyle::Passive);
        println!(
            "{:>6} | {:>11.0}{:>11.0} | {:>11.0}{:>11.0} | {:>11.0}{:>11.0}",
            nodes,
            s.msgs_per_sec,
            s.latency_mean_us,
            a.msgs_per_sec,
            a.latency_mean_us,
            p.msgs_per_sec,
            p.latency_mean_us,
        );
    }
    println!();
    println!("expected: aggregate throughput roughly flat (the medium, not the");
    println!("ring size, is the bottleneck); latency grows with ring size (a");
    println!("message waits on average half a token rotation before sending).");
}
