//! The core throughput measurement: a saturating workload on a
//! simulated cluster, exactly as the paper ran it ("every node sent as
//! many messages as the Totem flow control mechanism permitted").

use totem_cluster::{BackendKind, ClusterConfig, SimCluster};
use totem_rrp::ReplicationStyle;
use totem_sim::{CpuConfig, SimDuration, SimTime};

/// One measurement's parameters.
#[derive(Debug, Clone)]
pub struct MeasureConfig {
    /// Cluster size.
    pub nodes: usize,
    /// Replication style under test.
    pub style: ReplicationStyle,
    /// Application message size in bytes.
    pub msg_size: usize,
    /// CPU model (the paper's two testbeds differ here).
    pub cpu: CpuConfig,
    /// Simulated warmup before counting starts.
    pub warmup: SimDuration,
    /// Simulated measurement window.
    pub window: SimDuration,
    /// Simulation seed.
    pub seed: u64,
    /// Network-count override; `None` keeps the style's default (e.g.
    /// K-of-N sweeps pin N while K varies).
    pub networks: Option<usize>,
    /// Atomic-broadcast backend under test (Totem by default).
    pub backend: BackendKind,
    /// Per-receiver packet loss in percent, applied to every network.
    pub loss_pct: f64,
}

impl MeasureConfig {
    /// Paper-like defaults: 4 nodes, Pentium II CPU model, 200 ms
    /// warmup, 1 s measurement.
    pub fn new(style: ReplicationStyle, msg_size: usize) -> Self {
        MeasureConfig {
            nodes: 4,
            style,
            msg_size,
            cpu: CpuConfig::pentium_ii_450(),
            warmup: SimDuration::from_millis(200),
            window: SimDuration::from_secs(1),
            seed: 42,
            networks: None,
            backend: BackendKind::Totem,
            loss_pct: 0.0,
        }
    }

    /// Overrides the node count.
    pub fn with_nodes(mut self, nodes: usize) -> Self {
        self.nodes = nodes;
        self
    }

    /// Overrides the network count (the style's default otherwise).
    pub fn with_networks(mut self, networks: usize) -> Self {
        self.networks = Some(networks);
        self
    }

    /// Overrides the CPU model.
    pub fn with_cpu(mut self, cpu: CpuConfig) -> Self {
        self.cpu = cpu;
        self
    }

    /// Overrides the measurement window.
    pub fn with_window(mut self, window: SimDuration) -> Self {
        self.window = window;
        self
    }

    /// Selects the atomic-broadcast backend.
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Adds per-receiver packet loss (percent) on every network.
    pub fn with_loss(mut self, loss_pct: f64) -> Self {
        self.loss_pct = loss_pct;
        self
    }
}

/// A measured operating point.
#[derive(Debug, Clone, PartialEq)]
pub struct Throughput {
    /// Total system send rate in messages per second (what Figures 6
    /// and 7 plot).
    pub msgs_per_sec: f64,
    /// Utilized application bandwidth in Kbytes per second (what
    /// Figures 8 and 9 plot).
    pub kbytes_per_sec: f64,
    /// Mean end-to-end delivery latency in microseconds.
    pub latency_mean_us: f64,
    /// Mean utilization of each network's raw bandwidth over the
    /// window, in `[0, 1]`.
    pub utilization: Vec<f64>,
}

/// Runs one saturating-workload measurement.
///
/// Every node keeps its send queue full of `msg_size`-byte messages;
/// after `warmup`, deliveries are counted for `window`. Because each
/// node delivers every message exactly once, per-node deliveries are
/// averaged to obtain the system-wide send rate.
pub fn measure(cfg: &MeasureConfig) -> Throughput {
    let mut cluster_cfg = ClusterConfig::new(cfg.nodes, cfg.style)
        .counters_only()
        .with_seed(cfg.seed)
        .with_backend(cfg.backend);
    if let Some(networks) = cfg.networks {
        cluster_cfg = cluster_cfg.with_networks(networks);
    }
    cluster_cfg.sim = cluster_cfg.sim.with_cpu(cfg.cpu.clone());
    if cfg.loss_pct > 0.0 {
        for net in &mut cluster_cfg.sim.networks {
            *net = net.clone().with_rx_loss(cfg.loss_pct / 100.0);
        }
    }
    let mut cluster = SimCluster::new(cluster_cfg);
    cluster.enable_saturation(cfg.msg_size);

    cluster.run_until(SimTime::ZERO + cfg.warmup);
    let before = cluster.counters();
    let wire_before: Vec<u64> = cluster.net_stats().iter().map(|(_, s)| s.wire_bytes).collect();

    cluster.run_until(SimTime::ZERO + cfg.warmup + cfg.window);
    let after = cluster.counters();
    let wire_after: Vec<u64> = cluster.net_stats().iter().map(|(_, s)| s.wire_bytes).collect();

    let secs = cfg.window.as_secs_f64();
    let nodes = cfg.nodes as f64;
    let msgs = (after.msgs - before.msgs) as f64 / nodes;
    let bytes = (after.bytes - before.bytes) as f64 / nodes;
    let latency_mean_us = {
        let samples = after.latency_samples - before.latency_samples;
        if samples > 0 {
            ((after.latency_sum_ns - before.latency_sum_ns) / samples as u128) as f64 / 1000.0
        } else {
            0.0
        }
    };
    let bandwidth_bps = 100_000_000f64; // the model is 100 Mbit/s per network
    let utilization = wire_after
        .iter()
        .zip(&wire_before)
        .map(|(a, b)| ((a - b) as f64 * 8.0) / (secs * bandwidth_bps))
        .collect();

    Throughput {
        msgs_per_sec: msgs / secs,
        kbytes_per_sec: bytes / secs / 1000.0,
        latency_mean_us,
        utilization,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unreplicated_baseline_produces_sane_numbers() {
        let cfg = MeasureConfig::new(ReplicationStyle::Single, 1000)
            .with_window(SimDuration::from_millis(300));
        let t = measure(&cfg);
        assert!(t.msgs_per_sec > 1000.0, "implausibly low: {}", t.msgs_per_sec);
        assert!(t.kbytes_per_sec > 1000.0);
        assert!(t.latency_mean_us > 0.0);
        assert_eq!(t.utilization.len(), 1);
        assert!(t.utilization[0] > 0.3, "network should be well utilized");
    }

    /// The unified engine's degeneracy, observed end to end on the
    /// saturating workload: on three networks, K=1 is the passive
    /// algorithm and K=3 the active one, to the exact message count.
    /// Prints the full K sweep (the EXPERIMENTS.md row).
    #[test]
    fn k_sweep_on_three_networks_matches_the_degenerate_styles() {
        let run = |style| {
            let cfg = MeasureConfig::new(style, 1000)
                .with_networks(3)
                .with_window(SimDuration::from_millis(300));
            measure(&cfg)
        };
        let mut sweep = Vec::new();
        for k in 1..=3u8 {
            let t = run(ReplicationStyle::KOfN { copies: k });
            println!(
                "K={k} of N=3: {:.0} msgs/sec, {:.0} KB/sec, {:.0} us",
                t.msgs_per_sec, t.kbytes_per_sec, t.latency_mean_us
            );
            sweep.push(t);
        }
        let passive = run(ReplicationStyle::Passive);
        let active = run(ReplicationStyle::Active);
        assert_eq!(sweep[0].msgs_per_sec, passive.msgs_per_sec, "K=1 must degenerate to passive");
        assert_eq!(sweep[2].msgs_per_sec, active.msgs_per_sec, "K=3 must degenerate to active");
        assert!(
            sweep[0].msgs_per_sec > sweep[2].msgs_per_sec,
            "fewer copies must buy throughput: K=1 {} vs K=3 {}",
            sweep[0].msgs_per_sec,
            sweep[2].msgs_per_sec
        );
    }

    #[test]
    fn ring_paxos_backend_measures_and_survives_loss() {
        let base = || {
            MeasureConfig::new(ReplicationStyle::Single, 256)
                .with_nodes(3)
                .with_backend(BackendKind::RingPaxos)
                .with_window(SimDuration::from_millis(300))
        };
        let clean = measure(&base());
        assert!(clean.msgs_per_sec > 100.0, "implausibly low: {}", clean.msgs_per_sec);
        assert!(clean.latency_mean_us > 0.0);
        let lossy = measure(&base().with_loss(1.0));
        assert!(lossy.msgs_per_sec > 0.0, "ring-paxos wedged under 1% loss");
    }

    #[test]
    fn measurement_is_deterministic_per_seed() {
        let cfg = MeasureConfig::new(ReplicationStyle::Active, 500)
            .with_window(SimDuration::from_millis(200));
        let a = measure(&cfg);
        let b = measure(&cfg);
        assert_eq!(a.msgs_per_sec, b.msgs_per_sec);
        assert_eq!(a.kbytes_per_sec, b.kbytes_per_sec);
    }
}
