//! Shared driver for the four figure benches.

use totem_sim::SimDuration;

use crate::figures::{figure_sweep, FigureSpec, PAPER_SIZES, QUICK_SIZES};
use crate::report::{print_checks, print_figure, shape_checks};

/// Runs one paper figure end to end: sweep, table, shape checks.
///
/// Set `TOTEM_QUICK=1` to use the reduced size list and a shorter
/// measurement window. Returns `true` when every shape check passed.
pub fn run_figure(spec: &FigureSpec) -> bool {
    let quick = std::env::var_os("TOTEM_QUICK").is_some();
    let (sizes, window) = if quick {
        (QUICK_SIZES, SimDuration::from_millis(300))
    } else {
        (PAPER_SIZES, SimDuration::from_secs(1))
    };
    let result = figure_sweep(spec, sizes, window);
    print_figure(spec, &result);
    let checks = shape_checks(spec, &result);
    let all = print_checks(&checks);
    println!(
        "\n{}: {}",
        spec.id,
        if all { "all shape checks passed" } else { "SOME SHAPE CHECKS FAILED" }
    );
    all
}
