//! Benchmark harness reproducing the evaluation of *"The Totem
//! Redundant Ring Protocol"* (ICDCS 2002, §8).
//!
//! The paper's evaluation consists of four figures:
//!
//! | Figure | Metric | Nodes |
//! |--------|------------------------|-------|
//! | 6 | send rate (msgs/sec) | 4 |
//! | 7 | send rate (msgs/sec) | 6 |
//! | 8 | bandwidth (Kbytes/sec) | 4 |
//! | 9 | bandwidth (Kbytes/sec) | 6 |
//!
//! each sweeping the message size from 100 bytes to 10 Kbytes with
//! three series: no replication, active replication and passive
//! replication over two 100 Mbit/s Ethernets. [`figures`] regenerates
//! all of them on the simulator; [`measure()`] is the underlying
//! saturating-workload measurement; [`report`] prints paper-style
//! tables and checks the expected qualitative shapes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod measure;
pub mod report;
pub mod runner;

pub use figures::{
    fig6, fig7, fig8, fig9, figure_sweep, FigureSpec, Metric, SweepResult, PAPER_SIZES,
    QUICK_SIZES, SERIES,
};
pub use measure::{measure, MeasureConfig, Throughput};
pub use report::{print_checks, print_figure, shape_checks, ShapeCheck};
pub use runner::run_figure;
