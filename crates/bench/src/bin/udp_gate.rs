//! Loopback-UDP macro benchmark gate for the batched real-I/O fast
//! path (`cargo xtask bench` runs this binary and merges its output
//! with the committed baseline into `BENCH_PR9.json`).
//!
//! One self-contained run measures the same cluster — 4 nodes × 2
//! redundant networks on 127.0.0.1, race-free ephemeral ports via
//! [`UdpTopology::bind_ephemeral`] — twice:
//!
//! * **legacy** — the pre-PR driver shape: `batch: false`, one
//!   `send` per frame (one logical submission per fan-out datagram),
//!   one `recv_timeout` per datagram;
//! * **batched** — `batch: true`: whole [`RecvBatch`] drains per
//!   wake, one [`SendBatch`] flush per wake, the transport grouping
//!   submissions per contiguous same-network run (`sendmmsg`-shaped).
//!
//! [`RecvBatch`]: totem_transport::RecvBatch
//! [`SendBatch`]: totem_transport::SendBatch
//!
//! Every node's transport is wrapped in a
//! [`CountingTransport`], which tallies *logical* syscalls at the
//! `Transport` API boundary — a machine- and kernel-independent
//! number (the real mmsg path maps 1:1 onto it). The headline figure
//! is `syscalls_per_datagram`, and the gate's acceptance criterion is
//! the ratio `legacy / batched ≥ 4` at broadcast fan-out.
//!
//! Alongside it the gate reports allocations per datagram (counting
//! global allocator, same pattern as `bench_gate`), delivered
//! messages per second, and p50/p99 delivery latency measured by
//! stamping each payload with elapsed nanos at submit time and
//! reading the stamp back on every receiver at delivery.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use bytes::Bytes;
use totem_cluster::{
    spawn_node_with, PollMode, RuntimeConfig, RuntimeEvent, RuntimeHandle, StartMode, TotemNode,
};
use totem_rrp::{ReplicationStyle, RrpConfig};
use totem_srp::SrpConfig;
use totem_transport::{CountingTransport, TransportCounters, UdpTopology};
use totem_wire::NodeId;

const NODES: usize = 4;
const NETWORKS: usize = 2;
/// In-flight cap: saturating load without unbounded queueing (which
/// would fold queue time into the latency numbers).
const WINDOW: usize = 256;
/// Bench payload: 8-byte submit stamp + magic + padding.
const MSG_SIZE: usize = 256;
const MAGIC: u8 = 0xB9;

struct CountingAlloc;

static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to `System`; the counters are plain
// relaxed atomics with no other side effects.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_snapshot() -> (u64, u64) {
    (ALLOC_COUNT.load(Ordering::Relaxed), ALLOC_BYTES.load(Ordering::Relaxed))
}

struct ModeResult {
    mode: &'static str,
    msgs: usize,
    wall_ms: f64,
    msgs_per_sec: f64,
    submits: u64,
    completions: u64,
    datagrams: u64,
    syscalls_per_datagram: f64,
    allocs_per_datagram: f64,
    alloc_bytes_per_datagram: f64,
    p50_us: f64,
    p99_us: f64,
}

/// Waits until every handle has reported `want` bench deliveries (or
/// panics after `secs`). Latencies from the non-sender nodes land in
/// `latencies`.
struct Collector {
    done: std::thread::JoinHandle<usize>,
}

fn spawn_collector(
    handle: &RuntimeHandle,
    want: usize,
    epoch: Instant,
    latencies: Option<Arc<Mutex<Vec<u64>>>>,
    progress: Option<Arc<AtomicU64>>,
) -> Collector {
    let events = handle.events().clone();
    let done = std::thread::spawn(move || {
        let mut seen = 0usize;
        let deadline = Instant::now() + Duration::from_secs(120);
        while seen < want && Instant::now() < deadline {
            match events.recv_timeout(Duration::from_millis(200)) {
                Ok(RuntimeEvent::Delivered(d))
                    if d.data.len() == MSG_SIZE && d.data[8] == MAGIC =>
                {
                    seen += 1;
                    if let Some(p) = &progress {
                        p.fetch_add(1, Ordering::Relaxed);
                    }
                    if let Some(lat) = &latencies {
                        let stamp =
                            u64::from_be_bytes(d.data[..8].try_into().expect("8-byte stamp"));
                        let now = epoch.elapsed().as_nanos() as u64;
                        lat.lock().expect("latency sink").push(now.saturating_sub(stamp));
                    }
                }
                Ok(_) => {}
                Err(_) => {}
            }
        }
        seen
    });
    Collector { done }
}

fn make_cluster(config: RuntimeConfig) -> (Vec<RuntimeHandle>, Vec<Arc<TransportCounters>>) {
    let bound = UdpTopology::bind_ephemeral(NODES, NETWORKS).expect("bind loopback cluster");
    let transports = bound.into_transports().expect("adopt sockets");
    let members: Vec<NodeId> = (0..NODES as u16).map(NodeId::new).collect();
    let mut counters = Vec::new();
    let handles = transports
        .into_iter()
        .enumerate()
        .map(|(i, t)| {
            let counted = CountingTransport::new(t, NODES - 1);
            counters.push(counted.counters());
            let node = TotemNode::new_operational(
                NodeId::new(i as u16),
                &members,
                SrpConfig::default(),
                RrpConfig::new(ReplicationStyle::Active, NETWORKS),
                0,
            );
            let mode = if i == 0 { StartMode::Representative } else { StartMode::Member };
            spawn_node_with(node, counted, mode, config)
        })
        .collect();
    (handles, counters)
}

fn percentile(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)] as f64 / 1000.0
}

fn run_mode(mode: &'static str, config: RuntimeConfig, msgs: usize) -> ModeResult {
    let (handles, counters) = make_cluster(config);
    let epoch = Instant::now();

    // Warm up: ring formation plus one full round trip, kept out of
    // the measured window (warmup payloads fail the MAGIC check).
    handles[0].submit(Bytes::from_static(b"warmup"));
    let warm_deadline = Instant::now() + Duration::from_secs(30);
    for h in &handles {
        let mut ok = false;
        while Instant::now() < warm_deadline {
            if let Some(RuntimeEvent::Delivered(d)) = h.next_event(Duration::from_millis(200)) {
                if &d.data[..] == b"warmup" {
                    ok = true;
                    break;
                }
            }
        }
        assert!(ok, "cluster failed to form within 30s ({mode})");
    }

    let (a0, b0) = alloc_snapshot();
    let sys0: Vec<(u64, u64, u64)> = counters
        .iter()
        .map(|c| {
            (
                c.submits.load(Ordering::Relaxed),
                c.completions.load(Ordering::Relaxed),
                c.datagrams(),
            )
        })
        .collect();

    // Measured window: node 0 submits `msgs` stamped payloads with at
    // most WINDOW in flight (tracked by its own deliveries); every
    // other node records delivery latency.
    let latencies = Arc::new(Mutex::new(Vec::with_capacity(msgs * (NODES - 1))));
    // Node 0's collector doubles as the flow-control tracker: its own
    // deliveries bound the in-flight window. (One drainer per node —
    // cloned channel receivers would steal events from each other.)
    let sender_seen = Arc::new(AtomicU64::new(0));
    let collectors: Vec<Collector> = handles
        .iter()
        .enumerate()
        .map(|(i, h)| {
            spawn_collector(
                h,
                msgs,
                epoch,
                if i == 0 { None } else { Some(latencies.clone()) },
                if i == 0 { Some(sender_seen.clone()) } else { None },
            )
        })
        .collect();

    let t0 = Instant::now();
    let mut payload = vec![0u8; MSG_SIZE];
    payload[8] = MAGIC;
    for i in 0..msgs {
        while i as u64 >= sender_seen.load(Ordering::Relaxed) + WINDOW as u64 {
            std::thread::sleep(Duration::from_micros(50));
        }
        let stamp = epoch.elapsed().as_nanos() as u64;
        payload[..8].copy_from_slice(&stamp.to_be_bytes());
        payload[9..17].copy_from_slice(&(i as u64).to_be_bytes());
        handles[0].submit(Bytes::copy_from_slice(&payload));
    }
    let mut delivered_everywhere = true;
    for c in collectors {
        let seen = c.done.join().expect("collector thread");
        delivered_everywhere &= seen == msgs;
    }
    let wall = t0.elapsed().as_secs_f64();
    assert!(delivered_everywhere, "not every node delivered all bench messages ({mode})");

    let (a1, b1) = alloc_snapshot();
    let mut submits = 0u64;
    let mut completions = 0u64;
    let mut datagrams = 0u64;
    for (c, (s0, c0, d0)) in counters.iter().zip(&sys0) {
        submits += c.submits.load(Ordering::Relaxed) - s0;
        completions += c.completions.load(Ordering::Relaxed) - c0;
        datagrams += c.datagrams() - d0;
    }
    let syscalls = submits + completions;

    let mut lat = latencies.lock().expect("latency sink").clone();
    lat.sort_unstable();

    for h in handles {
        h.shutdown();
    }

    ModeResult {
        mode,
        msgs,
        wall_ms: wall * 1000.0,
        msgs_per_sec: if wall > 0.0 { msgs as f64 / wall } else { 0.0 },
        submits,
        completions,
        datagrams,
        syscalls_per_datagram: if datagrams > 0 { syscalls as f64 / datagrams as f64 } else { 0.0 },
        allocs_per_datagram: if datagrams > 0 { (a1 - a0) as f64 / datagrams as f64 } else { 0.0 },
        alloc_bytes_per_datagram: if datagrams > 0 {
            (b1 - b0) as f64 / datagrams as f64
        } else {
            0.0
        },
        p50_us: percentile(&lat, 0.50),
        p99_us: percentile(&lat, 0.99),
    }
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

fn mode_json(r: &ModeResult) -> String {
    format!(
        "  \"{}\": {{\n    \"msgs\": {},\n    \"wall_ms\": {},\n    \"msgs_per_sec\": {},\n    \
         \"submits\": {},\n    \"completions\": {},\n    \"datagrams\": {},\n    \
         \"syscalls_per_datagram\": {},\n    \"allocs_per_datagram\": {},\n    \
         \"alloc_bytes_per_datagram\": {},\n    \"p50_latency_us\": {},\n    \
         \"p99_latency_us\": {}\n  }}",
        r.mode,
        r.msgs,
        json_f(r.wall_ms),
        json_f(r.msgs_per_sec),
        r.submits,
        r.completions,
        r.datagrams,
        json_f(r.syscalls_per_datagram),
        json_f(r.allocs_per_datagram),
        json_f(r.alloc_bytes_per_datagram),
        json_f(r.p50_us),
        json_f(r.p99_us),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => out = iter.next().cloned(),
            other => {
                eprintln!("udp_gate: unknown argument `{other}`");
                eprintln!("usage: udp_gate [--quick] [--out <path>]");
                std::process::exit(2);
            }
        }
    }
    let msgs = if quick { 400 } else { 2000 };

    eprintln!("udp_gate: legacy mode ({msgs} msgs, {NODES} nodes x {NETWORKS} nets)...");
    let legacy = run_mode("legacy", RuntimeConfig { batch: false, poll: PollMode::Wait }, msgs);
    eprintln!(
        "udp_gate: legacy {:.0} msgs/s, {:.3} syscalls/datagram, p99 {:.0} us",
        legacy.msgs_per_sec, legacy.syscalls_per_datagram, legacy.p99_us
    );

    eprintln!("udp_gate: batched mode...");
    let batched = run_mode("batched", RuntimeConfig { batch: true, poll: PollMode::Wait }, msgs);
    eprintln!(
        "udp_gate: batched {:.0} msgs/s, {:.3} syscalls/datagram, p99 {:.0} us",
        batched.msgs_per_sec, batched.syscalls_per_datagram, batched.p99_us
    );

    let reduction = if batched.syscalls_per_datagram > 0.0 {
        legacy.syscalls_per_datagram / batched.syscalls_per_datagram
    } else {
        0.0
    };
    eprintln!("udp_gate: logical syscalls/frame reduction: {reduction:.2}x");

    let mut j = String::new();
    j.push_str("{\n");
    j.push_str("  \"schema\": \"totem-udp-gate-v1\",\n");
    j.push_str(&format!("  \"quick\": {quick},\n"));
    j.push_str(&format!("  \"nodes\": {NODES},\n"));
    j.push_str(&format!("  \"networks\": {NETWORKS},\n"));
    j.push_str(&format!("  \"msg_size\": {MSG_SIZE},\n"));
    j.push_str(&mode_json(&legacy));
    j.push_str(",\n");
    j.push_str(&mode_json(&batched));
    j.push_str(",\n");
    j.push_str(&format!("  \"syscall_reduction\": {}\n", json_f(reduction)));
    j.push_str("}\n");

    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &j) {
                eprintln!("udp_gate: cannot write {path}: {e}");
                std::process::exit(2);
            }
            eprintln!("udp_gate: wrote {path}");
        }
        None => print!("{j}"),
    }
}
