//! CPU-model calibration probe: prints the operating points the
//! paper's headline claims depend on, so the constants in
//! `totem_sim::CpuConfig` can be tuned.
//!
//! Run with `cargo run -p totem-bench --release --bin calibrate`.

use totem_bench::{measure, MeasureConfig};
use totem_rrp::ReplicationStyle;
use totem_sim::{CpuConfig, SimDuration};

fn main() {
    let window = SimDuration::from_millis(500);
    println!("4 nodes, Pentium II model (Figures 6/8 testbed):");
    for style in [ReplicationStyle::Single, ReplicationStyle::Active, ReplicationStyle::Passive] {
        for size in [100usize, 700, 1000, 1400, 10000] {
            let cfg = MeasureConfig::new(style, size).with_window(window);
            let t = measure(&cfg);
            println!(
                "  {:<22} {:>6} B: {:>7.0} msgs/s {:>8.0} KB/s  util {:?}  lat {:.0} us",
                style.to_string(),
                size,
                t.msgs_per_sec,
                t.kbytes_per_sec,
                t.utilization.iter().map(|u| (u * 100.0).round()).collect::<Vec<_>>(),
                t.latency_mean_us
            );
        }
    }
    println!("6 nodes, Pentium III model (Figures 7/9 testbed):");
    for style in [ReplicationStyle::Single, ReplicationStyle::Active, ReplicationStyle::Passive] {
        for size in [1000usize, 1400] {
            let cfg = MeasureConfig::new(style, size)
                .with_nodes(6)
                .with_cpu(CpuConfig::pentium_iii_900())
                .with_window(window);
            let t = measure(&cfg);
            println!(
                "  {:<22} {:>6} B: {:>7.0} msgs/s {:>8.0} KB/s  util {:?}",
                style.to_string(),
                size,
                t.msgs_per_sec,
                t.kbytes_per_sec,
                t.utilization.iter().map(|u| (u * 100.0).round()).collect::<Vec<_>>()
            );
        }
    }
}
