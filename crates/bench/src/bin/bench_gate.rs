//! Wall-clock benchmark gate for the zero-copy data plane
//! (`cargo xtask bench` runs this binary and merges its output with
//! the committed pre-change baseline into `BENCH_PR4.json`).
//!
//! Four sections, all emitted as hand-rolled JSON (the offline
//! workspace has no `serde_json`):
//!
//! * **fig6** — the paper's Figure 6 sweep (4 nodes, three
//!   replication styles, quick size grid), wall-clock timed per
//!   figure point. This is the macro workload the ≥2× acceptance
//!   criterion is judged on.
//! * **macro** — one saturated operating point run for a longer
//!   simulated window, reporting simulator events/sec (wire frames
//!   sent + per-receiver deliveries per wall-clock second).
//! * **allocs** — global-allocator counts over the macro run,
//!   normalized per wire frame, so allocation regressions on the hot
//!   path are visible as a single number.
//! * **determinism** — FNV-1a digests of everything the simulation
//!   delivers under (a) a fixed-seed mixed-size submit scenario and
//!   (b) a chaos-style fault-schedule replay. Each scenario runs
//!   twice in-process (must match), and the digests are compared
//!   against the baseline by `cargo xtask bench` (must also match:
//!   the zero-copy refactor must not change one delivered byte).
//!
//! Wall-clock numbers depend on `--quick` (shorter measurement
//! window); determinism digests use fixed parameters in both modes so
//! they are always comparable across runs and builds.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use bytes::Bytes;
use totem_bench::{fig6, measure, MeasureConfig, QUICK_SIZES, SERIES};
use totem_cluster::{ClusterConfig, SimCluster};
use totem_rrp::ReplicationStyle;
use totem_sim::{FaultCommand, SimDuration, SimTime};
use totem_wire::NetworkId;

/// Counts every allocation and reallocation so the gate can report
/// allocations per wire frame on the hot path.
struct CountingAlloc;

static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to `System`; the counters are plain
// relaxed atomics with no other side effects.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_snapshot() -> (u64, u64) {
    (ALLOC_COUNT.load(Ordering::Relaxed), ALLOC_BYTES.load(Ordering::Relaxed))
}

// ---------------------------------------------------------------------
// FNV-1a digest of delivered state
// ---------------------------------------------------------------------

/// Incremental FNV-1a 64-bit hash; tiny, dependency-free and stable
/// across builds, which is all a drift detector needs.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn bytes(&mut self, data: &[u8]) {
        for &b in data {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_be_bytes());
    }
    fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }
}

/// Folds everything externally observable about a finished run into
/// one digest: per-node delivered messages (sender, seq, ring, full
/// payload bytes), delivery times, configuration changes, and the
/// wire-level [`totem_sim::SimStats`] via their `Debug` rendering.
fn digest_cluster(cluster: &SimCluster, nodes: usize) -> u64 {
    let mut h = Fnv::new();
    for node in 0..nodes {
        h.u64(node as u64);
        for d in cluster.delivered(node) {
            h.u64(d.sender.index() as u64);
            h.u64(d.seq.as_u64());
            h.str(&format!("{:?}", d.ring));
            h.u64(d.data.len() as u64);
            h.bytes(&d.data);
        }
        for &t in cluster.delivery_times(node) {
            h.u64(t);
        }
        h.str(&format!("{:?}", cluster.configs(node)));
    }
    h.str(&format!("{:?}", cluster.net_stats()));
    h.0
}

// ---------------------------------------------------------------------
// Section 1: fig6 sweep, wall-clock per figure point
// ---------------------------------------------------------------------

struct FigPoint {
    style: ReplicationStyle,
    size: usize,
    wall_ms: f64,
    msgs_per_sec: f64,
}

fn run_fig6(window: SimDuration) -> (Vec<FigPoint>, f64) {
    let spec = fig6();
    let mut points = Vec::new();
    let t0 = Instant::now();
    for &style in SERIES {
        for &size in QUICK_SIZES {
            let cfg = MeasureConfig::new(style, size)
                .with_nodes(spec.nodes)
                .with_cpu(spec.cpu.clone())
                .with_window(window);
            let p0 = Instant::now();
            let t = measure(&cfg);
            points.push(FigPoint {
                style,
                size,
                wall_ms: p0.elapsed().as_secs_f64() * 1000.0,
                msgs_per_sec: t.msgs_per_sec,
            });
        }
    }
    (points, t0.elapsed().as_secs_f64() * 1000.0)
}

// ---------------------------------------------------------------------
// Section 2 + 3: saturated macro run with allocation counting
// ---------------------------------------------------------------------

struct MacroResult {
    wall_ms: f64,
    frames: u64,
    deliveries: u64,
    events_per_sec: f64,
    sim_msgs: u64,
    allocs_per_frame: f64,
    alloc_bytes_per_frame: f64,
}

fn run_macro(window: SimDuration) -> MacroResult {
    let mut cfg = ClusterConfig::new(4, ReplicationStyle::Active).counters_only().with_seed(42);
    cfg.sim = cfg.sim.with_cpu(totem_sim::CpuConfig::pentium_ii_450());
    let mut cluster = SimCluster::new(cfg);
    cluster.enable_saturation(700);

    // Warm up so ring formation and first-allocation noise stay out of
    // the counted window.
    cluster.run_until(SimTime::ZERO + SimDuration::from_millis(100));
    let frames_before = cluster.net_stats().total_frames();
    let deliveries_before: u64 = cluster.net_stats().iter().map(|(_, s)| s.deliveries).sum();
    let msgs_before = cluster.counters().msgs;
    let (a0, b0) = alloc_snapshot();
    let t0 = Instant::now();

    cluster.run_until(SimTime::ZERO + SimDuration::from_millis(100) + window);

    let wall = t0.elapsed().as_secs_f64();
    let (a1, b1) = alloc_snapshot();
    let frames = cluster.net_stats().total_frames() - frames_before;
    let deliveries: u64 =
        cluster.net_stats().iter().map(|(_, s)| s.deliveries).sum::<u64>() - deliveries_before;
    let events = frames + deliveries;
    MacroResult {
        wall_ms: wall * 1000.0,
        frames,
        deliveries,
        events_per_sec: if wall > 0.0 { events as f64 / wall } else { 0.0 },
        sim_msgs: cluster.counters().msgs - msgs_before,
        allocs_per_frame: if frames > 0 { (a1 - a0) as f64 / frames as f64 } else { 0.0 },
        alloc_bytes_per_frame: if frames > 0 { (b1 - b0) as f64 / frames as f64 } else { 0.0 },
    }
}

// ---------------------------------------------------------------------
// Section 4: determinism digests (fixed parameters in every mode)
// ---------------------------------------------------------------------

/// Mixed-size submit scenario: five nodes, passive replication, a
/// deterministic payload schedule that exercises packing (tiny
/// messages), the fragmentation path (multi-frame messages), and idle
/// gaps. Returns the digest of everything delivered.
fn scenario_digest() -> u64 {
    const NODES: usize = 5;
    let cfg = ClusterConfig::new(NODES, ReplicationStyle::Passive).counters_only().with_seed(7);
    let mut cluster = SimCluster::new(cfg);
    let mut payload = Vec::new();
    for step in 0u64..200 {
        cluster.run_until(SimTime::ZERO + SimDuration::from_micros(250 * step));
        // Sizes cycle through packing-relevant shapes, including one
        // above the unfragmented maximum.
        let size = match step % 5 {
            0 => 64,
            1 => 700,
            2 => totem_wire::frame::MAX_UNFRAGMENTED_MSG + 100,
            3 => 1,
            _ => 3000,
        };
        payload.clear();
        payload.extend((0..size).map(|i| (step as usize * 31 + i) as u8));
        let node = (step as usize) % NODES;
        let _ = cluster.try_submit(node, Bytes::from(payload.clone()));
    }
    cluster.run_until(SimTime::ZERO + SimDuration::from_millis(400));
    digest_cluster(&cluster, NODES)
}

/// Chaos-style replay: a fixed fault schedule (crash + restart, a
/// network outage, a partition that heals) under saturating traffic.
fn chaos_digest() -> u64 {
    const NODES: usize = 4;
    let cfg = ClusterConfig::new(NODES, ReplicationStyle::Active).counters_only().with_seed(99);
    let mut cluster = SimCluster::new(cfg);
    cluster.enable_saturation(700);

    let at = |ms: u64| SimTime::ZERO + SimDuration::from_millis(ms);
    cluster.schedule_fault(at(50), FaultCommand::CrashNode { node: totem_wire::NodeId::new(2) });
    cluster.schedule_fault(at(120), FaultCommand::RestartNode { node: totem_wire::NodeId::new(2) });
    cluster
        .schedule_fault(at(200), FaultCommand::NetworkDown { net: NetworkId::new(1), down: true });
    cluster
        .schedule_fault(at(280), FaultCommand::NetworkDown { net: NetworkId::new(1), down: false });
    cluster.schedule_fault(
        at(350),
        FaultCommand::Partition { net: NetworkId::new(0), groups: vec![0, 0, 1, 1] },
    );
    cluster.schedule_fault(
        at(450),
        FaultCommand::Partition { net: NetworkId::new(0), groups: vec![] },
    );

    cluster.run_until(at(600));
    digest_cluster(&cluster, NODES)
}

/// Active-passive (K=2 of N=3) replay: saturating traffic with one
/// network dead for part of the run, exercising the K-copy token gate
/// and the sliding send window under loss. Together with
/// [`scenario_digest`] (passive) and [`chaos_digest`] (active) this
/// pins the delivered-byte behaviour of all three legacy replication
/// styles.
fn ap_digest() -> u64 {
    const NODES: usize = 4;
    let cfg = ClusterConfig::new(NODES, ReplicationStyle::ActivePassive { copies: 2 })
        .counters_only()
        .with_seed(17);
    let mut cluster = SimCluster::new(cfg);
    cluster.enable_saturation(700);

    let at = |ms: u64| SimTime::ZERO + SimDuration::from_millis(ms);
    cluster
        .schedule_fault(at(150), FaultCommand::NetworkDown { net: NetworkId::new(2), down: true });
    cluster
        .schedule_fault(at(300), FaultCommand::NetworkDown { net: NetworkId::new(2), down: false });

    cluster.run_until(at(500));
    digest_cluster(&cluster, NODES)
}

// ---------------------------------------------------------------------
// JSON output
// ---------------------------------------------------------------------

fn style_name(style: ReplicationStyle) -> &'static str {
    match style {
        ReplicationStyle::Single => "single",
        ReplicationStyle::Active => "active",
        ReplicationStyle::Passive => "passive",
        ReplicationStyle::ActivePassive { .. } => "active_passive",
        ReplicationStyle::KOfN { .. } => "k_of_n",
    }
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => out = iter.next().cloned(),
            other => {
                eprintln!("bench_gate: unknown argument `{other}`");
                eprintln!("usage: bench_gate [--quick] [--out <path>]");
                std::process::exit(2);
            }
        }
    }

    let fig_window =
        if quick { SimDuration::from_millis(60) } else { SimDuration::from_millis(250) };
    let macro_window =
        if quick { SimDuration::from_millis(250) } else { SimDuration::from_millis(1000) };

    eprintln!("bench_gate: fig6 sweep ({} sizes x {} styles)...", QUICK_SIZES.len(), SERIES.len());
    let (points, fig6_total_ms) = run_fig6(fig_window);
    eprintln!("bench_gate: fig6 sweep done in {fig6_total_ms:.0} ms");

    eprintln!("bench_gate: saturated macro run...");
    let mac = run_macro(macro_window);
    eprintln!(
        "bench_gate: macro {:.0} events/sec, {:.1} allocs/frame",
        mac.events_per_sec, mac.allocs_per_frame
    );

    eprintln!("bench_gate: determinism scenarios (each twice)...");
    let s1 = scenario_digest();
    let s2 = scenario_digest();
    let c1 = chaos_digest();
    let c2 = chaos_digest();
    let a1 = ap_digest();
    let a2 = ap_digest();
    let repeat_identical = s1 == s2 && c1 == c2 && a1 == a2;
    eprintln!(
        "bench_gate: scenario={s1:016x} chaos={c1:016x} ap={a1:016x} \
         repeat_identical={repeat_identical}"
    );

    let mut j = String::new();
    j.push_str("{\n");
    j.push_str("  \"schema\": \"totem-bench-gate-v1\",\n");
    j.push_str(&format!("  \"quick\": {quick},\n"));
    j.push_str("  \"fig6\": {\n");
    j.push_str(&format!("    \"window_ms\": {},\n", fig_window.as_nanos() / 1_000_000));
    j.push_str(&format!("    \"total_wall_ms\": {},\n", json_f(fig6_total_ms)));
    j.push_str("    \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        j.push_str(&format!(
            "      {{\"style\": \"{}\", \"size\": {}, \"wall_ms\": {}, \"msgs_per_sec\": {}}}{}\n",
            style_name(p.style),
            p.size,
            json_f(p.wall_ms),
            json_f(p.msgs_per_sec),
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    j.push_str("    ]\n  },\n");
    j.push_str("  \"macro\": {\n");
    j.push_str(&format!("    \"window_ms\": {},\n", macro_window.as_nanos() / 1_000_000));
    j.push_str(&format!("    \"wall_ms\": {},\n", json_f(mac.wall_ms)));
    j.push_str(&format!("    \"frames\": {},\n", mac.frames));
    j.push_str(&format!("    \"deliveries\": {},\n", mac.deliveries));
    j.push_str(&format!("    \"sim_msgs\": {},\n", mac.sim_msgs));
    j.push_str(&format!("    \"events_per_sec\": {}\n", json_f(mac.events_per_sec)));
    j.push_str("  },\n");
    j.push_str("  \"allocs\": {\n");
    j.push_str(&format!("    \"allocs_per_frame\": {},\n", json_f(mac.allocs_per_frame)));
    j.push_str(&format!("    \"alloc_bytes_per_frame\": {}\n", json_f(mac.alloc_bytes_per_frame)));
    j.push_str("  },\n");
    j.push_str("  \"determinism\": {\n");
    j.push_str(&format!("    \"scenario_digest\": \"{s1:016x}\",\n"));
    j.push_str(&format!("    \"chaos_digest\": \"{c1:016x}\",\n"));
    j.push_str(&format!("    \"ap_digest\": \"{a1:016x}\",\n"));
    j.push_str(&format!("    \"repeat_identical\": {repeat_identical}\n"));
    j.push_str("  }\n}\n");

    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &j) {
                eprintln!("bench_gate: cannot write {path}: {e}");
                std::process::exit(2);
            }
            eprintln!("bench_gate: wrote {path}");
        }
        None => print!("{j}"),
    }

    if !repeat_identical {
        eprintln!("bench_gate: FAIL: repeated runs with identical seeds diverged");
        std::process::exit(1);
    }
}
