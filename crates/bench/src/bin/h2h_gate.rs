//! Backend head-to-head gate: Totem vs Ring Paxos on the identical
//! saturating workload (`cargo xtask bench` runs this binary and
//! copies its output to `BENCH_PR10.json` at the workspace root).
//!
//! The grid sweeps message size x node count x per-receiver loss rate
//! for both atomic-broadcast backends on a **single network** (Ring
//! Paxos is a one-network protocol, so the Totem side runs the
//! unreplicated single style to keep the comparison apples to
//! apples). Every metric is derived from simulated time, so the
//! emitted JSON is bit-identical across machines and builds — it is
//! committed, and drift in it means the data plane changed.
//!
//! `--quick` shortens the measurement window for CI smoke runs; the
//! committed file is produced by a full run.

use std::time::Instant;

use bytes::Bytes;
use totem_bench::{measure, MeasureConfig, Throughput};
use totem_cluster::{BackendKind, ClusterConfig, SimCluster};
use totem_rrp::ReplicationStyle;
use totem_sim::{SimDuration, SimTime};

const NODE_COUNTS: [usize; 3] = [3, 5, 8];
const LOSS_PCTS: [f64; 2] = [0.0, 1.0];
const MSG_SIZES: [usize; 2] = [64, 1024];
const BACKENDS: [BackendKind; 2] = [BackendKind::Totem, BackendKind::RingPaxos];

fn backend_name(b: BackendKind) -> &'static str {
    match b {
        BackendKind::Totem => "totem",
        BackendKind::RingPaxos => "ring-paxos",
    }
}

fn point(
    backend: BackendKind,
    nodes: usize,
    loss_pct: f64,
    size: usize,
    quick: bool,
) -> Throughput {
    let window = SimDuration::from_millis(if quick { 120 } else { 300 });
    let cfg = MeasureConfig::new(ReplicationStyle::Single, size)
        .with_nodes(nodes)
        .with_backend(backend)
        .with_loss(loss_pct)
        .with_window(window);
    measure(&cfg)
}

/// Unloaded agreement latency: one message submitted at an otherwise
/// idle cluster, timed from submit to its delivery at the *slowest*
/// node, averaged over a few spaced probes. This is the axis where
/// the backends genuinely differ in kind: Totem must wait for the
/// token to come around before it may even send, while the Ring
/// Paxos coordinator opens an instance the moment the proposal
/// arrives.
fn unloaded_latency_us(backend: BackendKind, nodes: usize) -> f64 {
    const PROBES: u64 = 5;
    let cfg =
        ClusterConfig::new(nodes, ReplicationStyle::Single).with_seed(7).with_backend(backend);
    let mut cluster = SimCluster::new(cfg);
    cluster.run_until(SimTime::from_millis(100));
    let mut total = 0u64;
    for k in 0..PROBES {
        let at = SimTime::from_millis(100 + 50 * k);
        cluster.run_until(at);
        cluster.submit(nodes - 1, Bytes::from(format!("probe-{k}")));
        let deadline = at + SimDuration::from_millis(49);
        let mut t = at;
        while !(0..nodes).all(|n| cluster.delivered(n).len() as u64 > k) {
            assert!(t < deadline, "{backend:?} probe {k} undelivered after 49 ms");
            t += SimDuration::from_millis(1);
            cluster.run_until(t);
        }
        let slowest =
            (0..nodes).map(|n| cluster.delivery_times(n)[k as usize]).max().expect("nodes > 0");
        total += slowest - at.as_nanos();
    }
    total as f64 / PROBES as f64 / 1000.0
}

/// Incremental FNV-1a 64-bit hash over the grid's metric bits, so a
/// single number summarizes whether any cell moved.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--out" if i + 1 < args.len() => {
                out = Some(args[i + 1].clone());
                i += 1;
            }
            other => {
                eprintln!("h2h_gate: unknown argument `{other}`");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let started = Instant::now();
    let mut digest = Fnv::new();
    let mut rows = Vec::new();
    for &nodes in &NODE_COUNTS {
        for &loss in &LOSS_PCTS {
            for &size in &MSG_SIZES {
                for &backend in &BACKENDS {
                    let t = point(backend, nodes, loss, size, quick);
                    digest.write(&t.msgs_per_sec.to_bits().to_be_bytes());
                    digest.write(&t.latency_mean_us.to_bits().to_be_bytes());
                    eprintln!(
                        "h2h: {:<10} nodes={nodes} loss={loss}% size={size}: \
                         {:>8.0} msgs/sec, {:>6.0} us",
                        backend_name(backend),
                        t.msgs_per_sec,
                        t.latency_mean_us
                    );
                    rows.push((backend, nodes, loss, size, t));
                }
            }
        }
    }

    let mut probes = Vec::new();
    for &nodes in &NODE_COUNTS {
        for &backend in &BACKENDS {
            let us = unloaded_latency_us(backend, nodes);
            digest.write(&us.to_bits().to_be_bytes());
            eprintln!(
                "h2h: {:<10} nodes={nodes} unloaded latency: {us:>7.0} us",
                backend_name(backend)
            );
            probes.push((backend, nodes, us));
        }
    }

    // Determinism self-check: one cell re-measured must reproduce its
    // metrics bit for bit.
    let again = point(BackendKind::RingPaxos, NODE_COUNTS[0], LOSS_PCTS[1], MSG_SIZES[0], quick);
    let first = &rows
        .iter()
        .find(|(b, n, l, s, _)| {
            *b == BackendKind::RingPaxos
                && *n == NODE_COUNTS[0]
                && *l == LOSS_PCTS[1]
                && *s == MSG_SIZES[0]
        })
        .expect("the repeated cell is in the grid")
        .4;
    let repeat_identical = again.msgs_per_sec.to_bits() == first.msgs_per_sec.to_bits()
        && again.latency_mean_us.to_bits() == first.latency_mean_us.to_bits();

    let mut j = String::new();
    j.push_str("{\n");
    j.push_str("  \"schema\": \"totem-bench-pr10-v1\",\n");
    j.push_str("  \"issue\": \"multi-backend atomic broadcast head-to-head (PR 10)\",\n");
    j.push_str(&format!("  \"quick\": {quick},\n"));
    j.push_str("  \"style\": \"single network, saturating workload, per-receiver loss\",\n");
    j.push_str(&format!("  \"grid_digest\": \"{:016x}\",\n", digest.0));
    j.push_str(&format!("  \"repeat_identical\": {repeat_identical},\n"));
    j.push_str("  \"points\": [\n");
    for (i, (backend, nodes, loss, size, t)) in rows.iter().enumerate() {
        j.push_str(&format!(
            "    {{\"backend\": \"{}\", \"nodes\": {nodes}, \"loss_pct\": {loss:.1}, \
             \"size\": {size}, \"msgs_per_sec\": {:.3}, \"kbytes_per_sec\": {:.3}, \
             \"latency_mean_us\": {:.3}}}{}\n",
            backend_name(*backend),
            t.msgs_per_sec,
            t.kbytes_per_sec,
            t.latency_mean_us,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    j.push_str("  ],\n");
    j.push_str("  \"latency_probes\": [\n");
    for (i, (backend, nodes, us)) in probes.iter().enumerate() {
        j.push_str(&format!(
            "    {{\"backend\": \"{}\", \"nodes\": {nodes}, \"unloaded_latency_us\": {us:.3}}}{}\n",
            backend_name(*backend),
            if i + 1 < probes.len() { "," } else { "" }
        ));
    }
    j.push_str("  ]\n}\n");

    eprintln!(
        "h2h: {} points in {:.1}s, grid digest {:016x}, repeat {}",
        rows.len(),
        started.elapsed().as_secs_f64(),
        digest.0,
        if repeat_identical { "identical" } else { "DIVERGED" }
    );

    match out {
        Some(path) => std::fs::write(&path, &j).unwrap_or_else(|e| {
            eprintln!("h2h_gate: cannot write {path}: {e}");
            std::process::exit(2);
        }),
        None => print!("{j}"),
    }
    if !repeat_identical {
        std::process::exit(1);
    }
}
