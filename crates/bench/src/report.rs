//! Paper-style tables and qualitative shape checks.
//!
//! We do not expect to match the paper's absolute numbers — the
//! substrate is a calibrated simulator, not the authors' testbed —
//! but the *shape* of every figure must hold: who wins, by roughly
//! what factor, and where the packing peaks fall. [`shape_checks`]
//! encodes those claims from §8 as pass/fail assertions printed next
//! to the table.

use totem_rrp::ReplicationStyle;

use crate::figures::{FigureSpec, Metric, SweepResult};
use crate::measure::Throughput;

fn value(metric: Metric, t: &Throughput) -> f64 {
    match metric {
        Metric::MsgsPerSec => t.msgs_per_sec,
        Metric::KbytesPerSec => t.kbytes_per_sec,
    }
}

/// Prints the sweep as a paper-style table.
pub fn print_figure(spec: &FigureSpec, result: &SweepResult) {
    println!();
    println!("== {}: {} ==", spec.id, spec.title);
    println!("   ({} nodes, 2x 100 Mbit/s Ethernet; simulated testbed)", spec.nodes);
    let unit = match spec.metric {
        Metric::MsgsPerSec => "msgs/sec",
        Metric::KbytesPerSec => "Kbytes/sec",
    };
    println!();
    println!(
        "{:>10} | {:>16} | {:>18} | {:>19}",
        "msg bytes", "no replication", "active replication", "passive replication"
    );
    println!("{:->10}-+-{:->16}-+-{:->18}-+-{:->19}", "", "", "", "");
    for (i, size) in result.sizes.iter().enumerate() {
        let cell = |style: ReplicationStyle| {
            let (_, pts) = result.series.iter().find(|(s, _)| *s == style).expect("series");
            value(spec.metric, &pts[i])
        };
        println!(
            "{:>10} | {:>16.0} | {:>18.0} | {:>19.0}",
            size,
            cell(ReplicationStyle::Single),
            cell(ReplicationStyle::Active),
            cell(ReplicationStyle::Passive),
        );
    }
    println!("   (values in {unit})");
}

/// One qualitative claim from the paper and whether this run
/// reproduces it.
#[derive(Debug, Clone)]
pub struct ShapeCheck {
    /// Short name of the claim.
    pub name: &'static str,
    /// Whether the run reproduces it.
    pub pass: bool,
    /// Human-readable evidence.
    pub detail: String,
}

/// Evaluates the paper's §8 claims against a sweep.
pub fn shape_checks(spec: &FigureSpec, result: &SweepResult) -> Vec<ShapeCheck> {
    let mut checks = Vec::new();
    let get = |style: ReplicationStyle, size: usize, metric: Metric| -> f64 {
        value(metric, result.point(style, size))
    };
    let sizes = &result.sizes;
    let has = |s: usize| sizes.contains(&s);

    // Claim 1: passive replication beats no replication (extra
    // payload bandwidth) across the sweep.
    {
        let mut worst: Option<(usize, f64, f64)> = None;
        let mut pass = true;
        for &s in sizes {
            let none = get(ReplicationStyle::Single, s, Metric::KbytesPerSec);
            let passive = get(ReplicationStyle::Passive, s, Metric::KbytesPerSec);
            if passive < none * 0.98 {
                pass = false;
                worst = Some((s, none, passive));
            }
        }
        checks.push(ShapeCheck {
            name: "passive >= no-replication throughput",
            pass,
            detail: match worst {
                None => "passive at or above the unreplicated system at every size".into(),
                Some((s, n, p)) => {
                    format!("violated at {s} B: none={n:.0} KB/s, passive={p:.0} KB/s")
                }
            },
        });
    }

    // Claim 2: active replication costs throughput (doubled protocol
    // stack calls), staying at or below the unreplicated system.
    {
        let mut pass = true;
        let mut worst = String::new();
        for &s in sizes {
            let none = get(ReplicationStyle::Single, s, Metric::KbytesPerSec);
            let active = get(ReplicationStyle::Active, s, Metric::KbytesPerSec);
            if active > none * 1.02 {
                pass = false;
                worst = format!("violated at {s} B: none={none:.0}, active={active:.0} KB/s");
            }
        }
        checks.push(ShapeCheck {
            name: "active <= no-replication throughput",
            pass,
            detail: if pass {
                "active pays for the duplicated sends everywhere".into()
            } else {
                worst
            },
        });
    }

    // Claim 3: passive stays below 2x the unreplicated system — the
    // protocol becomes CPU-bound, not network-bound (§8).
    if has(1400) {
        let none = get(ReplicationStyle::Single, 1400, Metric::KbytesPerSec);
        let passive = get(ReplicationStyle::Passive, 1400, Metric::KbytesPerSec);
        let ratio = passive / none;
        checks.push(ShapeCheck {
            name: "passive below 2x unreplicated (CPU-bound)",
            pass: ratio > 1.02 && ratio < 2.0,
            detail: format!("passive/none at 1400 B = {ratio:.2}"),
        });
    }

    // Claim 4: packing peaks at 700 and 1400 bytes (msgs/sec local
    // maxima against the neighbouring sizes).
    if has(500) && has(700) && has(900) {
        let r = |s| get(ReplicationStyle::Single, s, Metric::MsgsPerSec);
        // A peak in *efficiency*: at 700 B two messages fill a frame
        // exactly, so the rate must not drop as fast as payload grows —
        // compare throughput in bytes.
        let b = |s| get(ReplicationStyle::Single, s, Metric::KbytesPerSec);
        let peak = b(700) > b(500) && b(700) > b(900);
        checks.push(ShapeCheck {
            name: "packing peak at 700 bytes",
            pass: peak,
            detail: format!(
                "bandwidth at 500/700/900 B = {:.0}/{:.0}/{:.0} KB/s (rate {:.0}/{:.0}/{:.0})",
                b(500),
                b(700),
                b(900),
                r(500),
                r(700),
                r(900)
            ),
        });
    }
    if has(1200) && has(1400) && has(1700) {
        let b = |s| get(ReplicationStyle::Single, s, Metric::KbytesPerSec);
        checks.push(ShapeCheck {
            name: "packing peak at 1400 bytes",
            pass: b(1400) > b(1200) && b(1400) > b(1700),
            detail: format!(
                "bandwidth at 1200/1400/1700 B = {:.0}/{:.0}/{:.0} KB/s",
                b(1200),
                b(1400),
                b(1700)
            ),
        });
    }

    // Claim 5 (§2 headline, 4-node testbed only): >9,000 1-Kbyte
    // msgs/sec on one 100 Mbit/s Ethernet, ~90% utilization near the
    // frame-filling sizes.
    if spec.nodes == 4 && has(1000) {
        let rate = get(ReplicationStyle::Single, 1000, Metric::MsgsPerSec);
        checks.push(ShapeCheck {
            name: "~9,000 1-Kbyte msgs/sec unreplicated",
            pass: (8000.0..11000.0).contains(&rate),
            detail: format!("measured {rate:.0} msgs/sec"),
        });
        let util = result.point(ReplicationStyle::Single, 1400).utilization[0];
        checks.push(ShapeCheck {
            name: "~90% Ethernet utilization at 1400 bytes",
            pass: util > 0.8,
            detail: format!("utilization {:.1}%", util * 100.0),
        });
    }

    checks
}

/// Prints the checks beneath a figure table. Returns `true` if all
/// passed.
pub fn print_checks(checks: &[ShapeCheck]) -> bool {
    println!();
    let mut all = true;
    for c in checks {
        println!("  [{}] {} — {}", if c.pass { "PASS" } else { "FAIL" }, c.name, c.detail);
        all &= c.pass;
    }
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::{fig6, SERIES};

    fn fake_result(sizes: &[usize], f: impl Fn(ReplicationStyle, usize) -> f64) -> SweepResult {
        SweepResult {
            sizes: sizes.to_vec(),
            series: SERIES
                .iter()
                .map(|&style| {
                    let pts = sizes
                        .iter()
                        .map(|&s| {
                            let v = f(style, s);
                            Throughput {
                                msgs_per_sec: v / s as f64 * 1000.0,
                                kbytes_per_sec: v,
                                latency_mean_us: 100.0,
                                utilization: vec![0.9, 0.9],
                            }
                        })
                        .collect();
                    (style, pts)
                })
                .collect(),
        }
    }

    #[test]
    fn ideal_shapes_pass_all_checks() {
        let sizes = [500, 700, 900, 1000, 1200, 1400, 1700];
        let result = fake_result(&sizes, |style, s| {
            let base = match s {
                700 => 11000.0,
                1400 => 11500.0,
                1000 | 1200 => 9200.0,
                _ => 9000.0,
            };
            match style {
                ReplicationStyle::Single => base,
                ReplicationStyle::Active => base - 1200.0,
                ReplicationStyle::Passive => base * 1.4,
                _ => base,
            }
        });
        let checks = shape_checks(&fig6(), &result);
        // The headline-rate check needs msgs/sec ≈ 9.2 at 1000 B via
        // the fake conversion (9200/1000*1000 = 9200): passes.
        assert!(
            checks.iter().all(|c| c.pass),
            "failed: {:?}",
            checks.iter().filter(|c| !c.pass).map(|c| c.name).collect::<Vec<_>>()
        );
    }

    #[test]
    fn inverted_ordering_fails_the_ordering_checks() {
        let sizes = [500, 700, 900, 1400];
        let result = fake_result(&sizes, |style, _| match style {
            ReplicationStyle::Single => 9000.0,
            ReplicationStyle::Active => 12000.0, // wrong: active must not win
            ReplicationStyle::Passive => 5000.0, // wrong: passive must not lose
            _ => 9000.0,
        });
        let checks = shape_checks(&fig6(), &result);
        let by_name = |n: &str| checks.iter().find(|c| c.name == n).unwrap();
        assert!(!by_name("passive >= no-replication throughput").pass);
        assert!(!by_name("active <= no-replication throughput").pass);
    }
}
