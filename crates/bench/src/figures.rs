//! Regeneration of the paper's Figures 6–9.
//!
//! Each figure is a message-size sweep with three series — no
//! replication, active replication, passive replication — over two
//! 100 Mbit/s Ethernets. Figures 6/8 use the 4-node Pentium II
//! testbed; Figures 7/9 the 6-node Pentium III testbed. Figures 6/7
//! plot msgs/sec, Figures 8/9 Kbytes/sec — from the same runs, so the
//! sweep is executed once per (figure pair, size, style).

use totem_rrp::ReplicationStyle;
use totem_sim::{CpuConfig, SimDuration};

use crate::measure::{measure, MeasureConfig, Throughput};

/// The message sizes of the paper's sweep: 100 bytes to 10 Kbytes,
/// roughly log-spaced, with extra points at the packing-induced peaks
/// (700 and 1400 bytes).
pub const PAPER_SIZES: &[usize] =
    &[100, 150, 200, 300, 500, 700, 900, 1000, 1200, 1400, 1700, 2000, 3000, 5000, 7000, 10000];

/// A reduced sweep for quick runs (`cargo bench` default).
pub const QUICK_SIZES: &[usize] = &[100, 300, 700, 1000, 1400, 3000, 10000];

/// What a figure plots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Total send rate, messages per second (Figures 6 and 7).
    MsgsPerSec,
    /// Utilized bandwidth, Kbytes per second (Figures 8 and 9).
    KbytesPerSec,
}

/// Parameters of one paper figure.
#[derive(Debug, Clone)]
pub struct FigureSpec {
    /// Paper figure id, e.g. `"Figure 6"`.
    pub id: &'static str,
    /// Caption (from the paper).
    pub title: &'static str,
    /// Cluster size.
    pub nodes: usize,
    /// CPU model of the corresponding testbed.
    pub cpu: CpuConfig,
    /// What the figure plots.
    pub metric: Metric,
}

/// Figure 6: transmission rate in msgs/sec for four nodes.
pub fn fig6() -> FigureSpec {
    FigureSpec {
        id: "Figure 6",
        title: "Transmission rate of the Totem RRP in msgs/sec for four nodes",
        nodes: 4,
        cpu: CpuConfig::pentium_ii_450(),
        metric: Metric::MsgsPerSec,
    }
}

/// Figure 7: transmission rate in msgs/sec for six nodes.
pub fn fig7() -> FigureSpec {
    FigureSpec {
        id: "Figure 7",
        title: "Transmission rate of the Totem RRP in msgs/sec for six nodes",
        nodes: 6,
        cpu: CpuConfig::pentium_iii_900(),
        metric: Metric::MsgsPerSec,
    }
}

/// Figure 8: transmission rate in Kbytes/sec for four nodes.
pub fn fig8() -> FigureSpec {
    FigureSpec {
        metric: Metric::KbytesPerSec,
        id: "Figure 8",
        title: "Transmission rate of the Totem RRP in Kbytes/sec for four nodes",
        ..fig6()
    }
}

/// Figure 9: transmission rate in Kbytes/sec for six nodes.
pub fn fig9() -> FigureSpec {
    FigureSpec {
        metric: Metric::KbytesPerSec,
        id: "Figure 9",
        title: "Transmission rate of the Totem RRP in Kbytes/sec for six nodes",
        ..fig7()
    }
}

/// The three series of every paper figure, in legend order.
pub const SERIES: &[ReplicationStyle] =
    &[ReplicationStyle::Single, ReplicationStyle::Active, ReplicationStyle::Passive];

/// A completed sweep: one [`Throughput`] per (style, size).
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// The swept message sizes.
    pub sizes: Vec<usize>,
    /// Per style (in [`SERIES`] order), one measurement per size.
    pub series: Vec<(ReplicationStyle, Vec<Throughput>)>,
}

impl SweepResult {
    /// The measurement for `style` at `size`.
    pub fn point(&self, style: ReplicationStyle, size: usize) -> &Throughput {
        let i = self.sizes.iter().position(|&s| s == size).expect("size in sweep");
        let (_, points) = self.series.iter().find(|(s, _)| *s == style).expect("style in sweep");
        &points[i]
    }
}

/// Runs the sweep for `spec` over `sizes`, `window` simulated seconds
/// of measurement per point.
pub fn figure_sweep(spec: &FigureSpec, sizes: &[usize], window: SimDuration) -> SweepResult {
    let series = SERIES
        .iter()
        .map(|&style| {
            let points = sizes
                .iter()
                .map(|&size| {
                    let cfg = MeasureConfig::new(style, size)
                        .with_nodes(spec.nodes)
                        .with_cpu(spec.cpu.clone())
                        .with_window(window);
                    measure(&cfg)
                })
                .collect();
            (style, points)
        })
        .collect();
    SweepResult { sizes: sizes.to_vec(), series }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_match_the_paper() {
        assert_eq!(fig6().nodes, 4);
        assert_eq!(fig7().nodes, 6);
        assert_eq!(fig8().metric, Metric::KbytesPerSec);
        assert_eq!(fig9().nodes, 6);
        assert!(PAPER_SIZES.contains(&700) && PAPER_SIZES.contains(&1400));
        assert!(PAPER_SIZES.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn tiny_sweep_produces_all_series() {
        let r = figure_sweep(&fig6(), &[700], SimDuration::from_millis(100));
        assert_eq!(r.series.len(), 3);
        assert!(r.point(ReplicationStyle::Single, 700).msgs_per_sec > 0.0);
        assert!(r.point(ReplicationStyle::Passive, 700).msgs_per_sec > 0.0);
    }
}
