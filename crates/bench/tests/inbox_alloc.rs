//! Allocation-regression gate for the transport inbox arenas.
//!
//! The batched receive path's contract is O(1) allocations per
//! *batch*, not per datagram: a reader thread copies every datagram
//! into one linear arena, seals the arena into an immutable batch
//! (one channel send), and the driver carves frames off as zero-copy
//! slices. These tests pin that with a counting global allocator —
//! if a per-datagram `Bytes` allocation or a per-frame queue node
//! sneaks back in, the per-frame numbers scale with the batch size
//! and the assertions fail.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use totem_transport::inbox::{InboxArena, MAX_BATCH_FRAMES};
use totem_wire::NetworkId;

/// Counts allocations and requested bytes; frees are not tracked (the
/// gate cares about allocation *pressure*, not live bytes).
struct CountingAlloc;

static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to `System`; the counter is a plain
// relaxed atomic with no other side effects.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOC_COUNT.load(Ordering::Relaxed)
}

/// Steady-state cost of the arena cycle: after a warm-up batch sizes
/// the buffers, each full batch (push × frames, seal, carve every
/// frame) costs a small constant number of allocations — the
/// replacement arena, the replacement bounds vec, the `Arc` created
/// by freezing, and the batch's trip through the channel-free path
/// here is none — regardless of how many datagrams it carries.
#[test]
fn arena_batch_cycle_allocates_o1_not_per_frame() {
    const FRAMES: usize = MAX_BATCH_FRAMES;
    let datagram = [0xABu8; 512];
    let mut arena = InboxArena::new(NetworkId::new(0));

    // Warm up: first batches grow the arena to its steady-state size
    // and teach the cap hint the traffic shape.
    for _ in 0..4 {
        for _ in 0..FRAMES {
            arena.push(&datagram);
        }
        let sealed = arena.seal().expect("non-empty");
        assert_eq!(sealed.iter().count(), FRAMES);
    }

    // Measured: 8 full batch cycles, carving every frame.
    let cycles = 8u64;
    let a0 = allocs();
    let mut carved_total = 0usize;
    for _ in 0..cycles {
        for _ in 0..FRAMES {
            arena.push(&datagram);
        }
        let sealed = arena.seal().expect("non-empty");
        for frame in sealed.iter() {
            carved_total += frame.len();
        }
    }
    let spent = allocs() - a0;
    assert_eq!(carved_total, cycles as usize * FRAMES * datagram.len());

    // O(1) per batch: arena replacement + bounds replacement + freeze.
    // Give headroom for allocator-internal noise, but stay far below
    // one allocation per frame (64 frames/batch would be >= 512).
    let per_batch = spent as f64 / cycles as f64;
    assert!(
        per_batch <= 8.0,
        "arena cycle allocated {per_batch:.1} times per batch (want O(1), \
         {spent} allocations over {cycles} batches of {FRAMES} frames)"
    );
}

/// Carving is zero-copy: frames of a sealed batch alias the arena
/// allocation instead of owning copies, so carving allocates nothing.
#[test]
fn carving_a_sealed_batch_allocates_nothing() {
    let mut arena = InboxArena::new(NetworkId::new(1));
    for i in 0..32u8 {
        arena.push(&[i; 256]);
    }
    let sealed = arena.seal().expect("non-empty");

    let a0 = allocs();
    let mut total = 0usize;
    for frame in sealed.iter() {
        total += frame.len();
    }
    assert_eq!(allocs() - a0, 0, "carving must not allocate");
    assert_eq!(total, 32 * 256);
}
