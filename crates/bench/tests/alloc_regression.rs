//! Allocation-regression gate for the zero-copy data plane.
//!
//! The hot-path contract is: a broadcast performs **one encode** of
//! the frame (cached in its [`totem_wire::SharedPacket`]) plus O(1)
//! buffer allocations, *independent of cluster size* — fanning a
//! frame out to more receivers is refcount bumps, never payload
//! copies. These tests pin that with a counting global allocator:
//! if a per-receiver deep clone or a per-send re-encode sneaks back
//! in, the per-frame numbers scale with the node count and the
//! assertions below fail.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use totem_cluster::{ClusterConfig, SimCluster};
use totem_rrp::ReplicationStyle;
use totem_sim::{SimDuration, SimTime};
use totem_wire::{Chunk, DataPacket, NodeId, RingId, Seq, SharedPacket};

/// Counts allocations and requested bytes; frees are not tracked (the
/// gate cares about allocation *pressure*, not live bytes).
struct CountingAlloc;

static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to `System`; the counters are plain
// relaxed atomics with no other side effects.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn snapshot() -> (u64, u64) {
    (ALLOC_COUNT.load(Ordering::Relaxed), ALLOC_BYTES.load(Ordering::Relaxed))
}

/// Steady-state allocation cost of a saturated cluster: (allocations
/// per wire frame, allocated bytes per wire frame).
fn per_frame_cost(nodes: usize, msg_size: usize) -> (f64, f64) {
    let mut cfg = ClusterConfig::new(nodes, ReplicationStyle::Active).counters_only().with_seed(7);
    cfg.sim = cfg.sim.with_cpu(totem_sim::CpuConfig::pentium_ii_450());
    let mut cluster = SimCluster::new(cfg);
    cluster.enable_saturation(msg_size);

    // Warm up: ring formation, first-touch growth of windows, pools
    // and queues all happen here, outside the counted window.
    cluster.run_until(SimTime::ZERO + SimDuration::from_millis(80));
    let frames_before = cluster.net_stats().total_frames();
    let (a0, b0) = snapshot();

    cluster.run_until(SimTime::ZERO + SimDuration::from_millis(80 + 120));

    let (a1, b1) = snapshot();
    let frames = cluster.net_stats().total_frames() - frames_before;
    assert!(frames > 100, "expected a saturated run, got only {frames} frames");
    ((a1 - a0) as f64 / frames as f64, (b1 - b0) as f64 / frames as f64)
}

/// Encoding a shared frame allocates once; every further access to
/// the wire form is free.
#[test]
fn second_encode_of_a_shared_frame_allocates_nothing() {
    let pkt: SharedPacket = DataPacket {
        ring: RingId::new(NodeId::new(0), 1),
        seq: Seq::new(1),
        sender: NodeId::new(0),
        chunks: vec![Chunk::complete(1, bytes::Bytes::from(vec![0xAB; 700]))],
    }
    .into();

    let first = pkt.encoded().clone();
    let (a0, _) = snapshot();
    for _ in 0..16 {
        // Clones of the handle share the cache: no encode, no alloc.
        let copy = pkt.clone();
        assert_eq!(copy.encoded().as_ref(), first.as_ref());
    }
    let (a1, _) = snapshot();
    assert_eq!(a1 - a0, 0, "re-reading the cached encoding must not allocate");
}

/// Per-frame allocation cost must not scale with the receiver count:
/// doubling the cluster may grow bookkeeping slightly (more per-node
/// timers and window entries in flight) but payload buffers are
/// shared, so the per-frame cost stays in the same band instead of
/// doubling with a per-receiver copy.
#[test]
fn broadcast_cost_is_independent_of_cluster_size() {
    let (allocs4, bytes4) = per_frame_cost(4, 700);
    let (allocs8, bytes8) = per_frame_cost(8, 700);

    // Regression budget for the absolute cost: the zero-copy data
    // plane runs well under 8 allocations per frame (the pre-change
    // hot path was ~18); a deep-clone regression lands far above.
    assert!(allocs4 < 10.0, "allocs/frame at 4 nodes regressed: {allocs4:.1}");
    assert!(allocs8 < 12.0, "allocs/frame at 8 nodes regressed: {allocs8:.1}");

    // Scaling: with per-receiver deep clones a 4→8 node doubling
    // costs ≥2× the buffer bytes per frame. Shared frames keep both
    // counts in the same band; 1.6 leaves room for bookkeeping noise.
    assert!(
        allocs8 < allocs4 * 1.6,
        "allocs/frame scaled with cluster size: {allocs4:.1} -> {allocs8:.1}"
    );
    assert!(
        bytes8 < bytes4 * 1.6,
        "alloc bytes/frame scaled with cluster size: {bytes4:.0} -> {bytes8:.0}"
    );
}
