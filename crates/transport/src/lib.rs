//! Transports for the Totem stack: N redundant channels per node.
//!
//! The protocol crates are sans-io; this crate supplies the io for the
//! real-time runtime in `totem-cluster`:
//!
//! * [`UdpTransport`] — one UDP socket per redundant network, as in
//!   the paper's deployment (each workstation had one NIC per
//!   network). Broadcast is emulated by unicast fan-out to every peer,
//!   which keeps the example runnable on a loopback interface without
//!   multicast configuration.
//! * [`InMemoryTransport`] — a process-local hub for tests and
//!   examples that do not want sockets at all.
//!
//! Both implement [`Transport`]. Beyond the single-shot
//! [`Transport::send`]/[`Transport::recv_timeout`] pair, the trait
//! offers a batched fast path — [`Transport::send_batch`] submits a
//! whole [`SendBatch`] at once and [`Transport::recv_batch`] drains
//! everything queued into a [`RecvBatch`] — with default
//! implementations that loop over the single-shot methods, so every
//! transport is batch-callable and batch-aware transports (the UDP
//! one, via [`inbox`] arenas and optionally `sendmmsg`/`recvmmsg`
//! under the `mmsg` feature) amortize their per-datagram costs.
//!
//! Unsafe code is denied crate-wide; the single audited exception is
//! the `mmsg` syscall shim in `sys`, which exists only on Linux
//! behind the `mmsg` cargo feature.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod counted;
pub mod inbox;
pub mod memory;
#[cfg(all(feature = "mmsg", target_os = "linux"))]
pub mod sys;
pub mod udp;

pub use batch::{RecvBatch, SendBatch, SendFrame};
pub use counted::{CountingTransport, TransportCounters};
pub use memory::{InMemoryHub, InMemoryTransport};
pub use udp::{BoundTopology, UdpTopology, UdpTransport};

use std::io;
use std::time::Duration;

use bytes::Bytes;

use totem_wire::{NetworkId, NodeId};

/// Where a packet should go on one network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Destination {
    /// All peers on the network (data packets and join messages).
    Broadcast,
    /// A single peer (tokens).
    Node(NodeId),
}

/// A set of N redundant channels belonging to one node.
///
/// Sending never blocks on peers; receiving is a single multiplexed
/// queue across all networks.
pub trait Transport: Send {
    /// Number of redundant networks.
    fn networks(&self) -> usize;

    /// Sends `payload` on `net` to `dst`.
    ///
    /// The payload is a refcounted [`Bytes`] handle so implementations
    /// that fan one datagram out to many local queues (broadcast on
    /// the in-memory hub) share a single buffer instead of copying it
    /// per receiver.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the underlying channel. Transient
    /// send failures should be treated as packet loss (the protocol
    /// retransmits); callers should not retry in a loop.
    fn send(&self, net: NetworkId, dst: Destination, payload: Bytes) -> io::Result<()>;

    /// Waits up to `timeout` for the next datagram on any network.
    /// Returns `None` on timeout or if the transport has shut down.
    fn recv_timeout(&self, timeout: Duration) -> Option<(NetworkId, Bytes)>;

    /// Submits every pending frame of `batch`, advancing its cursor
    /// past what was sent, and returns how many frames went out —
    /// `sendmmsg(2)` semantics: a transient failure mid-batch reports
    /// the partial count (`Ok(n)`, unsent tail left pending) and only
    /// a failure on the *first* pending frame surfaces as an error.
    ///
    /// The default implementation loops over [`Transport::send`];
    /// batch-aware transports override it to amortize per-submission
    /// work across the whole batch.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error only when no frame of this
    /// call could be submitted.
    fn send_batch(&self, batch: &mut SendBatch) -> io::Result<usize> {
        let mut sent = 0;
        while let Some(frame) = batch.pending().first() {
            match self.send(frame.net, frame.dst, frame.payload.clone()) {
                Ok(()) => {
                    batch.advance(1);
                    sent += 1;
                }
                Err(e) if sent == 0 => return Err(e),
                Err(_) => break,
            }
        }
        Ok(sent)
    }

    /// Waits up to `timeout` for traffic, then appends everything
    /// immediately available (across all networks, up to the batch's
    /// frame cap) to `out`. Returns how many datagrams were appended;
    /// `0` means timeout or shutdown.
    ///
    /// The default implementation performs one blocking
    /// [`Transport::recv_timeout`] followed by zero-timeout drains.
    fn recv_batch(&self, out: &mut RecvBatch, timeout: Duration) -> usize {
        let mut got = 0;
        let mut wait = timeout;
        while out.space() > 0 {
            match self.recv_timeout(wait) {
                Some((net, payload)) => {
                    out.push(net, payload);
                    got += 1;
                    wait = Duration::ZERO;
                }
                None => break,
            }
        }
        got
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn destination_is_plain_data() {
        let d = Destination::Node(NodeId::new(3));
        assert_eq!(d, Destination::Node(NodeId::new(3)));
        assert_ne!(d, Destination::Broadcast);
    }

    #[test]
    fn default_send_batch_loops_over_send() {
        let hub = InMemoryHub::new(3, 2);
        let mut batch = SendBatch::new();
        batch.push(NetworkId::new(0), Destination::Broadcast, Bytes::from_static(b"b0"));
        batch.push(NetworkId::new(1), Destination::Node(NodeId::new(2)), Bytes::from_static(b"u1"));
        let sent = hub[0].send_batch(&mut batch).expect("both frames send");
        assert_eq!(sent, 2);
        assert!(batch.is_empty());
        // Broadcast landed on node 1 and 2, unicast only on node 2.
        assert_eq!(hub[1].recv_timeout(Duration::from_millis(100)).unwrap().1.as_ref(), b"b0");
        let mut got: Vec<Vec<u8>> = (0..2)
            .filter_map(|_| hub[2].recv_timeout(Duration::from_millis(100)))
            .map(|(_, b)| b.to_vec())
            .collect();
        got.sort();
        assert_eq!(got, vec![b"b0".to_vec(), b"u1".to_vec()]);
    }

    #[test]
    fn default_send_batch_errors_only_when_nothing_was_sent() {
        let hub = InMemoryHub::new(2, 1);
        // First frame bad: hard error, nothing sent.
        let mut batch = SendBatch::new();
        batch.push(NetworkId::new(0), Destination::Node(NodeId::new(9)), Bytes::from_static(b"x"));
        batch.push(NetworkId::new(0), Destination::Node(NodeId::new(1)), Bytes::from_static(b"y"));
        let err = hub[0].send_batch(&mut batch).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
        assert_eq!(batch.remaining(), 2, "nothing consumed on a leading error");

        // Bad frame mid-batch: partial success, tail stays pending.
        let mut batch = SendBatch::new();
        batch.push(NetworkId::new(0), Destination::Node(NodeId::new(1)), Bytes::from_static(b"a"));
        batch.push(NetworkId::new(0), Destination::Node(NodeId::new(9)), Bytes::from_static(b"b"));
        batch.push(NetworkId::new(0), Destination::Node(NodeId::new(1)), Bytes::from_static(b"c"));
        let sent = hub[0].send_batch(&mut batch).expect("partial success is Ok");
        assert_eq!(sent, 1);
        assert_eq!(batch.remaining(), 2, "failed frame and tail stay pending");
    }

    #[test]
    fn default_recv_batch_drains_whatever_is_queued() {
        let hub = InMemoryHub::new(2, 2);
        for i in 0..5u8 {
            hub[0]
                .send(
                    NetworkId::new(i % 2),
                    Destination::Node(NodeId::new(1)),
                    Bytes::copy_from_slice(&[i]),
                )
                .unwrap();
        }
        let mut out = RecvBatch::new();
        let n = hub[1].recv_batch(&mut out, Duration::from_millis(200));
        assert_eq!(n, 5);
        let nets: Vec<u8> = out.iter().map(|(net, _)| net.as_u8()).collect();
        assert_eq!(nets, vec![0, 1, 0, 1, 0], "arrival order preserved");
        out.clear();
        assert_eq!(hub[1].recv_batch(&mut out, Duration::from_millis(10)), 0);
    }

    #[test]
    fn default_recv_batch_respects_the_frame_cap() {
        let hub = InMemoryHub::new(2, 1);
        for i in 0..4u8 {
            hub[0]
                .send(
                    NetworkId::new(0),
                    Destination::Node(NodeId::new(1)),
                    Bytes::copy_from_slice(&[i]),
                )
                .unwrap();
        }
        let mut out = RecvBatch::with_max(3);
        assert_eq!(hub[1].recv_batch(&mut out, Duration::from_millis(100)), 3);
        assert_eq!(hub[1].recv_batch(&mut out, Duration::from_millis(100)), 0, "batch full");
        out.clear();
        assert_eq!(hub[1].recv_batch(&mut out, Duration::from_millis(100)), 1, "tail arrives next");
    }
}
