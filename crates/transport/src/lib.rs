//! Transports for the Totem stack: N redundant channels per node.
//!
//! The protocol crates are sans-io; this crate supplies the io for the
//! real-time runtime in `totem-cluster`:
//!
//! * [`UdpTransport`] — one UDP socket per redundant network, as in
//!   the paper's deployment (each workstation had one NIC per
//!   network). Broadcast is emulated by unicast fan-out to every peer,
//!   which keeps the example runnable on a loopback interface without
//!   multicast configuration.
//! * [`InMemoryTransport`] — a process-local hub for tests and
//!   examples that do not want sockets at all.
//!
//! Both implement [`Transport`]; reader threads funnel every received
//! datagram into a single crossbeam channel so a driver loop can wait
//! on all networks at once with a timeout (the protocol's next timer
//! deadline).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod memory;
pub mod udp;

pub use memory::{InMemoryHub, InMemoryTransport};
pub use udp::{UdpTopology, UdpTransport};

use std::io;
use std::time::Duration;

use bytes::Bytes;

use totem_wire::{NetworkId, NodeId};

/// Where a packet should go on one network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Destination {
    /// All peers on the network (data packets and join messages).
    Broadcast,
    /// A single peer (tokens).
    Node(NodeId),
}

/// A set of N redundant channels belonging to one node.
///
/// Sending never blocks on peers; receiving is a single multiplexed
/// queue across all networks.
pub trait Transport: Send {
    /// Number of redundant networks.
    fn networks(&self) -> usize;

    /// Sends `payload` on `net` to `dst`.
    ///
    /// The payload is a refcounted [`Bytes`] handle so implementations
    /// that fan one datagram out to many local queues (broadcast on
    /// the in-memory hub) share a single buffer instead of copying it
    /// per receiver.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the underlying channel. Transient
    /// send failures should be treated as packet loss (the protocol
    /// retransmits); callers should not retry in a loop.
    fn send(&self, net: NetworkId, dst: Destination, payload: Bytes) -> io::Result<()>;

    /// Waits up to `timeout` for the next datagram on any network.
    /// Returns `None` on timeout or if the transport has shut down.
    fn recv_timeout(&self, timeout: Duration) -> Option<(NetworkId, Bytes)>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn destination_is_plain_data() {
        let d = Destination::Node(NodeId::new(3));
        assert_eq!(d, Destination::Node(NodeId::new(3)));
        assert_ne!(d, Destination::Broadcast);
    }
}
