//! A process-local transport: N simulated networks as crossbeam
//! channels, no sockets.
//!
//! [`InMemoryHub::new`] builds one [`InMemoryTransport`] per node; a
//! broadcast clones the payload to every other node's queue. Delivery
//! is reliable and FIFO per (sender, network) — like an idle LAN.
//! Useful for runtime tests and examples that want real threads but
//! no real network.

use std::io;
use std::time::Duration;

use bytes::Bytes;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use totem_wire::{NetworkId, NodeId};

use crate::{Destination, Transport};

type Datagram = (NetworkId, Bytes);

/// Shared state: every node's inbox.
#[derive(Debug)]
struct Shared {
    inboxes: Vec<Sender<Datagram>>,
    /// Per network: is it administratively down? (simple fault hook
    /// for runtime tests; the simulator has the full fault plane).
    down: Mutex<Vec<bool>>,
}

/// Factory for a cluster of in-memory transports.
#[derive(Debug)]
pub struct InMemoryHub;

impl InMemoryHub {
    /// Builds `nodes` connected transports over `networks` networks.
    /// (A factory, not a constructor — the hub itself lives inside the
    /// returned endpoints.)
    ///
    /// # Panics
    ///
    /// Panics if `nodes` or `networks` is zero.
    #[allow(clippy::new_ret_no_self)]
    pub fn new(nodes: usize, networks: usize) -> Vec<InMemoryTransport> {
        assert!(nodes > 0 && networks > 0, "nodes and networks must be positive");
        let mut inboxes = Vec::with_capacity(nodes);
        let mut receivers = Vec::with_capacity(nodes);
        for _ in 0..nodes {
            let (tx, rx) = unbounded();
            inboxes.push(tx);
            receivers.push(rx);
        }
        let shared =
            std::sync::Arc::new(Shared { inboxes, down: Mutex::new(vec![false; networks]) });
        receivers
            .into_iter()
            .enumerate()
            .map(|(i, rx)| InMemoryTransport {
                me: NodeId::new(i as u16),
                networks,
                shared: shared.clone(),
                rx,
            })
            .collect()
    }
}

/// One node's endpoint on the in-memory hub.
#[derive(Debug)]
pub struct InMemoryTransport {
    me: NodeId,
    networks: usize,
    shared: std::sync::Arc<Shared>,
    rx: Receiver<Datagram>,
}

impl InMemoryTransport {
    /// This endpoint's node id.
    pub fn id(&self) -> NodeId {
        self.me
    }

    /// Administratively kills or revives a network for everyone on the
    /// hub (packets on a dead network are silently dropped).
    pub fn set_network_down(&self, net: NetworkId, down: bool) {
        self.shared.down.lock()[net.index()] = down;
    }
}

impl Transport for InMemoryTransport {
    fn networks(&self) -> usize {
        self.networks
    }

    fn send(&self, net: NetworkId, dst: Destination, payload: Bytes) -> io::Result<()> {
        assert!(net.index() < self.networks, "network out of range");
        if self.shared.down.lock()[net.index()] {
            return Ok(()); // dropped on the dead network
        }
        match dst {
            Destination::Broadcast => {
                // Refcount bumps, not copies: all receivers share the
                // sender's buffer.
                for (i, tx) in self.shared.inboxes.iter().enumerate() {
                    if i != self.me.index() {
                        let _ = tx.send((net, payload.clone()));
                    }
                }
            }
            Destination::Node(d) => {
                let tx = self.shared.inboxes.get(d.index()).ok_or_else(|| {
                    io::Error::new(io::ErrorKind::NotFound, "unknown destination node")
                })?;
                let _ = tx.send((net, payload));
            }
        }
        Ok(())
    }

    fn recv_timeout(&self, timeout: Duration) -> Option<(NetworkId, Bytes)> {
        self.rx.recv_timeout(timeout).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_reaches_everyone_but_sender() {
        let hub = InMemoryHub::new(3, 2);
        hub[0].send(NetworkId::new(1), Destination::Broadcast, Bytes::from_static(b"hi")).unwrap();
        for t in &hub[1..] {
            let (net, data) = t.recv_timeout(Duration::from_millis(100)).unwrap();
            assert_eq!(net, NetworkId::new(1));
            assert_eq!(data.as_ref(), b"hi");
        }
        assert!(hub[0].recv_timeout(Duration::from_millis(10)).is_none());
    }

    #[test]
    fn unicast_reaches_only_destination() {
        let hub = InMemoryHub::new(3, 1);
        hub[0]
            .send(NetworkId::new(0), Destination::Node(NodeId::new(2)), Bytes::from_static(b"tok"))
            .unwrap();
        assert!(hub[1].recv_timeout(Duration::from_millis(10)).is_none());
        assert_eq!(hub[2].recv_timeout(Duration::from_millis(100)).unwrap().1.as_ref(), b"tok");
    }

    #[test]
    fn unknown_destination_errors() {
        let hub = InMemoryHub::new(2, 1);
        let err = hub[0]
            .send(NetworkId::new(0), Destination::Node(NodeId::new(9)), Bytes::from_static(b"x"))
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn dead_network_swallows_traffic() {
        let hub = InMemoryHub::new(2, 2);
        hub[0].set_network_down(NetworkId::new(0), true);
        hub[0].send(NetworkId::new(0), Destination::Broadcast, Bytes::from_static(b"a")).unwrap();
        hub[0].send(NetworkId::new(1), Destination::Broadcast, Bytes::from_static(b"b")).unwrap();
        let (net, data) = hub[1].recv_timeout(Duration::from_millis(100)).unwrap();
        assert_eq!((net, data.as_ref()), (NetworkId::new(1), b"b".as_slice()));
        // Revive and confirm it works again.
        hub[1].set_network_down(NetworkId::new(0), false);
        hub[0].send(NetworkId::new(0), Destination::Broadcast, Bytes::from_static(b"c")).unwrap();
        assert_eq!(hub[1].recv_timeout(Duration::from_millis(100)).unwrap().1.as_ref(), b"c");
    }
}
