//! Single-writer inbox arenas: compact linear datagram buffers.
//!
//! Each UDP reader thread owns one [`InboxArena`] — a linear
//! `BytesMut` it copies every received datagram into, back to back,
//! recording only the end offset of each frame. When the socket runs
//! dry (or the arena hits its frame/byte caps) the writer
//! [`seal`](InboxArena::seal)s the arena into an immutable
//! [`SealedBatch`] and hands the *whole batch* to the driver in one
//! channel send. The driver carves the batch into per-frame [`Bytes`]
//! with zero-copy slices of the shared arena allocation.
//!
//! Compared to the previous per-datagram path
//! (`Bytes::copy_from_slice` + one channel send per datagram) this
//! costs O(1) allocations and one queue operation *per batch* instead
//! of per frame: the arena is one allocation, the offsets ride in one
//! small `Vec`, and every carved frame is a refcount bump on the
//! arena. The design follows the single-writer message inboxes in
//! citybound's `kay` actor system (one linear buffer per writer →
//! reader pair, messages appended back to back and consumed as
//! slices).

use bytes::{Bytes, BytesMut};

use totem_wire::NetworkId;

/// Soft cap on datagrams per sealed batch (matches common `recvmmsg`
/// vector sizes; keeps one batch from monopolizing the driver).
pub const MAX_BATCH_FRAMES: usize = 64;

/// Soft cap on arena bytes per sealed batch.
pub const MAX_BATCH_BYTES: usize = 256 * 1024;

/// A linear, single-writer datagram arena.
#[derive(Debug)]
pub struct InboxArena {
    net: NetworkId,
    arena: BytesMut,
    /// End offset of frame `i` within the arena (frame `i` spans
    /// `bounds[i-1]..bounds[i]`, with an implicit leading 0).
    bounds: Vec<u32>,
    /// Capacity hint for the next arena, tracking recent batch sizes
    /// so steady state reserves once and never regrows.
    cap_hint: usize,
}

impl InboxArena {
    /// An empty arena for datagrams received on `net`.
    pub fn new(net: NetworkId) -> Self {
        InboxArena {
            net,
            arena: BytesMut::with_capacity(MAX_BATCH_BYTES / 16),
            bounds: Vec::with_capacity(MAX_BATCH_FRAMES),
            cap_hint: MAX_BATCH_BYTES / 16,
        }
    }

    /// Appends one datagram (one linear copy out of the socket
    /// scratch buffer, no allocation unless the arena must grow).
    pub fn push(&mut self, datagram: &[u8]) {
        self.arena.extend_from_slice(datagram);
        // Arena offsets fit u32 by construction: MAX_BATCH_BYTES plus
        // one max-size datagram is far below u32::MAX.
        self.bounds.push(self.arena.len() as u32);
    }

    /// Number of buffered datagrams.
    pub fn frames(&self) -> usize {
        self.bounds.len()
    }

    /// Buffered payload bytes.
    pub fn bytes(&self) -> usize {
        self.arena.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.bounds.is_empty()
    }

    /// True when the arena should be sealed before the next push.
    pub fn full(&self) -> bool {
        self.frames() >= MAX_BATCH_FRAMES || self.bytes() >= MAX_BATCH_BYTES
    }

    /// Freezes the buffered datagrams into an immutable
    /// [`SealedBatch`] and re-arms the arena with a fresh buffer sized
    /// by recent traffic. Returns `None` when nothing is buffered.
    pub fn seal(&mut self) -> Option<SealedBatch> {
        if self.bounds.is_empty() {
            return None;
        }
        // Track the high-water mark so the replacement buffer is
        // usually a single up-front reservation.
        self.cap_hint = self.cap_hint.max(self.arena.len()).min(MAX_BATCH_BYTES);
        let arena = std::mem::replace(&mut self.arena, BytesMut::with_capacity(self.cap_hint));
        let bounds = std::mem::replace(&mut self.bounds, Vec::with_capacity(MAX_BATCH_FRAMES));
        Some(SealedBatch { net: self.net, data: arena.freeze(), bounds })
    }
}

/// An immutable batch of datagrams sharing one arena allocation.
#[derive(Debug, Clone)]
pub struct SealedBatch {
    net: NetworkId,
    data: Bytes,
    bounds: Vec<u32>,
}

impl SealedBatch {
    /// The network every datagram in this batch arrived on.
    pub fn net(&self) -> NetworkId {
        self.net
    }

    /// Number of datagrams in the batch.
    pub fn frames(&self) -> usize {
        self.bounds.len()
    }

    /// Iterates the datagrams in arrival order as zero-copy slices of
    /// the shared arena.
    pub fn iter(&self) -> impl Iterator<Item = Bytes> + '_ {
        let mut start = 0usize;
        self.bounds.iter().map(move |&end| {
            let frame = self.data.slice(start..end as usize);
            start = end as usize;
            frame
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_carves_frames_back_in_arrival_order() {
        let mut a = InboxArena::new(NetworkId::new(1));
        a.push(b"alpha");
        a.push(b"");
        a.push(b"bravo");
        assert_eq!(a.frames(), 3);
        assert_eq!(a.bytes(), 10);
        let sealed = a.seal().expect("non-empty");
        assert!(a.is_empty(), "seal re-arms an empty arena");
        assert_eq!(sealed.net(), NetworkId::new(1));
        let frames: Vec<Vec<u8>> = sealed.iter().map(|b| b.to_vec()).collect();
        assert_eq!(frames, vec![b"alpha".to_vec(), Vec::new(), b"bravo".to_vec()]);
    }

    #[test]
    fn empty_arena_seals_to_none() {
        let mut a = InboxArena::new(NetworkId::new(0));
        assert!(a.seal().is_none());
    }

    #[test]
    fn full_trips_on_frame_cap() {
        let mut a = InboxArena::new(NetworkId::new(0));
        for _ in 0..MAX_BATCH_FRAMES {
            a.push(b"x");
        }
        assert!(a.full());
    }

    #[test]
    fn carved_frames_share_the_arena_allocation() {
        let mut a = InboxArena::new(NetworkId::new(0));
        a.push(b"one");
        a.push(b"two");
        let sealed = a.seal().expect("non-empty");
        let frames: Vec<Bytes> = sealed.iter().collect();
        // Zero-copy carving: both frames window the same backing
        // buffer, so their contents sit at adjacent offsets.
        assert_eq!(frames[0].as_ref(), b"one");
        assert_eq!(frames[1].as_ref(), b"two");
        assert_eq!(sealed.data.as_ref(), b"onetwo");
    }
}
