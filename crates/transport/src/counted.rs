//! An instrumented [`Transport`] wrapper that counts logical syscalls.
//!
//! The loopback-UDP bench gate needs a number that is stable across
//! machines and kernels: how many times per frame does the driver
//! cross the syscall layer? [`CountingTransport`] wraps any transport
//! and tallies *logical* syscalls at the `Transport` API boundary:
//!
//! * [`Transport::send`] with a broadcast destination counts one
//!   submission per emulated unicast datagram (that is exactly what
//!   the unbatched UDP transport issues: one `send_to` per peer);
//! * [`Transport::send_batch`] counts one submission per
//!   `(network, contiguous run)` group — what a `sendmmsg` submission
//!   path issues — regardless of how the inner transport realizes it;
//! * [`Transport::recv_timeout`] counts one completion per datagram;
//! * [`Transport::recv_batch`] counts one completion per non-empty
//!   fill — what a `recvmmsg` drain issues.
//!
//! Datagram counts are tallied alongside, so `syscalls / datagram`
//! falls out directly. The wrapper delegates the batch calls to the
//! inner transport (it must not re-route them through the default
//! loop, or it would measure its own fallback).

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;

use totem_wire::NetworkId;

use crate::{Destination, RecvBatch, SendBatch, Transport};

/// Shared tallies of one [`CountingTransport`] (clone the handle
/// before moving the transport into a driver thread).
#[derive(Debug, Default)]
pub struct TransportCounters {
    /// Logical submission syscalls (`send_to` / `sendmmsg`).
    pub submits: AtomicU64,
    /// Logical completion syscalls (`recv_from` / `recvmmsg`).
    pub completions: AtomicU64,
    /// Datagrams that crossed the API outbound.
    pub datagrams_out: AtomicU64,
    /// Datagrams that crossed the API inbound.
    pub datagrams_in: AtomicU64,
}

impl TransportCounters {
    /// Total logical syscalls so far.
    pub fn syscalls(&self) -> u64 {
        self.submits.load(Ordering::Relaxed) + self.completions.load(Ordering::Relaxed)
    }

    /// Total datagrams that crossed the API in either direction.
    pub fn datagrams(&self) -> u64 {
        self.datagrams_out.load(Ordering::Relaxed) + self.datagrams_in.load(Ordering::Relaxed)
    }

    /// Logical syscalls per datagram (`NaN`-free: 0 when idle).
    pub fn syscalls_per_datagram(&self) -> f64 {
        let d = self.datagrams();
        if d == 0 {
            0.0
        } else {
            self.syscalls() as f64 / d as f64
        }
    }
}

/// A [`Transport`] decorator that tallies logical syscalls and
/// datagrams into a shared [`TransportCounters`].
#[derive(Debug)]
pub struct CountingTransport<T> {
    inner: T,
    peers: usize,
    counters: Arc<TransportCounters>,
}

impl<T: Transport> CountingTransport<T> {
    /// Wraps `inner`, modelling broadcast fan-out as `peers`
    /// receivers (typically `nodes - 1`).
    pub fn new(inner: T, peers: usize) -> Self {
        CountingTransport { inner, peers, counters: Arc::new(TransportCounters::default()) }
    }

    /// A handle to the shared counters.
    pub fn counters(&self) -> Arc<TransportCounters> {
        self.counters.clone()
    }

    fn fanout(&self, dst: Destination) -> u64 {
        match dst {
            Destination::Broadcast => self.peers as u64,
            Destination::Node(_) => 1,
        }
    }
}

impl<T: Transport> Transport for CountingTransport<T> {
    fn networks(&self) -> usize {
        self.inner.networks()
    }

    fn send(&self, net: NetworkId, dst: Destination, payload: Bytes) -> io::Result<()> {
        let datagrams = self.fanout(dst);
        // One send_to per emulated datagram: the unbatched cost model.
        self.counters.submits.fetch_add(datagrams, Ordering::Relaxed);
        self.counters.datagrams_out.fetch_add(datagrams, Ordering::Relaxed);
        self.inner.send(net, dst, payload)
    }

    fn recv_timeout(&self, timeout: Duration) -> Option<(NetworkId, Bytes)> {
        let got = self.inner.recv_timeout(timeout);
        if got.is_some() {
            self.counters.completions.fetch_add(1, Ordering::Relaxed);
            self.counters.datagrams_in.fetch_add(1, Ordering::Relaxed);
        }
        got
    }

    fn send_batch(&self, batch: &mut SendBatch) -> io::Result<usize> {
        // One sendmmsg submission per contiguous same-network run of
        // the pending frames, and one datagram per emulated unicast.
        let mut groups = 0u64;
        let mut planned = 0u64;
        let mut last_net: Option<NetworkId> = None;
        for f in batch.pending() {
            if last_net != Some(f.net) {
                groups += 1;
                last_net = Some(f.net);
            }
            planned += self.fanout(f.dst);
        }
        let before = batch.remaining();
        let result = self.inner.send_batch(batch);
        let sent = before - batch.remaining();
        if sent > 0 {
            let unsent: u64 = batch.pending().iter().map(|f| self.fanout(f.dst)).sum();
            // A partial batch still paid at least one submission but
            // not necessarily all its groups; charge the groups only
            // when everything went out.
            let submits = if sent == before { groups } else { 1 };
            self.counters.submits.fetch_add(submits, Ordering::Relaxed);
            self.counters.datagrams_out.fetch_add(planned - unsent, Ordering::Relaxed);
        }
        result
    }

    fn recv_batch(&self, out: &mut RecvBatch, timeout: Duration) -> usize {
        let got = self.inner.recv_batch(out, timeout);
        if got > 0 {
            self.counters.completions.fetch_add(1, Ordering::Relaxed);
            self.counters.datagrams_in.fetch_add(got as u64, Ordering::Relaxed);
        }
        got
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InMemoryHub;
    use totem_wire::NodeId;

    #[test]
    fn unbatched_sends_count_per_datagram() {
        let mut hub = InMemoryHub::new(4, 2);
        let t = CountingTransport::new(hub.remove(0), 3);
        let c = t.counters();
        t.send(NetworkId::new(0), Destination::Broadcast, Bytes::from_static(b"x")).unwrap();
        t.send(NetworkId::new(1), Destination::Node(NodeId::new(1)), Bytes::from_static(b"y"))
            .unwrap();
        assert_eq!(c.submits.load(Ordering::Relaxed), 4, "3 broadcast + 1 unicast send_to");
        assert_eq!(c.datagrams_out.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn batched_sends_count_per_network_group() {
        let mut hub = InMemoryHub::new(4, 2);
        let t = CountingTransport::new(hub.remove(0), 3);
        let c = t.counters();
        let mut b = SendBatch::new();
        for _ in 0..5 {
            b.push(NetworkId::new(0), Destination::Broadcast, Bytes::from_static(b"d"));
        }
        for _ in 0..5 {
            b.push(NetworkId::new(1), Destination::Broadcast, Bytes::from_static(b"d"));
        }
        t.send_batch(&mut b).unwrap();
        assert_eq!(c.submits.load(Ordering::Relaxed), 2, "one sendmmsg per network run");
        assert_eq!(c.datagrams_out.load(Ordering::Relaxed), 30, "10 frames x 3 peers");
    }

    #[test]
    fn batched_recv_counts_one_completion_per_fill() {
        let hub = InMemoryHub::new(2, 1);
        for i in 0..6u8 {
            hub[0]
                .send(
                    NetworkId::new(0),
                    Destination::Node(NodeId::new(1)),
                    Bytes::copy_from_slice(&[i]),
                )
                .unwrap();
        }
        let mut hub = hub;
        let t = CountingTransport::new(hub.remove(1), 1);
        let c = t.counters();
        let mut out = RecvBatch::new();
        assert_eq!(t.recv_batch(&mut out, Duration::from_millis(100)), 6);
        assert_eq!(c.completions.load(Ordering::Relaxed), 1, "one recvmmsg drained all six");
        assert_eq!(c.datagrams_in.load(Ordering::Relaxed), 6);
        assert!(c.syscalls_per_datagram() < 0.2);
    }
}
