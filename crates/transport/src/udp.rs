//! Real UDP transport: one socket per redundant network.
//!
//! The paper's testbed gave every workstation one NIC per network; the
//! analogue here is one bound UDP socket per network per node. A
//! [`UdpTopology`] maps `(node, network) → SocketAddr`. Broadcast is
//! emulated by unicast fan-out to all peers on that network, so
//! everything runs on 127.0.0.1 without multicast setup; on a real
//! segmented LAN the same topology works with per-subnet addresses.
//!
//! One reader thread per socket funnels datagrams into a single
//! channel, giving the driver loop a `recv_timeout` across all
//! networks.

use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};

use totem_wire::{NetworkId, NodeId};

use crate::{Destination, Transport};

/// Maximum datagram the transport accepts (a Totem frame plus slack
/// for recovery encapsulation).
const MAX_DATAGRAM: usize = 64 * 1024;

/// Address map of a cluster: `addrs[node][network]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UdpTopology {
    addrs: Vec<Vec<SocketAddr>>,
}

impl UdpTopology {
    /// Builds a topology from an explicit address table.
    ///
    /// # Panics
    ///
    /// Panics if rows have differing lengths or the table is empty.
    pub fn new(addrs: Vec<Vec<SocketAddr>>) -> Self {
        assert!(!addrs.is_empty(), "topology must have at least one node");
        let n = addrs[0].len();
        assert!(n > 0, "topology must have at least one network");
        assert!(addrs.iter().all(|row| row.len() == n), "all nodes need the same network count");
        UdpTopology { addrs }
    }

    /// A loopback topology: `nodes × networks` consecutive ports
    /// starting at `base_port` on 127.0.0.1.
    pub fn loopback(nodes: usize, networks: usize, base_port: u16) -> Self {
        let addrs = (0..nodes)
            .map(|node| {
                (0..networks)
                    .map(|net| {
                        let port = base_port + (node * networks + net) as u16;
                        SocketAddr::from(([127, 0, 0, 1], port))
                    })
                    .collect()
            })
            .collect();
        UdpTopology::new(addrs)
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.addrs.len()
    }

    /// Number of networks.
    pub fn networks(&self) -> usize {
        self.addrs[0].len()
    }

    /// Address of `(node, net)`.
    pub fn addr(&self, node: NodeId, net: NetworkId) -> SocketAddr {
        self.addrs[node.index()][net.index()]
    }
}

/// A node's UDP endpoint: one bound socket per network plus reader
/// threads.
#[derive(Debug)]
pub struct UdpTransport {
    me: NodeId,
    topology: UdpTopology,
    sockets: Vec<UdpSocket>,
    rx: Receiver<(NetworkId, Bytes)>,
    stop: Arc<AtomicBool>,
}

impl UdpTransport {
    /// Binds node `me`'s sockets per `topology` and starts the reader
    /// threads.
    ///
    /// # Errors
    ///
    /// Returns any socket bind/configuration error.
    pub fn bind(me: NodeId, topology: UdpTopology) -> io::Result<Self> {
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx) = unbounded();
        let mut sockets = Vec::with_capacity(topology.networks());
        for net in 0..topology.networks() {
            let net_id = NetworkId::new(net as u8);
            let socket = UdpSocket::bind(topology.addr(me, net_id))?;
            socket.set_read_timeout(Some(Duration::from_millis(50)))?;
            spawn_reader(socket.try_clone()?, net_id, tx.clone(), stop.clone());
            sockets.push(socket);
        }
        Ok(UdpTransport { me, topology, sockets, rx, stop })
    }

    /// This endpoint's node id.
    pub fn id(&self) -> NodeId {
        self.me
    }

    /// The topology this endpoint participates in.
    pub fn topology(&self) -> &UdpTopology {
        &self.topology
    }
}

fn spawn_reader(
    socket: UdpSocket,
    net: NetworkId,
    tx: Sender<(NetworkId, Bytes)>,
    stop: Arc<AtomicBool>,
) {
    std::thread::Builder::new()
        .name(format!("totem-udp-{net}"))
        .spawn(move || {
            let mut buf = vec![0u8; MAX_DATAGRAM];
            while !stop.load(Ordering::Relaxed) {
                match socket.recv_from(&mut buf) {
                    Ok((len, _peer)) => {
                        if tx.send((net, Bytes::copy_from_slice(&buf[..len]))).is_err() {
                            break;
                        }
                    }
                    Err(e)
                        if e.kind() == io::ErrorKind::WouldBlock
                            || e.kind() == io::ErrorKind::TimedOut => {}
                    Err(_) => break,
                }
            }
        })
        .expect("spawn udp reader thread");
}

impl Transport for UdpTransport {
    fn networks(&self) -> usize {
        self.topology.networks()
    }

    fn send(&self, net: NetworkId, dst: Destination, payload: Bytes) -> io::Result<()> {
        let socket = &self.sockets[net.index()];
        match dst {
            Destination::Broadcast => {
                for node in 0..self.topology.nodes() {
                    let node = NodeId::new(node as u16);
                    if node != self.me {
                        socket.send_to(&payload, self.topology.addr(node, net))?;
                    }
                }
            }
            Destination::Node(d) => {
                socket.send_to(&payload, self.topology.addr(d, net))?;
            }
        }
        Ok(())
    }

    fn recv_timeout(&self, timeout: Duration) -> Option<(NetworkId, Bytes)> {
        self.rx.recv_timeout(timeout).ok()
    }
}

impl Drop for UdpTransport {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Reader threads wake within their 50 ms read timeout and exit.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn free_base_port() -> u16 {
        // Bind an ephemeral socket to discover a usable port region.
        let probe = UdpSocket::bind("127.0.0.1:0").unwrap();
        let port = probe.local_addr().unwrap().port();
        // Leave slack for the table we are about to bind.
        port.saturating_sub(64).max(20_000)
    }

    #[test]
    fn loopback_topology_assigns_consecutive_ports() {
        let t = UdpTopology::loopback(2, 2, 30_000);
        assert_eq!(t.addr(NodeId::new(0), NetworkId::new(0)).port(), 30_000);
        assert_eq!(t.addr(NodeId::new(0), NetworkId::new(1)).port(), 30_001);
        assert_eq!(t.addr(NodeId::new(1), NetworkId::new(0)).port(), 30_002);
        assert_eq!(t.nodes(), 2);
        assert_eq!(t.networks(), 2);
    }

    #[test]
    fn datagrams_flow_between_endpoints_on_both_networks() {
        let base = free_base_port();
        let topo = UdpTopology::loopback(2, 2, base);
        let a = UdpTransport::bind(NodeId::new(0), topo.clone()).unwrap();
        let b = UdpTransport::bind(NodeId::new(1), topo).unwrap();

        a.send(NetworkId::new(0), Destination::Broadcast, Bytes::from_static(b"net0")).unwrap();
        a.send(NetworkId::new(1), Destination::Node(NodeId::new(1)), Bytes::from_static(b"net1"))
            .unwrap();

        let mut got = Vec::new();
        for _ in 0..2 {
            let (net, data) = b.recv_timeout(Duration::from_secs(2)).expect("datagram");
            got.push((net.as_u8(), data.to_vec()));
        }
        got.sort();
        assert_eq!(got, vec![(0, b"net0".to_vec()), (1, b"net1".to_vec())]);
    }

    #[test]
    #[should_panic(expected = "same network count")]
    fn ragged_topology_is_rejected() {
        let _ = UdpTopology::new(vec![vec![SocketAddr::from(([127, 0, 0, 1], 1000))], vec![]]);
    }
}
