//! Real UDP transport: one socket per redundant network, batched.
//!
//! The paper's testbed gave every workstation one NIC per network; the
//! analogue here is one bound UDP socket per network per node. A
//! [`UdpTopology`] maps `(node, network) → SocketAddr`. Broadcast is
//! emulated by unicast fan-out to all peers on that network, so
//! everything runs on 127.0.0.1 without multicast setup; on a real
//! segmented LAN the same topology works with per-subnet addresses.
//!
//! **Receive path.** One reader thread per socket drains datagrams
//! into a single-writer [`InboxArena`] —
//! a compact linear buffer, one per (reader → driver) pair — and
//! hands the driver whole [`SealedBatch`]es
//! through one channel send per batch. Frames are carved off as
//! zero-copy `Bytes` slices of the shared arena: no per-datagram
//! allocation, no per-datagram queue operation. With the `mmsg`
//! feature on Linux the drain itself is one `recvmmsg(2)` per batch;
//! portably it is one blocking `recv_from` followed by a non-blocking
//! drain of whatever else is queued.
//!
//! **Send path.** [`Transport::send_batch`] groups a batch's frames
//! into contiguous same-network runs. With `mmsg` each run (with
//! broadcast fan-out expanded) goes to the kernel as one
//! `sendmmsg(2)` submission; portably the run still amortizes route
//! and address resolution but issues one `send_to` per datagram.

use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use totem_wire::{NetworkId, NodeId};

use crate::inbox::{InboxArena, SealedBatch};
use crate::{Destination, RecvBatch, SendBatch, Transport};

/// Maximum datagram the transport accepts (a Totem frame plus slack
/// for recovery encapsulation).
const MAX_DATAGRAM: usize = 64 * 1024;

/// `recvmmsg` vector size: how many datagrams one syscall may drain.
#[cfg(all(feature = "mmsg", target_os = "linux"))]
const RECV_SLOTS: usize = 16;

/// How the transport talks to the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IoMode {
    /// `sendmmsg`/`recvmmsg` when compiled in (feature `mmsg`,
    /// Linux); the portable std loop otherwise.
    #[default]
    Auto,
    /// Always the portable std loop (one `send_to`/`recv_from` per
    /// datagram), even when the mmsg path is compiled in. Used by the
    /// delivery-equivalence tests and as an escape hatch.
    Portable,
}

impl IoMode {
    fn mmsg(self) -> bool {
        match self {
            IoMode::Portable => false,
            IoMode::Auto => cfg!(all(feature = "mmsg", target_os = "linux")),
        }
    }
}

/// Address map of a cluster: `addrs[node][network]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UdpTopology {
    addrs: Vec<Vec<SocketAddr>>,
}

impl UdpTopology {
    /// Builds a topology from an explicit address table.
    ///
    /// # Panics
    ///
    /// Panics if rows have differing lengths or the table is empty.
    pub fn new(addrs: Vec<Vec<SocketAddr>>) -> Self {
        assert!(!addrs.is_empty(), "topology must have at least one node");
        let n = addrs[0].len();
        assert!(n > 0, "topology must have at least one network");
        assert!(addrs.iter().all(|row| row.len() == n), "all nodes need the same network count");
        UdpTopology { addrs }
    }

    /// A loopback topology: `nodes × networks` consecutive ports
    /// starting at `base_port` on 127.0.0.1.
    ///
    /// # Panics
    ///
    /// Panics with a clear message when the port table would not fit
    /// the u16 port space (see [`UdpTopology::try_loopback`] for the
    /// fallible form). The old arithmetic wrapped silently in release
    /// builds, handing two nodes the same port.
    pub fn loopback(nodes: usize, networks: usize, base_port: u16) -> Self {
        match Self::try_loopback(nodes, networks, base_port) {
            Ok(t) => t,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`UdpTopology::loopback`].
    ///
    /// # Errors
    ///
    /// Returns a descriptive message when `nodes`/`networks` is zero
    /// or `base_port + nodes * networks - 1` exceeds 65535.
    pub fn try_loopback(nodes: usize, networks: usize, base_port: u16) -> Result<Self, String> {
        if nodes == 0 || networks == 0 {
            return Err("loopback topology needs at least one node and one network".into());
        }
        let ports = nodes
            .checked_mul(networks)
            .ok_or_else(|| "loopback topology size overflows usize".to_string())?;
        let last = (base_port as usize).checked_add(ports - 1).filter(|p| *p <= u16::MAX as usize);
        if last.is_none() {
            return Err(format!(
                "loopback topology does not fit the port space: base port {base_port} + \
                 {nodes} nodes x {networks} networks needs ports up to \
                 {} but the maximum is 65535",
                base_port as usize + ports - 1
            ));
        }
        let addrs = (0..nodes)
            .map(|node| {
                (0..networks)
                    .map(|net| {
                        let port = base_port + (node * networks + net) as u16;
                        SocketAddr::from(([127, 0, 0, 1], port))
                    })
                    .collect()
            })
            .collect();
        Ok(UdpTopology::new(addrs))
    }

    /// Binds `nodes × networks` OS-assigned loopback ports up front
    /// and returns the real table together with the live sockets.
    ///
    /// This is the race-free way to get a test/example topology:
    /// probing one ephemeral port and assuming a contiguous region is
    /// free (the old idiom) flakes as soon as anything else on the
    /// host owns a port inside the guessed range. Here every port is
    /// owned from the moment it is chosen; hand the sockets straight
    /// to [`UdpTransport`] via [`BoundTopology::into_transports`].
    ///
    /// # Errors
    ///
    /// Returns the first socket bind/inspect error.
    pub fn bind_ephemeral(nodes: usize, networks: usize) -> io::Result<BoundTopology> {
        let mut rows = Vec::with_capacity(nodes);
        let mut addrs = Vec::with_capacity(nodes);
        for _ in 0..nodes {
            let mut sockets = Vec::with_capacity(networks);
            let mut row = Vec::with_capacity(networks);
            for _ in 0..networks {
                let socket = UdpSocket::bind("127.0.0.1:0")?;
                row.push(socket.local_addr()?);
                sockets.push(socket);
            }
            rows.push(sockets);
            addrs.push(row);
        }
        Ok(BoundTopology { topology: UdpTopology::new(addrs), sockets: rows })
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.addrs.len()
    }

    /// Number of networks.
    pub fn networks(&self) -> usize {
        self.addrs[0].len()
    }

    /// Address of `(node, net)`.
    pub fn addr(&self, node: NodeId, net: NetworkId) -> SocketAddr {
        self.addrs[node.index()][net.index()]
    }
}

/// A topology whose ports are already bound (see
/// [`UdpTopology::bind_ephemeral`]): the address table plus the live
/// sockets that own it.
#[derive(Debug)]
pub struct BoundTopology {
    topology: UdpTopology,
    sockets: Vec<Vec<UdpSocket>>,
}

impl BoundTopology {
    /// The address table.
    pub fn topology(&self) -> &UdpTopology {
        &self.topology
    }

    /// Converts every node's bound sockets into a running
    /// [`UdpTransport`] (index `i` belongs to node `i`).
    ///
    /// # Errors
    ///
    /// Returns the first socket configuration error.
    pub fn into_transports(self) -> io::Result<Vec<UdpTransport>> {
        self.into_transports_with(IoMode::Auto)
    }

    /// Like [`BoundTopology::into_transports`] with an explicit
    /// [`IoMode`].
    ///
    /// # Errors
    ///
    /// Returns the first socket configuration error.
    pub fn into_transports_with(self, mode: IoMode) -> io::Result<Vec<UdpTransport>> {
        let BoundTopology { topology, sockets } = self;
        sockets
            .into_iter()
            .enumerate()
            .map(|(i, row)| {
                UdpTransport::from_sockets(NodeId::new(i as u16), topology.clone(), row, mode)
            })
            .collect()
    }
}

/// A node's UDP endpoint: one bound socket per network plus reader
/// threads feeding sealed inbox batches to the driver.
#[derive(Debug)]
pub struct UdpTransport {
    me: NodeId,
    topology: UdpTopology,
    sockets: Vec<UdpSocket>,
    rx: Receiver<SealedBatch>,
    /// Frames carved out of a sealed batch but not yet consumed by
    /// the single-shot [`Transport::recv_timeout`] path.
    carved: Mutex<VecDeque<(NetworkId, Bytes)>>,
    /// Whether the mmsg submission path is active (only consulted
    /// when it is compiled in).
    #[cfg_attr(not(all(feature = "mmsg", target_os = "linux")), allow(dead_code))]
    mmsg: bool,
    stop: Arc<AtomicBool>,
}

impl UdpTransport {
    /// Binds node `me`'s sockets per `topology` and starts the reader
    /// threads.
    ///
    /// # Errors
    ///
    /// Returns any socket bind/configuration error.
    pub fn bind(me: NodeId, topology: UdpTopology) -> io::Result<Self> {
        Self::bind_with(me, topology, IoMode::Auto)
    }

    /// Like [`UdpTransport::bind`] with an explicit [`IoMode`].
    ///
    /// # Errors
    ///
    /// Returns any socket bind/configuration error.
    pub fn bind_with(me: NodeId, topology: UdpTopology, mode: IoMode) -> io::Result<Self> {
        let mut sockets = Vec::with_capacity(topology.networks());
        for net in 0..topology.networks() {
            let net_id = NetworkId::new(net as u8);
            sockets.push(UdpSocket::bind(topology.addr(me, net_id))?);
        }
        Self::from_sockets(me, topology, sockets, mode)
    }

    /// Adopts already-bound sockets (one per network, in network
    /// order — see [`UdpTopology::bind_ephemeral`]) and starts the
    /// reader threads.
    ///
    /// # Errors
    ///
    /// Returns any socket configuration error, or `InvalidInput` if
    /// the socket count does not match the topology's network count.
    pub fn from_sockets(
        me: NodeId,
        topology: UdpTopology,
        sockets: Vec<UdpSocket>,
        mode: IoMode,
    ) -> io::Result<Self> {
        if sockets.len() != topology.networks() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "one socket per network required",
            ));
        }
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx) = unbounded();
        for (net, socket) in sockets.iter().enumerate() {
            let net_id = NetworkId::new(net as u8);
            socket.set_read_timeout(Some(Duration::from_millis(50)))?;
            spawn_reader(socket.try_clone()?, net_id, tx.clone(), stop.clone(), mode);
        }
        Ok(UdpTransport {
            me,
            topology,
            sockets,
            rx,
            carved: Mutex::new(VecDeque::new()),
            mmsg: mode.mmsg(),
            stop,
        })
    }

    /// This endpoint's node id.
    pub fn id(&self) -> NodeId {
        self.me
    }

    /// The topology this endpoint participates in.
    pub fn topology(&self) -> &UdpTopology {
        &self.topology
    }

    /// Appends each destination datagram of `(net, dst)` to `out` as
    /// a concrete socket address (broadcast fans out to every peer).
    fn resolve_into(&self, net: NetworkId, dst: Destination, out: &mut Vec<SocketAddr>) {
        match dst {
            Destination::Broadcast => {
                for node in 0..self.topology.nodes() {
                    let node = NodeId::new(node as u16);
                    if node != self.me {
                        out.push(self.topology.addr(node, net));
                    }
                }
            }
            Destination::Node(d) => out.push(self.topology.addr(d, net)),
        }
    }

    /// Submits one contiguous same-network run of frames. Returns the
    /// number of *frames* fully submitted; a frame counts only when
    /// every fan-out datagram went.
    fn send_run(&self, net: NetworkId, frames: &[crate::SendFrame]) -> io::Result<usize> {
        let socket = &self.sockets[net.index()];

        #[cfg(all(feature = "mmsg", target_os = "linux"))]
        if self.mmsg {
            // Expand fan-out once, then submit the whole run as
            // sendmmsg vectors; fall back to the portable loop when a
            // destination is not IPv4 (the shim only speaks
            // sockaddr_in).
            let mut addrs = Vec::new();
            let mut msgs: Vec<(&[u8], std::net::SocketAddrV4)> = Vec::new();
            let mut frame_end = Vec::with_capacity(frames.len());
            let mut all_v4 = true;
            for f in frames {
                addrs.clear();
                self.resolve_into(net, f.dst, &mut addrs);
                for a in &addrs {
                    match a {
                        SocketAddr::V4(v4) => msgs.push((f.payload.as_ref(), *v4)),
                        SocketAddr::V6(_) => {
                            all_v4 = false;
                            break;
                        }
                    }
                }
                if !all_v4 {
                    break;
                }
                frame_end.push(msgs.len());
            }
            if all_v4 {
                let sent_datagrams = crate::sys::send_many(socket, &msgs)?;
                return Ok(frame_end.iter().take_while(|&&end| end <= sent_datagrams).count());
            }
        }

        let mut addrs = Vec::new();
        let mut sent = 0usize;
        for f in frames {
            addrs.clear();
            self.resolve_into(net, f.dst, &mut addrs);
            for (i, a) in addrs.iter().enumerate() {
                match socket.send_to(&f.payload, a) {
                    Ok(_) => {}
                    // A frame is "sent" only when all its datagrams
                    // went; surface the error so the caller can apply
                    // first-frame-vs-partial semantics.
                    Err(e) if sent == 0 && i == 0 => return Err(e),
                    Err(_) => return Ok(sent),
                }
            }
            sent += 1;
        }
        Ok(sent)
    }

    /// Carves `batch` into the single-shot leftover queue.
    fn carve(&self, batch: SealedBatch) {
        let mut carved = self.carved.lock();
        let net = batch.net();
        for frame in batch.iter() {
            carved.push_back((net, frame));
        }
    }
}

fn spawn_reader(
    socket: UdpSocket,
    net: NetworkId,
    tx: Sender<SealedBatch>,
    stop: Arc<AtomicBool>,
    mode: IoMode,
) {
    std::thread::Builder::new()
        .name(format!("totem-udp-{net}"))
        .spawn(move || {
            if mode.mmsg() {
                #[cfg(all(feature = "mmsg", target_os = "linux"))]
                {
                    run_reader_mmsg(&socket, net, &tx, &stop);
                    return;
                }
            }
            run_reader_portable(&socket, net, &tx, &stop);
        })
        .expect("spawn udp reader thread");
}

/// Portable reader: one blocking `recv_from` (bounded by the 50 ms
/// read timeout, which doubles as the stop-flag poll), then a
/// non-blocking drain of everything else queued, one arena seal, one
/// channel send for the whole batch.
fn run_reader_portable(
    socket: &UdpSocket,
    net: NetworkId,
    tx: &Sender<SealedBatch>,
    stop: &AtomicBool,
) {
    let mut scratch = vec![0u8; MAX_DATAGRAM];
    let mut arena = InboxArena::new(net);
    while !stop.load(Ordering::Relaxed) {
        match socket.recv_from(&mut scratch) {
            Ok((len, _peer)) => {
                arena.push(&scratch[..len]);
                if socket.set_nonblocking(true).is_ok() {
                    while !arena.full() {
                        match socket.recv_from(&mut scratch) {
                            Ok((len, _peer)) => arena.push(&scratch[..len]),
                            Err(_) => break,
                        }
                    }
                    let _ = socket.set_nonblocking(false);
                }
                if let Some(batch) = arena.seal() {
                    if tx.send(batch).is_err() {
                        return;
                    }
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(_) => return,
        }
    }
}

/// mmsg reader: one `recvmmsg(MSG_WAITFORONE)` per batch — the
/// blocking wait for the first datagram and the drain of the rest are
/// the same syscall.
#[cfg(all(feature = "mmsg", target_os = "linux"))]
fn run_reader_mmsg(
    socket: &UdpSocket,
    net: NetworkId,
    tx: &Sender<SealedBatch>,
    stop: &AtomicBool,
) {
    let mut slots = crate::sys::RecvSlots::new(RECV_SLOTS, MAX_DATAGRAM);
    let mut arena = InboxArena::new(net);
    while !stop.load(Ordering::Relaxed) {
        match crate::sys::recv_many(socket, &mut slots, true) {
            Ok(0) => {}
            Ok(n) => {
                for i in 0..n {
                    arena.push(slots.datagram(i));
                }
                if let Some(batch) = arena.seal() {
                    if tx.send(batch).is_err() {
                        return;
                    }
                }
            }
            Err(_) => return,
        }
    }
}

impl Transport for UdpTransport {
    fn networks(&self) -> usize {
        self.topology.networks()
    }

    fn send(&self, net: NetworkId, dst: Destination, payload: Bytes) -> io::Result<()> {
        let socket = &self.sockets[net.index()];
        match dst {
            Destination::Broadcast => {
                for node in 0..self.topology.nodes() {
                    let node = NodeId::new(node as u16);
                    if node != self.me {
                        socket.send_to(&payload, self.topology.addr(node, net))?;
                    }
                }
            }
            Destination::Node(d) => {
                socket.send_to(&payload, self.topology.addr(d, net))?;
            }
        }
        Ok(())
    }

    fn recv_timeout(&self, timeout: Duration) -> Option<(NetworkId, Bytes)> {
        if let Some(frame) = self.carved.lock().pop_front() {
            return Some(frame);
        }
        let batch = self.rx.recv_timeout(timeout).ok()?;
        self.carve(batch);
        self.carved.lock().pop_front()
    }

    fn send_batch(&self, batch: &mut SendBatch) -> io::Result<usize> {
        let mut total = 0usize;
        while !batch.is_empty() {
            let pending = batch.pending();
            let net = pending[0].net;
            let run = pending.iter().take_while(|f| f.net == net).count();
            match self.send_run(net, &pending[..run]) {
                Ok(sent) => {
                    batch.advance(sent);
                    total += sent;
                    if sent < run {
                        break; // partial run: transient backpressure
                    }
                }
                Err(e) if total == 0 => return Err(e),
                Err(_) => break,
            }
        }
        Ok(total)
    }

    fn recv_batch(&self, out: &mut RecvBatch, timeout: Duration) -> usize {
        let mut got = 0usize;
        {
            let mut carved = self.carved.lock();
            while out.space() > 0 {
                match carved.pop_front() {
                    Some((net, frame)) => {
                        out.push(net, frame);
                        got += 1;
                    }
                    None => break,
                }
            }
        }
        loop {
            if out.space() == 0 {
                break;
            }
            let wait = if got == 0 { timeout } else { Duration::ZERO };
            match self.rx.recv_timeout(wait) {
                Ok(batch) => {
                    // A sealed batch is carved in whole (it shares one
                    // arena); the cap only gates pulling further
                    // batches.
                    let net = batch.net();
                    for frame in batch.iter() {
                        out.push(net, frame);
                        got += 1;
                    }
                }
                Err(_) => break,
            }
        }
        got
    }
}

impl Drop for UdpTransport {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Reader threads wake within their 50 ms read timeout and exit.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_topology_assigns_consecutive_ports() {
        let t = UdpTopology::loopback(2, 2, 30_000);
        assert_eq!(t.addr(NodeId::new(0), NetworkId::new(0)).port(), 30_000);
        assert_eq!(t.addr(NodeId::new(0), NetworkId::new(1)).port(), 30_001);
        assert_eq!(t.addr(NodeId::new(1), NetworkId::new(0)).port(), 30_002);
        assert_eq!(t.nodes(), 2);
        assert_eq!(t.networks(), 2);
    }

    #[test]
    fn loopback_port_overflow_is_reported_not_wrapped() {
        let err = UdpTopology::try_loopback(200, 2, 65_500).unwrap_err();
        assert!(err.contains("65535"), "message names the port-space limit: {err}");
        assert!(UdpTopology::try_loopback(2, 2, 65_532).is_ok(), "exactly fitting is fine");
        assert!(UdpTopology::try_loopback(2, 2, 65_533).is_err(), "one past the end is not");
        assert!(UdpTopology::try_loopback(0, 2, 1024).is_err(), "zero nodes rejected");
    }

    #[test]
    #[should_panic(expected = "does not fit the port space")]
    fn loopback_overflow_panics_with_a_clear_message() {
        let _ = UdpTopology::loopback(1000, 1000, 60_000);
    }

    #[test]
    fn bind_ephemeral_returns_the_real_table() {
        let bound = UdpTopology::bind_ephemeral(3, 2).expect("bind");
        let topo = bound.topology().clone();
        assert_eq!(topo.nodes(), 3);
        assert_eq!(topo.networks(), 2);
        // All six ports are distinct and owned.
        let mut ports: Vec<u16> = (0..3)
            .flat_map(|n| {
                let topo = topo.clone();
                (0..2).map(move |net| topo.addr(NodeId::new(n), NetworkId::new(net)).port())
            })
            .collect();
        ports.sort_unstable();
        ports.dedup();
        assert_eq!(ports.len(), 6);

        // And the adopted sockets really serve those addresses.
        let transports = bound.into_transports().expect("adopt");
        transports[0]
            .send(NetworkId::new(1), Destination::Node(NodeId::new(2)), Bytes::from_static(b"hi"))
            .unwrap();
        let (net, data) = transports[2].recv_timeout(Duration::from_secs(2)).expect("datagram");
        assert_eq!((net, data.as_ref()), (NetworkId::new(1), b"hi".as_slice()));
    }

    #[test]
    fn datagrams_flow_between_endpoints_on_both_networks() {
        let bound = UdpTopology::bind_ephemeral(2, 2).expect("bind");
        let mut ts = bound.into_transports().expect("adopt");
        let b = ts.pop().unwrap();
        let a = ts.pop().unwrap();

        a.send(NetworkId::new(0), Destination::Broadcast, Bytes::from_static(b"net0")).unwrap();
        a.send(NetworkId::new(1), Destination::Node(NodeId::new(1)), Bytes::from_static(b"net1"))
            .unwrap();

        let mut got = Vec::new();
        for _ in 0..2 {
            let (net, data) = b.recv_timeout(Duration::from_secs(2)).expect("datagram");
            got.push((net.as_u8(), data.to_vec()));
        }
        got.sort();
        assert_eq!(got, vec![(0, b"net0".to_vec()), (1, b"net1".to_vec())]);
    }

    #[test]
    fn batched_send_and_recv_round_trip() {
        let bound = UdpTopology::bind_ephemeral(3, 2).expect("bind");
        let mut ts = bound.into_transports().expect("adopt");
        let c = ts.pop().unwrap();
        let b = ts.pop().unwrap();
        let a = ts.pop().unwrap();

        let mut batch = SendBatch::new();
        for i in 0..8u8 {
            batch.push(NetworkId::new(i % 2), Destination::Broadcast, Bytes::copy_from_slice(&[i]));
        }
        batch.push(NetworkId::new(0), Destination::Node(NodeId::new(1)), Bytes::from_static(b"tt"));
        let sent = a.send_batch(&mut batch).expect("batch sends");
        assert_eq!(sent, 9);
        assert!(batch.is_empty());

        // b gets all 8 broadcasts plus the unicast; c only the 8.
        let mut bb = RecvBatch::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while bb.len() < 9 && std::time::Instant::now() < deadline {
            b.recv_batch(&mut bb, Duration::from_millis(200));
        }
        assert_eq!(bb.len(), 9, "b sees broadcasts and the unicast");
        // Per-network arrival order is preserved through the arena.
        let per_net: Vec<Vec<u8>> = (0..2)
            .map(|net| {
                bb.iter()
                    .filter(|(n, d)| n.as_u8() == net && d.len() == 1)
                    .map(|(_, d)| d[0])
                    .collect()
            })
            .collect();
        assert_eq!(per_net[0], vec![0, 2, 4, 6]);
        assert_eq!(per_net[1], vec![1, 3, 5, 7]);

        let mut cb = RecvBatch::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while cb.len() < 8 && std::time::Instant::now() < deadline {
            c.recv_batch(&mut cb, Duration::from_millis(200));
        }
        assert_eq!(cb.len(), 8, "c sees only the broadcasts");
    }

    #[test]
    fn single_shot_recv_consumes_carved_batches() {
        let bound = UdpTopology::bind_ephemeral(2, 1).expect("bind");
        let mut ts = bound.into_transports().expect("adopt");
        let b = ts.pop().unwrap();
        let a = ts.pop().unwrap();
        for i in 0..5u8 {
            a.send(
                NetworkId::new(0),
                Destination::Node(NodeId::new(1)),
                Bytes::copy_from_slice(&[i]),
            )
            .unwrap();
        }
        // However the datagrams were batched by the reader, the
        // single-shot path hands them out one at a time, in order.
        let mut got = Vec::new();
        for _ in 0..5 {
            let (_, d) = b.recv_timeout(Duration::from_secs(2)).expect("datagram");
            got.push(d[0]);
        }
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "same network count")]
    fn ragged_topology_is_rejected() {
        let _ = UdpTopology::new(vec![vec![SocketAddr::from(([127, 0, 0, 1], 1000))], vec![]]);
    }

    /// With the `mmsg` feature on Linux, the mmsg and portable paths
    /// must deliver the exact same frames (the wire contract the
    /// driver relies on). Without the feature both endpoints take the
    /// portable path and the test still pins the contract.
    #[test]
    fn io_modes_are_delivery_equivalent() {
        let bound = UdpTopology::bind_ephemeral(2, 2).expect("bind");
        let topo = bound.topology().clone();
        let BoundTopology { sockets, .. } = bound;
        let mut rows = sockets.into_iter();
        let a = UdpTransport::from_sockets(
            NodeId::new(0),
            topo.clone(),
            rows.next().unwrap(),
            IoMode::Auto,
        )
        .expect("auto endpoint");
        let b = UdpTransport::from_sockets(
            NodeId::new(1),
            topo,
            rows.next().unwrap(),
            IoMode::Portable,
        )
        .expect("portable endpoint");

        let payloads: Vec<Bytes> =
            (0..20u8).map(|i| Bytes::from(vec![i; 32 + i as usize])).collect();

        // auto/mmsg -> portable.
        let mut batch = SendBatch::new();
        for p in &payloads {
            batch.push(NetworkId::new(0), Destination::Node(NodeId::new(1)), p.clone());
        }
        a.send_batch(&mut batch).expect("send");
        let mut got = RecvBatch::with_max(64);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while got.len() < payloads.len() && std::time::Instant::now() < deadline {
            b.recv_batch(&mut got, Duration::from_millis(200));
        }
        let received: Vec<Bytes> = got.iter().map(|(_, d)| d.clone()).collect();
        assert_eq!(received, payloads, "portable endpoint sees the mmsg batch in order");

        // portable -> auto/mmsg.
        let mut batch = SendBatch::new();
        for p in &payloads {
            batch.push(NetworkId::new(1), Destination::Node(NodeId::new(0)), p.clone());
        }
        b.send_batch(&mut batch).expect("send");
        let mut got = RecvBatch::with_max(64);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while got.len() < payloads.len() && std::time::Instant::now() < deadline {
            a.recv_batch(&mut got, Duration::from_millis(200));
        }
        let received: Vec<Bytes> = got.iter().map(|(_, d)| d.clone()).collect();
        assert_eq!(received, payloads, "mmsg endpoint sees the portable batch in order");
    }
}
