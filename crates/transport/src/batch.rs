//! Reusable submission and completion batches for the batched
//! transport fast path.
//!
//! The driver loop accumulates every frame produced by one wake into a
//! [`SendBatch`] and hands the whole batch to
//! [`Transport::send_batch`](crate::Transport::send_batch) once, so a
//! batch-aware transport can amortize its per-submission cost
//! (`sendmmsg` issues one syscall per `(network, batch)` group instead
//! of one per datagram). Symmetrically, a [`RecvBatch`] carries every
//! datagram one wake drained out of the transport. Both types keep
//! their allocations across `clear()`, so a driver in steady state
//! reuses the same two buffers forever.

use bytes::Bytes;

use totem_wire::NetworkId;

use crate::Destination;

/// One outgoing datagram in a [`SendBatch`].
#[derive(Debug, Clone)]
pub struct SendFrame {
    /// Which redundant network to send on.
    pub net: NetworkId,
    /// Broadcast or unicast.
    pub dst: Destination,
    /// The encoded frame (refcounted; fan-out shares the buffer).
    pub payload: Bytes,
}

/// An ordered batch of outgoing frames with a submission cursor.
///
/// [`Transport::send_batch`](crate::Transport::send_batch) consumes
/// frames from the front and advances the cursor past everything it
/// submitted, so partial success (a full socket buffer mid-batch)
/// leaves the unsent tail in place for a retry — the same contract as
/// `sendmmsg(2)`, which reports how many messages it sent.
#[derive(Debug, Default)]
pub struct SendBatch {
    frames: Vec<SendFrame>,
    cursor: usize,
}

impl SendBatch {
    /// An empty batch.
    pub fn new() -> Self {
        SendBatch::default()
    }

    /// Appends a frame to the batch.
    pub fn push(&mut self, net: NetworkId, dst: Destination, payload: Bytes) {
        self.frames.push(SendFrame { net, dst, payload });
    }

    /// Frames not yet submitted (everything at or past the cursor).
    pub fn pending(&self) -> &[SendFrame] {
        &self.frames[self.cursor..]
    }

    /// Number of frames not yet submitted.
    pub fn remaining(&self) -> usize {
        self.frames.len() - self.cursor
    }

    /// True when every frame has been submitted (or none was pushed).
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Total frames pushed since the last [`SendBatch::clear`],
    /// submitted or not.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Marks the next `n` pending frames as submitted.
    ///
    /// Transport implementations call this as they make progress;
    /// `n` is clamped to the pending count.
    pub fn advance(&mut self, n: usize) {
        self.cursor = (self.cursor + n).min(self.frames.len());
    }

    /// Drops all frames (submitted or not) and rewinds the cursor,
    /// keeping the allocation for reuse.
    pub fn clear(&mut self) {
        self.frames.clear();
        self.cursor = 0;
    }

    /// Stable-groups the *pending* frames by network, so a batch-aware
    /// transport sees one contiguous run per network (one `sendmmsg`
    /// submission each) instead of one run per frame when a producer
    /// interleaves networks (the redundant-ring layer emits each
    /// frame's copies net-by-net).
    ///
    /// Per-network FIFO order is preserved — that is the only order
    /// the protocol depends on; copies on different networks travel on
    /// different sockets and carry no relative ordering.
    pub fn group_by_net(&mut self) {
        // Vec::sort_by_key is stable, so same-net frames keep their
        // relative order.
        self.frames[self.cursor..].sort_by_key(|f| f.net);
    }
}

/// A batch of received datagrams, appended by
/// [`Transport::recv_batch`](crate::Transport::recv_batch) and drained
/// by the driver loop.
///
/// `max` bounds how many frames one call may append so a saturated
/// socket cannot starve the driver's timer handling; the default of
/// [`RecvBatch::DEFAULT_MAX`] matches typical `recvmmsg` vector sizes.
#[derive(Debug)]
pub struct RecvBatch {
    frames: Vec<(NetworkId, Bytes)>,
    max: usize,
}

impl RecvBatch {
    /// Default per-call frame cap.
    pub const DEFAULT_MAX: usize = 64;

    /// An empty batch with the default cap.
    pub fn new() -> Self {
        RecvBatch::with_max(Self::DEFAULT_MAX)
    }

    /// An empty batch capped at `max` frames per fill.
    ///
    /// # Panics
    ///
    /// Panics if `max` is zero.
    pub fn with_max(max: usize) -> Self {
        assert!(max > 0, "recv batch cap must be positive");
        RecvBatch { frames: Vec::with_capacity(max), max }
    }

    /// The per-fill frame cap.
    pub fn max(&self) -> usize {
        self.max
    }

    /// Room left before the cap.
    pub fn space(&self) -> usize {
        self.max.saturating_sub(self.frames.len())
    }

    /// Appends one received datagram. Transports must respect
    /// [`RecvBatch::space`]; pushing past the cap is allowed (a sealed
    /// arena batch is carved in whole) but stops the fill loop.
    pub fn push(&mut self, net: NetworkId, payload: Bytes) {
        self.frames.push((net, payload));
    }

    /// Number of buffered datagrams.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// True when no datagrams are buffered.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Iterates the buffered datagrams in arrival order.
    pub fn iter(&self) -> impl Iterator<Item = &(NetworkId, Bytes)> {
        self.frames.iter()
    }

    /// Drains the buffered datagrams in arrival order, keeping the
    /// allocation for the next fill.
    pub fn drain(&mut self) -> impl Iterator<Item = (NetworkId, Bytes)> + '_ {
        self.frames.drain(..)
    }

    /// Drops everything, keeping the allocation.
    pub fn clear(&mut self) {
        self.frames.clear();
    }
}

impl Default for RecvBatch {
    fn default() -> Self {
        RecvBatch::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_by_net_is_stable_within_a_network() {
        let mut b = SendBatch::new();
        // Interleaved nets, as the redundant-ring layer emits them.
        for i in 0..6u8 {
            b.push(NetworkId::new(i % 2), Destination::Broadcast, Bytes::copy_from_slice(&[i]));
        }
        // Already-submitted frames are left alone.
        b.advance(2);
        b.group_by_net();
        let pending: Vec<(u8, u8)> =
            b.pending().iter().map(|f| (f.net.as_u8(), f.payload[0])).collect();
        assert_eq!(
            pending,
            vec![(0, 2), (0, 4), (1, 3), (1, 5)],
            "one contiguous run per net, per-net FIFO preserved"
        );
    }

    #[test]
    fn send_batch_cursor_tracks_partial_progress() {
        let mut b = SendBatch::new();
        for i in 0..4u8 {
            b.push(NetworkId::new(0), Destination::Broadcast, Bytes::copy_from_slice(&[i]));
        }
        assert_eq!(b.remaining(), 4);
        b.advance(3);
        assert_eq!(b.remaining(), 1);
        assert_eq!(b.pending()[0].payload.as_ref(), &[3]);
        b.advance(5); // clamped
        assert!(b.is_empty());
        b.clear();
        assert_eq!(b.len(), 0);
        assert!(b.is_empty());
    }

    #[test]
    fn recv_batch_caps_and_drains_in_order() {
        let mut b = RecvBatch::with_max(2);
        assert_eq!(b.space(), 2);
        b.push(NetworkId::new(0), Bytes::from_static(b"a"));
        b.push(NetworkId::new(1), Bytes::from_static(b"b"));
        assert_eq!(b.space(), 0);
        let got: Vec<u8> = b.drain().map(|(n, _)| n.as_u8()).collect();
        assert_eq!(got, vec![0, 1]);
        assert!(b.is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cap_is_rejected() {
        let _ = RecvBatch::with_max(0);
    }
}
