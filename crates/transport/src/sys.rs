//! Audited `sendmmsg(2)`/`recvmmsg(2)` shim (Linux, feature `mmsg`).
//!
//! This is the one module in the workspace allowed to use `unsafe`:
//! the crate is `deny(unsafe_code)` and this file opts back in with a
//! single audited `allow`. Everything unsafe is confined to (a) the
//! two `extern "C"` declarations against the C library the Rust
//! standard library already links, and (b) the two call sites, each
//! with a SAFETY argument. No other module sees a raw pointer.
//!
//! The offline build vendors no `libc` crate, so the FFI structs are
//! declared here for the one ABI this feature targets:
//! `x86_64/aarch64-unknown-linux-gnu` (glibc field layout; the
//! feature is compile-gated to `target_os = "linux"`). Only IPv4
//! destinations are supported — the portable fallback in
//! [`crate::udp`] handles everything else.
//!
//! Why bother: the batched fast path's whole point is that one
//! submission syscall carries a vector of datagrams. `send_many`
//! turns a same-socket run of frames into ⌈n/vlen⌉ `sendmmsg` calls
//! and `recv_many` drains up to a vector of datagrams per `recvmmsg`
//! wake, so the syscalls/frame figure drops with the batch size
//! instead of being pinned at one-plus per frame.

#![allow(unsafe_code)]

use std::io;
use std::net::{SocketAddrV4, UdpSocket};
use std::os::fd::AsRawFd;

/// `struct iovec` (POSIX; identical on every Linux ABI).
#[repr(C)]
#[derive(Debug, Clone, Copy)]
struct IoVec {
    base: *mut u8,
    len: usize,
}

/// `struct sockaddr_in` (network byte order for port and address).
#[repr(C)]
#[derive(Debug, Clone, Copy, Default)]
struct SockAddrIn {
    family: u16,
    port_be: u16,
    addr_be: u32,
    zero: [u8; 8],
}

/// `struct msghdr` (glibc layout: `size_t` iov/control lengths).
#[repr(C)]
#[derive(Debug, Clone, Copy)]
struct MsgHdr {
    name: *mut SockAddrIn,
    namelen: u32,
    iov: *mut IoVec,
    iovlen: usize,
    control: *mut u8,
    controllen: usize,
    flags: i32,
}

/// `struct mmsghdr`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
struct MMsgHdr {
    hdr: MsgHdr,
    len: u32,
}

const AF_INET: u16 = 2;
/// `MSG_WAITFORONE`: block for the first datagram (subject to
/// `SO_RCVTIMEO`), then return whatever else is already queued.
const MSG_WAITFORONE: i32 = 0x10000;

extern "C" {
    fn sendmmsg(fd: i32, msgvec: *mut MMsgHdr, vlen: u32, flags: i32) -> i32;
    fn recvmmsg(fd: i32, msgvec: *mut MMsgHdr, vlen: u32, flags: i32, timeout: *mut u8) -> i32;
}

fn sockaddr(addr: SocketAddrV4) -> SockAddrIn {
    SockAddrIn {
        family: AF_INET,
        port_be: addr.port().to_be(),
        addr_be: u32::from(*addr.ip()).to_be(),
        zero: [0; 8],
    }
}

fn would_block(err: &io::Error) -> bool {
    matches!(
        err.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut | io::ErrorKind::Interrupted
    )
}

/// Submits `msgs` — `(payload, destination)` pairs — on `socket` with
/// one `sendmmsg` per `vlen`-sized chunk. Returns how many datagrams
/// were accepted by the kernel; like `sendmmsg` itself, a transient
/// failure after partial progress reports the partial count and only
/// a failure on the first datagram surfaces as an error.
///
/// # Errors
///
/// Returns the socket error when not a single datagram of this call
/// could be submitted.
pub fn send_many(socket: &UdpSocket, msgs: &[(&[u8], SocketAddrV4)]) -> io::Result<usize> {
    if msgs.is_empty() {
        return Ok(0);
    }
    let fd = socket.as_raw_fd();
    let mut addrs: Vec<SockAddrIn> = msgs.iter().map(|&(_, a)| sockaddr(a)).collect();
    let mut iovecs: Vec<IoVec> =
        msgs.iter().map(|&(p, _)| IoVec { base: p.as_ptr().cast_mut(), len: p.len() }).collect();
    let mut headers: Vec<MMsgHdr> = (0..msgs.len())
        .map(|i| MMsgHdr {
            hdr: MsgHdr {
                name: addrs.as_mut_ptr().wrapping_add(i),
                namelen: size_of::<SockAddrIn>() as u32,
                iov: iovecs.as_mut_ptr().wrapping_add(i),
                iovlen: 1,
                control: std::ptr::null_mut(),
                controllen: 0,
                flags: 0,
            },
            len: 0,
        })
        .collect();

    let mut sent = 0usize;
    while sent < headers.len() {
        let vlen = (headers.len() - sent).min(1024) as u32;
        // SAFETY: `headers[sent..sent+vlen]` is a live, initialized
        // mmsghdr array; every name/iov pointer targets elements of
        // `addrs`/`iovecs`, which outlive this call and are not
        // resized after the pointers were taken; every iovec base
        // targets a caller-owned payload slice that outlives the call.
        let n = unsafe { sendmmsg(fd, headers.as_mut_ptr().wrapping_add(sent), vlen, 0) };
        if n < 0 {
            let err = io::Error::last_os_error();
            return if sent > 0 { Ok(sent) } else { Err(err) };
        }
        if n == 0 {
            break;
        }
        sent += n as usize;
    }
    Ok(sent)
}

/// Fixed receive vector for `recvmmsg`: `slots` datagram buffers plus
/// the header/iovec/source-address arrays the kernel fills in.
///
/// All internal pointers target heap allocations owned by this
/// struct's `Vec`s, which are never resized after construction, so
/// moving the struct (e.g. into a reader thread) cannot invalidate
/// them.
#[derive(Debug)]
pub struct RecvSlots {
    bufs: Vec<Vec<u8>>,
    // `addrs`/`iovecs` are "never read" by Rust code — the kernel
    // reads them through the raw pointers wired into `headers`; they
    // exist to keep that memory owned and alive.
    #[allow(dead_code)]
    addrs: Vec<SockAddrIn>,
    #[allow(dead_code)]
    iovecs: Vec<IoVec>,
    headers: Vec<MMsgHdr>,
}

// SAFETY: the raw pointers inside `iovecs`/`headers` reference only
// heap memory owned by the same struct; there is no shared mutable
// state, so transferring ownership across threads is sound.
unsafe impl Send for RecvSlots {}

impl RecvSlots {
    /// Allocates `slots` buffers of `buf_size` bytes each and wires
    /// up the header arrays once; every [`recv_many`] call reuses
    /// them.
    pub fn new(slots: usize, buf_size: usize) -> Self {
        assert!(slots > 0 && buf_size > 0, "recv slots and buffer size must be positive");
        let mut bufs: Vec<Vec<u8>> = (0..slots).map(|_| vec![0u8; buf_size]).collect();
        let mut addrs: Vec<SockAddrIn> = vec![SockAddrIn::default(); slots];
        let mut iovecs: Vec<IoVec> =
            bufs.iter_mut().map(|b| IoVec { base: b.as_mut_ptr(), len: b.len() }).collect();
        let headers: Vec<MMsgHdr> = (0..slots)
            .map(|i| MMsgHdr {
                hdr: MsgHdr {
                    name: addrs.as_mut_ptr().wrapping_add(i),
                    namelen: size_of::<SockAddrIn>() as u32,
                    iov: iovecs.as_mut_ptr().wrapping_add(i),
                    iovlen: 1,
                    control: std::ptr::null_mut(),
                    controllen: 0,
                    flags: 0,
                },
                len: 0,
            })
            .collect();
        RecvSlots { bufs, addrs, iovecs, headers }
    }

    /// Number of slots in the vector.
    pub fn slots(&self) -> usize {
        self.bufs.len()
    }

    /// The datagram the kernel wrote into slot `i` on the last
    /// [`recv_many`] call (valid for `i < n` where `n` was its return
    /// value).
    pub fn datagram(&self, i: usize) -> &[u8] {
        let len = (self.headers[i].len as usize).min(self.bufs[i].len());
        &self.bufs[i][..len]
    }
}

/// Drains up to `slots.slots()` datagrams from `socket` in one
/// `recvmmsg` call. With `wait_for_one` the call blocks for the first
/// datagram (bounded by the socket's `SO_RCVTIMEO`) and returns
/// whatever else is already queued; a timeout reports `Ok(0)`.
///
/// # Errors
///
/// Returns any non-transient socket error.
pub fn recv_many(
    socket: &UdpSocket,
    slots: &mut RecvSlots,
    wait_for_one: bool,
) -> io::Result<usize> {
    let fd = socket.as_raw_fd();
    let flags = if wait_for_one { MSG_WAITFORONE } else { 0 };
    // SAFETY: `slots.headers` is a live, initialized mmsghdr array of
    // exactly `slots.slots()` entries; every name/iov pointer targets
    // same-struct heap arrays sized in `RecvSlots::new` and never
    // resized; every iovec spans a full `buf_size` buffer, so the
    // kernel cannot write out of bounds. A null timeout defers the
    // blocking bound to `SO_RCVTIMEO`.
    let n = unsafe {
        recvmmsg(
            fd,
            slots.headers.as_mut_ptr(),
            slots.headers.len() as u32,
            flags,
            std::ptr::null_mut(),
        )
    };
    if n < 0 {
        let err = io::Error::last_os_error();
        if would_block(&err) {
            return Ok(0);
        }
        return Err(err);
    }
    Ok(n as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::SocketAddr;
    use std::time::Duration;

    fn pair() -> (UdpSocket, UdpSocket, SocketAddrV4) {
        let a = UdpSocket::bind("127.0.0.1:0").unwrap();
        let b = UdpSocket::bind("127.0.0.1:0").unwrap();
        b.set_read_timeout(Some(Duration::from_millis(500))).unwrap();
        let dst = match b.local_addr().unwrap() {
            SocketAddr::V4(v4) => v4,
            SocketAddr::V6(_) => unreachable!("bound to an IPv4 loopback"),
        };
        (a, b, dst)
    }

    #[test]
    fn send_many_then_recv_many_round_trips() {
        let (a, b, dst) = pair();
        let payloads: Vec<Vec<u8>> = (0..10u8).map(|i| vec![i; (i as usize + 1) * 7]).collect();
        let msgs: Vec<(&[u8], SocketAddrV4)> =
            payloads.iter().map(|p| (p.as_slice(), dst)).collect();
        assert_eq!(send_many(&a, &msgs).unwrap(), 10);

        let mut slots = RecvSlots::new(16, 2048);
        let mut got: Vec<Vec<u8>> = Vec::new();
        while got.len() < 10 {
            let n = recv_many(&b, &mut slots, true).unwrap();
            assert!(n > 0, "timed out before all datagrams arrived");
            for i in 0..n {
                got.push(slots.datagram(i).to_vec());
            }
        }
        // Loopback UDP between two sockets preserves order.
        assert_eq!(got, payloads);
    }

    #[test]
    fn recv_many_times_out_to_zero() {
        let (_a, b, _dst) = pair();
        b.set_read_timeout(Some(Duration::from_millis(30))).unwrap();
        let mut slots = RecvSlots::new(4, 512);
        assert_eq!(recv_many(&b, &mut slots, true).unwrap(), 0);
    }

    #[test]
    fn empty_send_is_a_no_op() {
        let (a, _b, _dst) = pair();
        assert_eq!(send_many(&a, &[]).unwrap(), 0);
    }
}
