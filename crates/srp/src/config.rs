//! Configuration of the single ring protocol.

use serde::{Deserialize, Serialize};
use totem_wire::Seq;

/// When a message may be delivered to the application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeliveryGuarantee {
    /// Deliver a message as soon as all messages with lower sequence
    /// numbers have been received (total order; a message may be
    /// delivered before every member has it). This is what the paper's
    /// throughput experiments measure.
    Agreed,
    /// Deliver a message only once the token's all-received-up-to
    /// watermark shows that **every** member of the ring has received
    /// it (conservatively: the minimum `aru` observed over the last
    /// two token visits). Higher latency, stronger guarantee.
    Safe,
}

/// Tunable parameters of the single ring protocol.
///
/// All times are in nanoseconds of protocol time (the simulator's
/// clock or the real-time runtime's monotonic clock).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SrpConfig {
    /// Delivery guarantee for application messages.
    pub guarantee: DeliveryGuarantee,
    /// How long a node waits for the token before it concludes the
    /// token (or the ring) is lost and starts the membership protocol.
    pub token_loss_timeout: u64,
    /// How often a node retransmits its last token while it has not
    /// yet observed evidence that the successor received it (paper §2).
    pub token_retransmit_interval: u64,
    /// How long an idle token holder (nothing to send, no
    /// retransmissions, no new sequence numbers) holds the token
    /// before forwarding. Paces idle rings; zero restores continuous
    /// circulation.
    pub idle_token_hold: u64,
    /// How often a node in the Gather state rebroadcasts its join
    /// message.
    pub join_retransmit_interval: u64,
    /// How long a node in the Gather state waits for consensus before
    /// moving unresponsive processors to its fail set.
    pub consensus_timeout: u64,
    /// How often the ring representative broadcasts a merge-detect
    /// announcement (a join message describing the current ring) so
    /// that healed partitions discover each other even when idle.
    pub merge_detect_interval: u64,
    /// Global flow-control window: the maximum number of packets that
    /// may be broadcast per token rotation, ring-wide (the token's
    /// `fcc` field enforces it).
    pub window_size: u32,
    /// Per-visit cap: the maximum number of packets one node may
    /// broadcast during a single token visit.
    pub max_messages_per_token: u32,
    /// Cap on packets retransmitted per token visit (retransmissions
    /// also count against the flow-control window).
    pub max_retransmit_per_token: u32,
    /// Maximum application messages queued locally before
    /// [`crate::SrpNode::submit`] applies backpressure.
    pub send_queue_limit: usize,
    /// Initial global sequence number of a **statically bootstrapped**
    /// ring ([`crate::SrpNode::new_operational`] +
    /// [`crate::SrpNode::bootstrap_token`]): the windows and the
    /// initial token start here instead of [`Seq::ZERO`]. Production
    /// rings use the default zero; wrap-equivariance tests place it
    /// just below `u64::MAX` so a run crosses the serial wrap (and the
    /// reserved-zero skip) within a few packets. Rings formed through
    /// the membership protocol always restart at zero, as the paper's
    /// reformation does.
    #[serde(default)]
    pub initial_seq: Seq,
}

impl SrpConfig {
    /// Defaults mirroring the paper's deployment: 100 Mbit/s LAN
    /// timings, agreed delivery.
    pub fn lan_defaults() -> Self {
        SrpConfig {
            guarantee: DeliveryGuarantee::Agreed,
            token_loss_timeout: 200_000_000,       // 200 ms
            token_retransmit_interval: 40_000_000, // 40 ms
            idle_token_hold: 200_000,              // 200 µs
            join_retransmit_interval: 30_000_000,  // 30 ms
            consensus_timeout: 250_000_000,        // 250 ms
            merge_detect_interval: 150_000_000,    // 150 ms
            window_size: 60,
            max_messages_per_token: 20,
            max_retransmit_per_token: 20,
            send_queue_limit: 1024,
            initial_seq: Seq::ZERO,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.token_loss_timeout == 0 {
            return Err("token_loss_timeout must be positive".into());
        }
        if self.token_retransmit_interval == 0 {
            return Err("token_retransmit_interval must be positive".into());
        }
        if self.token_retransmit_interval >= self.token_loss_timeout {
            return Err("token_retransmit_interval must be below token_loss_timeout".into());
        }
        if self.window_size == 0 {
            return Err("window_size must be positive".into());
        }
        if self.max_messages_per_token == 0 {
            return Err("max_messages_per_token must be positive".into());
        }
        if self.send_queue_limit == 0 {
            return Err("send_queue_limit must be positive".into());
        }
        if self.merge_detect_interval == 0 {
            return Err("merge_detect_interval must be positive".into());
        }
        Ok(())
    }
}

impl Default for SrpConfig {
    fn default() -> Self {
        Self::lan_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        SrpConfig::default().validate().unwrap();
    }

    #[test]
    fn retransmit_must_be_faster_than_loss_detection() {
        let mut cfg = SrpConfig::default();
        cfg.token_retransmit_interval = cfg.token_loss_timeout;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn zero_window_rejected() {
        let cfg = SrpConfig { window_size: 0, ..SrpConfig::default() };
        assert!(cfg.validate().unwrap_err().contains("window_size"));
    }

    #[test]
    fn zero_timeouts_rejected() {
        assert!(SrpConfig { token_loss_timeout: 0, ..SrpConfig::default() }.validate().is_err());
        assert!(SrpConfig { token_retransmit_interval: 0, ..SrpConfig::default() }
            .validate()
            .is_err());
        assert!(SrpConfig { max_messages_per_token: 0, ..SrpConfig::default() }
            .validate()
            .is_err());
        assert!(SrpConfig { send_queue_limit: 0, ..SrpConfig::default() }.validate().is_err());
    }
}
