//! The Totem Single Ring Protocol (SRP).
//!
//! A from-scratch implementation of the group communication substrate
//! the redundant ring protocol builds on (Amir, Moser, Melliar-Smith,
//! Agarwal, Ciarfella — ACM TOCS 1995; summarized in §2 of the RRP
//! paper):
//!
//! * a **logical token-passing ring** over broadcast-capable networks:
//!   a node may broadcast only while holding the unicast token, which
//!   eliminates medium contention and lets Totem drive an Ethernet far
//!   past its usual saturation point;
//! * **global total order**: the token carries the sequence number of
//!   the last packet broadcast; each sender stamps consecutive numbers,
//!   and every node delivers in sequence order;
//! * **reliable delivery** via retransmission requests that ride on
//!   the token, answered by whichever token holder has a copy;
//! * **flow control** via the token's `fcc`/`backlog` fields;
//! * **fault detection**: token-loss timeouts trigger the
//!   membership protocol (Gather → Commit → Recovery), which reforms
//!   the ring and delivers transitional and regular configuration
//!   changes in the style of extended virtual synchrony;
//! * **message packing and fragmentation** against the 1424-byte
//!   Ethernet payload model, which produces the paper's throughput
//!   peaks at 700 and 1400 bytes.
//!
//! The implementation is a sans-io state machine: [`SrpNode`] consumes
//! packets and timer ticks, and emits [`SrpEvent`]s (packets to send,
//! deliveries, configuration changes). It does not know how many
//! redundant networks exist — that is the job of the `totem-rrp`
//! layer, which maps the abstract send actions onto networks.
//!
//! # Example: a two-node ring driven by hand
//!
//! ```
//! use totem_srp::{SrpConfig, SrpNode, SrpEvent};
//! use totem_wire::NodeId;
//!
//! let members: Vec<NodeId> = (0..2).map(NodeId::new).collect();
//! let cfg = SrpConfig::default();
//! let mut a = SrpNode::new_operational(NodeId::new(0), cfg.clone(), &members, 0).unwrap();
//! let mut b = SrpNode::new_operational(NodeId::new(1), cfg, &members, 0).unwrap();
//!
//! a.submit(0, bytes::Bytes::from_static(b"hello ring")).unwrap();
//!
//! // Hand node 0 the initial token and shuttle packets by hand.
//! let mut outputs = a.bootstrap_token(0);
//! let mut delivered = Vec::new();
//! for _ in 0..8 {
//!     let mut next = Vec::new();
//!     for ev in outputs.drain(..) {
//!         match ev {
//!             SrpEvent::Broadcast(pkt) | SrpEvent::Rebroadcast(pkt) => {
//!                 next.extend(b.handle_packet(0, pkt))
//!             }
//!             SrpEvent::ToSuccessor(succ, pkt) => {
//!                 let n = if succ == NodeId::new(0) { &mut a } else { &mut b };
//!                 next.extend(n.handle_packet(0, pkt));
//!             }
//!             SrpEvent::Deliver(d) => delivered.push(d),
//!             SrpEvent::Config(_) => {}
//!         }
//!     }
//!     outputs = next;
//! }
//! // Both members deliver exactly once — the sender included, since
//! // Totem delivers a node's own messages in the same total order.
//! assert_eq!(delivered.len(), 2);
//! assert_eq!(&delivered[0].data[..], b"hello ring");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod corrupt;
pub mod events;
pub mod member;
pub mod node;
pub mod packing;
pub mod window;

pub use config::{DeliveryGuarantee, SrpConfig};
pub use events::{ConfigChange, ConfigKind, Delivered, SrpEvent};
pub use node::{Nanos, NodeInitError, SrpNode, SrpState, SubmitError};
