//! The Totem SRP membership protocol: Gather → Commit → Recovery.
//!
//! When a node's token-loss timer fires (or it hears a join message
//! from a node outside its ring), it enters **Gather** and broadcasts
//! join messages carrying the set of processors it can hear
//! (`proc_set`) and those it has given up on (`fail_set`). When every
//! reachable processor advertises identical sets, consensus is
//! reached; the smallest member (the representative) circulates a
//! **commit token** around the candidate ring: the first rotation
//! collects each member's old-ring state, the second distributes the
//! complete picture and moves members to **Recovery**. In recovery the
//! members rebroadcast old-ring packets that some survivor is missing
//! (encapsulated on the new ring), then deliver the transitional
//! configuration, the recovered old-ring messages, and the regular
//! configuration — in that order, in the style of extended virtual
//! synchrony — before going Operational on the new ring.

use std::collections::{BTreeMap, BTreeSet};

use totem_wire::{
    CommitToken, DataPacket, JoinMessage, MembEntry, NodeId, Packet, RingId, Seq, SharedPacket,
    Token,
};

use crate::events::{ConfigChange, ConfigKind, SrpEvent};
use crate::node::{
    deliver_packets, forward_token, recovery_chunk, Nanos, RingCtx, SrpNode, StateImpl, TokenCtx,
};

/// Gather-state bookkeeping.
#[derive(Debug)]
pub(crate) struct GatherCtx {
    pub proc_set: BTreeSet<NodeId>,
    pub fail_set: BTreeSet<NodeId>,
    /// Last join received from each processor: `(proc_set, fail_set)`.
    pub joins: BTreeMap<NodeId, (BTreeSet<NodeId>, BTreeSet<NodeId>)>,
    /// Next periodic join rebroadcast.
    pub join_deadline: Nanos,
    /// Consensus watchdog: on expiry, unresponsive processors move to
    /// the fail set (or the whole gather restarts if we were waiting
    /// for a commit token that never came).
    pub consensus_deadline: Nanos,
}

impl GatherCtx {
    /// A dormant context (used before [`SrpNode::start`] arms the
    /// timers).
    pub(crate) fn empty() -> Self {
        GatherCtx {
            proc_set: BTreeSet::new(),
            fail_set: BTreeSet::new(),
            joins: BTreeMap::new(),
            join_deadline: Nanos::MAX,
            consensus_deadline: Nanos::MAX,
        }
    }
}

/// Commit-state bookkeeping: waiting for the commit token to complete
/// its rotations.
#[derive(Debug)]
pub(crate) struct CommitCtx {
    pub ring: RingId,
    /// Candidate membership in ring order.
    pub members: Vec<NodeId>,
    pub loss_deadline: Nanos,
}

/// Recovery-state bookkeeping.
#[derive(Debug)]
pub(crate) struct RecoveryCtx {
    /// The new ring being brought up (its window holds recovery
    /// packets).
    pub new: RingCtx,
    /// Commit-token entries: every member's old-ring state.
    pub entries: Vec<MembEntry>,
    /// Old-ring sequence range to recover for *my* old ring:
    /// `(plan_low, plan_high]`.
    pub plan_low: Seq,
    pub plan_high: Seq,
    /// Old-ring sequence numbers already rebroadcast on the new ring
    /// (by anyone), so each packet is retransmitted once.
    pub recovered_seen: BTreeSet<u64>,
    pub token: TokenCtx,
    /// Consecutive idle token visits (no traffic, `aru == seq`); two
    /// of them mean recovery is complete ring-wide.
    pub quiet: u8,
}

impl SrpNode {
    // ------------------------------------------------------------------
    // Gather
    // ------------------------------------------------------------------

    /// Enters (or restarts) the Gather state and broadcasts a join
    /// message.
    pub(crate) fn enter_gather(&mut self, now: Nanos, seed_fail: Vec<NodeId>) -> Vec<SrpEvent> {
        self.stats.gathers += 1;
        // Self-stabilization: proposals must stay ahead of the
        // identity epoch, or (after an epoch corruption) we would
        // discard every commit token while peers keep proposing rings
        // below it. No-op on healthy state, where `max_ring_seq` is
        // seeded from the epoch and only grows.
        self.max_ring_seq = self.max_ring_seq.max(self.epoch);
        let mut proc_set = BTreeSet::new();
        proc_set.insert(self.me);
        // Seed with the current ring's membership (paper §: the join
        // message advertises my_proc_set, which starts from the old
        // ring). Without this, a node that shifts from Operational to
        // Gather can reach "consensus" with the first join it merges —
        // a two-ring — before the rest of its old ring is heard from,
        // and a cluster of such pairs can chase each other's merge
        // announcements forever. Members that are genuinely gone are
        // excluded by the consensus watchdog instead.
        if let Some(r) = self.ring.as_ref() {
            proc_set.extend(r.members.iter().copied());
        }
        let fail_set: BTreeSet<NodeId> = seed_fail.into_iter().filter(|f| *f != self.me).collect();
        let g = GatherCtx {
            proc_set,
            fail_set,
            joins: BTreeMap::new(),
            join_deadline: now + self.cfg.join_retransmit_interval,
            consensus_deadline: now + self.cfg.consensus_timeout,
        };
        self.state = StateImpl::Gather(g);
        // No consensus check here: with a freshly reset `proc_set` of
        // one, an instant check would form a spurious singleton ring.
        // Consensus is evaluated as joins arrive; a true singleton only
        // forms after the consensus timeout expires unanswered.
        self.my_join_broadcast().into_iter().collect()
    }

    /// The join broadcast advertising this node's current sets; `None`
    /// outside the Gather state (there are no sets to advertise).
    fn my_join_broadcast(&self) -> Option<SrpEvent> {
        let StateImpl::Gather(g) = &self.state else { return None };
        Some(SrpEvent::Broadcast(
            Packet::Join(JoinMessage {
                sender: self.me,
                ring_seq: self.max_ring_seq,
                proc_set: g.proc_set.iter().copied().collect(),
                fail_set: g.fail_set.iter().copied().collect(),
            })
            .into(),
        ))
    }

    /// Periodic gather timers: join rebroadcast and the consensus
    /// watchdog.
    pub(crate) fn gather_timers(&mut self, now: Nanos) -> Vec<SrpEvent> {
        let mut events = Vec::new();
        // Self-stabilization: this node can never credibly accuse
        // itself or forget itself, and its join proposals must stay
        // ahead of its identity epoch. Corrupted sets would otherwise
        // wedge every consensus around us (peers require set equality,
        // which a self-accusation makes unreachable), and an inflated
        // epoch would make us discard every commit token while our
        // peers keep proposing rings below it. All no-ops on healthy
        // state.
        self.max_ring_seq = self.max_ring_seq.max(self.epoch);
        let me = self.me;
        let StateImpl::Gather(g) = &mut self.state else { return events };
        g.fail_set.remove(&me);
        g.proc_set.insert(me);
        let mut rebroadcast = false;
        let mut gave_up_on_silent = false;
        if g.join_deadline <= now {
            g.join_deadline = now + self.cfg.join_retransmit_interval;
            rebroadcast = true;
        }
        if g.consensus_deadline <= now {
            // Give up on processors that fell silent. "Silent" is
            // judged against the last join heard in ANY state, not
            // against this round's `joins` map: re-entering Gather
            // clears the map (so a peer that spoke milliseconds ago
            // would look silent — seeding the gossip echo described in
            // `handle_join`), while a join recorded just before its
            // sender crashed would keep the corpse alive forever.
            let silent: Vec<NodeId> =
                g.proc_set
                    .iter()
                    .copied()
                    .filter(|p| {
                        *p != self.me
                            && self.last_heard.get(p).is_none_or(|&t| {
                                now.saturating_sub(t) >= self.cfg.consensus_timeout
                            })
                    })
                    .collect();
            gave_up_on_silent = !silent.is_empty();
            for p in silent {
                g.fail_set.insert(p);
            }
            // Also retire stale agreement state so consensus is
            // re-evaluated against the new fail set.
            g.consensus_deadline = now + self.cfg.consensus_timeout;
            rebroadcast = true;
        }
        if gave_up_on_silent {
            // This is where a crashed (or unreachable) peer is finally
            // excluded from the forming ring: the consensus watchdog
            // expired without hearing its join.
            self.note_transition("srp-membership", "Gather", "PeerCrashTimeout", "Gather");
        }
        if rebroadcast {
            events.extend(self.my_join_broadcast());
            // The watchdog has expired at least once: a singleton ring
            // may now form if we are truly alone.
            events.extend(self.check_consensus(now, true));
        }
        events
    }

    /// Handles a join message in any state.
    pub(crate) fn handle_join(&mut self, now: Nanos, j: JoinMessage) -> Vec<SrpEvent> {
        if j.sender == self.me {
            return Vec::new(); // our own broadcast echoed back
        }
        self.last_heard.insert(j.sender, now);
        self.max_ring_seq = self.max_ring_seq.max(j.ring_seq);
        match &mut self.state {
            StateImpl::Operational(_) => {
                if let Some(ring) = self.ring.as_ref() {
                    if ring.members.contains(&j.sender) {
                        if j.ring_seq < ring.ring.seq {
                            return Vec::new(); // stale join from before our ring formed
                        }
                        // Our own representative's merge-detect
                        // announcement: it describes exactly our ring.
                        let own_announcement = j.ring_seq == ring.ring.seq
                            && j.fail_set.is_empty()
                            && j.proc_set == ring.members;
                        if own_announcement {
                            return Vec::new();
                        }
                    }
                }
                // Someone needs a membership change (a joiner, or a
                // member that lost the token): shift to Gather and
                // process the join there.
                self.note_transition("srp-membership", "Operational", "JoinReceived", "Gather");
                let mut events = self.enter_gather(now, Vec::new());
                events.extend(self.handle_join(now, j));
                events
            }
            StateImpl::Commit(c) => {
                // Abandon the forming ring only when the join carries a
                // genuine membership conflict: a processor outside the
                // agreed ring is speaking (or advertised), or a ring
                // member is accused of failure. A member's rebroadcast
                // join that merely gossips a higher ring seq is NOT a
                // conflict — the member is simply still in Gather and
                // the circulating commit token will capture it. (Keying
                // this on the join's ring seq livelocks: every
                // ConsensusReached bumps max_ring_seq, the bumped seq
                // gossips out through joins, and each join then knocks
                // some other node straight back out of Commit.) A lost
                // commit token is covered by the loss deadline instead.
                if membership_conflict(&c.members, &j) {
                    self.note_transition("srp-membership", "Commit", "JoinReceived", "Gather");
                    let mut events = self.enter_gather(now, Vec::new());
                    events.extend(self.handle_join(now, j));
                    events
                } else {
                    Vec::new()
                }
            }
            StateImpl::Recovery(r) => {
                // Same conflict rule as Commit: see above.
                if membership_conflict(&r.new.members, &j) {
                    self.note_transition("srp-membership", "Recovery", "JoinReceived", "Gather");
                    let mut events = self.enter_gather(now, Vec::new());
                    events.extend(self.handle_join(now, j));
                    events
                } else {
                    Vec::new()
                }
            }
            StateImpl::Gather(g) => {
                // A fail-set entry means "presumed crashed because
                // silent" — and this join is the accused speaking, so
                // the accusation (ours, or one adopted from a peer) is
                // refuted. Retract it; the consensus watchdog simply
                // re-accuses if the sender falls silent again. Without
                // retraction, two processors that accused each other
                // while partitioned can never rejoin a common ring:
                // each keeps spreading a stale accusation the other
                // can never clear, and every consensus around them
                // wedges waiting for a commit token that nobody sends.
                // Self-stabilization sanitize (see `gather_timers`):
                // never self-accused, never self-forgotten. No-ops on
                // healthy state.
                g.fail_set.remove(&self.me);
                g.proc_set.insert(self.me);
                let mut changed = g.fail_set.remove(&j.sender);
                changed |= g.proc_set.insert(j.sender);
                for p in &j.proc_set {
                    changed |= g.proc_set.insert(*p);
                }
                // Adopt a gossiped accusation only when the accused is
                // also silent from OUR vantage point. Fail sets merge
                // insert-only across joins, so without this gate one
                // transient accusation echoes around the cluster
                // forever: each direct retraction (above) is undone by
                // the next join from a peer that has not retracted yet,
                // fail sets never become equal anywhere, and consensus
                // churns indefinitely.
                for f in &j.fail_set {
                    if *f != self.me
                        && self
                            .last_heard
                            .get(f)
                            .is_none_or(|&t| now.saturating_sub(t) >= self.cfg.consensus_timeout)
                    {
                        changed |= g.fail_set.insert(*f);
                    }
                }
                let mut jp: BTreeSet<NodeId> = j.proc_set.iter().copied().collect();
                jp.insert(j.sender);
                let jf: BTreeSet<NodeId> = j.fail_set.iter().copied().collect();
                g.joins.insert(j.sender, (jp, jf));
                let mut events = Vec::new();
                if changed {
                    // New information: re-advertise and give consensus
                    // a fresh window.
                    g.consensus_deadline = now + self.cfg.consensus_timeout;
                    g.join_deadline = now + self.cfg.join_retransmit_interval;
                    events.extend(self.my_join_broadcast());
                }
                events.extend(self.check_consensus(now, false));
                events
            }
        }
    }

    /// Checks whether every reachable processor advertises our exact
    /// sets; if so — and we are the representative — builds and sends
    /// the commit token.
    fn check_consensus(&mut self, now: Nanos, allow_singleton: bool) -> Vec<SrpEvent> {
        let StateImpl::Gather(g) = &self.state else { return Vec::new() };
        let candidate: Vec<NodeId> =
            g.proc_set.iter().copied().filter(|p| !g.fail_set.contains(p)).collect();
        if candidate.is_empty() || !candidate.contains(&self.me) {
            return Vec::new();
        }
        if candidate.len() == 1 && !allow_singleton {
            // Being alone is only believable once the consensus
            // watchdog has expired with no other voice heard.
            return Vec::new();
        }
        let agreed = candidate.iter().all(|p| {
            *p == self.me
                || g.joins.get(p).is_some_and(|(ps, fs)| *ps == g.proc_set && *fs == g.fail_set)
        });
        if !agreed {
            return Vec::new();
        }
        let Some(&rep) = candidate.first() else { return Vec::new() };
        if rep != self.me {
            // Consensus reached; await the representative's commit
            // token (the consensus watchdog covers its loss).
            return Vec::new();
        }
        // Build the commit token for the candidate ring.
        let new_ring = RingId::new(self.me, self.max_ring_seq + 1);
        self.max_ring_seq += 1;
        let mut entries: Vec<MembEntry> = candidate
            .iter()
            .map(|&node| MembEntry {
                node,
                old_ring: RingId::new(node, 0),
                my_aru: Seq::ZERO,
                high_delivered: Seq::ZERO,
                received_flag: false,
            })
            .collect();
        if let Some(entry) = entries.iter_mut().find(|e| e.node == self.me) {
            self.fill_commit_entry(entry);
        }
        let ct = CommitToken { ring: new_ring, round: 0, entries };

        if candidate.len() == 1 {
            // Singleton ring: the commit token "circulates" through us
            // alone — process it inline instead of the wire.
            self.note_transition("srp-membership", "Gather", "ConsensusReached", "Commit");
            self.state = StateImpl::Commit(CommitCtx {
                ring: new_ring,
                members: candidate,
                loss_deadline: now + self.cfg.token_loss_timeout,
            });
            return self.handle_commit(now, ct);
        }
        let succ = next_after(&candidate, self.me);
        self.note_transition("srp-membership", "Gather", "ConsensusReached", "Commit");
        self.state = StateImpl::Commit(CommitCtx {
            ring: new_ring,
            members: candidate,
            loss_deadline: now + self.cfg.token_loss_timeout,
        });
        vec![SrpEvent::ToSuccessor(succ, Packet::Commit(ct).into())]
    }

    fn fill_commit_entry(&self, entry: &mut MembEntry) {
        match &self.ring {
            Some(r) => {
                entry.old_ring = r.ring;
                entry.my_aru = r.window.my_aru();
                entry.high_delivered = r.window.high_seen();
            }
            None => {
                entry.old_ring = RingId::new(self.me, 0);
                entry.my_aru = Seq::ZERO;
                entry.high_delivered = Seq::ZERO;
            }
        }
        entry.received_flag = true;
    }

    // ------------------------------------------------------------------
    // Commit
    // ------------------------------------------------------------------

    /// Handles the commit token in any state.
    pub(crate) fn handle_commit(&mut self, now: Nanos, mut ct: CommitToken) -> Vec<SrpEvent> {
        let in_members = ct.members().any(|m| m == self.me);
        if !in_members {
            return Vec::new();
        }
        if ct.ring.seq <= self.epoch {
            // A commit for a ring at or below our identity epoch was
            // addressed to a previous incarnation of this node (it was
            // built before, or concurrently with, our crash). A fresh
            // incarnation must not resume its dead past.
            return Vec::new();
        }
        self.max_ring_seq = self.max_ring_seq.max(ct.ring.seq);
        match &mut self.state {
            StateImpl::Gather(_) | StateImpl::Operational(_) => {
                // Stale commit for a ring older than ours?
                if self.ring.as_ref().is_some_and(|r| ct.ring.seq <= r.ring.seq) {
                    return Vec::new();
                }
                if ct.round != 0 {
                    // We missed round 0 (e.g. we re-entered gather);
                    // let the membership protocol restart around us.
                    return Vec::new();
                }
                // `in_members` was checked on entry, so the entry is
                // present; tolerate a malformed token all the same.
                let Some(entry) = ct.entries.iter_mut().find(|e| e.node == self.me) else {
                    return Vec::new();
                };
                self.fill_commit_entry(entry);
                match &self.state {
                    StateImpl::Gather(_) => {
                        self.note_transition("srp-membership", "Gather", "CommitRound0", "Commit");
                    }
                    StateImpl::Operational(_) => {
                        self.note_transition(
                            "srp-membership",
                            "Operational",
                            "CommitRound0",
                            "Commit",
                        );
                    }
                    // Unreachable: this arm of the outer match is only
                    // entered from Gather or Operational.
                    StateImpl::Commit(_) | StateImpl::Recovery(_) => {}
                }
                let members: Vec<NodeId> = ct.members().collect();
                let succ = next_after(&members, self.me);
                self.state = StateImpl::Commit(CommitCtx {
                    ring: ct.ring,
                    members,
                    loss_deadline: now + self.cfg.token_loss_timeout,
                });
                vec![SrpEvent::ToSuccessor(succ, Packet::Commit(ct).into())]
            }
            StateImpl::Commit(c) => {
                if ct.ring != c.ring {
                    return Vec::new();
                }
                let members = c.members.clone();
                let Some(&rep) = members.first() else { return Vec::new() };
                if self.me == rep && ct.round == 0 {
                    if ct.entries.iter().all(|e| e.received_flag) {
                        // First rotation complete: distribute the full
                        // picture and move to recovery ourselves.
                        ct.round = 1;
                        let mut events = self.enter_recovery(now, &ct);
                        if members.len() == 1 {
                            // Singleton: round 1 also completes here.
                            events.extend(self.handle_commit(now, ct));
                        } else {
                            let succ = next_after(&members, self.me);
                            events.push(SrpEvent::ToSuccessor(succ, Packet::Commit(ct).into()));
                        }
                        events
                    } else {
                        // An incomplete round-0 token returning to the
                        // rep means a member was skipped; restart.
                        self.note_transition(
                            "srp-membership",
                            "Commit",
                            "IncompleteRound",
                            "Gather",
                        );
                        self.enter_gather(now, Vec::new())
                    }
                } else if ct.round == 1 {
                    // Second rotation: adopt the full picture, enter
                    // recovery, pass it on.
                    let mut events = self.enter_recovery(now, &ct);
                    let succ = next_after(&members, self.me);
                    events.push(SrpEvent::ToSuccessor(succ, Packet::Commit(ct).into()));
                    events
                } else {
                    Vec::new() // duplicate round-0 visit
                }
            }
            StateImpl::Recovery(r) => {
                if ct.ring == r.new.ring && ct.round == 1 && r.new.rep() == self.me {
                    // Round 1 returned to the representative: the ring
                    // is formed — inject the initial regular token.
                    let t = Token::initial(ct.ring);
                    self.handle_token(now, t)
                } else {
                    Vec::new()
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Recovery
    // ------------------------------------------------------------------

    fn enter_recovery(&mut self, now: Nanos, ct: &CommitToken) -> Vec<SrpEvent> {
        // Both call sites hold a complete commit-token round in the
        // Commit state.
        self.note_transition("srp-membership", "Commit", "RoundComplete", "Recovery");
        let members: Vec<NodeId> = ct.members().collect();
        let new = RingCtx::new(ct.ring, members);
        let my_old_ring = self.ring.as_ref().map(|r| r.ring).unwrap_or(RingId::new(self.me, 0));
        let group: Vec<&MembEntry> =
            ct.entries.iter().filter(|e| e.old_ring == my_old_ring).collect();
        // Serial-number min/max: the recovery plan must stay correct
        // when the old ring's sequence numbers straddle the wrap.
        let plan_low = group.iter().map(|e| e.my_aru).reduce(Seq::serial_min).unwrap_or(Seq::ZERO);
        let plan_high =
            group.iter().map(|e| e.high_delivered).reduce(Seq::serial_max).unwrap_or(Seq::ZERO);
        let token = TokenCtx {
            loss_deadline: Some(now + self.cfg.token_loss_timeout),
            ..Default::default()
        };
        self.state = StateImpl::Recovery(RecoveryCtx {
            new,
            entries: ct.entries.clone(),
            plan_low,
            plan_high,
            recovered_seen: BTreeSet::new(),
            token,
            quiet: 0,
        });
        Vec::new()
    }

    /// Data packets while in Recovery: new-ring recovery packets are
    /// absorbed (and their old-ring cargo unwrapped); stray old-ring
    /// packets still help fill the old window.
    pub(crate) fn recovery_handle_data(&mut self, _now: Nanos, pkt: SharedPacket) -> Vec<SrpEvent> {
        let StateImpl::Recovery(rec) = &mut self.state else { return Vec::new() };
        let Some(d) = pkt.data() else { return Vec::new() };
        let (pkt_ring, seq) = (d.ring, d.seq);
        let my_old_ring = self.ring.as_ref().map(|r| r.ring);
        if pkt_ring == rec.new.ring {
            // Keep a second handle (refcount bump) so the chunks can
            // be unwrapped after the window takes the packet.
            let held = pkt.clone();
            if !rec.new.window.insert(pkt) {
                return Vec::new();
            }
            if rec.token.sent_token.as_ref().is_some_and(|t| seq.follows(t.seq)) {
                rec.token.sent_token = None;
                rec.token.retx_deadline = None;
            }
            let Some(d) = held.data() else { return Vec::new() };
            for chunk in &d.chunks {
                if chunk.kind != totem_wire::ChunkKind::Recovery {
                    continue;
                }
                if let Ok(Packet::Data(inner)) = Packet::decode(&chunk.data) {
                    if Some(inner.ring) == my_old_ring {
                        rec.recovered_seen.insert(inner.seq.as_u64());
                        if let Some(old) = self.ring.as_mut() {
                            // Seed the encoding cache with the chunk
                            // bytes the packet was just decoded from:
                            // re-encapsulating it later is then free.
                            old.window.insert(SharedPacket::from_wire(
                                Packet::Data(inner),
                                chunk.data.clone(),
                            ));
                        }
                    }
                }
            }
        } else if Some(pkt_ring) == my_old_ring {
            if let Some(old) = self.ring.as_mut() {
                old.window.insert(pkt);
            }
        }
        Vec::new()
    }

    /// The token while in Recovery: same circulation rules as
    /// Operational, but the payload is old-ring packets wrapped as
    /// recovery chunks, and two idle rotations end the phase.
    pub(crate) fn recovery_token(&mut self, now: Nanos, mut t: Token) -> Vec<SrpEvent> {
        let mut events = Vec::new();
        let StateImpl::Recovery(rec) = &mut self.state else { return events };
        if t.ring != rec.new.ring {
            return events;
        }
        if !rec.token.is_fresh(t.rotation, t.seq) {
            return events;
        }
        // Self-stabilization: same inconsistency check as the
        // operational token path — a corrupted new-ring window must
        // abort recovery into reformation, not pollute the token.
        if rec.new.window.high_seen().follows(t.seq) || !rec.new.window.is_consistent() {
            self.note_transition("srp-membership", "Recovery", "TokenLoss", "Gather");
            return self.enter_gather(now, Vec::new());
        }
        rec.token.last_key = Some((t.rotation, t.seq));
        rec.token.sent_token = None;
        rec.token.retx_deadline = None;
        rec.token.loss_deadline = Some(now + self.cfg.token_loss_timeout);
        self.stats.tokens_handled += 1;

        let old_seq = t.seq;
        rec.new.window.note_seq(t.seq);

        // Serve retransmission requests for new-ring (recovery) packets.
        let mut sent: u32 = 0;
        let mut kept = Vec::with_capacity(t.rtr.len());
        for s in t.rtr.drain(..) {
            if sent < self.cfg.max_retransmit_per_token {
                if let Some(pkt) = rec.new.window.get(s) {
                    events.push(SrpEvent::Rebroadcast(pkt.clone()));
                    self.stats.retransmissions += 1;
                    sent += 1;
                    continue;
                }
            }
            kept.push(s);
        }
        t.rtr = kept;

        // Rebroadcast old-ring packets some survivor is missing.
        let in_flight = t.fcc.saturating_sub(rec.token.my_last_fcc);
        let fair_min = self.cfg.window_size / rec.new.members.len().max(1) as u32;
        let allow = self
            .cfg
            .max_messages_per_token
            .min(fair_min.max(self.cfg.window_size.saturating_sub(in_flight)))
            .saturating_sub(sent);
        if let Some(old) = self.ring.as_ref() {
            // Cloning a candidate is a refcount bump on the buffered
            // old-ring frame; `recovery_chunk` then reuses its cached
            // wire bytes instead of re-encoding.
            let candidates: Vec<SharedPacket> = old
                .window
                .range(rec.plan_low, rec.plan_high)
                .filter(|p| p.data().is_some_and(|d| !rec.recovered_seen.contains(&d.seq.as_u64())))
                .take(allow as usize)
                .cloned()
                .collect();
            for old_pkt in candidates {
                let Some(old_seq) = old_pkt.data().map(|d| d.seq.as_u64()) else { continue };
                rec.recovered_seen.insert(old_seq);
                t.seq = t.seq.next();
                let pkt: SharedPacket = DataPacket {
                    ring: rec.new.ring,
                    seq: t.seq,
                    sender: self.me,
                    chunks: vec![recovery_chunk(&old_pkt)],
                }
                .into();
                rec.new.window.insert(pkt.clone());
                events.push(SrpEvent::Broadcast(pkt));
                self.stats.packets_sent += 1;
                sent += 1;
            }
        }
        t.fcc = (t.fcc + sent).saturating_sub(rec.token.my_last_fcc);
        rec.token.my_last_fcc = sent;
        t.backlog = 0;

        // aru bookkeeping on the new ring.
        let my_aru = rec.new.window.my_aru();
        if my_aru.precedes(t.aru) {
            t.aru = my_aru;
            t.aru_id = Some(self.me);
        } else if t.aru_id == Some(self.me) {
            if my_aru.at_or_after(t.seq) {
                t.aru = t.seq;
                t.aru_id = None;
            } else {
                t.aru = my_aru;
            }
        } else if t.aru == old_seq && t.aru_id.is_none() {
            t.aru = t.seq;
        }
        let room = totem_wire::token::MAX_RTR.saturating_sub(t.rtr.len());
        let missing = rec.new.window.missing(room);
        self.stats.retrans_requested += missing.len() as u64;
        for s in missing {
            if !t.rtr.contains(&s) {
                t.rtr.push(s);
            }
        }
        rec.token.push_aru(t.aru);
        // Advance the delivery cursor (recovery chunks deliver
        // nothing to the application) so post-recovery GC can work.
        let ready = rec.new.window.take_deliverable(rec.new.window.my_aru());
        let new_ring_id = rec.new.ring;
        deliver_packets(
            self.me,
            new_ring_id,
            ready,
            &mut self.reassembler,
            &mut self.stats,
            &mut events,
        );

        if rec.new.rep() == self.me {
            t.rotation = t.rotation.next();
        }

        // Completion detection: a full rotation with no traffic and
        // everyone caught up — twice, so every member sees it.
        let idle =
            sent == 0 && t.rtr.is_empty() && t.seq == old_seq && t.aru == t.seq && t.fcc == 0;
        if idle {
            rec.quiet = rec.quiet.saturating_add(1);
        } else {
            rec.quiet = 0;
        }
        let finish = rec.quiet >= 2;

        forward_token(self.me, &self.cfg, &mut rec.token, &rec.new, t, now, &mut events);

        if finish {
            events.extend(self.finalize_recovery());
        }
        events
    }

    /// Delivers transitional config, recovered old-ring messages, and
    /// the regular config; installs the new ring and goes Operational.
    fn finalize_recovery(&mut self) -> Vec<SrpEvent> {
        let state = std::mem::replace(&mut self.state, StateImpl::Gather(GatherCtx::empty()));
        let rec = match state {
            StateImpl::Recovery(rec) => rec,
            // Only ever called from the recovery token path; put any
            // other state back untouched.
            other @ (StateImpl::Operational(_) | StateImpl::Gather(_) | StateImpl::Commit(_)) => {
                self.state = other;
                return Vec::new();
            }
        };
        let mut events = Vec::new();

        if let Some(old) = self.ring.take() {
            let survivors: Vec<NodeId> =
                rec.entries.iter().filter(|e| e.old_ring == old.ring).map(|e| e.node).collect();
            events.push(SrpEvent::Config(ConfigChange {
                kind: ConfigKind::Transitional,
                ring: old.ring,
                members: survivors,
            }));
            self.stats.config_changes += 1;
            // Deliver the recovered tail of the old ring, in order,
            // skipping sequence numbers no survivor had (those were
            // never delivered anywhere).
            let tail: Vec<SharedPacket> =
                old.window.range(old.window.delivered_up_to(), rec.plan_high).cloned().collect();
            deliver_packets(
                self.me,
                old.ring,
                tail,
                &mut self.reassembler,
                &mut self.stats,
                &mut events,
            );
        }
        // Torn fragment chains cannot complete across the change.
        self.reassembler.clear();

        events.push(SrpEvent::Config(ConfigChange {
            kind: ConfigKind::Regular,
            ring: rec.new.ring,
            members: rec.new.members.clone(),
        }));
        self.stats.config_changes += 1;

        let rep = rec.new.rep();
        self.ring = Some(rec.new);
        let mut token = rec.token;
        if rep == self.me {
            // The new representative starts announcing the ring for
            // merge detection. Base the first deadline on the token
            // loss deadline already armed (we have no `now` here).
            let base = token.loss_deadline.unwrap_or(0).saturating_sub(self.cfg.token_loss_timeout);
            token.announce_deadline = Some(base + self.cfg.merge_detect_interval);
        }
        self.note_transition("srp-membership", "Recovery", "RecoveryComplete", "Operational");
        self.state = StateImpl::Operational(token);
        events
    }
}

/// Whether a join message conflicts with an agreed (forming) ring
/// membership: the sender is outside the ring, its advertised
/// candidate set (`proc_set` minus `fail_set`) includes a processor
/// outside the ring, or it accuses a ring member of failure. Joins
/// from ring members that carry none of those are pure gossip — the
/// circulating commit token captures their senders — and must not
/// abort the Commit/Recovery exchange. (A failed processor still
/// listed in the sender's `proc_set` is not a conflict: proc sets
/// only ever grow during Gather, so excluded members linger there.)
fn membership_conflict(members: &[NodeId], j: &JoinMessage) -> bool {
    !members.contains(&j.sender)
        || j.fail_set.iter().any(|f| members.contains(f))
        || j.proc_set.iter().any(|p| !members.contains(p) && !j.fail_set.contains(p))
}

/// The next member after `me` in ring order (wrapping). A caller
/// outside the candidate ring (unreachable: every call site has
/// checked membership) degrades to self-addressing.
fn next_after(members: &[NodeId], me: NodeId) -> NodeId {
    let idx = members.iter().position(|&m| m == me).unwrap_or(0);
    members.get((idx + 1) % members.len().max(1)).copied().unwrap_or(me)
}
