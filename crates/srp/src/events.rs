//! Outputs of the single ring protocol state machine.

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use totem_wire::{NodeId, RingId, Seq, SharedPacket};

/// An application message delivered in total order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Delivered {
    /// The node that originated the message.
    pub sender: NodeId,
    /// The global sequence number of the packet that completed the
    /// message (for fragmented messages, the final fragment's packet).
    pub seq: Seq,
    /// The ring the message was ordered on.
    pub ring: RingId,
    /// The application payload.
    pub data: Bytes,
}

/// Which flavour of configuration change is being delivered
/// (extended-virtual-synchrony style).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConfigKind {
    /// The transitional configuration: the members of the old ring
    /// that survive into the new one. Messages delivered after it and
    /// before the regular configuration are old-ring messages ordered
    /// among the survivors.
    Transitional,
    /// The regular configuration: the full membership of the new ring.
    Regular,
}

/// A membership (configuration) change delivered to the application.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfigChange {
    /// Transitional or regular.
    pub kind: ConfigKind,
    /// The identity of the ring the configuration belongs to.
    pub ring: RingId,
    /// Members, in ring order.
    pub members: Vec<NodeId>,
}

/// Everything the SRP state machine can ask its host to do or observe.
///
/// Send events carry a [`SharedPacket`]: the state machine seals the
/// packet once, and every downstream copy (per-network replication,
/// window retention, retransmission) is a refcount bump on the same
/// frame with its encode-once wire bytes.
#[derive(Debug, Clone, PartialEq)]
pub enum SrpEvent {
    /// Broadcast a packet to all ring members (the redundant ring
    /// layer decides which network(s)).
    Broadcast(SharedPacket),
    /// Rebroadcast a packet in answer to a retransmission request.
    /// Kept distinct from [`SrpEvent::Broadcast`] so the redundant
    /// ring layer can route retransmissions on their own round-robin
    /// sequence — a retransmission carries the *original* sender's id,
    /// so folding it into the retransmitter's data rotation would
    /// skew the per-sender reception monitors.
    Rebroadcast(SharedPacket),
    /// Unicast a packet (the token) to the ring successor.
    ToSuccessor(NodeId, SharedPacket),
    /// Deliver an application message.
    Deliver(Delivered),
    /// Deliver a configuration change.
    Config(ConfigChange),
}

impl SrpEvent {
    /// Convenience: the packet if this is a send event.
    pub fn packet(&self) -> Option<&SharedPacket> {
        match self {
            SrpEvent::Broadcast(p) | SrpEvent::Rebroadcast(p) | SrpEvent::ToSuccessor(_, p) => {
                Some(p)
            }
            SrpEvent::Deliver(_) | SrpEvent::Config(_) => None,
        }
    }

    /// Convenience: the delivery if this is a deliver event.
    pub fn delivered(&self) -> Option<&Delivered> {
        match self {
            SrpEvent::Deliver(d) => Some(d),
            SrpEvent::Broadcast(_)
            | SrpEvent::Rebroadcast(_)
            | SrpEvent::ToSuccessor(_, _)
            | SrpEvent::Config(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use totem_wire::{Packet, RingId, Token};

    #[test]
    fn accessors_select_the_right_variants() {
        let token =
            SharedPacket::new(Packet::Token(Token::initial(RingId::new(NodeId::new(0), 1))));
        let ev = SrpEvent::ToSuccessor(NodeId::new(1), token.clone());
        assert_eq!(ev.packet(), Some(&token));
        assert!(ev.delivered().is_none());

        let d = Delivered {
            sender: NodeId::new(0),
            seq: Seq::new(1),
            ring: RingId::new(NodeId::new(0), 1),
            data: Bytes::from_static(b"x"),
        };
        let ev = SrpEvent::Deliver(d.clone());
        assert_eq!(ev.delivered(), Some(&d));
        assert!(ev.packet().is_none());
    }
}
